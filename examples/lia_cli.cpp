/**
 * @file
 * lia_cli — command-line front door to the library.
 *
 * Subcommands:
 *   plan     plan one deployment and compare against the baselines
 *   sweep    CSV of LIA latency/throughput over a batch grid
 *   policy   print the optimal policy for one operating point
 *   systems  list known systems and models
 *
 * Examples:
 *   lia_cli plan --system SPR-H100 --model OPT-66B --batch 1 \
 *       --lin 512 --lout 32
 *   lia_cli sweep --system SPR-A100+CXL --model OPT-30B --lout 32
 *   lia_cli policy --system GNR-A100 --model OPT-175B-int4 \
 *       --batch 900 --lin 256 --stage decode
 */

#include <iostream>

#include "base/args.hh"
#include "base/table.hh"
#include "baselines/presets.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using core::Scenario;

int
cmdPlan(const ArgParser &args)
{
    const auto sys = hw::systemByName(
        args.getString("system", "SPR-A100"));
    const auto m =
        model::modelByName(args.getString("model", "OPT-30B"));
    const Scenario sc{args.getInt("batch", 1), args.getInt("lin", 512),
                      args.getInt("lout", 32)};

    const auto lia_est = baselines::liaEngine(sys, m).estimate(sc);
    const auto ipex_est = baselines::ipexEngine(sys, m).estimate(sc);
    const auto fg_est =
        baselines::FlexGenModel(sys, m).estimate(sc);

    std::cout << m.name << " on " << sys.name << " (B=" << sc.batch
              << ", L_in=" << sc.lIn << ", L_out=" << sc.lOut << ")\n"
              << "  prefill " << lia_est.prefillPolicy.toString()
              << ", decode " << lia_est.decodePolicy.toString() << ", "
              << lia_est.residency.residentLayers
              << " resident layers, params in "
              << core::toString(lia_est.placement.paramTier) << "\n\n";

    TextTable table({"framework", "latency", "tokens/s"});
    table.addRow({"LIA", fmtSeconds(lia_est.latency()),
                  fmtDouble(lia_est.throughput(sc), 1)});
    table.addRow({"IPEX", fmtSeconds(ipex_est.latency()),
                  fmtDouble(ipex_est.throughput(sc), 1)});
    table.addRow({"FlexGen", fmtSeconds(fg_est.latency()),
                  fmtDouble(fg_est.throughput(sc), 1)});
    table.print(std::cout);
    return 0;
}

int
cmdSweep(const ArgParser &args)
{
    const auto sys = hw::systemByName(
        args.getString("system", "SPR-A100"));
    const auto m =
        model::modelByName(args.getString("model", "OPT-30B"));
    const auto l_in = args.getInt("lin", 256);
    const auto l_out = args.getInt("lout", 32);

    auto engine = baselines::liaEngine(sys, m);
    std::cout << "batch,latency_s,tokens_per_s,prefill_policy,"
                 "decode_policy,feasible\n";
    for (std::int64_t b = 1; b <= args.getInt("max-batch", 1024);
         b *= 2) {
        const Scenario sc{b, l_in, l_out};
        const auto est = engine.estimate(sc);
        std::cout << b << ',' << est.latency() << ','
                  << est.throughput(sc) << ','
                  << est.prefillPolicy.toString() << ','
                  << est.decodePolicy.toString() << ','
                  << (est.feasible ? 1 : 0) << '\n';
    }
    return 0;
}

int
cmdPolicy(const ArgParser &args)
{
    const auto sys = hw::systemByName(
        args.getString("system", "SPR-A100"));
    const auto m =
        model::modelByName(args.getString("model", "OPT-175B"));
    const auto stage_name = args.getString("stage", "decode");
    const model::Stage stage = stage_name == "prefill"
                                   ? model::Stage::Prefill
                                   : model::Stage::Decode;
    model::Workload w{stage, args.getInt("batch", 1),
                      args.getInt("lin", 512)};

    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    const auto ranked = opt.rank(w);

    std::cout << "Optimal policy for " << m.name << " "
              << model::toString(stage) << " (B=" << w.batch
              << ", L=" << w.contextLen << ") on " << sys.name
              << ":\n\n";
    TextTable table({"rank", "policy", "serial layer time",
                     "overlapped"});
    for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
        table.addRow({std::to_string(i + 1),
                      ranked[i].policy.toString(),
                      fmtSeconds(ranked[i].timing.serialTime()),
                      fmtSeconds(ranked[i].timing.overlappedTime())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdSystems()
{
    std::cout << "systems:";
    for (const auto &name : hw::knownSystemNames())
        std::cout << ' ' << name;
    std::cout << "\nmodels: ";
    for (const auto &name : model::knownModelNames())
        std::cout << ' ' << name;
    std::cout << "\n(models accept -int8 / -int4 suffixes)\n";
    return 0;
}

int
usage(const std::string &program)
{
    std::cerr << "usage: " << program
              << " {plan|sweep|policy|systems} [--system S] "
                 "[--model M]\n          [--batch B] [--lin L] "
                 "[--lout L] [--stage prefill|decode]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    if (args.positional().empty())
        return usage(args.program());
    const std::string &cmd = args.positional().front();
    if (cmd == "plan")
        return cmdPlan(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "policy")
        return cmdPolicy(args);
    if (cmd == "systems")
        return cmdSystems();
    return usage(args.program());
}
