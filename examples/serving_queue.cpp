/**
 * @file
 * Online serving with queueing: how much load can one LIA box take?
 *
 * Drives the M/G/1 serving simulation with per-request latencies from
 * the LIA engine (B = 1) and from the FlexGen baseline, sweeping the
 * Poisson arrival rate. LIA's lower service time translates directly
 * into a higher sustainable request rate before response times
 * explode — the user-facing payoff of the paper's latency numbers.
 *
 * Usage: serving_queue [requests] [seed]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "base/table.hh"
#include "baselines/presets.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "sim/serving.hh"

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Scenario;

    std::size_t requests = 150;
    std::uint64_t seed = 3;
    if (argc > 1)
        requests = static_cast<std::size_t>(std::atoll(argv[1]));
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    const auto sys = hw::sprA100();
    const auto m = model::opt30b();

    auto lia = baselines::liaEngine(sys, m);
    baselines::FlexGenModel flexgen(sys, m);

    // Latency models with memoisation (the trace redraws lengths).
    std::map<std::pair<std::int64_t, std::int64_t>, double> lia_cache;
    std::map<std::pair<std::int64_t, std::int64_t>, double> fg_cache;
    auto lia_latency = [&](const trace::Request &r) {
        auto key = std::make_pair(r.lIn, r.lOut);
        auto it = lia_cache.find(key);
        if (it == lia_cache.end()) {
            it = lia_cache
                     .emplace(key, lia.estimate(
                                          Scenario{1, r.lIn, r.lOut})
                                       .latency())
                     .first;
        }
        return it->second;
    };
    auto fg_latency = [&](const trace::Request &r) {
        auto key = std::make_pair(r.lIn, r.lOut);
        auto it = fg_cache.find(key);
        if (it == fg_cache.end()) {
            it = fg_cache
                     .emplace(key, flexgen
                                       .estimate(Scenario{1, r.lIn,
                                                          r.lOut})
                                       .latency())
                     .first;
        }
        return it->second;
    };

    std::cout << "Serving-queue simulation: " << m.name << " on "
              << sys.name << ", " << requests
              << " code-trace requests per point\n\n";

    TextTable table({"arrivals/min", "framework", "util", "p50 resp",
                     "p95 resp", "mean wait"});
    for (double per_minute : {1.0, 3.0, 6.0, 9.0}) {
        sim::ServingConfig cfg;
        cfg.arrivalRatePerSecond = per_minute / 60.0;
        cfg.requests = requests;
        cfg.seed = seed;
        const auto lia_run = sim::simulateServing(cfg, lia_latency);
        const auto fg_run = sim::simulateServing(cfg, fg_latency);
        table.addRow({fmtDouble(per_minute, 0), "LIA",
                      fmtPercent(lia_run.utilisation),
                      fmtSeconds(lia_run.responseTime.p50()),
                      fmtSeconds(lia_run.responseTime.p95()),
                      fmtSeconds(lia_run.waitingTime.mean())});
        table.addRow({fmtDouble(per_minute, 0), "FlexGen",
                      fmtPercent(fg_run.utilisation),
                      fmtSeconds(fg_run.responseTime.p50()),
                      fmtSeconds(fg_run.responseTime.p95()),
                      fmtSeconds(fg_run.waitingTime.mean())});
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nShape to expect: FlexGen saturates (util -> 100%, "
                 "waits explode) at\narrival rates LIA absorbs "
                 "comfortably — ~5x service-time advantage\nbecomes "
                 "~5x sustainable load.\n";

    // Dynamic batching: under heavy load, grouping requests amortises
    // the parameter reads and keeps the queue stable long after the
    // B=1 server melts down.
    std::map<std::pair<std::int64_t, std::pair<std::int64_t,
                                               std::int64_t>>,
             double>
        batch_cache;
    auto lia_batch_latency = [&](std::int64_t batch,
                                 const trace::Request &r) {
        auto key = std::make_pair(batch, std::make_pair(r.lIn, r.lOut));
        auto it = batch_cache.find(key);
        if (it == batch_cache.end()) {
            it = batch_cache
                     .emplace(key,
                              lia.estimate(Scenario{batch, r.lIn,
                                                    r.lOut})
                                  .latency())
                     .first;
        }
        return it->second;
    };

    std::cout << "\nDynamic batching at 12 arrivals/min (LIA)\n";
    TextTable batching_table({"policy", "util", "p50 resp",
                              "p95 resp"});
    sim::ServingConfig heavy;
    heavy.arrivalRatePerSecond = 12.0 / 60.0;
    heavy.requests = requests;
    heavy.seed = seed;
    const auto single = sim::simulateServing(heavy, lia_latency);
    batching_table.addRow({"B=1 FIFO", fmtPercent(single.utilisation),
                           fmtSeconds(single.responseTime.p50()),
                           fmtSeconds(single.responseTime.p95())});
    for (double window : {5.0, 20.0}) {
        sim::BatchingConfig batching;
        batching.window = window;
        batching.maxBatch = 32;
        const auto run = sim::simulateBatchedServing(
            heavy, batching, lia_batch_latency);
        batching_table.addRow(
            {"batch window " + fmtSeconds(window),
             fmtPercent(run.utilisation),
             fmtSeconds(run.responseTime.p50()),
             fmtSeconds(run.responseTime.p95())});
    }
    batching_table.print(std::cout);
    return 0;
}
