/**
 * @file
 * Reproduces the spirit of the paper's Fig. 7: an ASCII timing
 * diagram of a few decoder layers executing under LIA's overlapped
 * back-end. Each row is a hardware resource (host-to-device PCIe,
 * device-to-host PCIe, CPU, GPU); each glyph is a time slice, marked
 * with the decoder-layer index it serves. Parameter prefetch for
 * layer L+1 visibly streams while layer L computes.
 *
 * Usage: timing_diagram [layers] [batch] [context]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "sim/pipeline.hh"

int
main(int argc, char **argv)
{
    using namespace lia;

    std::int64_t layers = 6;
    std::int64_t batch = 900;
    std::int64_t context = 128;
    if (argc > 1)
        layers = std::atoll(argv[1]);
    if (argc > 2)
        batch = std::atoll(argv[2]);
    if (argc > 3)
        context = std::atoll(argv[3]);

    const auto sys = hw::sprA100();
    auto m = model::opt30b();
    m.numLayers = layers;  // a short excerpt keeps the diagram legible

    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    model::Workload w{model::Stage::Decode, batch, context};
    const auto choice = opt.optimize(w);

    const auto result = sim::simulateStage(
        cm, w, choice.policy, choice.policy, 0, true);

    std::cout << "Fig.-7-style timing diagram: " << layers
              << " decoder layers of " << m.name << " decode, B="
              << batch << ", L=" << context << ", policy "
              << choice.policy.toString() << " on " << sys.name
              << "\n\n";

    constexpr int kWidth = 100;
    const double scale = result.makespan / kWidth;
    const std::vector<std::string> rows{"pcie-h2d", "pcie-d2h", "cpu",
                                        "gpu"};
    std::map<std::string, std::string> lanes;
    for (const auto &row : rows)
        lanes[row] = std::string(kWidth, '.');

    for (const auto &span : result.spans) {
        if (span.resource.empty() || span.finish <= span.start)
            continue;
        // Task names are "<kind> L<layer>[.<sublayer>]".
        const auto l_pos = span.name.find('L');
        const char glyph =
            "0123456789abcdef"[std::strtol(
                                   span.name.c_str() + l_pos + 1,
                                   nullptr, 10) %
                               16];
        auto &lane = lanes[span.resource];
        const int from = std::clamp(
            static_cast<int>(span.start / scale), 0, kWidth - 1);
        const int to = std::clamp(
            static_cast<int>(span.finish / scale), from, kWidth - 1);
        for (int i = from; i <= to; ++i)
            lane[static_cast<std::size_t>(i)] = glyph;
    }

    for (const auto &row : rows)
        std::cout << (row + std::string(10 - row.size(), ' ')) << '|'
                  << lanes[row] << "|\n";

    std::cout << "\nmakespan " << fmtSeconds(result.makespan)
              << "; glyphs are decoder-layer indices (hex). Note the "
                 "h2d lane\nprefetching layer L+1's parameters while "
                 "layer L computes, and the d2h\nlane carrying KV "
                 "store-backs and CPU-bound activation hops.\n";
    return 0;
}
