/**
 * @file
 * Deployment capacity planning: "what batch size should I run?"
 *
 * Uses the CapacityPlanner to pick the throughput-optimal batch for a
 * workload shape on the CXL-equipped SPR-A100 platform — once without
 * a latency bound (offline analytics) and once with an interactive
 * SLO — and prints the explored candidate grid.
 *
 * Usage: capacity_planning [l_in] [l_out] [slo_seconds]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "core/capacity_planner.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

void
printPlan(const char *label, const lia::core::PlannerResult &result)
{
    using namespace lia;
    std::cout << label << ": ";
    if (!result.feasible) {
        std::cout << "no feasible plan (" << result.note << ")\n";
        return;
    }
    std::cout << "B = " << result.best.batch << ", "
              << fmtDouble(result.best.throughput, 1) << " tokens/s, "
              << fmtSeconds(result.best.estimate.latency())
              << " per query"
              << (result.note.empty() ? "" : " [" + result.note + "]")
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::CapacityPlanner;
    using core::PlannerRequest;

    PlannerRequest request;
    request.lIn = 256;
    request.lOut = 32;
    double slo = 30.0;
    if (argc > 1)
        request.lIn = std::atoll(argv[1]);
    if (argc > 2)
        request.lOut = std::atoll(argv[2]);
    if (argc > 3)
        slo = std::atof(argv[3]);

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    CapacityPlanner planner(sys, m);

    std::cout << "Capacity planning: " << m.name << " on " << sys.name
              << ", L_in=" << request.lIn << ", L_out=" << request.lOut
              << "\n\n";

    const auto throughput_plan = planner.plan(request);
    printPlan("Throughput-driven (no SLO)", throughput_plan);

    PlannerRequest bounded = request;
    bounded.latencySlo = slo;
    const auto slo_plan = planner.plan(bounded);
    printPlan(("Latency-bounded (SLO " + fmtSeconds(slo) + ")").c_str(),
              slo_plan);

    std::cout << "\nExplored candidates\n";
    TextTable table({"B", "tokens/s", "latency", "params in",
                     "meets SLO"});
    for (const auto &candidate : slo_plan.candidates) {
        table.addRow(
            {std::to_string(candidate.batch),
             fmtDouble(candidate.throughput, 1),
             fmtSeconds(candidate.estimate.latency()),
             core::toString(candidate.estimate.placement.paramTier),
             candidate.meetsSlo ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nMax feasible batch on this machine: "
              << planner.maxFeasibleBatch(request)
              << " (CXL pool holds the parameters; DDR holds the "
                 "growing KV cache).\n";
    return 0;
}
