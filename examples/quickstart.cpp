/**
 * @file
 * Quickstart: plan and estimate one inference deployment with LIA.
 *
 * Builds the Table-2 SPR-H100 platform, asks the planner for the
 * optimal offloading policies for an OPT-66B serving scenario, and
 * prints the resulting plan — policies, GPU residency, memory
 * placement, and the predicted latency/throughput — next to the IPEX
 * and FlexGen baselines.
 *
 * Usage: quickstart [batch] [l_in] [l_out]
 */

#include <cstdlib>
#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Scenario;

    Scenario sc{1, 512, 32};
    if (argc > 1)
        sc.batch = std::atoll(argv[1]);
    if (argc > 2)
        sc.lIn = std::atoll(argv[2]);
    if (argc > 3)
        sc.lOut = std::atoll(argv[3]);

    const auto sys = hw::sprH100();
    const auto m = model::opt66b();

    std::cout << "LIA quickstart: " << m.name << " on " << sys.name
              << ", B=" << sc.batch << " L_in=" << sc.lIn
              << " L_out=" << sc.lOut << "\n\n";

    auto lia = baselines::liaEngine(sys, m);
    const auto plan = lia.estimate(sc);

    std::cout << "Plan\n"
              << "  prefill policy : " << plan.prefillPolicy.toString()
              << " (streamed layers)\n"
              << "  decode  policy : " << plan.decodePolicy.toString()
              << "\n"
              << "  GPU-resident   : " << plan.residency.residentLayers
              << " of " << m.numLayers << " decoder layers ("
              << fmtBytes(plan.residency.gpuBytesUsed) << ")\n"
              << "  parameters in  : "
              << core::toString(plan.placement.paramTier) << "\n"
              << "  KV cache in    : "
              << core::toString(plan.placement.kvTier) << "\n"
              << "  feasible       : "
              << (plan.feasible ? "yes" : "NO - " + plan.note) << "\n\n";

    std::cout << "Prediction\n"
              << "  prefill        : " << fmtSeconds(plan.prefillTime)
              << "\n"
              << "  decode         : " << fmtSeconds(plan.decodeTime)
              << "\n"
              << "  end-to-end     : " << fmtSeconds(plan.latency())
              << " (" << fmtDouble(plan.throughput(sc), 1)
              << " tokens/s)\n"
              << "  PCIe traffic   : " << fmtBytes(plan.pcieBytes)
              << "\n\n";

    const auto ipex = baselines::ipexEngine(sys, m).estimate(sc);
    const auto flexgen =
        baselines::FlexGenModel(sys, m).estimate(sc);
    TextTable table({"framework", "latency", "tokens/s", "vs LIA"});
    table.addRow({"LIA", fmtSeconds(plan.latency()),
                  fmtDouble(plan.throughput(sc), 1), "1.00x"});
    table.addRow({"IPEX (CPU only)", fmtSeconds(ipex.latency()),
                  fmtDouble(ipex.throughput(sc), 1),
                  fmtRatio(ipex.latency() / plan.latency())});
    table.addRow({"FlexGen", fmtSeconds(flexgen.latency()),
                  fmtDouble(flexgen.throughput(sc), 1),
                  fmtRatio(flexgen.latency() / plan.latency())});
    table.print(std::cout);
    return 0;
}
