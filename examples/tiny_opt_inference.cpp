/**
 * @file
 * End-to-end functional inference through the cooperative back-end.
 *
 * Builds a miniature OPT-style model with synthetic weights, lets the
 * LIA front-end pick the offloading policies for the (simulated)
 * SPR-A100 platform, and actually runs generation through the
 * runtime: real GEMMs, attention, KV cache, greedy decoding. Prints
 * the generated token ids, the transfer ledger, and the modeled
 * device times — and cross-checks that a full-CPU plan produces
 * bit-identical tokens.
 *
 * Usage: tiny_opt_inference [batch] [l_in] [l_out]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "runtime/executor.hh"

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Policy;

    std::int64_t batch = 2;
    std::int64_t l_in = 12;
    std::int64_t l_out = 8;
    if (argc > 1)
        batch = std::atoll(argv[1]);
    if (argc > 2)
        l_in = std::atoll(argv[2]);
    if (argc > 3)
        l_out = std::atoll(argv[3]);

    const auto sys = hw::sprA100();
    const auto m = model::tinyOpt();
    Rng rng(2024);
    auto weights = runtime::TransformerWeights::random(m, rng);

    // Front-end: solve Eq. (1) for both stages.
    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    runtime::ExecutorConfig plan;
    plan.prefillPolicy =
        opt.optimize({model::Stage::Prefill, batch, l_in}).policy;
    plan.decodePolicy =
        opt.optimize({model::Stage::Decode, batch, l_in}).policy;
    plan.residentLayers = 2;

    std::cout << "Tiny-OPT cooperative inference on " << sys.name
              << " (d=" << m.dModel << ", " << m.numLayers
              << " layers)\n"
              << "  prefill policy " << plan.prefillPolicy.toString()
              << ", decode policy " << plan.decodePolicy.toString()
              << ", " << plan.residentLayers
              << " GPU-resident layers\n\n";

    // Deterministic prompts.
    std::vector<std::vector<std::int64_t>> prompts;
    for (std::int64_t b = 0; b < batch; ++b) {
        std::vector<std::int64_t> p;
        for (std::int64_t t = 0; t < l_in; ++t)
            p.push_back((13 * b + 7 * t + 5) % m.vocabSize);
        prompts.push_back(std::move(p));
    }

    runtime::CooperativeExecutor exec(sys, weights, plan);
    const auto generated = exec.generate(prompts, l_out);

    for (std::size_t b = 0; b < generated.size(); ++b) {
        std::cout << "  seq " << b << " ->";
        for (auto tok : generated[b])
            std::cout << ' ' << tok;
        std::cout << '\n';
    }

    std::cout << "\nTransfer ledger (bytes over the "
              << sys.hostLink.name << ")\n";
    TextTable ledger({"traffic class", "bytes", "transfers share"});
    const auto &led = exec.ledger();
    for (auto cls : {runtime::Traffic::Param, runtime::Traffic::Kv,
                     runtime::Traffic::Activation}) {
        const double bytes = led.bytes(cls);
        ledger.addRow({runtime::toString(cls), fmtBytes(bytes),
                       fmtPercent(led.totalBytes() > 0
                                      ? bytes / led.totalBytes()
                                      : 0.0)});
    }
    ledger.print(std::cout);

    std::cout << "\nModeled device time: CPU "
              << fmtSeconds(exec.cpuDevice().busyTime()) << ", GPU "
              << fmtSeconds(exec.gpuDevice().busyTime()) << ", link "
              << fmtSeconds(exec.ledger().totalTime())
              << " (serial total "
              << fmtSeconds(exec.modeledSerialLatency()) << ")\n";

    // The plan must not change the numerics: re-run fully on the CPU.
    runtime::ExecutorConfig cpu_plan;
    runtime::CooperativeExecutor cpu_exec(sys, weights, cpu_plan);
    const bool identical = cpu_exec.generate(prompts, l_out) ==
                           generated;
    std::cout << "\nFull-CPU re-run produces "
              << (identical ? "bit-identical tokens — the plan only "
                              "moves work, never changes results."
                            : "DIFFERENT tokens — BUG!")
              << "\n";
    return identical ? 0 : 1;
}
