/**
 * @file
 * Continuous-batching serving engine walkthrough.
 *
 * Feeds one Poisson request stream (mixed code/conversation trace)
 * through the four scheduler policies of serve:: on the same
 * SPR-A100 + OPT-30B deployment and prints the serving metrics an
 * online endpoint is judged by — TTFT, time between tokens, response
 * time, queue depth, goodput — plus the effect of CXL spill on the
 * KV admission budget and of preemptive over-admission at a pinned
 * KV budget.
 *
 * Usage: serving_engine [requests] [arrivals_per_min] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"

int
main(int argc, char **argv)
{
    using namespace lia;

    std::size_t requests = 120;
    double per_minute = 30.0;
    std::uint64_t seed = 1;
    if (argc > 1)
        requests = static_cast<std::size_t>(std::atoll(argv[1]));
    if (argc > 2)
        per_minute = std::atof(argv[2]);
    if (argc > 3)
        seed = static_cast<std::uint64_t>(std::atoll(argv[3]));

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    serve::Config base;
    base.requests = requests;
    base.arrivalRatePerSecond = per_minute / 60.0;
    base.seed = seed;
    base.maxBatch = 64;
    base.slo.ttft = 20.0;
    base.slo.tbt = 0.5;

    std::cout << "Serving engine: " << m.name << " on " << sys.name
              << ", " << requests << " mixed-trace requests at "
              << fmtDouble(per_minute, 0) << "/min (seed " << seed
              << ")\n\n";

    TextTable table({"policy", "completed", "shed", "util",
                     "p50 TTFT", "p95 TTFT", "p95 TBT", "p95 resp",
                     "tok/s", "goodput/min"});
    for (const auto policy : {serve::SchedulerPolicy::StaticFifo,
                              serve::SchedulerPolicy::Continuous,
                              serve::SchedulerPolicy::SloAware,
                              serve::SchedulerPolicy::Preemptive}) {
        serve::Config cfg = base;
        cfg.policy = policy;
        serve::ServingEngine engine(sys, m, cfg);
        const auto result = engine.run();
        const auto &mx = result.metrics;
        table.addRow(
            {serve::toString(policy), std::to_string(mx.completed),
             std::to_string(mx.rejected()),
             fmtPercent(mx.utilisation()),
             fmtSeconds(mx.ttft.p50()), fmtSeconds(mx.ttft.p95()),
             fmtSeconds(mx.tbt.p95()),
             fmtSeconds(mx.responseTime.p95()),
             fmtDouble(mx.tokensPerSecond(), 1),
             fmtDouble(result.goodputPerSecond(base.slo) * 60.0, 1)});
    }
    table.print(std::cout);

    // The CXL pool's contribution to serving: parameters leave DDR,
    // the freed capacity becomes KV admission budget (Table 3's batch
    // increase, restated as admission capacity).
    serve::Config no_spill = base;
    no_spill.policy = serve::SchedulerPolicy::Continuous;
    no_spill.cxlSpill = false;
    serve::ServingEngine spill(sys, m, base),
        plain(sys, m, no_spill);
    const double with_cxl = spill.run().kvBudgetBytes;
    const double without = plain.run().kvBudgetBytes;
    std::cout << "\nKV admission budget: " << fmtBytes(without)
              << " (params in DDR) -> " << fmtBytes(with_cxl)
              << " (params spilled to CXL, "
              << fmtRatio(with_cxl / without) << " capacity)\n";

    // Preemption at a KV-constrained operating point: pin one small
    // DDR budget and compare full-horizon admission with optimistic
    // admission + chunked prefill, which packs by live footprint and
    // swaps or recomputes victims when decode growth overshoots.
    serve::Config tight = base;
    tight.trace = trace::TraceKind::Conversation;
    tight.kvBudgetCapBytes = 4e9;
    tight.maxBatch = 32;
    tight.slo = {};
    tight.policy = serve::SchedulerPolicy::Continuous;
    const auto full = serve::ServingEngine(sys, m, tight).run();
    tight.policy = serve::SchedulerPolicy::Preemptive;
    tight.prefillChunkTokens = 256;
    const auto preempt = serve::ServingEngine(sys, m, tight).run();
    std::cout << "\nAt a pinned " << fmtBytes(tight.kvBudgetCapBytes)
              << " KV budget (conversation trace):\n"
              << "  full-horizon admission : occupancy "
              << fmtDouble(full.metrics.batchOccupancy.mean(), 2)
              << ", preemptions " << full.metrics.preemptions << "\n"
              << "  preemptive admission   : occupancy "
              << fmtDouble(preempt.metrics.batchOccupancy.mean(), 2)
              << ", preemptions " << preempt.metrics.preemptions
              << " (" << preempt.metrics.swapOuts << " swapped to CXL, "
              << preempt.metrics.recomputes << " recomputed)\n";

    std::cout
        << "\nShape to expect: static batching wastes slots on "
           "short requests and blocks\njoiners for a whole cohort; "
           "continuous batching turns both into throughput.\nThe "
           "SLO-aware scheduler sheds what it cannot serve in time "
           "and keeps TTFT/TBT\npercentiles inside their targets. "
           "Preemptive over-admission packs the KV\nbudget by live "
           "footprint and raises occupancy further.\n";
    return 0;
}
