/**
 * @file
 * Continuous-batching serving engine walkthrough.
 *
 * Feeds one Poisson request stream (mixed code/conversation trace)
 * through the four scheduler policies of serve:: on the same
 * SPR-A100 + OPT-30B deployment and prints the serving metrics an
 * online endpoint is judged by — TTFT, time between tokens, response
 * time, queue depth, goodput — plus the effect of CXL spill on the
 * KV admission budget and of preemptive over-admission at a pinned
 * KV budget.
 *
 * Usage: serving_engine [requests] [arrivals_per_min] [seed]
 *                       [--trace-out trace.json]
 *                       [--series-out series.json]
 *                       [--metrics-out metrics.prom]
 *                       [--blame-out blame.json]
 *
 * --trace-out records the preemptive-policy run as a Chrome-trace /
 * Perfetto JSON timeline (open in ui.perfetto.dev); --series-out
 * additionally dumps the per-iteration counter time series;
 * --metrics-out writes that run's Prometheus text exposition (SLO
 * burn rates included); --blame-out writes its p99.9 blame report —
 * which lifecycle phase the tail requests spent their time in
 * (DESIGN.md §13). Instrumentation never changes the metrics
 * (DESIGN.md §8).
 */

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "base/args.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/series.hh"
#include "obs/timeline.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/prom.hh"
#include "serve/slo_monitor.hh"

int
main(int argc, char **argv)
{
    using namespace lia;

    const ArgParser args(argc, argv);
    const auto &pos = args.positional();
    const std::size_t requests =
        pos.size() > 0
            ? static_cast<std::size_t>(std::atoll(pos[0].c_str()))
            : 120;
    const double per_minute =
        pos.size() > 1 ? std::atof(pos[1].c_str()) : 30.0;
    const std::uint64_t seed =
        pos.size() > 2
            ? static_cast<std::uint64_t>(std::atoll(pos[2].c_str()))
            : 1;
    const std::string trace_out = args.getString("trace-out");
    const std::string series_out = args.getString("series-out");
    const std::string metrics_out = args.getString("metrics-out");
    const std::string blame_out = args.getString("blame-out");

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    serve::Config base;
    base.requests = requests;
    base.arrivalRatePerSecond = per_minute / 60.0;
    base.seed = seed;
    base.maxBatch = 64;
    base.slo.ttft = 20.0;
    base.slo.tbt = 0.5;

    std::cout << "Serving engine: " << m.name << " on " << sys.name
              << ", " << requests << " mixed-trace requests at "
              << fmtDouble(per_minute, 0) << "/min (seed " << seed
              << ")\n\n";

    // The preemptive run — the mechanically richest timeline — is the
    // one the observability sinks record when requested.
    obs::ChromeTraceWriter trace;
    obs::SeriesRegistry series;
    obs::TimelineRecorder recorder;
    obs::TeeSink traced({&trace, &series, &recorder});
    serve::SloMonitorConfig monitor_cfg;
    monitor_cfg.targets = base.slo;
    serve::SloMonitor monitor(monitor_cfg);
    const bool tracing = !trace_out.empty() || !series_out.empty() ||
                         !metrics_out.empty() || !blame_out.empty();
    serve::Metrics preempt_metrics;

    TextTable table({"policy", "completed", "shed", "util",
                     "p50 TTFT", "p95 TTFT", "p95 TBT", "tok/s",
                     "goodput/min"});
    std::vector<std::pair<std::string, SampleStats>> response_times;
    for (const auto policy : {serve::SchedulerPolicy::StaticFifo,
                              serve::SchedulerPolicy::Continuous,
                              serve::SchedulerPolicy::SloAware,
                              serve::SchedulerPolicy::Preemptive}) {
        serve::Config cfg = base;
        cfg.policy = policy;
        if (tracing && policy == serve::SchedulerPolicy::Preemptive) {
            cfg.sink = &traced;
            cfg.sloMonitor = &monitor;
        }
        serve::ServingEngine engine(sys, m, cfg);
        const auto result = engine.run();
        const auto &mx = result.metrics;
        if (policy == serve::SchedulerPolicy::Preemptive)
            preempt_metrics = mx;
        table.addRow(
            {serve::toString(policy), std::to_string(mx.completed),
             std::to_string(mx.rejected()),
             fmtPercent(mx.utilisation()),
             fmtSeconds(mx.ttft.p50()), fmtSeconds(mx.ttft.p95()),
             fmtSeconds(mx.tbt.p95()),
             fmtDouble(mx.tokensPerSecond(), 1),
             fmtDouble(result.goodputPerSecond(base.slo) * 60.0, 1)});
        response_times.emplace_back(serve::toString(policy),
                                    mx.responseTime);
    }
    table.print(std::cout);

    // Response-time distributions in the shared latency-table format,
    // static batching as the baseline.
    std::cout << "\nResponse time by policy:\n";
    TextTable latency = serve::latencyTable("policy");
    const double base_mean = response_times.front().second.empty()
                                 ? 0.0
                                 : response_times.front().second.mean();
    for (const auto &entry : response_times)
        serve::addLatencyRow(latency, entry.first, entry.second,
                             base_mean);
    latency.print(std::cout);

    bool write_failed = false;
    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "\nWrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << " (open in ui.perfetto.dev)\n";
        else {
            std::cerr << "\nFailed to write trace to " << trace_out
                      << "\n";
            write_failed = true;
        }
    }
    if (!series_out.empty()) {
        if (series.writeFile(series_out))
            std::cout << "Wrote counter series to " << series_out
                      << "\n";
        else {
            std::cerr << "Failed to write series to " << series_out
                      << "\n";
            write_failed = true;
        }
    }
    if (!metrics_out.empty()) {
        if (serve::writePrometheusFile(metrics_out, preempt_metrics,
                                       &monitor,
                                       preempt_metrics.makespan))
            std::cout << "Wrote Prometheus metrics to " << metrics_out
                      << "\n";
        else {
            std::cerr << "Failed to write metrics to " << metrics_out
                      << "\n";
            write_failed = true;
        }
    }
    if (!blame_out.empty()) {
        if (recorder.writeFile(blame_out))
            std::cout << "Wrote blame report ("
                      << recorder.finishedCount()
                      << " requests attributed) to " << blame_out
                      << "\n";
        else {
            std::cerr << "Failed to write blame report to "
                      << blame_out << "\n";
            write_failed = true;
        }
    }

    // The CXL pool's contribution to serving: parameters leave DDR,
    // the freed capacity becomes KV admission budget (Table 3's batch
    // increase, restated as admission capacity).
    serve::Config no_spill = base;
    no_spill.policy = serve::SchedulerPolicy::Continuous;
    no_spill.cxlSpill = false;
    serve::ServingEngine spill(sys, m, base),
        plain(sys, m, no_spill);
    const double with_cxl = spill.run().kvBudgetBytes;
    const double without = plain.run().kvBudgetBytes;
    std::cout << "\nKV admission budget: " << fmtBytes(without)
              << " (params in DDR) -> " << fmtBytes(with_cxl)
              << " (params spilled to CXL, "
              << fmtRatio(with_cxl / without) << " capacity)\n";

    // Preemption at a KV-constrained operating point: pin one small
    // DDR budget and compare full-horizon admission with optimistic
    // admission + chunked prefill, which packs by live footprint and
    // swaps or recomputes victims when decode growth overshoots.
    serve::Config tight = base;
    tight.trace = trace::TraceKind::Conversation;
    tight.kvBudgetCapBytes = 4e9;
    tight.maxBatch = 32;
    tight.slo = {};
    tight.policy = serve::SchedulerPolicy::Continuous;
    const auto full = serve::ServingEngine(sys, m, tight).run();
    tight.policy = serve::SchedulerPolicy::Preemptive;
    tight.prefillChunkTokens = 256;
    const auto preempt = serve::ServingEngine(sys, m, tight).run();
    std::cout << "\nAt a pinned " << fmtBytes(tight.kvBudgetCapBytes)
              << " KV budget (conversation trace):\n"
              << "  full-horizon admission : occupancy "
              << fmtDouble(full.metrics.batchOccupancy.mean(), 2)
              << ", preemptions " << full.metrics.preemptions << "\n"
              << "  preemptive admission   : occupancy "
              << fmtDouble(preempt.metrics.batchOccupancy.mean(), 2)
              << ", preemptions " << preempt.metrics.preemptions
              << " (" << preempt.metrics.swapOuts << " swapped to CXL, "
              << preempt.metrics.recomputes << " recomputed)\n";

    std::cout
        << "\nShape to expect: static batching wastes slots on "
           "short requests and blocks\njoiners for a whole cohort; "
           "continuous batching turns both into throughput.\nThe "
           "SLO-aware scheduler sheds what it cannot serve in time "
           "and keeps TTFT/TBT\npercentiles inside their targets. "
           "Preemptive over-admission packs the KV\nbudget by live "
           "footprint and raises occupancy further.\n";
    return write_failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
