/**
 * @file
 * Throughput-driven offline batch processing with CXL offloading
 * (§6, §7.3) — the benchmarking / information-extraction / data-
 * wrangling situation where a large corpus must be pushed through the
 * model as fast as possible.
 *
 * Sweeps the batch size on an SPR-A100 with and without the two-
 * expander CXL pool, showing where DDR capacity caps the batch, how
 * the §6 placement moves parameters to CXL without losing
 * throughput, and the larger batches (and tokens/s) CXL admits.
 *
 * Usage: offline_batch_cxl [l_in] [l_out]
 */

#include <cstdlib>
#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Scenario;

    std::int64_t l_in = 32;
    std::int64_t l_out = 32;
    if (argc > 1)
        l_in = std::atoll(argv[1]);
    if (argc > 2)
        l_out = std::atoll(argv[2]);

    const auto plain = hw::sprA100();
    const auto cxl = hw::withCxl(plain);
    const auto m = model::opt30b();

    std::cout << "Offline batch processing: " << m.name
              << ", L_in=" << l_in << ", L_out=" << l_out << "\n\n";

    const auto ddr_max = model::maxBatchForCapacity(
        m, l_in, l_out, plain.cpuMemory.capacity);
    std::cout << "DDR-only capacity admits B <= " << ddr_max
              << "; the CXL pool frees "
              << fmtBytes(m.totalParamBytes())
              << " of parameters from DDR.\n\n";

    TextTable table({"B", "system", "tok/s", "params in", "DDR use",
                     "feasible"});
    for (std::int64_t batch : {64L, 900L, 1600L, 2400L, 4000L}) {
        for (const auto *sys : {&plain, &cxl}) {
            const Scenario sc{batch, l_in, l_out};
            const auto est =
                baselines::liaEngine(*sys, m).estimate(sc);
            table.addRow(
                {std::to_string(batch), sys->name,
                 est.feasible ? fmtDouble(est.throughput(sc), 1)
                              : "-",
                 core::toString(est.placement.paramTier),
                 fmtBytes(est.placement.ddrBytes),
                 est.feasible ? "yes" : est.note});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nShape to expect: identical throughput at equal B "
                 "(Observation-1: the\nPCIe link, not the memory "
                 "tier, bounds GPU transfers), ~43% of bytes\nleaving "
                 "DDR, and the CXL system staying feasible at batch "
                 "sizes the\nDDR-only system cannot hold.\n";
    return 0;
}
