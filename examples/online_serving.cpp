/**
 * @file
 * Online-serving scenario (§7.2's latency-driven workload).
 *
 * Draws a stream of requests from the Azure-statistics trace
 * generator, plans each request with LIA at B = 1 on the SPR-A100
 * platform, and reports the latency distribution against the IPEX
 * and FlexGen baselines — the situation of a user-facing assistant
 * where every query's response time matters.
 *
 * Usage: online_serving [num_requests] [seed]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

namespace {

struct LatencyStats
{
    double mean = 0;
    double p50 = 0;
    double p95 = 0;

    static LatencyStats
    of(std::vector<double> samples)
    {
        LatencyStats s;
        std::sort(samples.begin(), samples.end());
        for (double v : samples)
            s.mean += v;
        s.mean /= static_cast<double>(samples.size());
        s.p50 = samples[samples.size() / 2];
        s.p95 = samples[samples.size() * 95 / 100];
        return s;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Scenario;

    std::size_t requests = 40;
    std::uint64_t seed = 7;
    if (argc > 1)
        requests = static_cast<std::size_t>(std::atoll(argv[1]));
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

    const auto sys = hw::sprA100();
    const auto m = model::opt30b();

    std::cout << "Online serving: " << requests << " requests from "
              << "the code+conversation trace mix, " << m.name
              << " on " << sys.name << ", B=1\n\n";

    trace::AzureTraceGenerator code(trace::TraceKind::Code,
                                    m.maxSeqLen, seed);
    trace::AzureTraceGenerator chat(trace::TraceKind::Conversation,
                                    m.maxSeqLen, seed + 1);

    auto lia = baselines::liaEngine(sys, m);
    auto ipex = baselines::ipexEngine(sys, m);
    baselines::FlexGenModel flexgen(sys, m);

    std::vector<double> lia_lat, ipex_lat, fg_lat;
    int cpu_policies = 0;
    for (std::size_t i = 0; i < requests; ++i) {
        const auto req = (i % 2 == 0) ? code.next() : chat.next();
        const Scenario sc{1, req.lIn, req.lOut};
        const auto plan = lia.estimate(sc);
        lia_lat.push_back(plan.latency());
        ipex_lat.push_back(ipex.estimate(sc).latency());
        fg_lat.push_back(flexgen.estimate(sc).latency());
        cpu_policies +=
            plan.decodePolicy == core::Policy::fullCpu() ? 1 : 0;
    }

    const auto lia_s = LatencyStats::of(lia_lat);
    const auto ipex_s = LatencyStats::of(ipex_lat);
    const auto fg_s = LatencyStats::of(fg_lat);

    TextTable table({"framework", "mean (s)", "p50 (s)", "p95 (s)",
                     "mean vs LIA"});
    table.addRow({"LIA", fmtDouble(lia_s.mean, 2),
                  fmtDouble(lia_s.p50, 2), fmtDouble(lia_s.p95, 2),
                  "1.00x"});
    table.addRow({"IPEX", fmtDouble(ipex_s.mean, 2),
                  fmtDouble(ipex_s.p50, 2), fmtDouble(ipex_s.p95, 2),
                  fmtRatio(ipex_s.mean / lia_s.mean)});
    table.addRow({"FlexGen", fmtDouble(fg_s.mean, 2),
                  fmtDouble(fg_s.p50, 2), fmtDouble(fg_s.p95, 2),
                  fmtRatio(fg_s.mean / lia_s.mean)});
    table.print(std::cout);

    std::cout << "\nLIA chose the full-CPU decode policy on "
              << cpu_policies << "/" << requests
              << " requests (B=1 sits left of the Fig. 9 decode "
                 "crossover);\nprefill moves to the GPU once "
                 "L_in crosses the compute-intensity boundary.\n";
    return 0;
}
