/**
 * @file
 * Online-serving scenario (§7.2's latency-driven workload).
 *
 * Draws a stream of requests from the Azure-statistics trace
 * generator, plans each request with LIA at B = 1 on the SPR-A100
 * platform, and reports the latency distribution against the IPEX
 * and FlexGen baselines — the situation of a user-facing assistant
 * where every query's response time matters.
 *
 * Also cross-checks the two serving models at B = 1: the legacy
 * M/G/1 queue (whole-request service times) against the new
 * continuous-batching engine capped at batch 1 (iteration-priced)
 * on the identical arrival sequence.
 *
 * Usage: online_serving [num_requests] [seed]
 *                       [--trace-out trace.json]
 *                       [--metrics-out metrics.prom]
 *
 * --trace-out records the B = 1 serving-engine cross-check run as a
 * Chrome-trace / Perfetto JSON timeline; --metrics-out writes that
 * run's Prometheus text exposition (DESIGN.md §13). Instrumentation
 * never changes the metrics (DESIGN.md §8).
 */

#include <cstdlib>
#include <iostream>

#include "base/args.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "baselines/presets.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/prom.hh"
#include "sim/serving.hh"
#include "trace/azure.hh"

int
main(int argc, char **argv)
{
    using namespace lia;
    using core::Scenario;

    const ArgParser args(argc, argv);
    const auto &pos = args.positional();
    const std::size_t requests =
        pos.size() > 0
            ? static_cast<std::size_t>(std::atoll(pos[0].c_str()))
            : 40;
    const std::uint64_t seed =
        pos.size() > 1
            ? static_cast<std::uint64_t>(std::atoll(pos[1].c_str()))
            : 7;
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");

    const auto sys = hw::sprA100();
    const auto m = model::opt30b();

    std::cout << "Online serving: " << requests << " requests from "
              << "the code+conversation trace mix, " << m.name
              << " on " << sys.name << ", B=1\n\n";

    trace::AzureTraceGenerator gen(trace::TraceKind::Mixed,
                                   m.maxSeqLen, seed);

    auto lia = baselines::liaEngine(sys, m);
    auto ipex = baselines::ipexEngine(sys, m);
    baselines::FlexGenModel flexgen(sys, m);

    SampleStats lia_lat, ipex_lat, fg_lat;
    int cpu_policies = 0;
    for (std::size_t i = 0; i < requests; ++i) {
        const auto req = gen.next();
        const Scenario sc{1, req.lIn, req.lOut};
        const auto plan = lia.estimate(sc);
        lia_lat.add(plan.latency());
        ipex_lat.add(ipex.estimate(sc).latency());
        fg_lat.add(flexgen.estimate(sc).latency());
        cpu_policies +=
            plan.decodePolicy == core::Policy::fullCpu() ? 1 : 0;
    }

    TextTable table = serve::latencyTable("framework");
    serve::addLatencyRow(table, "LIA", lia_lat, lia_lat.mean());
    serve::addLatencyRow(table, "IPEX", ipex_lat, lia_lat.mean());
    serve::addLatencyRow(table, "FlexGen", fg_lat, lia_lat.mean());
    table.print(std::cout);

    std::cout << "\nLIA chose the full-CPU decode policy on "
              << cpu_policies << "/" << requests
              << " requests (B=1 sits left of the Fig. 9 decode "
                 "crossover);\nprefill moves to the GPU once "
                 "L_in crosses the compute-intensity boundary.\n";

    // --- Cross-check: M/G/1 queue vs serving engine at B = 1 --------
    //
    // Same seed => same Poisson arrival sequence and trace shapes.
    // The legacy queue serves whole requests (engine.estimate); the
    // serving engine prices prefill + per-token decode iterations.
    // At batch 1 the two must agree closely on the response-time
    // distribution.
    const double rate = 1.5 / 60.0;  // 1.5 arrivals/min

    sim::ServingConfig legacy_cfg;
    legacy_cfg.arrivalRatePerSecond = rate;
    legacy_cfg.requests = requests;
    legacy_cfg.trace = trace::TraceKind::Code;
    legacy_cfg.maxContext = m.maxSeqLen;
    legacy_cfg.seed = seed;
    const auto legacy = sim::simulateServing(
        legacy_cfg, [&lia](const trace::Request &r) {
            return lia.estimate(Scenario{1, r.lIn, r.lOut}).latency();
        });

    obs::ChromeTraceWriter trace;
    serve::Config serve_cfg;
    serve_cfg.arrivalRatePerSecond = rate;
    serve_cfg.requests = requests;
    serve_cfg.trace = trace::TraceKind::Code;
    serve_cfg.maxContext = m.maxSeqLen;
    serve_cfg.seed = seed;
    serve_cfg.policy = serve::SchedulerPolicy::Continuous;
    serve_cfg.maxBatch = 1;
    serve_cfg.cxlSpill = false;
    if (!trace_out.empty())
        serve_cfg.sink = &trace;
    serve::ServingEngine engine(sys, m, serve_cfg);
    const auto modern = engine.run();

    std::cout << "\nSanity cross-check at B=1, "
              << fmtDouble(rate * 60.0, 1)
              << " arrivals/min (identical arrival sequence):\n";
    TextTable check({"serving model", "util", "mean resp", "p50 resp",
                     "p95 resp"});
    check.addRow({"M/G/1 queue (legacy)",
                  fmtPercent(legacy.utilisation),
                  fmtSeconds(legacy.responseTime.mean()),
                  fmtSeconds(legacy.responseTime.p50()),
                  fmtSeconds(legacy.responseTime.p95())});
    check.addRow({"serve engine, maxBatch=1",
                  fmtPercent(modern.metrics.utilisation()),
                  fmtSeconds(modern.metrics.responseTime.mean()),
                  fmtSeconds(modern.metrics.responseTime.p50()),
                  fmtSeconds(modern.metrics.responseTime.p95())});
    check.print(std::cout);
    std::cout << "\nThe two agree to within the iteration-pricing "
                 "bucket granularity — the\ncontinuous-batching "
                 "engine degenerates to the M/G/1 queue at "
                 "batch 1.\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "\nWrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << " (open in ui.perfetto.dev)\n";
        else {
            std::cerr << "\nFailed to write trace to " << trace_out
                      << "\n";
            return EXIT_FAILURE;
        }
    }
    if (!metrics_out.empty()) {
        if (serve::writePrometheusFile(metrics_out, modern.metrics))
            std::cout << "Wrote Prometheus metrics to " << metrics_out
                      << "\n";
        else {
            std::cerr << "Failed to write metrics to " << metrics_out
                      << "\n";
            return EXIT_FAILURE;
        }
    }
    return EXIT_SUCCESS;
}
