/**
 * @file
 * Regenerates Table 5: runtime breakdown (CPU compute, GPU compute,
 * communication) of LIA, IPEX, and FlexGen during OPT-30B inference
 * at L_in = 256, L_out = 32 on SPR-A100, with overlap disabled as in
 * the paper's measurement.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "core/engine.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

core::Breakdown
liaBreakdown(const hw::SystemConfig &sys, const model::ModelConfig &m,
             const Scenario &sc)
{
    // Overlap off isolates the raw component times.
    auto engine = liaEngineAblated(sys, m, true, false, true);
    return engine.estimate(sc).breakdown;
}

core::Breakdown
flexgenBreakdown(const hw::SystemConfig &sys,
                 const model::ModelConfig &m, const Scenario &sc)
{
    core::EngineConfig cfg;
    cfg.optimizePolicies = false;
    cfg.forcedPrefillPolicy = core::Policy::fullGpu();
    cfg.forcedDecodePolicy = core::Policy::attentionOnCpu();
    cfg.cacheGranularity =
        core::CacheGranularity::SublayerAcrossLayers;
    cfg.costOptions.overlap = false;
    return core::EngineModel(sys, m, cfg).estimate(sc).breakdown;
}

} // namespace

int
main()
{
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();

    std::cout << "Table 5: runtime breakdown (overlap disabled), "
              << m.name << ", L_in=256, L_out=32, " << sys.name
              << "\n\n";

    TextTable table({"B", "LIA cpu", "LIA gpu", "LIA com.",
                     "IPEX cpu", "FG cpu", "FG gpu", "FG com."});
    for (std::int64_t batch : {1, 64, 900}) {
        const Scenario sc{batch, 256, 32};
        const auto lia = liaBreakdown(sys, m, sc);
        const auto ipex =
            ipexEngine(sys, m).estimate(sc).breakdown;
        const auto fg = flexgenBreakdown(sys, m, sc);
        table.addRow({std::to_string(batch),
                      fmtDouble(lia.cpuTime, 1),
                      fmtDouble(lia.gpuTime, 1),
                      fmtDouble(lia.comTime, 1),
                      fmtDouble(ipex.cpuTime, 1),
                      fmtDouble(fg.cpuTime, 1),
                      fmtDouble(fg.gpuTime, 1),
                      fmtDouble(fg.comTime, 1)});
    }
    table.print(std::cout);

    std::cout << "\nPaper rows (seconds):\n"
                 "  B=1:   LIA 3.8/1.2/0.1,   IPEX 10.2,   FlexGen "
                 "0.05/1.3/31.3\n"
                 "  B=64:  LIA 16.9/7.7/3.9,  IPEX 75.7,   FlexGen "
                 "20.9/9.8/86.0\n"
                 "  B=900: LIA 169/111/119,   IPEX 1216,   FlexGen "
                 "505/98.7/129\n";
    return 0;
}
