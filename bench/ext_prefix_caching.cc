/**
 * @file
 * Extension: cross-request prefix caching — hit rate x DDR budget.
 *
 * Serves one fixed Zipfian prompt-sharing stream (trace/sharing.hh)
 * twice per point on the tiny differential-test model: caching off,
 * then caching on, at the identical DDR KV budget. The sharing axis
 * sweeps pool count/skew (more concentrated pools -> higher hit
 * rate); the budget axis squeezes the cache against live KV so
 * LRU + price-aware eviction and CXL demotion engage. HARD-ASSERTS
 * the acceptance bar: wherever the warm run's hit rate reaches 0.7,
 * its p95 TTFT must beat the caching-off run at the same budget.
 *
 * One runtime-backed cell re-runs the sharpest point with a
 * serve::RuntimeBackend executing every plan: each hit must attach
 * real cached KV blocks and pass FNV-1a fingerprint verification
 * (the backend aborts on a digest mismatch, and the cell asserts
 * attaches == verified == hits).
 *
 * Emits BENCH_prefix_caching.json with deterministic number
 * formatting (obs::jsonNumber) and no wall-clock values: repeated
 * runs produce byte-identical artifacts. `--requests N` /
 * `--rate-per-min R` shrink the stream for CI.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "core/engine.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/sink.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"

namespace {

using namespace lia;

/** One sharing regime on the sweep's hit-rate axis. */
struct Sharing
{
    std::string label;
    std::int64_t pools;
    double exponent;
};

/** One (sharing, budget) cell: cold vs warm at equal DDR budget. */
struct Point
{
    std::string sharing;
    double kvCapBytes = 0;
    serve::Result cold;
    serve::Result warm;

    double hitRate() const { return warm.metrics.prefixHitRate(); }
    double p95Reduction() const
    {
        const double coldP95 = cold.metrics.ttft.p95();
        return coldP95 > 0
                   ? 1.0 - warm.metrics.ttft.p95() / coldP95
                   : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t requests = static_cast<std::size_t>(
        args.getInt("requests", 96));
    const double rate_scale = args.getDouble("rate-per-min", 0.0);

    // The differential-test model: one KV token is 256 bytes, so KB
    // budgets force real cache-vs-live-KV competition.
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::tinyOpt(32, 2, 2, 256, 101);

    core::EngineConfig engineCfg;
    engineCfg.costOptions.executionAwareObjective = true;
    engineCfg.autoMemoryPolicy = true;
    core::EngineModel engine(sys, m, engineCfg);
    auto costs =
        std::make_shared<const serve::IterationCostCache>(engine, 32);
    const double step = costs->time(model::Stage::Decode, 4, 64);

    auto configAt = [&](const Sharing &sharing, double cap,
                        bool caching) {
        serve::Config cfg;
        cfg.requests = requests;
        cfg.seed = 7;
        cfg.trace = trace::TraceKind::Code;
        cfg.maxContext = 160;
        cfg.maxBatch = 4;
        cfg.policy = serve::SchedulerPolicy::Continuous;
        cfg.prefillChunkTokens = 32;
        cfg.kvBudgetCapBytes = cap;
        // The workload (pool draws, shapes, shared lengths) depends
        // only on the sharing knobs, never on `enabled`: cold and
        // warm serve bit-identical request streams.
        cfg.prefix.enabled = caching;
        cfg.prefix.sharingPools = sharing.pools;
        cfg.prefix.sharingExponent = sharing.exponent;
        cfg.prefix.sharedFraction = 0.5;
        cfg.prefix.blockTokens = 16;
        cfg.arrivalRatePerSecond =
            rate_scale > 0 ? rate_scale / 60.0 : 1.0 / (20.0 * step);
        return cfg;
    };
    auto runPoint = [&](const serve::Config &cfg,
                        serve::ExecutionBackend *backend) {
        serve::ServingEngine serving(sys, m, cfg, costs);
        return backend ? serving.run(backend) : serving.run();
    };

    std::cout << "Prefix caching: " << m.name << " on " << sys.name
              << ", " << requests
              << "-request Zipfian prompt-sharing streams\n"
              << "Each cell: caching off vs on at the identical DDR "
                 "KV budget\n\n";

    const std::vector<Sharing> regimes = {
        {"1 pool", 1, 1.0},
        {"2 pools z1.0", 2, 1.0},
        {"4 pools z1.0", 4, 1.0},
        {"8 pools z0.8", 8, 0.8},
    };
    const std::vector<double> caps = {24576, 49152, 98304};

    TextTable table({"sharing", "kv cap", "hit rate", "hit tok",
                     "evict tok", "demote tok", "p95 TTFT off",
                     "p95 TTFT on", "p95 gain"});
    std::vector<Point> points;
    std::size_t cells_at_bar = 0;
    for (const Sharing &sharing : regimes) {
        for (double cap : caps) {
            Point p;
            p.sharing = sharing.label;
            p.kvCapBytes = cap;
            p.cold = runPoint(configAt(sharing, cap, false), nullptr);
            p.warm = runPoint(configAt(sharing, cap, true), nullptr);

            // Equal budgets, equal workloads: caching may only move
            // timing, never the token account.
            LIA_ASSERT(p.warm.kvBudgetBytes == p.cold.kvBudgetBytes,
                       "budget drifted between cold and warm runs");
            LIA_ASSERT(p.warm.metrics.tokensGenerated ==
                           p.cold.metrics.tokensGenerated,
                       "caching changed the generated token count");
            LIA_ASSERT(p.cold.metrics.prefixLookups == 0,
                       "caching-off run touched the cache");

            // The acceptance bar: a hit rate at/above 0.7 must buy a
            // p95 TTFT reduction against caching-off at this budget.
            if (p.hitRate() >= 0.7)
                ++cells_at_bar;

            const auto &mx = p.warm.metrics;
            table.addRow({sharing.label, fmtBytes(cap),
                          fmtPercent(p.hitRate()),
                          std::to_string(mx.prefixHitTokens),
                          std::to_string(mx.prefixEvictedTokens),
                          std::to_string(mx.prefixDemotedTokens),
                          fmtSeconds(p.cold.metrics.ttft.p95()),
                          fmtSeconds(mx.ttft.p95()),
                          fmtPercent(p.p95Reduction())});
            points.push_back(std::move(p));
        }
    }
    table.print(std::cout);
    LIA_ASSERT(cells_at_bar > 0,
               "no sweep cell reached the 0.7 hit-rate bar");
    for (const Point &p : points) {
        if (p.hitRate() < 0.7)
            continue;
        LIA_ASSERT(p.warm.metrics.ttft.p95() <
                       p.cold.metrics.ttft.p95(),
                   "no p95 TTFT gain at hit rate ", p.hitRate(),
                   " (", p.sharing, ", cap ", p.kvCapBytes, ")");
    }
    std::cout << "\n" << cells_at_bar
              << " cells at/above the 0.7 hit-rate bar; every one "
                 "beat caching-off p95 TTFT (asserted)\n";

    // --- Runtime-backed cell: hits attach real, verified KV ---------
    const serve::Config backedCfg =
        configAt(regimes.front(), caps[1], true);
    serve::RuntimeBackend backend(sys, m, backedCfg);
    const serve::Result backed = runPoint(backedCfg, &backend);
    const auto &counters = backend.counters();
    LIA_ASSERT(backed.metrics.prefixHits > 0,
               "backed cell never hit the cache");
    LIA_ASSERT(counters.prefixAttaches == backed.metrics.prefixHits,
               "a hit was priced but never attached");
    LIA_ASSERT(counters.prefixHitsVerified ==
                   backed.metrics.prefixHits,
               "an attached hit skipped fingerprint verification");
    LIA_ASSERT(static_cast<std::int64_t>(counters.prefixAttachTokens) ==
                   backed.metrics.prefixHitTokens,
               "attached tokens diverged from priced hit tokens");
    std::cout << "\nRuntime-backed cell (" << regimes.front().label
              << ", " << fmtBytes(caps[1]) << "): "
              << backed.metrics.prefixHits
              << " hits, every one attached cached KV and passed "
                 "FNV-1a verification (asserted)\n";

    std::cout << "\nShape to expect: hit rate climbs as pools "
                 "concentrate; wherever it\nclears 0.7 the warm p95 "
                 "TTFT beats caching-off at the same budget.\nTight "
                 "budgets evict or demote cold prefixes (CXL pays "
                 "the re-read);\nroomy budgets keep the whole tree "
                 "resident in DDR.\n";

    // --- Machine-readable artifact ----------------------------------
    using obs::jsonNumber;
    std::ostringstream json;
    json << "{\n  \"bench\": \"prefix_caching\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"requests\": " << requests << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        json << (i ? ",\n" : "") << "    {\"sharing\": \""
             << p.sharing
             << "\", \"kv_cap_bytes\": " << jsonNumber(p.kvCapBytes)
             << ", \"hit_rate\": " << jsonNumber(p.hitRate())
             << ", \"p95_ttft_off\": "
             << jsonNumber(p.cold.metrics.ttft.p95())
             << ", \"p95_ttft_on\": "
             << jsonNumber(p.warm.metrics.ttft.p95())
             << ", \"p95_reduction\": "
             << jsonNumber(p.p95Reduction())
             << ", \"cache_bytes_at_drain\": "
             << jsonNumber(p.warm.prefixCacheBytesAtDrain)
             << ", \"metrics_off\": " << p.cold.metrics.toJson()
             << ", \"metrics_on\": " << p.warm.metrics.toJson()
             << "}";
    }
    json << "\n  ],\n  \"backed_cell\": {\"hits\": "
         << backed.metrics.prefixHits
         << ", \"attaches\": " << counters.prefixAttaches
         << ", \"verified\": " << counters.prefixHitsVerified
         << ", \"attach_tokens\": " << counters.prefixAttachTokens
         << ", \"inserts\": " << counters.prefixInserts
         << ", \"splits\": " << counters.prefixSplits
         << ", \"evictions\": " << counters.prefixEvictions
         << ", \"demotions\": " << counters.prefixDemotions
         << ", \"metrics\": " << backed.metrics.toJson() << "}\n}\n";

    const std::string path = "BENCH_prefix_caching.json";
    std::ofstream file(path);
    file << json.str();
    if (!file) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << path << "\n";
    return 0;
}
