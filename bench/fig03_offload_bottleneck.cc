/**
 * @file
 * Regenerates Figure 3: latency of the OPT-175B prefill and decoding
 * stages under pure data offloading (FlexGen-style memory offloading)
 * on SPR-A100, broken into parameter / KV-cache / activation transfer
 * components, with the transfer volume per stage.
 *
 * B = 1 keeps KV and activations in GPU memory; B = 32 must offload
 * them to host memory (they no longer fit), matching §3.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/cost_model.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using core::CostModel;
    using core::CostModelOptions;
    using core::Policy;
    using model::Stage;
    using model::Workload;

    const auto sys = hw::sprA100();
    const auto m = model::opt175b();

    std::cout << "Figure 3: data-offloading bottleneck, " << m.name
              << " on " << sys.name << "\n\n";

    TextTable table({"B", "L", "stage", "param xfer", "kv xfer",
                     "act xfer", "compute", "xfer share",
                     "xfer bytes/layer"});

    for (std::int64_t batch : {1, 32}) {
        CostModelOptions opts;
        opts.overlap = false;  // expose the raw transfer components
        opts.kvOnGpu = batch == 1;
        CostModel cm(sys, m, opts);
        for (std::int64_t length : {64, 128, 256, 512, 1024}) {
            for (auto stage : {Stage::Prefill, Stage::Decode}) {
                Workload w{stage, batch, length};
                const auto t = cm.layerTiming(w, Policy::fullGpu());
                const double layers =
                    static_cast<double>(m.numLayers);
                const double link = sys.hostLink.bandwidth;
                const double param_t =
                    layers * t.paramPcieBytes / link;
                const double kv_t = layers * t.kvPcieBytes / link;
                const double act_t = layers * t.actPcieBytes / link;
                const double comp =
                    layers * (t.cpuTime + t.gpuTime);
                const double xfer_share =
                    (param_t + kv_t + act_t) /
                    (param_t + kv_t + act_t + comp);
                table.addRow({std::to_string(batch),
                              std::to_string(length),
                              model::toString(stage),
                              fmtSeconds(param_t), fmtSeconds(kv_t),
                              fmtSeconds(act_t), fmtSeconds(comp),
                              fmtPercent(xfer_share),
                              fmtBytes(t.pcieBytes())});
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper: transfers contribute >98% of latency at "
                 "B=1 short L,\n~87% for prefill at long L, and stay "
                 ">80% of decode at B=32.\n";
    return 0;
}
