/**
 * @file
 * Extension: static vs continuous vs SLO-aware serving across
 * arrival rates (online mixed trace).
 *
 * The paper's online scenario (§1, §7.2) fixes B = 1; real endpoints
 * run iteration-level continuous batching instead. This harness
 * offers the same Poisson mixed-trace stream to the three serve::
 * scheduler policies on SPR-A100+CXL / OPT-30B and sweeps the
 * arrival rate, reporting the serving percentiles and goodput. Two
 * headline numbers close the table: the sustainable arrival rate of
 * continuous vs static batching at equal p95 response time, and the
 * p95 TTFT of the SLO-aware policy at rates where unconstrained
 * continuous batching violates the TTFT target.
 *
 * Emits the whole sweep (serving metrics via Metrics::toJson) to
 * BENCH_serving_continuous_batching.json, along with the tail-latency
 * blame report of the SLO-aware run at the highest swept rate (a
 * TimelineRecorder + SloMonitor ride that run; DESIGN.md §13).
 * `--trace-out trace.json` additionally records that run as a
 * Chrome-trace / Perfetto timeline; `--metrics-out metrics.prom`
 * writes its Prometheus text exposition.
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/timeline.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/prom.hh"
#include "serve/slo_monitor.hh"

namespace {

constexpr double kRespSlo = 120.0;  //!< p95 response bound, seconds
constexpr double kTtftSlo = 20.0;   //!< TTFT target, seconds
constexpr double kTbtSlo = 0.5;     //!< time-between-tokens target

} // namespace

int
main(int argc, char **argv)
{
    using namespace lia;
    using serve::SchedulerPolicy;

    const ArgParser args(argc, argv);
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");
    obs::ChromeTraceWriter trace;

    // Tail-latency attribution of the overloaded SLO-aware run: the
    // recorder rebuilds every request's phase timeline, the monitor
    // tracks burn rates on the simulated clock. Both are passive —
    // the instrumented run stays bit-identical.
    obs::TimelineRecorder recorder;
    obs::TeeSink tee({&trace, &recorder});
    serve::SloMonitorConfig monitor_cfg;
    monitor_cfg.targets = serve::SloTargets{kTtftSlo, kTbtSlo, 0.0};
    serve::SloMonitor monitor(monitor_cfg);

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    const std::size_t requests = 250;

    std::cout << "Serving-policy sweep: " << m.name << " on "
              << sys.name << ", " << requests
              << " mixed-trace requests per point\n"
              << "SLO targets: TTFT " << fmtSeconds(kTtftSlo)
              << ", TBT " << fmtSeconds(kTbtSlo) << ", p95 response "
              << fmtSeconds(kRespSlo) << "\n\n";

    const std::vector<double> rates_per_min = {1, 2,  3,  4,  6,
                                               8, 10, 14, 18, 24};
    const std::vector<SchedulerPolicy> policies = {
        SchedulerPolicy::StaticFifo, SchedulerPolicy::Continuous,
        SchedulerPolicy::SloAware};

    TextTable table({"rate/min", "policy", "done", "shed", "util",
                     "p95 TTFT", "p95 TBT", "p95 resp", "tok/s",
                     "goodput/min"});
    std::map<SchedulerPolicy, std::map<double, serve::Result>> runs;
    for (double rate : rates_per_min) {
        for (SchedulerPolicy policy : policies) {
            serve::Config cfg;
            cfg.arrivalRatePerSecond = rate / 60.0;
            cfg.requests = requests;
            cfg.seed = 1;
            cfg.policy = policy;
            cfg.maxBatch = 64;
            cfg.slo.ttft = kTtftSlo;
            cfg.slo.tbt = kTbtSlo;
            // The instrumented run: SLO-aware at the deepest
            // overload, where admission, shedding, and queueing all
            // show up. The recorder + monitor always ride it (the
            // blame report is part of the artifact); the Chrome trace
            // only when requested.
            if (policy == SchedulerPolicy::SloAware &&
                rate == rates_per_min.back()) {
                cfg.sink = trace_out.empty()
                               ? static_cast<obs::EventSink *>(
                                     &recorder)
                               : &tee;
                cfg.sloMonitor = &monitor;
            }
            serve::ServingEngine engine(sys, m, cfg);
            auto result = engine.run();
            const auto &mx = result.metrics;
            table.addRow({fmtDouble(rate, 0),
                          serve::toString(policy),
                          std::to_string(mx.completed),
                          std::to_string(mx.rejected()),
                          fmtPercent(mx.utilisation()),
                          fmtSeconds(mx.ttft.p95()),
                          fmtSeconds(mx.tbt.p95()),
                          fmtSeconds(mx.responseTime.p95()),
                          fmtDouble(mx.tokensPerSecond(), 1),
                          fmtDouble(result.goodputPerSecond(cfg.slo) *
                                        60.0,
                                    1)});
            runs[policy].emplace(rate, std::move(result));
        }
        table.addSeparator();
    }
    table.print(std::cout);

    // --- Sustainable arrival rate at equal p95 response time --------
    auto sustainable = [&](SchedulerPolicy policy) {
        double best = 0;
        for (const auto &[rate, result] : runs[policy]) {
            if (result.metrics.responseTime.p95() <= kRespSlo)
                best = std::max(best, rate);
        }
        return best;
    };
    const double static_rate = sustainable(SchedulerPolicy::StaticFifo);
    const double cont_rate = sustainable(SchedulerPolicy::Continuous);
    std::cout << "\nSustainable arrival rate (p95 response <= "
              << fmtSeconds(kRespSlo) << "):\n"
              << "  static FIFO batching : "
              << fmtDouble(static_rate, 0) << "/min\n"
              << "  continuous batching  : " << fmtDouble(cont_rate, 0)
              << "/min  ("
              << fmtRatio(static_rate > 0 ? cont_rate / static_rate
                                          : 0)
              << " static)\n";

    // --- SLO-aware TTFT protection ----------------------------------
    std::cout << "\np95 TTFT where unconstrained continuous batching "
                 "violates the "
              << fmtSeconds(kTtftSlo) << " target:\n";
    bool any = false;
    for (double rate : rates_per_min) {
        const auto &cont = runs[SchedulerPolicy::Continuous].at(rate);
        const auto &slo = runs[SchedulerPolicy::SloAware].at(rate);
        if (cont.metrics.ttft.p95() <= kTtftSlo)
            continue;
        any = true;
        std::cout << "  " << fmtDouble(rate, 0)
                  << "/min: continuous "
                  << fmtSeconds(cont.metrics.ttft.p95())
                  << " -> slo-aware "
                  << fmtSeconds(slo.metrics.ttft.p95())
                  << (slo.metrics.ttft.p95() <= kTtftSlo
                          ? "  (within target)"
                          : "  (VIOLATED)")
                  << "\n";
    }
    if (!any)
        std::cout << "  (no violation in the swept range)\n";

    // --- Tail-latency attribution (instrumented run) ----------------
    //
    // Acceptance gate: every finished request's phase segments must
    // exactly partition [arrive, finish] (identical boundary doubles)
    // and their durations must sum to the measured e2e latency up to
    // fp rounding.
    for (const auto *rec : recorder.finished()) {
        LIA_ASSERT(rec->contiguous(),
                   "request timeline has gaps (track tid ",
                   rec->track.tid, ")");
        LIA_ASSERT(std::abs(rec->segmentSeconds() - rec->e2e()) <=
                       1e-9 * std::max(1.0, rec->e2e()),
                   "phase sums diverge from e2e on tid ",
                   rec->track.tid);
    }
    const double top_rate = rates_per_min.back();
    const auto &instrumented =
        runs[SchedulerPolicy::SloAware].at(top_rate);
    std::cout << "\nBlame (SLO-aware at " << fmtDouble(top_rate, 0)
              << "/min): " << recorder.finishedCount() << "/"
              << recorder.arrived()
              << " requests finished; SLO pressure at drain "
              << fmtDouble(monitor.pressure(
                               instrumented.metrics.makespan),
                           2)
              << "\n";

    std::cout << "\nLatency distributions at " << fmtDouble(top_rate, 0)
              << "/min:\n";
    TextTable lat = serve::latencyTable("policy / signal");
    for (SchedulerPolicy policy : policies) {
        const auto &mx = runs[policy].at(top_rate).metrics;
        serve::addLatencyRow(lat,
                             std::string(serve::toString(policy)) +
                                 " TTFT",
                             mx.ttft);
        serve::addLatencyRow(lat,
                             std::string(serve::toString(policy)) +
                                 " response",
                             mx.responseTime);
    }
    lat.print(std::cout);

    std::cout << "\nShape to expect: continuous batching sustains "
                 ">= 2x the static arrival rate\nat equal p95 "
                 "response; past its own saturation its TTFT "
                 "explodes, while the\nSLO-aware scheduler sheds "
                 "late requests and keeps p95 TTFT inside the "
                 "target.\n";

    // Machine-readable sweep: full metrics via Metrics::toJson, no
    // hand-rolled per-field duplication.
    std::ostringstream json;
    json << "{\n  \"bench\": \"serving_continuous_batching\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"points\": [\n";
    bool first = true;
    for (double rate : rates_per_min) {
        for (SchedulerPolicy policy : policies) {
            const auto &result = runs[policy].at(rate);
            json << (first ? "" : ",\n")
                 << "    {\"rate_per_min\": " << rate
                 << ", \"policy\": \"" << serve::toString(policy)
                 << "\", \"goodput_per_min\": "
                 << result.goodputPerSecond(
                        serve::SloTargets{kTtftSlo, kTbtSlo, 0.0}) *
                        60.0
                 << ", \"metrics\": " << result.metrics.toJson()
                 << "}";
            first = false;
        }
    }
    json << "\n  ],\n  \"blame\": " << recorder.blameReport()
         << ",\n  \"slo\": "
         << monitor.toJson(instrumented.metrics.makespan) << "\n}\n";
    const std::string path =
        "BENCH_serving_continuous_batching.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "wrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << "\n";
        else
            std::cerr << "failed to write trace to " << trace_out
                      << "\n";
    }
    if (!metrics_out.empty()) {
        if (serve::writePrometheusFile(metrics_out,
                                       instrumented.metrics, &monitor,
                                       instrumented.metrics.makespan))
            std::cout << "wrote Prometheus metrics to " << metrics_out
                      << "\n";
        else
            std::cerr << "failed to write metrics to " << metrics_out
                      << "\n";
    }
    return 0;
}
