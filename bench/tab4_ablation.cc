/**
 * @file
 * Regenerates Table 4: ablation of LIA's optimization techniques and
 * compute-offloading policy — OPT-30B latency at L_in = 256,
 * L_out = 32 on SPR-A100 for B = 1, 64, 900.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto sys = hw::sprA100();
    const auto m = model::opt30b();

    std::cout << "Table 4: ablation study, " << m.name
              << ", L_in=256, L_out=32, " << sys.name << "\n\n";

    struct Row
    {
        const char *name;
        bool opt1;
        bool opt2;
        bool lia_policy;
    };
    const Row rows[] = {
        {"All optimizations", true, true, true},
        {"No Optimization-1", false, true, true},
        {"No Optimization-2", true, false, true},
        {"w/ FlexGen's policy", true, true, false},
    };

    TextTable table({"ablation setting", "B=1 (s)", "B=64 (s)",
                     "B=900 (s)"});
    for (const auto &row : rows) {
        auto engine =
            liaEngineAblated(sys, m, row.opt1, row.opt2,
                             row.lia_policy);
        std::vector<std::string> cells{row.name};
        for (std::int64_t batch : {1, 64, 900}) {
            const Scenario sc{batch, 256, 32};
            cells.push_back(fmtDouble(engine.estimate(sc).latency(),
                                      2));
        }
        table.addRow(cells);
    }
    table.print(std::cout);

    std::cout << "\nPaper rows: 5.05/24.0/291; no-Opt-1 "
                 "10.09/26.97/297 (hurts small B);\nno-Opt-2 "
                 "5.05/26.96/444 (hurts large B); FlexGen policy "
                 "31.1/84.8/291\n(same policy as LIA at B=900).\n";
    return 0;
}
