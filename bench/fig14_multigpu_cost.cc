/**
 * @file
 * Regenerates Figure 14: per-GPU throughput and cost per million
 * tokens of LIA on a GNR-A100 system versus 8-way tensor-parallel
 * inference on a DGX-A100, for OPT-175B at B = 1, 64, and 900
 * (OOM on the DGX).
 */

#include <iostream>

#include "baselines/multigpu.hh"
#include "baselines/presets.hh"
#include "base/table.hh"
#include "energy/economics.hh"
#include "energy/power.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto gnr = hw::gnrA100();
    const auto dgx = hw::dgxA100();
    const auto m = model::opt175b();

    energy::EconomicsModel econ;
    energy::PowerModel gnr_power(gnr);
    energy::PowerModel dgx_power(dgx);
    TensorParallelModel tp(dgx, m);

    std::cout << "Figure 14: LIA (GNR-A100) vs 8-way TP (DGX-A100), "
              << m.name << "\n\n";

    TextTable table({"B", "LIA tok/s/GPU", "DGX tok/s/GPU",
                     "LIA $/Mtok", "DGX $/Mtok"});
    for (std::int64_t batch : {1, 64, 900}) {
        const Scenario sc{batch, 512, 32};
        const auto lia_est = liaEngine(gnr, m).estimate(sc);
        const auto dgx_est = tp.estimate(sc);

        const double lia_tps = lia_est.throughput(sc);
        const double lia_cost = econ.costPerMillionTokens(
            gnr, lia_tps, gnr_power.averagePower(lia_est));

        std::string dgx_tps = "OOM";
        std::string dgx_cost = "OOM";
        if (dgx_est.feasible) {
            const double tps = dgx_est.throughput(sc);
            dgx_tps = fmtDouble(tps / 8.0, 2);
            dgx_cost = fmtDouble(
                econ.costPerMillionTokens(
                    dgx, tps, dgx_power.averagePower(dgx_est)),
                2);
        }
        table.addRow({std::to_string(batch), fmtDouble(lia_tps, 2),
                      dgx_tps, fmtDouble(lia_cost, 2), dgx_cost});
    }
    table.print(std::cout);

    std::cout << "\nSystem cost: $" << gnr.systemCost << " (GNR-A100)"
              << " vs $" << dgx.systemCost << " (DGX-A100) — LIA "
                 "needs ~10% of the hardware outlay.\n";
    std::cout << "\nPaper shape: the DGX per-GPU lead exists only in "
                 "the mid-batch regime\n(B=64, ~30%); B=900 is OOM on "
                 "the DGX while LIA keeps scaling. Known\ndivergence: "
                 "our TP model is more optimistic than Vidur at B=1 "
                 "(see\nEXPERIMENTS.md), where the paper reports LIA "
                 "1.4-1.8x ahead per GPU.\n";
    return 0;
}
