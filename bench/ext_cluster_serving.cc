/**
 * @file
 * Extension: cluster serving — aggregate goodput vs replica count vs
 * tensor-parallel shard width at a fixed GPU budget, plus an
 * autoscaler drain scenario.
 *
 * One shared Poisson mixed-trace stream is served by a
 * cluster::ClusterRouter fleet of serve:: engines on a single DES
 * clock. Three sweeps:
 *
 *  - replica scaling: 1 / 2 / 4 one-GPU replicas against the same
 *    overload — aggregate goodput must grow with the fleet;
 *  - fixed budget: 8 GPUs spent as 8x(W=1), 4x(W=2), 2x(W=4),
 *    1x(W=8) NVLink shard groups, every iteration priced by the §8
 *    multi-GPU engine incl. the ring all-reduce surcharge — the
 *    data-parallel vs tensor-parallel tradeoff at constant hardware;
 *  - routing policies compared on one 4-replica fleet;
 *
 * and one autoscaler run (1 -> up to 4 replicas, hysteresis +
 * cooldown, drain-before-decommission) that HARD-ASSERTS no routed
 * request was dropped or stranded.
 *
 * Emits everything to BENCH_cluster_serving.json with deterministic
 * number formatting (obs::jsonNumber): repeated runs produce
 * byte-identical artifacts, including the cluster-wide blame report
 * — a TimelineRecorder rides the autoscaler run as the cluster sink,
 * so requests from every replica (distinct pids) aggregate into one
 * p99.9 attribution, and a fleet-shared SloMonitor tracks burn rates
 * on the shared clock. `--trace-out trace.json` additionally records
 * the autoscaler run as a per-replica Chrome trace; `--series-out
 * series.json` writes the fleet-merged counter series
 * (ClusterResult::mergedSeries); `--requests N` / `--rate-per-min R`
 * shrink the stream for CI.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "cluster/router.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/sink.hh"
#include "obs/timeline.hh"
#include "serve/metrics.hh"
#include "serve/slo_monitor.hh"

namespace {

constexpr double kTtftSlo = 20.0;  //!< TTFT target, seconds
constexpr double kTbtSlo = 0.5;    //!< time-between-tokens target

} // namespace

int
main(int argc, char **argv)
{
    using namespace lia;
    using cluster::ClusterConfig;
    using cluster::ClusterResult;
    using cluster::ClusterRouter;
    using cluster::RoutingPolicy;

    const ArgParser args(argc, argv);
    const std::size_t requests = static_cast<std::size_t>(
        args.getInt("requests", 240));
    const double rate_per_min = args.getDouble("rate-per-min", 24.0);
    const std::string trace_out = args.getString("trace-out");
    const std::string series_out = args.getString("series-out");

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();
    const serve::SloTargets slo{kTtftSlo, kTbtSlo, 0.0};

    auto baseConfig = [&]() {
        ClusterConfig config;
        config.engine.requests = requests;
        config.engine.arrivalRatePerSecond = rate_per_min / 60.0;
        config.engine.seed = 1;
        config.engine.maxBatch = 64;
        config.engine.slo = slo;
        config.sessions = 16;
        return config;
    };
    auto runPoint = [&](const ClusterConfig &config) {
        return ClusterRouter(sys, m, config).run();
    };
    auto addRow = [&](TextTable &table, const std::string &label,
                      const ClusterResult &r) {
        table.addRow({label, std::to_string(r.peakGpus()),
                      std::to_string(r.aggregate.completed),
                      std::to_string(r.aggregate.rejected()),
                      fmtSeconds(r.aggregate.ttft.p95()),
                      fmtSeconds(r.aggregate.responseTime.p95()),
                      fmtDouble(r.goodputPerSecond(slo) * 60.0, 1),
                      fmtPercent(r.sloAttainment(slo))});
    };

    std::cout << "Cluster serving: " << m.name << " replicas on "
              << sys.name << ", one shared " << requests
              << "-request mixed-trace stream at "
              << fmtDouble(rate_per_min, 0) << "/min\n"
              << "SLO targets: TTFT " << fmtSeconds(kTtftSlo)
              << ", TBT " << fmtSeconds(kTbtSlo) << "\n\n";

    // --- Sweep 1: replica scaling at W = 1 --------------------------
    std::cout << "Replica scaling (data parallel, W = 1):\n";
    TextTable scaling({"fleet", "GPUs", "done", "shed", "p95 TTFT",
                       "p95 resp", "goodput/min", "SLO att."});
    const std::vector<std::size_t> fleet_sizes = {1, 2, 4};
    std::vector<ClusterResult> scaling_runs;
    for (std::size_t n : fleet_sizes) {
        ClusterConfig config = baseConfig();
        config.replicas = n;
        ClusterResult r = runPoint(config);
        addRow(scaling, std::to_string(n) + " x W1", r);
        scaling_runs.push_back(std::move(r));
    }
    scaling.print(std::cout);

    // --- Sweep 2: a fixed 8-GPU budget, spent wide or narrow --------
    std::cout << "\nFixed 8-GPU budget (NVLink shard groups, §8 "
                 "all-reduce priced in):\n";
    TextTable budget({"fleet", "GPUs", "done", "shed", "p95 TTFT",
                      "p95 resp", "goodput/min", "SLO att."});
    struct Split
    {
        std::size_t replicas;
        int width;
    };
    const std::vector<Split> splits = {{8, 1}, {4, 2}, {2, 4}, {1, 8}};
    std::vector<ClusterResult> budget_runs;
    for (const Split &split : splits) {
        ClusterConfig config = baseConfig();
        config.replicas = split.replicas;
        config.shardWidth = split.width;
        config.fabric = hw::nvlink3();
        ClusterResult r = runPoint(config);
        LIA_ASSERT(r.peakGpus() == 8, "budget sweep must hold 8 GPUs");
        addRow(budget,
               std::to_string(split.replicas) + " x W" +
                   std::to_string(split.width),
               r);
        budget_runs.push_back(std::move(r));
    }
    budget.print(std::cout);

    // --- Sweep 3: routing policies on one 4-replica fleet -----------
    std::cout << "\nRouting policies (4 x W1):\n";
    TextTable routing({"policy", "GPUs", "done", "shed", "p95 TTFT",
                       "p95 resp", "goodput/min", "SLO att."});
    const std::vector<RoutingPolicy> policies = {
        RoutingPolicy::LeastKvLoaded, RoutingPolicy::SessionAffinity,
        RoutingPolicy::TtftAware};
    std::vector<ClusterResult> policy_runs;
    for (RoutingPolicy policy : policies) {
        ClusterConfig config = baseConfig();
        config.replicas = 4;
        config.routing = policy;
        ClusterResult r = runPoint(config);
        addRow(routing, cluster::toString(policy), r);
        policy_runs.push_back(std::move(r));
    }
    routing.print(std::cout);

    // --- Autoscaler: grow under the backlog, drain after ------------
    //
    // The recorder is the *cluster* sink: replica namespaces emit on
    // distinct pids, so one recorder reconstructs every request of
    // the whole fleet and the blame report is cluster-wide. The
    // monitor is shared by every replica's engine — fleet-level burn
    // rates on the shared clock. Both passive; results bit-identical.
    obs::ChromeTraceWriter trace;
    obs::TimelineRecorder recorder;
    obs::TeeSink tee({&trace, &recorder});
    serve::SloMonitorConfig monitor_cfg;
    monitor_cfg.targets = slo;
    serve::SloMonitor monitor(monitor_cfg);
    ClusterConfig scaled = baseConfig();
    scaled.replicas = 1;
    // A tighter per-replica batch: overload then shows up as a real
    // waiting queue (the autoscaler's scale-up signal) instead of
    // being absorbed into one enormous slow batch.
    scaled.engine.maxBatch = 8;
    scaled.autoscaler.enabled = true;
    scaled.autoscaler.minReplicas = 1;
    scaled.autoscaler.maxReplicas = 4;
    scaled.autoscaler.evaluationPeriod = 30.0;
    scaled.autoscaler.scaleUpQueueDepth = 4.0;
    scaled.autoscaler.hysteresisTicks = 2;
    scaled.autoscaler.cooldown = 60.0;
    scaled.sink = trace_out.empty()
                      ? static_cast<obs::EventSink *>(&recorder)
                      : &tee;
    scaled.engine.sloMonitor = &monitor;
    ClusterResult autoscaled = runPoint(scaled);

    // Acceptance gate, fleet-wide: every finished request's phase
    // segments exactly partition [arrive, finish] and sum to its e2e
    // latency, whichever replica served it.
    for (const auto *rec : recorder.finished()) {
        LIA_ASSERT(rec->contiguous(),
                   "request timeline has gaps (pid ", rec->track.pid,
                   " tid ", rec->track.tid, ")");
        LIA_ASSERT(std::abs(rec->segmentSeconds() - rec->e2e()) <=
                       1e-9 * std::max(1.0, rec->e2e()),
                   "phase sums diverge from e2e on pid ",
                   rec->track.pid, " tid ", rec->track.tid);
    }

    // ClusterRouter::run() already hard-asserts drain-before-
    // decommission internally; re-assert the end-to-end account here
    // so the bench fails loudly if a request was dropped or stranded.
    LIA_ASSERT(autoscaled.requestsRouted == requests,
               "autoscaler run lost arrivals");
    LIA_ASSERT(autoscaled.aggregate.completed +
                       autoscaled.aggregate.rejected() ==
                   requests,
               "autoscaler run dropped or stranded requests");

    std::cout << "\nAutoscaler (1 -> max 4 replicas, "
              << fmtSeconds(scaled.autoscaler.evaluationPeriod)
              << " evaluation period):\n"
              << "  scale-ups " << autoscaled.scaleUps
              << ", scale-downs " << autoscaled.scaleDowns
              << ", peak fleet " << autoscaled.peakReplicas
              << ", final fleet " << autoscaled.finalReplicas << "\n"
              << "  served " << autoscaled.aggregate.completed
              << " + shed " << autoscaled.aggregate.rejected()
              << " of " << requests
              << " routed (0 dropped, 0 stranded — asserted)\n"
              << "  goodput "
              << fmtDouble(autoscaled.goodputPerSecond(slo) * 60.0, 1)
              << "/min at "
              << fmtPercent(autoscaled.sloAttainment(slo))
              << " SLO attainment\n"
              << "  blame: " << recorder.finishedCount() << "/"
              << recorder.arrived()
              << " fleet requests attributed; SLO pressure at drain "
              << fmtDouble(monitor.pressure(autoscaled.makespan), 2)
              << "\n";

    std::cout << "\nFleet latency distributions (autoscaler run):\n";
    TextTable lat = serve::latencyTable("signal");
    serve::addLatencyRow(lat, "TTFT", autoscaled.aggregate.ttft);
    serve::addLatencyRow(lat, "response",
                         autoscaled.aggregate.responseTime);
    lat.print(std::cout);

    std::cout << "\nShape to expect: goodput grows with replica "
                 "count until the stream is\nno longer the "
                 "bottleneck; at a fixed GPU budget, many narrow "
                 "replicas beat\nfew wide shard groups once the "
                 "all-reduce surcharge outweighs the\nper-replica "
                 "speedup; the autoscaler lands between the static "
                 "fleets\nwithout losing a single request.\n";

    // --- Machine-readable artifact ----------------------------------
    using obs::jsonNumber;
    auto pointJson = [&](const ClusterResult &r) {
        std::ostringstream os;
        os << "{\"replicas\": " << r.replicas.size()
           << ", \"shard_width\": " << r.shardWidth
           << ", \"peak_gpus\": " << r.peakGpus()
           << ", \"goodput_per_min\": "
           << jsonNumber(r.goodputPerSecond(slo) * 60.0)
           << ", \"slo_attainment\": "
           << jsonNumber(r.sloAttainment(slo))
           << ", \"affinity_hit_rate\": "
           << jsonNumber(r.sessionAffinityHitRate)
           << ", \"makespan\": " << jsonNumber(r.makespan)
           << ", \"metrics\": " << r.aggregate.toJson() << "}";
        return os.str();
    };

    std::ostringstream json;
    json << "{\n  \"bench\": \"cluster_serving\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"requests\": " << requests << ",\n"
         << "  \"rate_per_min\": " << jsonNumber(rate_per_min)
         << ",\n  \"replica_sweep\": [\n";
    for (std::size_t i = 0; i < scaling_runs.size(); ++i)
        json << (i ? ",\n" : "") << "    "
             << pointJson(scaling_runs[i]);
    json << "\n  ],\n  \"budget_sweep\": [\n";
    for (std::size_t i = 0; i < budget_runs.size(); ++i)
        json << (i ? ",\n" : "") << "    "
             << pointJson(budget_runs[i]);
    json << "\n  ],\n  \"routing_policies\": [\n";
    for (std::size_t i = 0; i < policy_runs.size(); ++i)
        json << (i ? ",\n" : "")
             << "    {\"policy\": \""
             << cluster::toString(policies[i])
             << "\", \"point\": " << pointJson(policy_runs[i]) << "}";
    json << "\n  ],\n  \"autoscaler\": {\"scale_ups\": "
         << autoscaled.scaleUps
         << ", \"scale_downs\": " << autoscaled.scaleDowns
         << ", \"peak_replicas\": " << autoscaled.peakReplicas
         << ", \"final_replicas\": " << autoscaled.finalReplicas
         << ", \"dropped\": 0, \"stranded\": 0, \"point\": "
         << pointJson(autoscaled) << "},\n  \"blame\": "
         << recorder.blameReport() << ",\n  \"slo\": "
         << monitor.toJson(autoscaled.makespan) << "\n}\n";

    const std::string path = "BENCH_cluster_serving.json";
    std::ofstream file(path);
    file << json.str();
    if (!file) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << path << "\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out)) {
            std::cout << "wrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << "\n";
        } else {
            std::cerr << "failed to write trace to " << trace_out
                      << "\n";
            return 1;
        }
    }
    if (!series_out.empty()) {
        if (autoscaled.mergedSeries.writeFile(series_out)) {
            std::cout << "wrote fleet-merged counter series to "
                      << series_out << "\n";
        } else {
            std::cerr << "failed to write series to " << series_out
                      << "\n";
            return 1;
        }
    }
    return 0;
}
