/**
 * @file
 * Extension: kernel-layer throughput — blocked/packed fp32 and int8
 * VNNI-style matmuls vs their retained scalar references, across
 * thread counts, plus a decode-GEMV (m = 1) study of the fused int8
 * dequant-GEMV and the thread pool's low-latency dispatch path.
 *
 * Real measured host performance (not modeled). Three sections:
 *
 *  1. fp32 GEMM sweep: prefill- and decode-shaped GEMMs through the
 *     packed-tile parallel kernel at 1/2/4/8 threads, each verified
 *     bit-identical to scalarMatmul (DESIGN.md §7).
 *  2. int8 GEMM sweep: the same shapes through matmulInt8, verified
 *     bit-identical to scalarMatmulInt8 (the §12 contract — the int8
 *     grid changes numerics vs fp32 by design, but the int8 path
 *     itself is deterministic and reference-pinned).
 *  3. m = 1 decode GEMV: fp32-packed vs fused int8 dequant-GEMV
 *     tokens/s on weight-streaming shapes, with dispatch-latency
 *     stats from the pool's ParallelObserver hook. Hard asserts:
 *     int8 fused >= 1.5x fp32 tokens/s single-thread, and the
 *     low-latency multi-thread path never loses to single-thread.
 *
 * Artifacts: BENCH_kernel_throughput.json holds only deterministic
 * facts (shapes, thread counts, bit-identity, packed byte counts,
 * assert outcomes) and is byte-stable run to run — CI cmp's it.
 * BENCH_kernel_throughput_timing.json holds the wall-clock numbers
 * (GFLOP/s, tokens/s, dispatch latencies) keyed the same way.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/executor.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using Clock = std::chrono::steady_clock;

struct Shape
{
    std::int64_t m, k, n;
    const char *kind;
};

const std::vector<Shape> kShapes = {
    {1, 512, 2048, "decode"},    {8, 512, 2048, "decode batch"},
    {128, 512, 512, "prefill"},  {128, 512, 2048, "prefill ffn"},
    {256, 1024, 1024, "prefill"},
};

/** The m = 1 section's weight-streaming shapes: the big one is the
 *  assert anchor (64 MB of fp32 weights vs 16 MB int8 — decode GEMV
 *  is memory-bound, which is exactly the int8 win). */
const std::vector<Shape> kGemvShapes = {
    {1, 512, 2048, "gemv small"},
    {1, 2048, 8192, "gemv large"},
};

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

/** Bit-for-bit tensor equality. */
bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<std::size_t>(a.numel())) == 0;
}

/** Seconds per call, timed over enough reps to pass @p min_time. */
template <typename Fn>
double
timeIt(const Fn &fn, double min_time = 0.15)
{
    fn();  // warm-up (and first-touch)
    int reps = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    } while (elapsed < min_time);
    return elapsed / reps;
}

/** Dispatch-latency stats through the pool's observer hook: one
 *  onParallelFor per top-level loop, so mean wall time per dispatched
 *  loop is exactly the decode-GEMV dispatch cost under study. */
struct DispatchStats : base::ParallelObserver
{
    std::int64_t count = 0;
    double total = 0, minSec = std::numeric_limits<double>::infinity(),
           maxSec = 0;

    void onParallelFor(double seconds) override
    {
        ++count;
        total += seconds;
        minSec = std::min(minSec, seconds);
        maxSec = std::max(maxSec, seconds);
    }

    double meanUs() const
    {
        return count > 0 ? 1e6 * total / static_cast<double>(count)
                         : 0.0;
    }
};

struct Point
{
    Shape shape{};
    const char *kernel = "";  //!< "fp32_packed" | "int8"
    int threads = 0;          //!< 0 = scalar reference
    double gflops = 0;
    double speedup = 1.0;     //!< vs the matching scalar reference
    bool exact = true;        //!< bit-identical to that reference
};

std::string
pointKey(const Point &p)
{
    std::ostringstream out;
    out << "{\"m\": " << p.shape.m << ", \"k\": " << p.shape.k
        << ", \"n\": " << p.shape.n << ", \"kind\": \"" << p.shape.kind
        << "\", \"kernel\": \"" << p.kernel
        << "\", \"threads\": " << p.threads;
    return out.str();
}

struct GemvPoint
{
    Shape shape{};
    const char *kernel = "";
    int threads = 1;
    double tokensPerS = 0;
    double dispatchMeanUs = 0;  //!< 0 when the pool ran inline
    bool exact = true;
};

} // namespace

int
main()
{
    std::cout << "Kernel throughput: packed/blocked fp32 + int8 "
                 "parallel matmul vs scalar references\n"
              << "(host threads available: "
              << base::ThreadPool::defaultThreadCount() << ")\n\n";

    const KernelOptions scalarOpts{false, nullptr};
    std::vector<Point> points;
    bool all_exact = true;

    // --- Section 1+2: GEMM sweeps, fp32 then int8 -------------------
    TextTable table({"shape", "kind", "config", "GFLOP/s", "speedup",
                     "exact"});
    for (const Shape &s : kShapes) {
        Rng rng(7 + s.m);
        const Tensor a = Tensor::randomNormal({s.m, s.k}, rng, 1.0);
        const Tensor b = Tensor::randomNormal({s.k, s.n}, rng, 1.0);
        const double flops = 2.0 * static_cast<double>(s.m) *
                             static_cast<double>(s.k) *
                             static_cast<double>(s.n);
        const std::string dims = std::to_string(s.m) + "x" +
                                 std::to_string(s.k) + "x" +
                                 std::to_string(s.n);

        const Tensor ref = scalarMatmul(a, b, Tensor(), scalarOpts);
        const double scalar_s = timeIt(
            [&] { scalarMatmul(a, b, Tensor(), scalarOpts); });
        Point base;
        base.shape = s;
        base.kernel = "fp32_packed";
        base.gflops = flops / scalar_s / 1e9;
        points.push_back(base);
        table.addRow({dims, s.kind, "fp32 scalar",
                      fmtDouble(base.gflops, 2), "1.00", "ref"});

        const PackedMatrix packed = packColumns(b);
        for (const int threads : kThreadCounts) {
            base::ThreadPool pool(threads);
            const KernelOptions opts{false, &pool};
            const Tensor out = matmulPacked(a, packed, Tensor(), opts);
            Point p;
            p.shape = s;
            p.kernel = "fp32_packed";
            p.threads = threads;
            p.exact = bitIdentical(out, ref);
            all_exact = all_exact && p.exact;
            const double t = timeIt(
                [&] { matmulPacked(a, packed, Tensor(), opts); });
            p.gflops = flops / t / 1e9;
            p.speedup = scalar_s / t;
            table.addRow({dims, s.kind,
                          "fp32 packed x" + std::to_string(threads),
                          fmtDouble(p.gflops, 2),
                          fmtDouble(p.speedup, 2),
                          p.exact ? "yes" : "NO"});
            points.push_back(p);
        }

        // Int8: same shape against the int8-packed operand, pinned to
        // the retained scalar int8 reference (not to fp32 — the
        // quantization grid changes numerics by design).
        const PackedInt8Matrix packed8 = packColumnsInt8(b);
        const Tensor ref8 =
            scalarMatmulInt8(a, packed8, Tensor(), scalarOpts);
        const double scalar8_s = timeIt(
            [&] { scalarMatmulInt8(a, packed8, Tensor(), scalarOpts); });
        Point base8;
        base8.shape = s;
        base8.kernel = "int8";
        base8.gflops = flops / scalar8_s / 1e9;
        points.push_back(base8);
        table.addRow({dims, s.kind, "int8 scalar",
                      fmtDouble(base8.gflops, 2), "1.00", "ref"});
        for (const int threads : kThreadCounts) {
            base::ThreadPool pool(threads);
            const KernelOptions opts{false, &pool};
            const Tensor out = matmulInt8(a, packed8, Tensor(), opts);
            Point p;
            p.shape = s;
            p.kernel = "int8";
            p.threads = threads;
            p.exact = bitIdentical(out, ref8);
            all_exact = all_exact && p.exact;
            const double t = timeIt(
                [&] { matmulInt8(a, packed8, Tensor(), opts); });
            p.gflops = flops / t / 1e9;
            p.speedup = scalar8_s / t;
            table.addRow({dims, s.kind,
                          "int8 x" + std::to_string(threads),
                          fmtDouble(p.gflops, 2),
                          fmtDouble(p.speedup, 2),
                          p.exact ? "yes" : "NO"});
            points.push_back(p);
        }
        table.addSeparator();
    }
    table.print(std::cout);
    LIA_ASSERT(all_exact, "a blocked/parallel kernel diverged from "
                          "its scalar reference");

    // --- Section 3: m = 1 decode GEMV -------------------------------
    //
    // Where serving tokens/s actually lives: one hidden-state row
    // against a big weight matrix, repeated every decode step. Timed
    // as fp32-packed vs fused int8 dequant-GEMV per thread count,
    // with the pool's dispatch latency observed per loop.
    std::cout << "\nDecode GEMV (m = 1): fp32 packed vs fused int8 "
                 "dequant-GEMV\n\n";
    TextTable gtable({"shape", "config", "tokens/s", "dispatch us",
                      "vs fp32 x1", "exact"});
    std::vector<GemvPoint> gemv;
    std::vector<std::string> gemvFacts;
    bool gemv_exact = true;
    // The multi-thread-never-loses assert only ranges over pools the
    // host can actually run concurrently: on an h-core machine a pool
    // of more than h threads time-shares cores, which measures the OS
    // scheduler, not our dispatch path (oversubscribed configs are
    // still timed and reported, just not asserted on).
    const int hw_cores = std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
    double assert_int8_vs_fp32 = 0;   // large shape, single thread
    double assert_multi_vs_one = 0;   // large shape, int8 best multi
    bool multi_in_budget = false;     // any multi config within cores
    for (const Shape &s : kGemvShapes) {
        Rng rng(977 + s.k);
        const Tensor a = Tensor::randomNormal({1, s.k}, rng, 1.0);
        const Tensor b = Tensor::randomNormal({s.k, s.n}, rng, 1.0);
        const PackedMatrix packed = packColumns(b);
        const PackedInt8Matrix packed8 = packColumnsInt8(b);
        const Tensor ref = scalarMatmul(a, b, Tensor(), scalarOpts);
        const Tensor ref8 =
            scalarMatmulInt8(a, packed8, Tensor(), scalarOpts);
        const std::string dims = "1x" + std::to_string(s.k) + "x" +
                                 std::to_string(s.n);
        const bool large = std::strcmp(s.kind, "gemv large") == 0;

        double fp32_x1 = 0, int8_x1 = 0, int8_best_multi = 0;
        for (const int threads : kThreadCounts) {
            base::ThreadPool pool(threads);
            const KernelOptions opts{false, &pool};
            for (const bool int8 : {false, true}) {
                const auto run = [&] {
                    return int8
                               ? matmulInt8(a, packed8, Tensor(), opts)
                               : matmulPacked(a, packed, Tensor(),
                                              opts);
                };
                GemvPoint p;
                p.shape = s;
                p.kernel = int8 ? "int8_fused" : "fp32_packed";
                p.threads = threads;
                p.exact = bitIdentical(run(), int8 ? ref8 : ref);
                gemv_exact = gemv_exact && p.exact;
                DispatchStats stats;
                pool.setObserver(&stats);
                const double t = timeIt([&] { run(); });
                pool.setObserver(nullptr);
                p.tokensPerS = 1.0 / t;
                p.dispatchMeanUs = stats.meanUs();
                if (int8 && threads == 1)
                    int8_x1 = p.tokensPerS;
                if (int8 && threads > 1 && threads <= hw_cores)
                    int8_best_multi =
                        std::max(int8_best_multi, p.tokensPerS);
                if (!int8 && threads == 1)
                    fp32_x1 = p.tokensPerS;
                const double vs_fp32_x1 =
                    fp32_x1 > 0 ? p.tokensPerS / fp32_x1 : 1.0;
                gtable.addRow(
                    {dims,
                     std::string(int8 ? "int8 fused" : "fp32 packed") +
                         " x" + std::to_string(threads),
                     fmtDouble(p.tokensPerS, 1),
                     threads > 1 ? fmtDouble(p.dispatchMeanUs, 1)
                                 : std::string("inline"),
                     fmtDouble(vs_fp32_x1, 2), p.exact ? "yes" : "NO"});
                gemv.push_back(p);
            }
        }
        gtable.addSeparator();
        if (large) {
            assert_int8_vs_fp32 = int8_x1 / fp32_x1;
            multi_in_budget = int8_best_multi > 0;
            assert_multi_vs_one =
                multi_in_budget ? int8_best_multi / int8_x1 : 1.0;
        }

        std::ostringstream fact;
        fact << "    {\"m\": 1, \"k\": " << s.k << ", \"n\": " << s.n
             << ", \"kind\": \"" << s.kind << "\", \"fp32_pack_bytes\": "
             << static_cast<long long>(packed.fp32Bytes())
             << ", \"int8_pack_bytes\": "
             << static_cast<long long>(packed8.int8Bytes()) << "}";
        gemvFacts.push_back(fact.str());
    }
    gtable.print(std::cout);
    LIA_ASSERT(gemv_exact,
               "a decode-GEMV kernel diverged from its reference");

    // The acceptance bars (ISSUE 9): the fused int8 dequant-GEMV must
    // beat fp32-packed by >= 1.5x single-thread on the memory-bound
    // shape (it streams a quarter of the bytes), and the low-latency
    // dispatch path must make multi-threading at least free at m = 1.
    std::cout << "\nint8 fused vs fp32 packed (x1, large): "
              << fmtDouble(assert_int8_vs_fp32, 2) << "x\n";
    if (multi_in_budget)
        std::cout << "int8 best multi-thread vs x1 (large, <= "
                  << hw_cores << " cores): "
                  << fmtDouble(assert_multi_vs_one, 2) << "x\n";
    else
        std::cout << "int8 multi-thread vs x1: no multi-thread config "
                     "fits this host's " << hw_cores
                  << " core(s) — speedup assert is vacuous\n";
    LIA_ASSERT(assert_int8_vs_fp32 >= 1.5,
               "fused int8 dequant-GEMV fell under 1.5x fp32 packed "
               "at m = 1 single-thread: ", assert_int8_vs_fp32);
    LIA_ASSERT(assert_multi_vs_one >= 1.0,
               "low-latency multi-thread decode GEMV lost to "
               "single-thread: ", assert_multi_vs_one);

    // End-to-end greedy decode on the differential-test model: the
    // wall-clock the differential suite pays per forward, so kernel
    // regressions are visible next to the GEMM numbers.
    const auto m = model::tinyOpt(32, 2, 2, 256, 101);
    Rng wrng(1234);
    CooperativeExecutor exec(
        hw::sprA100(), TransformerWeights::random(m, wrng), {});
    const std::vector<std::vector<std::int64_t>> prompts = {
        {1, 4, 7, 10, 13, 16, 19, 22},
        {8, 15, 22, 29, 36, 43, 50, 57},
    };
    constexpr std::int64_t l_out = 16;
    const double gen_s = timeIt([&] { exec.generate(prompts, l_out); });
    const double tokens_per_s =
        static_cast<double>(prompts.size()) *
        static_cast<double>(l_out) / gen_s;
    std::cout << "\nend-to-end greedy decode (" << m.name
              << "): " << fmtDouble(tokens_per_s, 1)
              << " tokens/s at default threads\n";

    // Deterministic artifact: every fact here is a pure function of
    // the code and the machine's thread count — CI runs the bench
    // twice and cmp's the bytes.
    {
        std::ostringstream json;
        json << "{\n  \"bench\": \"kernel_throughput\",\n"
             << "  \"default_threads\": "
             << base::ThreadPool::defaultThreadCount() << ",\n"
             << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i)
            json << "    " << pointKey(points[i]) << ", \"bit_identical\": "
                 << (points[i].exact ? "true" : "false") << "}"
                 << (i + 1 < points.size() ? ",\n" : "\n");
        json << "  ],\n  \"gemv_points\": [\n";
        for (std::size_t i = 0; i < gemv.size(); ++i)
            json << "    " << pointKey(Point{gemv[i].shape,
                                             gemv[i].kernel,
                                             gemv[i].threads})
                 << ", \"bit_identical\": "
                 << (gemv[i].exact ? "true" : "false") << "}"
                 << (i + 1 < gemv.size() ? ",\n" : "\n");
        json << "  ],\n  \"gemv_shapes\": [\n";
        for (std::size_t i = 0; i < gemvFacts.size(); ++i)
            json << gemvFacts[i]
                 << (i + 1 < gemvFacts.size() ? ",\n" : "\n");
        json << "  ],\n"
             << "  \"asserts\": {\"all_gemm_bit_identical\": "
             << (all_exact ? "true" : "false")
             << ", \"all_gemv_bit_identical\": "
             << (gemv_exact ? "true" : "false")
             << ", \"int8_fused_ge_1_5x_fp32_x1\": true"
             << ", \"multi_thread_in_core_budget\": "
             << (multi_in_budget ? "true" : "false")
             << ", \"multi_thread_ge_1_0x\": true}\n}\n";
        std::ofstream file("BENCH_kernel_throughput.json");
        file << json.str();
        std::cout << "\nwrote BENCH_kernel_throughput.json\n";
    }

    // Timing artifact: the wall-clock numbers, keyed like the
    // deterministic points (valid JSON, but not byte-stable).
    {
        std::ostringstream json;
        json << "{\n  \"bench\": \"kernel_throughput_timing\",\n"
             << "  \"default_threads\": "
             << base::ThreadPool::defaultThreadCount() << ",\n"
             << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i)
            json << "    " << pointKey(points[i])
                 << ", \"gflops\": " << points[i].gflops
                 << ", \"speedup_vs_scalar\": " << points[i].speedup
                 << "}" << (i + 1 < points.size() ? ",\n" : "\n");
        json << "  ],\n  \"gemv_points\": [\n";
        for (std::size_t i = 0; i < gemv.size(); ++i)
            json << "    " << pointKey(Point{gemv[i].shape,
                                             gemv[i].kernel,
                                             gemv[i].threads})
                 << ", \"tokens_per_s\": " << gemv[i].tokensPerS
                 << ", \"dispatch_mean_us\": " << gemv[i].dispatchMeanUs
                 << "}" << (i + 1 < gemv.size() ? ",\n" : "\n");
        json << "  ],\n  \"gemv_ratios\": {"
             << "\"int8_fused_vs_fp32_x1_large\": "
             << assert_int8_vs_fp32
             << ", \"int8_multi_vs_x1_large\": " << assert_multi_vs_one
             << "},\n"
             << "  \"decode_e2e\": {\"model\": \"" << m.name
             << "\", \"tokens_per_s\": " << tokens_per_s
             << ", \"seconds_per_generate\": " << gen_s << "}\n}\n";
        std::ofstream file("BENCH_kernel_throughput_timing.json");
        file << json.str();
        std::cout << "wrote BENCH_kernel_throughput_timing.json\n";
    }
    return 0;
}
