/**
 * @file
 * Extension: kernel-layer throughput — blocked/packed matmul vs the
 * retained scalar reference, across thread counts.
 *
 * Real measured host performance (not modeled). Sweeps prefill- and
 * decode-shaped GEMMs (m, k, n); for each shape times the scalar
 * reference once and the packed-tile parallel kernel at 1/2/4/8
 * threads, verifying on every configuration that the blocked result
 * is bit-identical to the reference (the DESIGN §7 determinism
 * contract — blocking, packing, and threading are layout/schedule
 * changes only). Also times end-to-end greedy decode on the tiny
 * differential-test model so kernel regressions show up in the same
 * JSON the differential suite's wall-clock lives in. Emits
 * BENCH_kernel_throughput.json.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/executor.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;
using Clock = std::chrono::steady_clock;

struct Shape
{
    std::int64_t m, k, n;
    const char *kind;
};

const std::vector<Shape> kShapes = {
    {1, 512, 2048, "decode"},    {8, 512, 2048, "decode batch"},
    {128, 512, 512, "prefill"},  {128, 512, 2048, "prefill ffn"},
    {256, 1024, 1024, "prefill"},
};

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

/** Bit-for-bit tensor equality. */
bool
bitIdentical(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) *
                           static_cast<std::size_t>(a.numel())) == 0;
}

/** Seconds per call, timed over enough reps to pass @p min_time. */
template <typename Fn>
double
timeIt(const Fn &fn, double min_time = 0.15)
{
    fn();  // warm-up (and first-touch)
    int reps = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
        fn();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    } while (elapsed < min_time);
    return elapsed / reps;
}

struct Point
{
    Shape shape{};
    int threads = 0;          //!< 0 = scalar reference
    double gflops = 0;
    double speedup = 1.0;     //!< vs the scalar reference
    bool exact = true;        //!< bit-identical to the reference
};

std::string
jsonRecord(const Point &p)
{
    std::ostringstream out;
    out << "    {\"m\": " << p.shape.m << ", \"k\": " << p.shape.k
        << ", \"n\": " << p.shape.n << ", \"kind\": \"" << p.shape.kind
        << "\", \"threads\": " << p.threads
        << ", \"gflops\": " << p.gflops
        << ", \"speedup_vs_scalar\": " << p.speedup
        << ", \"bit_identical\": " << (p.exact ? "true" : "false")
        << "}";
    return out.str();
}

} // namespace

int
main()
{
    std::cout << "Kernel throughput: packed/blocked parallel matmul vs "
                 "scalar reference\n"
              << "(host threads available: "
              << base::ThreadPool::defaultThreadCount() << ")\n\n";

    const KernelOptions scalarOpts{false, nullptr};
    TextTable table({"shape", "kind", "config", "GFLOP/s", "speedup",
                     "exact"});
    std::vector<Point> points;
    bool all_exact = true;

    for (const Shape &s : kShapes) {
        Rng rng(7 + s.m);
        const Tensor a = Tensor::randomNormal({s.m, s.k}, rng, 1.0);
        const Tensor b = Tensor::randomNormal({s.k, s.n}, rng, 1.0);
        const double flops = 2.0 * static_cast<double>(s.m) *
                             static_cast<double>(s.k) *
                             static_cast<double>(s.n);
        const std::string dims = std::to_string(s.m) + "x" +
                                 std::to_string(s.k) + "x" +
                                 std::to_string(s.n);

        const Tensor ref = scalarMatmul(a, b, Tensor(), scalarOpts);
        const double scalar_s = timeIt(
            [&] { scalarMatmul(a, b, Tensor(), scalarOpts); });
        Point base;
        base.shape = s;
        base.gflops = flops / scalar_s / 1e9;
        points.push_back(base);
        table.addRow({dims, s.kind, "scalar",
                      fmtDouble(base.gflops, 2), "1.00", "ref"});

        const PackedMatrix packed = packColumns(b);
        for (const int threads : kThreadCounts) {
            base::ThreadPool pool(threads);
            const KernelOptions opts{false, &pool};
            const Tensor out = matmulPacked(a, packed, Tensor(), opts);
            Point p;
            p.shape = s;
            p.threads = threads;
            p.exact = bitIdentical(out, ref);
            all_exact = all_exact && p.exact;
            const double t = timeIt(
                [&] { matmulPacked(a, packed, Tensor(), opts); });
            p.gflops = flops / t / 1e9;
            p.speedup = scalar_s / t;
            table.addRow({dims, s.kind,
                          "packed x" + std::to_string(threads),
                          fmtDouble(p.gflops, 2),
                          fmtDouble(p.speedup, 2),
                          p.exact ? "yes" : "NO"});
            points.push_back(p);
        }
        table.addSeparator();
    }
    table.print(std::cout);
    LIA_ASSERT(all_exact, "a blocked/parallel kernel diverged from "
                          "the scalar reference");

    // End-to-end greedy decode on the differential-test model: the
    // wall-clock the differential suite pays per forward, so kernel
    // regressions are visible next to the GEMM numbers.
    const auto m = model::tinyOpt(32, 2, 2, 256, 101);
    Rng wrng(1234);
    CooperativeExecutor exec(
        hw::sprA100(), TransformerWeights::random(m, wrng), {});
    const std::vector<std::vector<std::int64_t>> prompts = {
        {1, 4, 7, 10, 13, 16, 19, 22},
        {8, 15, 22, 29, 36, 43, 50, 57},
    };
    constexpr std::int64_t l_out = 16;
    const double gen_s = timeIt([&] { exec.generate(prompts, l_out); });
    const double tokens_per_s =
        static_cast<double>(prompts.size()) *
        static_cast<double>(l_out) / gen_s;
    std::cout << "\nend-to-end greedy decode (" << m.name
              << "): " << fmtDouble(tokens_per_s, 1)
              << " tokens/s at default threads\n";

    std::ostringstream json;
    json << "{\n  \"bench\": \"kernel_throughput\",\n"
         << "  \"default_threads\": "
         << base::ThreadPool::defaultThreadCount() << ",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i)
        json << jsonRecord(points[i])
             << (i + 1 < points.size() ? ",\n" : "\n");
    json << "  ],\n"
         << "  \"decode_e2e\": {\"model\": \"" << m.name
         << "\", \"tokens_per_s\": " << tokens_per_s
         << ", \"seconds_per_generate\": " << gen_s << "}\n}\n";

    const std::string path = "BENCH_kernel_throughput.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";
    return 0;
}
