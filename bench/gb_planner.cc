/**
 * @file
 * Google-benchmark microbenchmarks of LIA's planning machinery: the
 * per-policy cost evaluation, the exhaustive Eq. (1) optimizer, the
 * full end-to-end estimate, and the DES pipeline execution. These
 * bound the front-end's runtime overhead (it must be negligible next
 * to the inference itself).
 */

#include <benchmark/benchmark.h>

#include "baselines/presets.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "sim/pipeline.hh"

namespace {

using namespace lia;
using core::CostModel;
using core::Policy;
using core::PolicyOptimizer;
using model::Stage;
using model::Workload;

void
BM_LayerTiming(benchmark::State &state)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt175b();
    CostModel cm(sys, m, {});
    Workload w{Stage::Decode, 64, 512};
    for (auto _ : state) {
        auto t = cm.layerTiming(w, Policy::attentionOnCpu());
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_LayerTiming);

void
BM_PolicyOptimize(benchmark::State &state)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt175b();
    CostModel cm(sys, m, {});
    PolicyOptimizer opt(cm);
    Workload w{Stage::Decode,
               static_cast<std::int64_t>(state.range(0)), 512};
    for (auto _ : state) {
        auto choice = opt.optimize(w);
        benchmark::DoNotOptimize(choice);
    }
}
BENCHMARK(BM_PolicyOptimize)->Arg(1)->Arg(900);

void
BM_EndToEndEstimate(benchmark::State &state)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    auto engine = baselines::liaEngine(sys, m);
    const core::Scenario sc{
        static_cast<std::int64_t>(state.range(0)), 256, 32};
    for (auto _ : state) {
        auto est = engine.estimate(sc);
        benchmark::DoNotOptimize(est);
    }
}
BENCHMARK(BM_EndToEndEstimate)->Arg(1)->Arg(900);

void
BM_DesPipeline(benchmark::State &state)
{
    const auto sys = hw::sprA100();
    const auto m = model::opt175b();
    CostModel cm(sys, m, {});
    Workload w{Stage::Decode, 64, 512};
    const Policy p = Policy::attentionOnCpu();
    for (auto _ : state) {
        auto result = sim::simulateStage(cm, w, p, p, 0);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_DesPipeline);

} // namespace

BENCHMARK_MAIN();
