/**
 * @file
 * Regenerates Table 3: OPT-30B inference throughput of LIA with and
 * without parameter offloading to CXL at B = 900, the fraction of
 * inference data moved out of DDR, and the throughput at the larger
 * batch the freed DDR admits (the parenthesised numbers).
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto plain = hw::sprA100();
    const auto cxl = hw::withCxl(plain);
    const auto m = model::opt30b();
    const std::int64_t batch = 900;
    const std::int64_t l_in = 32;

    std::cout << "Table 3: " << m.name
              << " throughput with CXL parameter offloading, B="
              << batch << ", L_in=" << l_in << "\n\n";

    TextTable table({"L_out", "LIA tok/s", "LIA w/ CXL tok/s",
                     "offloaded %", "bigger B", "tok/s @ bigger B",
                     "offloaded % @ bigger B"});

    for (std::int64_t l_out : {32, 64, 128, 256}) {
        const Scenario sc{batch, l_in, l_out};
        const auto base = liaEngine(plain, m).estimate(sc);
        const auto with_cxl = liaEngine(cxl, m).estimate(sc);

        // Same-DDR-footprint batch increase: parameters leave DDR, so
        // the KV/activation budget can grow until the original total
        // footprint is reached again.
        const double same_footprint =
            model::inferenceFootprint(m, batch, l_in, l_out).total();
        const std::int64_t bigger = model::maxBatchForCapacity(
            m, l_in, l_out, same_footprint, false);
        const Scenario big{bigger, l_in, l_out};
        const auto at_big = liaEngine(cxl, m).estimate(big);

        table.addRow(
            {std::to_string(l_out),
             fmtDouble(base.throughput(sc), 2),
             fmtDouble(with_cxl.throughput(sc), 2),
             fmtPercent(with_cxl.placement.offloadedFraction()),
             std::to_string(bigger),
             fmtDouble(at_big.throughput(big), 2),
             fmtPercent(at_big.placement.offloadedFraction())});
    }
    table.print(std::cout);

    std::cout << "\nPaper rows (L_out 32/64/128/256): 280/294/283/233 "
                 "tok/s without CXL,\nwithin 1% with CXL; offloaded "
                 "43.1/33.5/23.2/14.4%; bigger B of\n1580/1350/1150/"
                 "1050 lifting throughput up to 1.45x (407 tok/s).\n";
    return 0;
}
