/**
 * @file
 * Extension bench: validation of the closed-form latency model
 * against discrete-event execution — the reproduction's analogue of
 * the paper's "average error of 12% across measured points" (§7).
 */

#include <iostream>

#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "sim/validation.hh"

int
main()
{
    using namespace lia;

    std::cout << "Latency-model validation: closed-form overlap "
                 "model vs discrete-event simulation\n\n";

    TextTable table({"system", "model", "points", "mean |err|",
                     "max |err|"});
    struct Case
    {
        hw::SystemConfig sys;
        model::ModelConfig m;
    };
    const Case cases[] = {
        {hw::sprA100(), model::opt30b()},
        {hw::sprA100(), model::opt175b()},
        {hw::sprH100(), model::opt66b()},
        {hw::gnrA100(), model::opt175b()},
    };
    for (const auto &c : cases) {
        const auto report = sim::validateOverlapModel(
            c.sys, c.m, {1, 16, 64, 256, 900}, {64, 256, 1024});
        table.addRow({c.sys.name, c.m.name,
                      std::to_string(report.points.size()),
                      fmtPercent(report.meanAbsError()),
                      fmtPercent(report.maxAbsError())});
    }
    table.print(std::cout);

    std::cout << "\nPaper: the analytical model used for beyond-"
                 "capacity evaluation points\nshows 12% average error "
                 "against the measured system; the closed form\nhere "
                 "must stay comparably tight against pipelined DES "
                 "execution.\n";
    return 0;
}
