/**
 * @file
 * Regenerates Figure 9: the optimal compute-offloading policies for
 * OPT-175B across (L_in, B) combinations on SPR-A100 and SPR-H100,
 * for the prefill and decoding stages, plus the measured region
 * boundaries (prefill B*L crossover, decode B crossover).
 */

#include <iostream>

#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using core::CostModel;
using core::Policy;
using core::PolicyOptimizer;
using model::Stage;
using model::Workload;

char
policyGlyph(const Policy &p)
{
    if (p == Policy::fullCpu())
        return 'C';  // full CPU offloading (1,1,1,1,1,1)
    if (p == Policy::fullGpu())
        return 'G';  // full GPU compute (0,0,0,0,0,0)
    if (p == Policy::attentionOnCpu())
        return 'P';  // partial CPU offloading (0,1,1,0,0,0)
    return '?';
}

void
printMap(const hw::SystemConfig &sys, const model::ModelConfig &m)
{
    CostModel cm(sys, m, {});
    PolicyOptimizer opt(cm);

    const std::vector<std::int64_t> batches{1,  4,   16,  64,
                                            256, 900, 1600};
    const std::vector<std::int64_t> lengths{32, 128, 512, 1024, 2016};

    for (auto stage : {Stage::Prefill, Stage::Decode}) {
        std::cout << "\n" << sys.name << " / "
                  << model::toString(stage) << " policy map"
                  << " (C=full CPU, P=attention on CPU, G=full GPU)\n";
        std::vector<std::string> headers{"B \\ L"};
        for (auto l : lengths)
            headers.push_back(std::to_string(l));
        TextTable table(headers);
        for (auto b : batches) {
            std::vector<std::string> cells{std::to_string(b)};
            for (auto l : lengths) {
                Workload w{stage, b, l};
                cells.emplace_back(
                    1, policyGlyph(opt.optimize(w).policy));
            }
            table.addRow(cells);
        }
        table.print(std::cout);
    }

    // Region boundaries.
    auto decode_crossover = [&] {
        std::int64_t lo = 1, hi = 4096;
        while (lo < hi) {
            const auto mid = (lo + hi) / 2;
            Workload w{Stage::Decode, mid, 512};
            if (opt.optimize(w).policy == Policy::fullCpu())
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    auto prefill_crossover = [&] {
        std::int64_t lo = 1, hi = 2048;
        while (lo < hi) {
            const auto mid = (lo + hi) / 2;
            Workload w{Stage::Prefill, 1, mid};
            if (opt.optimize(w).policy == Policy::fullCpu())
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    std::cout << sys.name << " boundaries: prefill B*L ~ "
              << prefill_crossover() << " (paper ~850 on SPR-A100), "
              << "decode B ~ " << decode_crossover()
              << " (paper ~858)\n";
}

} // namespace

int
main()
{
    const auto m = lia::model::opt175b();
    std::cout << "Figure 9: optimal compute-offloading policies, "
              << m.name << "\n";
    printMap(lia::hw::sprA100(), m);
    printMap(lia::hw::sprH100(), m);
    std::cout << "\nPaper shape: small B*L prefill and small-B decode "
                 "run fully on the\nCPU; large prefill moves to the "
                 "GPU; large-B decode keeps only the\nattention "
                 "scoring on the CPU; H100 shifts every boundary "
                 "toward the GPU.\n";
    return 0;
}
