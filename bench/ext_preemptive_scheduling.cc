/**
 * @file
 * Extension: preemption-capable scheduling across arrival rates.
 *
 * Offers the same Poisson conversation-trace stream to full-horizon
 * continuous batching and to the preemptive scheduler (optimistic
 * admission, swap-to-CXL vs evict-and-recompute by the analytical
 * model) at one explicit DDR KV budget on SPR-A100+CXL / OPT-30B,
 * and sweeps the arrival rate. Reports steady-state occupancy, the
 * preemption rate, the swap-vs-recompute exit mix, and the serving
 * percentiles — then emits the whole sweep as JSON to
 * BENCH_preemptive_scheduling.json (full serving metrics via
 * Metrics::toJson) so the bench trajectory is machine-readable.
 * `--trace-out trace.json` additionally records the preemptive run
 * at the highest swept rate as a Chrome-trace / Perfetto timeline —
 * the swap-channel track and preempt.swap_out/preempt.evict instants
 * make the victim-exit decisions visible.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

constexpr double kKvBudgetBytes = 4e9;  //!< explicit DDR KV budget
constexpr double kTtftSlo = 30.0;
constexpr double kE2eSlo = 180.0;

serve::Result
runAt(double per_minute, SchedulerPolicy policy,
      obs::EventSink *sink = nullptr)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = per_minute / 60.0;
    cfg.requests = 200;
    cfg.seed = 7;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = policy;
    cfg.maxBatch = 32;
    cfg.kvBudgetCapBytes = kKvBudgetBytes;
    cfg.sink = sink;
    if (policy == SchedulerPolicy::Preemptive)
        cfg.prefillChunkTokens = 256;
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

std::string
jsonRecord(double rate, SchedulerPolicy policy,
           const serve::Result &result, double goodput)
{
    const auto &mx = result.metrics;
    const double swap_share =
        mx.preemptions > 0 ? static_cast<double>(mx.swapOuts) /
                                 static_cast<double>(mx.preemptions)
                           : 0.0;
    // Per-point derived quantities only; the raw counters and
    // distributions all come from Metrics::toJson.
    std::ostringstream out;
    out << "    {\"rate_per_min\": " << rate << ", \"policy\": \""
        << serve::toString(policy) << "\""
        << ", \"swap_share\": " << swap_share
        << ", \"preemption_rate\": " << mx.preemptionRate()
        << ", \"goodput_per_min\": " << goodput * 60.0
        << ", \"metrics\": " << mx.toJson() << "}";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string trace_out = args.getString("trace-out");
    obs::ChromeTraceWriter trace;

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    std::cout << "Preemptive-scheduling sweep: " << m.name << " on "
              << sys.name << ", conversation trace, KV budget "
              << fmtBytes(kKvBudgetBytes) << "\n\n";

    serve::SloTargets slo;
    slo.ttft = kTtftSlo;
    slo.e2e = kE2eSlo;

    // Grid brackets the saturation point: at a 4 GB KV budget the
    // conversation trace sustains a few requests per minute, so the
    // sweep shows the compliant region, the knee, and deep overload.
    const std::vector<double> rates_per_min = {1, 2, 3, 4.5,
                                               6, 9, 12};
    const std::vector<SchedulerPolicy> policies = {
        SchedulerPolicy::Continuous, SchedulerPolicy::Preemptive};

    TextTable table({"rate/min", "policy", "done", "occ", "kv occ",
                     "preempt/req", "swap", "recompute", "p95 gap",
                     "goodput/min"});
    std::vector<std::string> records;
    for (double rate : rates_per_min) {
        for (SchedulerPolicy policy : policies) {
            const bool traced =
                !trace_out.empty() &&
                policy == SchedulerPolicy::Preemptive &&
                rate == rates_per_min.back();
            const auto result =
                runAt(rate, policy, traced ? &trace : nullptr);
            const auto &mx = result.metrics;
            const double goodput = result.goodputPerSecond(slo);
            table.addRow(
                {fmtDouble(rate, 0), serve::toString(policy),
                 std::to_string(mx.completed),
                 fmtDouble(mx.batchOccupancy.mean(), 2),
                 fmtPercent(mx.kvOccupancy.mean()),
                 fmtDouble(mx.preemptionRate(), 3),
                 std::to_string(mx.swapOuts),
                 std::to_string(mx.recomputes),
                 fmtSeconds(mx.tokenGap.count() > 0
                                ? mx.tokenGap.p95()
                                : 0.0),
                 fmtDouble(goodput * 60.0, 1)});
            records.push_back(jsonRecord(rate, policy, result,
                                         goodput));
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"preemptive_scheduling\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"kv_budget_bytes\": " << kKvBudgetBytes << ",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i)
        json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
    json << "  ]\n}\n";

    const std::string path = "BENCH_preemptive_scheduling.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "wrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << "\n";
        else
            std::cerr << "failed to write trace to " << trace_out
                      << "\n";
    }
    return 0;
}
