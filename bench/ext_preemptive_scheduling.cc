/**
 * @file
 * Extension: preemption-capable scheduling across arrival rates.
 *
 * Offers the same Poisson conversation-trace stream to full-horizon
 * continuous batching and to the preemptive scheduler (optimistic
 * admission, swap-to-CXL vs evict-and-recompute by the analytical
 * model) at one explicit DDR KV budget on SPR-A100+CXL / OPT-30B,
 * and sweeps the arrival rate. Reports steady-state occupancy, the
 * preemption rate, the swap-vs-recompute exit mix, and the serving
 * percentiles — then emits the whole sweep as JSON to
 * BENCH_preemptive_scheduling.json (full serving metrics via
 * Metrics::toJson) so the bench trajectory is machine-readable.
 * `--trace-out trace.json` additionally records the preemptive run
 * at the highest swept rate as a Chrome-trace / Perfetto timeline —
 * the swap-channel track and preempt.swap_out/preempt.evict instants
 * make the victim-exit decisions visible. That run always carries a
 * TimelineRecorder + SloMonitor (DESIGN.md §13): the artifact gains
 * its p99.9 blame report — with preempted / swapped / recompute
 * phases attributed — and `--metrics-out metrics.prom` writes the
 * Prometheus exposition.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/timeline.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/prom.hh"
#include "serve/slo_monitor.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

constexpr double kKvBudgetBytes = 4e9;  //!< explicit DDR KV budget
constexpr double kTtftSlo = 30.0;
constexpr double kE2eSlo = 180.0;

serve::Result
runAt(double per_minute, SchedulerPolicy policy,
      obs::EventSink *sink = nullptr,
      serve::SloMonitor *monitor = nullptr)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = per_minute / 60.0;
    cfg.requests = 200;
    cfg.seed = 7;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = policy;
    cfg.maxBatch = 32;
    cfg.kvBudgetCapBytes = kKvBudgetBytes;
    cfg.sink = sink;
    cfg.sloMonitor = monitor;
    if (policy == SchedulerPolicy::Preemptive)
        cfg.prefillChunkTokens = 256;
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

std::string
jsonRecord(double rate, SchedulerPolicy policy,
           const serve::Result &result, double goodput)
{
    const auto &mx = result.metrics;
    const double swap_share =
        mx.preemptions > 0 ? static_cast<double>(mx.swapOuts) /
                                 static_cast<double>(mx.preemptions)
                           : 0.0;
    // Per-point derived quantities only; the raw counters and
    // distributions all come from Metrics::toJson.
    std::ostringstream out;
    out << "    {\"rate_per_min\": " << rate << ", \"policy\": \""
        << serve::toString(policy) << "\""
        << ", \"swap_share\": " << swap_share
        << ", \"preemption_rate\": " << mx.preemptionRate()
        << ", \"goodput_per_min\": " << goodput * 60.0
        << ", \"metrics\": " << mx.toJson() << "}";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");
    obs::ChromeTraceWriter trace;

    // Attribution of the deep-overload preemptive run: preempted /
    // swapped / recompute stalls become named phases in the blame
    // report. Passive instrumentation — results stay bit-identical.
    obs::TimelineRecorder recorder;
    obs::TeeSink tee({&trace, &recorder});
    serve::SloMonitorConfig monitor_cfg;
    monitor_cfg.targets = serve::SloTargets{kTtftSlo, 0.0, kE2eSlo};
    serve::SloMonitor monitor(monitor_cfg);

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    std::cout << "Preemptive-scheduling sweep: " << m.name << " on "
              << sys.name << ", conversation trace, KV budget "
              << fmtBytes(kKvBudgetBytes) << "\n\n";

    serve::SloTargets slo;
    slo.ttft = kTtftSlo;
    slo.e2e = kE2eSlo;

    // Grid brackets the saturation point: at a 4 GB KV budget the
    // conversation trace sustains a few requests per minute, so the
    // sweep shows the compliant region, the knee, and deep overload.
    const std::vector<double> rates_per_min = {1, 2, 3, 4.5,
                                               6, 9, 12};
    const std::vector<SchedulerPolicy> policies = {
        SchedulerPolicy::Continuous, SchedulerPolicy::Preemptive};

    TextTable table({"rate/min", "policy", "done", "occ", "kv occ",
                     "preempt/req", "swap", "recompute", "p95 gap",
                     "goodput/min"});
    std::vector<std::string> records;
    std::vector<std::pair<std::string, serve::Metrics>> top_runs;
    serve::Metrics instrumented;
    for (double rate : rates_per_min) {
        for (SchedulerPolicy policy : policies) {
            const bool attributed =
                policy == SchedulerPolicy::Preemptive &&
                rate == rates_per_min.back();
            obs::EventSink *sink = nullptr;
            if (attributed)
                sink = trace_out.empty()
                           ? static_cast<obs::EventSink *>(&recorder)
                           : &tee;
            const auto result =
                runAt(rate, policy, sink,
                      attributed ? &monitor : nullptr);
            if (attributed)
                instrumented = result.metrics;
            if (rate == rates_per_min.back())
                top_runs.emplace_back(serve::toString(policy),
                                      result.metrics);
            const auto &mx = result.metrics;
            const double goodput = result.goodputPerSecond(slo);
            table.addRow(
                {fmtDouble(rate, 0), serve::toString(policy),
                 std::to_string(mx.completed),
                 fmtDouble(mx.batchOccupancy.mean(), 2),
                 fmtPercent(mx.kvOccupancy.mean()),
                 fmtDouble(mx.preemptionRate(), 3),
                 std::to_string(mx.swapOuts),
                 std::to_string(mx.recomputes),
                 fmtSeconds(mx.tokenGap.count() > 0
                                ? mx.tokenGap.p95()
                                : 0.0),
                 fmtDouble(goodput * 60.0, 1)});
            records.push_back(jsonRecord(rate, policy, result,
                                         goodput));
        }
        table.addSeparator();
    }
    table.print(std::cout);

    // Acceptance gate: every finished request's phase segments must
    // exactly partition [arrive, finish] and sum to e2e latency.
    for (const auto *rec : recorder.finished()) {
        LIA_ASSERT(rec->contiguous(),
                   "request timeline has gaps (track tid ",
                   rec->track.tid, ")");
        LIA_ASSERT(std::abs(rec->segmentSeconds() - rec->e2e()) <=
                       1e-9 * std::max(1.0, rec->e2e()),
                   "phase sums diverge from e2e on tid ",
                   rec->track.tid);
    }
    std::cout << "\nBlame (preemptive at "
              << fmtDouble(rates_per_min.back(), 0) << "/min): "
              << recorder.finishedCount() << "/" << recorder.arrived()
              << " requests finished; SLO pressure at drain "
              << fmtDouble(monitor.pressure(instrumented.makespan), 2)
              << "\n";

    std::cout << "\nLatency distributions at "
              << fmtDouble(rates_per_min.back(), 0) << "/min:\n";
    TextTable lat = serve::latencyTable("policy / signal");
    for (const auto &[label, mx] : top_runs) {
        serve::addLatencyRow(lat, label + " TTFT", mx.ttft);
        serve::addLatencyRow(lat, label + " response",
                             mx.responseTime);
    }
    lat.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"preemptive_scheduling\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"kv_budget_bytes\": " << kKvBudgetBytes << ",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i)
        json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
    json << "  ],\n  \"blame\": " << recorder.blameReport()
         << ",\n  \"slo\": " << monitor.toJson(instrumented.makespan)
         << "\n}\n";

    const std::string path = "BENCH_preemptive_scheduling.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "wrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << "\n";
        else
            std::cerr << "failed to write trace to " << trace_out
                      << "\n";
    }
    if (!metrics_out.empty()) {
        if (serve::writePrometheusFile(metrics_out, instrumented,
                                       &monitor,
                                       instrumented.makespan))
            std::cout << "wrote Prometheus metrics to " << metrics_out
                      << "\n";
        else
            std::cerr << "failed to write metrics to " << metrics_out
                      << "\n";
    }
    return 0;
}
