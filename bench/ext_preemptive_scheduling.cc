/**
 * @file
 * Extension: preemption-capable scheduling across arrival rates.
 *
 * Offers the same Poisson conversation-trace stream to full-horizon
 * continuous batching and to the preemptive scheduler (optimistic
 * admission, swap-to-CXL vs evict-and-recompute by the analytical
 * model) at one explicit DDR KV budget on SPR-A100+CXL / OPT-30B,
 * and sweeps the arrival rate. Reports steady-state occupancy, the
 * preemption rate, the swap-vs-recompute exit mix, and the serving
 * percentiles — then emits the whole sweep as JSON to
 * BENCH_preemptive_scheduling.json so the bench trajectory is
 * machine-readable.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "serve/engine.hh"

namespace {

using namespace lia;
using serve::SchedulerPolicy;

constexpr double kKvBudgetBytes = 4e9;  //!< explicit DDR KV budget
constexpr double kTtftSlo = 30.0;
constexpr double kE2eSlo = 180.0;

serve::Result
runAt(double per_minute, SchedulerPolicy policy)
{
    serve::Config cfg;
    cfg.arrivalRatePerSecond = per_minute / 60.0;
    cfg.requests = 200;
    cfg.seed = 7;
    cfg.trace = trace::TraceKind::Conversation;
    cfg.policy = policy;
    cfg.maxBatch = 32;
    cfg.kvBudgetCapBytes = kKvBudgetBytes;
    if (policy == SchedulerPolicy::Preemptive)
        cfg.prefillChunkTokens = 256;
    serve::ServingEngine engine(hw::withCxl(hw::sprA100()),
                                model::opt30b(), cfg);
    return engine.run();
}

std::string
jsonRecord(double rate, SchedulerPolicy policy,
           const serve::Result &result, double goodput)
{
    const auto &mx = result.metrics;
    const double swap_share =
        mx.preemptions > 0 ? static_cast<double>(mx.swapOuts) /
                                 static_cast<double>(mx.preemptions)
                           : 0.0;
    std::ostringstream out;
    out << "    {\"rate_per_min\": " << rate << ", \"policy\": \""
        << serve::toString(policy) << "\""
        << ", \"completed\": " << mx.completed
        << ", \"rejected\": " << mx.rejected()
        << ", \"occupancy_mean\": " << mx.batchOccupancy.mean()
        << ", \"kv_occupancy_mean\": " << mx.kvOccupancy.mean()
        << ", \"kv_peak_bytes\": " << mx.kvReservedPeakBytes
        << ", \"preemption_rate\": " << mx.preemptionRate()
        << ", \"preemptions\": " << mx.preemptions
        << ", \"swap_outs\": " << mx.swapOuts
        << ", \"recomputes\": " << mx.recomputes
        << ", \"swap_share\": " << swap_share
        << ", \"prefill_chunks\": " << mx.prefillChunks
        << ", \"swap_busy_s\": " << mx.swapBusyTime
        << ", \"p95_ttft_s\": " << mx.ttft.p95()
        << ", \"p95_token_gap_s\": "
        << (mx.tokenGap.count() > 0 ? mx.tokenGap.p95() : 0.0)
        << ", \"goodput_per_min\": " << goodput * 60.0
        << ", \"makespan_s\": " << mx.makespan << "}";
    return out.str();
}

} // namespace

int
main()
{
    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt30b();

    std::cout << "Preemptive-scheduling sweep: " << m.name << " on "
              << sys.name << ", conversation trace, KV budget "
              << fmtBytes(kKvBudgetBytes) << "\n\n";

    serve::SloTargets slo;
    slo.ttft = kTtftSlo;
    slo.e2e = kE2eSlo;

    // Grid brackets the saturation point: at a 4 GB KV budget the
    // conversation trace sustains a few requests per minute, so the
    // sweep shows the compliant region, the knee, and deep overload.
    const std::vector<double> rates_per_min = {1, 2, 3, 4.5,
                                               6, 9, 12};
    const std::vector<SchedulerPolicy> policies = {
        SchedulerPolicy::Continuous, SchedulerPolicy::Preemptive};

    TextTable table({"rate/min", "policy", "done", "occ", "kv occ",
                     "preempt/req", "swap", "recompute", "p95 gap",
                     "goodput/min"});
    std::vector<std::string> records;
    for (double rate : rates_per_min) {
        for (SchedulerPolicy policy : policies) {
            const auto result = runAt(rate, policy);
            const auto &mx = result.metrics;
            const double goodput = result.goodputPerSecond(slo);
            table.addRow(
                {fmtDouble(rate, 0), serve::toString(policy),
                 std::to_string(mx.completed),
                 fmtDouble(mx.batchOccupancy.mean(), 2),
                 fmtPercent(mx.kvOccupancy.mean()),
                 fmtDouble(mx.preemptionRate(), 3),
                 std::to_string(mx.swapOuts),
                 std::to_string(mx.recomputes),
                 fmtSeconds(mx.tokenGap.count() > 0
                                ? mx.tokenGap.p95()
                                : 0.0),
                 fmtDouble(goodput * 60.0, 1)});
            records.push_back(jsonRecord(rate, policy, result,
                                         goodput));
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"preemptive_scheduling\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"kv_budget_bytes\": " << kKvBudgetBytes << ",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i)
        json << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
    json << "  ]\n}\n";

    const std::string path = "BENCH_preemptive_scheduling.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";
    return 0;
}
