/**
 * @file
 * Regenerates §7.7's model-generalizability sweep: LIA versus IPEX
 * and FlexGen for Llama2-70B, Chinchilla-70B, and Bloom-176B on the
 * four SPR/GNR x A100/H100 systems, using the validated analytical
 * model (exactly how the paper evaluates this section).
 */

#include <algorithm>
#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

} // namespace

int
main()
{
    std::cout << "§7.7: model generalizability (latency B=1 and "
                 "throughput B=64, L_in=512, L_out=32)\n";

    const std::vector<hw::SystemConfig> systems{
        hw::sprA100(), hw::sprH100(), hw::gnrA100(), hw::gnrH100()};
    const std::vector<model::ModelConfig> models{
        model::llama2_70b(), model::chinchilla70b(),
        model::bloom176b(), model::moeMixtral8x7b()};

    for (const auto &sys : systems) {
        std::cout << "\n" << sys.name << "\n";
        TextTable table({"model", "LIA lat (s)", "vs IPEX",
                         "vs FlexGen", "LIA tok/s (B=64)",
                         "thpt vs IPEX", "thpt vs FlexGen"});
        for (const auto &m : models) {
            const Scenario online{1, 512, 32};
            const Scenario offline{64, 512, 32};
            const double lia_lat =
                liaEngine(sys, m).estimate(online).latency();
            const double ipex_lat =
                ipexEngine(sys, m).estimate(online).latency();
            const double fg_lat =
                FlexGenModel(sys, m).estimate(online).latency();
            const auto lia_off = liaEngine(sys, m).estimate(offline);
            const auto ipex_off =
                ipexEngine(sys, m).estimate(offline);
            const auto fg_off =
                FlexGenModel(sys, m).estimate(offline);
            table.addRow(
                {m.name, fmtDouble(lia_lat, 2),
                 fmtRatio(ipex_lat / lia_lat),
                 fmtRatio(fg_lat / lia_lat),
                 fmtDouble(lia_off.throughput(offline), 1),
                 fmtRatio(lia_off.throughput(offline) /
                          ipex_off.throughput(offline)),
                 fmtRatio(lia_off.throughput(offline) /
                          fg_off.throughput(offline))});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper bands: 6.1-8.4x / 7.4-10x / 7.6-11x lower "
                 "latency than FlexGen\nfor Llama2-70B / "
                 "Chinchilla-70B / Bloom-176B, and 1.1-1.7x vs IPEX;\n"
                 "MoE models shift even the FFN sublayers toward the "
                 "CPU (§7.1).\n";
    return 0;
}
