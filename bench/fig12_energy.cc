/**
 * @file
 * Regenerates Figure 12: energy per generated token of IPEX and
 * FlexGen normalised to LIA on SPR-A100, across B, L_in, L_out, and
 * both OPT models.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "energy/power.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto sys = hw::sprA100();
    energy::PowerModel power(sys);

    std::cout << "Figure 12: energy per token normalised to LIA, "
              << sys.name << "\n";

    for (const auto &m : {model::opt30b(), model::opt175b()}) {
        std::cout << "\n" << m.name << "\n";
        TextTable table({"B", "L_in", "L_out", "LIA (J/tok)",
                         "IPEX (norm)", "FlexGen (norm)"});
        for (std::int64_t batch : {1, 64, 900}) {
            for (std::int64_t l_out : {32, 256}) {
                for (std::int64_t l_in :
                     {static_cast<std::int64_t>(32),
                      trace::standardLinSweep(l_out).back()}) {
                    const Scenario sc{batch, l_in, l_out};
                    const double lia = power.energyPerToken(
                        liaEngine(sys, m).estimate(sc), sc);
                    const double ipex = power.energyPerToken(
                        ipexEngine(sys, m).estimate(sc), sc);
                    const double flexgen = power.energyPerToken(
                        FlexGenModel(sys, m).estimate(sc), sc);
                    table.addRow({std::to_string(batch),
                                  std::to_string(l_in),
                                  std::to_string(l_out),
                                  fmtDouble(lia, 1),
                                  fmtRatio(ipex / lia),
                                  fmtRatio(flexgen / lia)});
                }
            }
            table.addSeparator();
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper bands: LIA is 1.1-5.8x more efficient than "
                 "IPEX and 1.6-10.3x\nmore than FlexGen; the FlexGen "
                 "gap narrows to ~1.6x at B=900 and the\nIPEX gap "
                 "widens with B and L_in.\n";
    return 0;
}
