/**
 * @file
 * Extension: speculative decoding — acceptance rate x draft length.
 *
 * Prices speculative decode iterations with the analytical engine
 * (core::EngineModel::estimateIteration with specDraftTokens = k:
 * a k+1-token verify pass on the target plus k AMX-CPU draft steps,
 * see DESIGN.md §11) and sweeps acceptance rate alpha against draft
 * length k into a policy map alongside fig09_policy_map: each cell
 * reports the modeled tokens/s gain over plain decode,
 *
 *     gain(alpha, k) = E(alpha, k) * t_decode / t_spec(k),
 *     E(alpha, k)    = sum_{i=0..k} alpha^i  (expected tokens/step),
 *
 * and each alpha row names the k that maximises it (k = 0 when no
 * draft length beats plain decode). HARD-ASSERTS the acceptance bar:
 * gain > 1 wherever alpha >= 0.8 and k >= 4.
 *
 * One runtime-backed cell serves the tiny differential-test model
 * twice — speculation off, then on — with a serve::RuntimeBackend
 * actually drafting and verifying every step, and asserts the decoded
 * greedy streams are identical per request (speculation moves timing,
 * never tokens).
 *
 * Emits BENCH_speculative_decoding.json with deterministic number
 * formatting (obs::jsonNumber) and no wall-clock values: repeated
 * runs produce byte-identical artifacts. `--requests N` shrinks the
 * backed cell for CI.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "core/engine.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/sink.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"

namespace {

using namespace lia;

/** One (alpha, k) cell of the modeled sweep. */
struct Cell
{
    double alpha = 0;
    std::int64_t k = 0;
    double expectedTokens = 0;  //!< E(alpha, k)
    double specTime = 0;        //!< modeled spec iteration seconds
    double gain = 0;            //!< tokens/s over plain decode
};

std::string
fmt(double value)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed << value;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::size_t requests = static_cast<std::size_t>(
        args.getInt("requests", 24));
    const std::int64_t batch = args.getInt("batch", 8);
    const std::int64_t context = args.getInt("context", 1024);

    // --- Modeled sweep: OPT-30B on the paper's SPR + A100 platform --
    const auto sys = hw::sprA100();
    const auto m = model::opt30b();
    core::EngineConfig engineCfg;
    engineCfg.costOptions.executionAwareObjective = true;
    engineCfg.specDraftModel = model::draftModelConfig(m);
    core::EngineModel engine(sys, m, engineCfg);

    core::IterationScenario decode;
    decode.stage = model::Stage::Decode;
    decode.batch = batch;
    decode.context = context;
    const double t_decode = engine.estimateIteration(decode).time;

    const std::vector<double> alphas = {0.0, 0.3, 0.5,  0.7,
                                        0.8, 0.9, 0.95, 1.0};
    const std::vector<std::int64_t> ks = {1, 2, 4, 8};

    std::cout << "Speculative decoding: " << m.name << " + "
              << model::draftModelConfig(m).name << " on " << sys.name
              << ", batch " << batch << ", context " << context
              << "\nModeled tokens/s gain over plain decode (t_decode "
              << fmt(t_decode * 1e3) << " ms/iter)\n\n";

    std::vector<std::string> header = {"alpha"};
    for (const std::int64_t k : ks)
        header.push_back("k=" + std::to_string(k));
    header.push_back("best k");
    TextTable table(header);

    std::vector<Cell> cells;
    std::vector<std::pair<double, std::int64_t>> policy;
    for (const double alpha : alphas) {
        std::vector<std::string> row = {fmt(alpha)};
        double best_gain = 1.0;
        std::int64_t best_k = 0;  // 0 = plain decode wins
        for (const std::int64_t k : ks) {
            core::IterationScenario spec = decode;
            spec.specDraftTokens = k;
            Cell cell;
            cell.alpha = alpha;
            cell.k = k;
            cell.expectedTokens =
                core::expectedSpeculativeTokens(alpha, k);
            cell.specTime = engine.estimateIteration(spec).time;
            cell.gain =
                cell.expectedTokens * t_decode / cell.specTime;
            row.push_back(fmt(cell.gain));
            if (cell.gain > best_gain) {
                best_gain = cell.gain;
                best_k = k;
            }
            cells.push_back(cell);
        }
        row.push_back(std::to_string(best_k));
        policy.emplace_back(alpha, best_k);
        table.addRow(row);
    }
    table.print(std::cout);

    // The acceptance bar: wherever drafts are good (alpha >= 0.8) and
    // long enough to amortise the verify pass (k >= 4), the model
    // must price speculation as a throughput win.
    for (const Cell &cell : cells)
        if (cell.alpha >= 0.8 && cell.k >= 4)
            LIA_ASSERT(cell.gain > 1.0,
                       "no modeled tokens/s gain at alpha ",
                       cell.alpha, ", k ", cell.k, " (gain ",
                       cell.gain, ")");
    std::cout << "\nEvery cell at alpha >= 0.8, k >= 4 models a "
                 "tokens/s gain > 1 (asserted)\n";

    // --- Runtime-backed cell: speculation moves timing, not tokens --
    const auto tiny_sys = hw::withCxl(hw::sprA100());
    const auto tiny = model::tinyOpt(32, 2, 2, 256, 101);
    core::EngineConfig tinyCfg;
    tinyCfg.costOptions.executionAwareObjective = true;
    tinyCfg.autoMemoryPolicy = true;
    tinyCfg.specDraftModel = model::draftModelConfig(tiny);
    core::EngineModel tinyEngine(tiny_sys, tiny, tinyCfg);
    auto costs = std::make_shared<const serve::IterationCostCache>(
        tinyEngine, 32);
    const double step = costs->time(model::Stage::Decode, 4, 64);

    auto servedConfig = [&](bool spec_on) {
        serve::Config cfg;
        cfg.requests = requests;
        cfg.seed = 11;
        cfg.trace = trace::TraceKind::Code;
        cfg.maxContext = 128;
        cfg.maxBatch = 4;
        cfg.policy = serve::SchedulerPolicy::Preemptive;
        cfg.prefillChunkTokens = 16;
        cfg.kvBudgetCapBytes = 32768;
        cfg.cxlSpill = true;
        cfg.arrivalRatePerSecond = 1.0 / (20.0 * step);
        cfg.spec.enabled = spec_on;
        cfg.spec.draftTokens = 4;
        return cfg;
    };
    auto runBacked = [&](const serve::Config &cfg,
                         serve::RuntimeBackend &backend) {
        serve::ServingEngine serving(tiny_sys, tiny, cfg, costs);
        return serving.run(&backend);
    };

    const serve::Config off_cfg = servedConfig(false);
    serve::RuntimeBackend off_backend(tiny_sys, tiny, off_cfg);
    const serve::Result off = runBacked(off_cfg, off_backend);

    const serve::Config on_cfg = servedConfig(true);
    serve::RuntimeBackend on_backend(tiny_sys, tiny, on_cfg);
    const serve::Result on = runBacked(on_cfg, on_backend);

    LIA_ASSERT(on.metrics.specSteps > 0,
               "the backed cell never speculated");
    std::size_t compared = 0;
    for (const serve::Request &request : on.requests) {
        if (request.state != serve::RequestState::Finished)
            continue;
        LIA_ASSERT(on_backend.outputs(request.id) ==
                       off_backend.outputs(request.id),
                   "request ", request.id,
                   " decoded different tokens with speculation on");
        ++compared;
    }
    LIA_ASSERT(compared > 0, "no finished requests to compare");
    std::cout << "\nRuntime-backed cell: " << on.metrics.specSteps
              << " draft+verify steps, acceptance rate "
              << fmt(on.metrics.specAcceptanceRate()) << "; all "
              << compared
              << " finished requests decoded identical tokens with "
                 "speculation on and off (asserted)\n";

    std::cout << "\nShape to expect: gain rises with alpha (more "
                 "drafts survive the verify)\nand peaks at moderate "
                 "k — long drafts amortise the verify pass but pay\n"
                 "k sequential CPU draft steps, so k=8 only wins at "
                 "alpha near 1.\n";

    // --- Machine-readable artifact ----------------------------------
    using obs::jsonNumber;
    std::ostringstream json;
    json << "{\n  \"bench\": \"speculative_decoding\",\n"
         << "  \"system\": \"" << sys.name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"draft_model\": \""
         << model::draftModelConfig(m).name << "\",\n"
         << "  \"batch\": " << batch
         << ",\n  \"context\": " << context
         << ",\n  \"decode_seconds\": " << jsonNumber(t_decode)
         << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        json << (i ? ",\n" : "") << "    {\"alpha\": "
             << jsonNumber(cell.alpha) << ", \"k\": " << cell.k
             << ", \"expected_tokens\": "
             << jsonNumber(cell.expectedTokens)
             << ", \"spec_seconds\": " << jsonNumber(cell.specTime)
             << ", \"gain\": " << jsonNumber(cell.gain) << "}";
    }
    json << "\n  ],\n  \"policy_map\": [\n";
    for (std::size_t i = 0; i < policy.size(); ++i)
        json << (i ? ",\n" : "") << "    {\"alpha\": "
             << jsonNumber(policy[i].first)
             << ", \"best_k\": " << policy[i].second << "}";
    json << "\n  ],\n  \"backed_cell\": {\"spec_steps\": "
         << on.metrics.specSteps
         << ", \"drafted\": " << on.metrics.specDraftedTokens
         << ", \"accepted\": " << on.metrics.specAcceptedTokens
         << ", \"acceptance_rate\": "
         << jsonNumber(on.metrics.specAcceptanceRate())
         << ", \"requests_compared\": " << compared
         << ", \"metrics_off\": " << off.metrics.toJson()
         << ", \"metrics_on\": " << on.metrics.toJson() << "}\n}\n";

    const std::string path = "BENCH_speculative_decoding.json";
    std::ofstream file(path);
    file << json.str();
    if (!file) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << path << "\n";
    return 0;
}
