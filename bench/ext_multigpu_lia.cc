/**
 * @file
 * Extension bench (§8 "Scaling to multi-GPU"): LIA deployed over
 * 1/2/4/8 tensor-parallel GPUs, over NVLink and PCIe fabrics,
 * showing the sub-linear scaling the paper predicts and how aggregate
 * host-link bandwidth shifts the offloading policies toward the GPU.
 */

#include <iostream>

#include "base/table.hh"
#include "core/multi_gpu.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using core::MultiGpuLiaModel;
    using core::Scenario;

    const auto base = hw::sprA100();
    const auto m = model::opt175b();

    std::cout << "Extension: multi-GPU LIA (§8), " << m.name
              << " replicated from " << base.name << "\n\n";

    for (const auto &fabric : {hw::nvlink3(), hw::pcie4x16()}) {
        std::cout << "Fabric: " << fabric.name << "\n";
        TextTable table({"GPUs", "decode policy", "latency B=1 (s)",
                         "tok/s B=64", "tok/s B=900", "speedup B=900"});
        double base_900 = 0;
        for (int n : {1, 2, 4, 8}) {
            MultiGpuLiaModel tp(base, m, n, fabric);
            const Scenario online{1, 512, 32};
            const Scenario mid{64, 512, 32};
            const Scenario big{900, 256, 32};
            const auto est_online = tp.estimate(online);
            const auto est_mid = tp.estimate(mid);
            const auto est_big = tp.estimate(big);
            if (n == 1)
                base_900 = est_big.throughput(big);
            table.addRow(
                {std::to_string(n),
                 est_big.decodePolicy.toString(),
                 fmtDouble(est_online.latency(), 2),
                 fmtDouble(est_mid.throughput(mid), 1),
                 fmtDouble(est_big.throughput(big), 1),
                 fmtRatio(est_big.throughput(big) / base_900)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper expectations (§8): GPUs handle computation "
                 "more frequently as\naggregate bandwidth grows, but "
                 "inter-GPU communication erodes scaling,\nespecially "
                 "over PCIe fabrics.\n";
    return 0;
}
