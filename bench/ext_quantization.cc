/**
 * @file
 * Extension bench: weight-only quantization (the §1 compression
 * alternative) interacting with LIA's offloading. INT8/INT4 weights
 * shrink parameter transfers and DDR footprint, shifting the Fig.-9
 * boundaries toward the GPU and raising feasible batch sizes — while
 * the KV cache (BF16) becomes the dominant capacity consumer.
 */

#include <cmath>
#include <iostream>

#include "baselines/presets.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"
#include "runtime/weights.hh"

namespace {

using namespace lia;
using core::Scenario;

std::int64_t
decodeCrossover(const hw::SystemConfig &sys,
                const model::ModelConfig &m)
{
    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    std::int64_t lo = 1, hi = 8192;
    while (lo < hi) {
        const auto mid = (lo + hi) / 2;
        model::Workload w{model::Stage::Decode, mid, 512};
        if (opt.optimize(w).policy == core::Policy::fullCpu())
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

int
main()
{
    const auto sys = lia::hw::sprA100();
    using lia::model::WeightPrecision;

    std::cout << "Extension: weight-only quantization x LIA "
                 "offloading, " << sys.name << "\n\n";

    lia::TextTable table({"model", "precision", "param bytes",
                          "decode B*", "max B (512GB, L=256+32)",
                          "LIA tok/s (B=64)", "LIA latency B=1 (s)"});
    for (const auto &base :
         {lia::model::opt30b(), lia::model::opt175b()}) {
        for (auto precision :
             {WeightPrecision::Bf16, WeightPrecision::Int8,
              WeightPrecision::Int4}) {
            const auto m = lia::model::quantized(base, precision);
            const Scenario offline{64, 256, 32};
            const Scenario online{1, 512, 32};
            auto engine = lia::baselines::liaEngine(sys, m);
            const auto est_off = engine.estimate(offline);
            const auto est_on = engine.estimate(online);
            table.addRow(
                {base.name, lia::model::toString(precision),
                 lia::fmtBytes(m.totalParamBytes()),
                 std::to_string(decodeCrossover(sys, m)),
                 std::to_string(lia::model::maxBatchForCapacity(
                     m, 256, 32, 512e9)),
                 lia::fmtDouble(est_off.throughput(offline), 1),
                 lia::fmtDouble(est_on.latency(), 2)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    // Runtime-backed cross-check: the analytic int8 parameter-byte
    // model above prices a decoder layer at decoderLayerParams() * 1
    // byte/element. The runtime now actually materialises that layer
    // in the int8 VNNI-style tile format (per-column-tile fp32 scales,
    // zero-padded partial tiles), so the real packed buffer sizes
    // reported by runtime::TransformerWeights must match the analytic
    // figure to within the format's small scale/padding overhead —
    // otherwise the cost model and the executor's transfer ledger
    // would be pricing different byte counts.
    {
        const auto tiny = lia::model::quantized(
            lia::model::tinyOpt(), WeightPrecision::Int8);
        lia::Rng rng(42);
        auto weights =
            lia::runtime::TransformerWeights::random(tiny, rng);
        weights.pack(WeightPrecision::Int8);

        const double analytic_layer = tiny.decoderLayerParams() *
                                      tiny.weightBytesPerElement;
        const double packed_layer =
            weights.int8PackedBytes() /
            static_cast<double>(tiny.numLayers);
        const double rel =
            std::abs(packed_layer - analytic_layer) / analytic_layer;

        std::cout << "\nRuntime cross-check (" << tiny.name
                  << ", int8 packed weights):\n";
        lia::TextTable check({"quantity", "bytes/layer"});
        check.addRow({"analytic int8 (decoderLayerParams * 1B)",
                      lia::fmtDouble(analytic_layer, 0)});
        check.addRow({"runtime packed (tiles + fp32 scales)",
                      lia::fmtDouble(packed_layer, 0)});
        check.addRow({"relative difference",
                      lia::fmtDouble(100.0 * rel, 2) + "%"});
        check.print(std::cout);
        LIA_ASSERT(rel < 0.02,
                   "runtime int8 packed bytes diverged from the "
                   "analytic model by ", 100.0 * rel, "%");
        std::cout << "analytic int8 byte model matches the packed "
                     "runtime buffers (< 2% overhead)\n";
    }

    std::cout << "\nShape: each halving of weight precision halves "
                 "parameter transfers\n(latency drops, crossovers "
                 "move toward the GPU) and grows the feasible\nbatch; "
                 "the BF16 KV cache increasingly dominates capacity, "
                 "which is why\nthe paper's CXL policy keeps it in "
                 "DDR.\n";
    return 0;
}
