/**
 * @file
 * Extension bench: weight-only quantization (the §1 compression
 * alternative) interacting with LIA's offloading. INT8/INT4 weights
 * shrink parameter transfers and DDR footprint, shifting the Fig.-9
 * boundaries toward the GPU and raising feasible batch sizes — while
 * the KV cache (BF16) becomes the dominant capacity consumer.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

namespace {

using namespace lia;
using core::Scenario;

std::int64_t
decodeCrossover(const hw::SystemConfig &sys,
                const model::ModelConfig &m)
{
    core::CostModel cm(sys, m, {});
    core::PolicyOptimizer opt(cm);
    std::int64_t lo = 1, hi = 8192;
    while (lo < hi) {
        const auto mid = (lo + hi) / 2;
        model::Workload w{model::Stage::Decode, mid, 512};
        if (opt.optimize(w).policy == core::Policy::fullCpu())
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

int
main()
{
    const auto sys = lia::hw::sprA100();
    using lia::model::WeightPrecision;

    std::cout << "Extension: weight-only quantization x LIA "
                 "offloading, " << sys.name << "\n\n";

    lia::TextTable table({"model", "precision", "param bytes",
                          "decode B*", "max B (512GB, L=256+32)",
                          "LIA tok/s (B=64)", "LIA latency B=1 (s)"});
    for (const auto &base :
         {lia::model::opt30b(), lia::model::opt175b()}) {
        for (auto precision :
             {WeightPrecision::Bf16, WeightPrecision::Int8,
              WeightPrecision::Int4}) {
            const auto m = lia::model::quantized(base, precision);
            const Scenario offline{64, 256, 32};
            const Scenario online{1, 512, 32};
            auto engine = lia::baselines::liaEngine(sys, m);
            const auto est_off = engine.estimate(offline);
            const auto est_on = engine.estimate(online);
            table.addRow(
                {base.name, lia::model::toString(precision),
                 lia::fmtBytes(m.totalParamBytes()),
                 std::to_string(decodeCrossover(sys, m)),
                 std::to_string(lia::model::maxBatchForCapacity(
                     m, 256, 32, 512e9)),
                 lia::fmtDouble(est_off.throughput(offline), 1),
                 lia::fmtDouble(est_on.latency(), 2)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nShape: each halving of weight precision halves "
                 "parameter transfers\n(latency drops, crossovers "
                 "move toward the GPU) and grows the feasible\nbatch; "
                 "the BF16 KV cache increasingly dominates capacity, "
                 "which is why\nthe paper's CXL policy keeps it in "
                 "DDR.\n";
    return 0;
}
