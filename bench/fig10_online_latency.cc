/**
 * @file
 * Regenerates Figure 10: online (B = 1) inference latency of LIA,
 * IPEX, and FlexGen for OPT-30B and OPT-175B on SPR-A100 and for
 * OPT-66B and OPT-175B on SPR-H100, across the paper's input/output
 * token-length grid.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

void
runComparison(const hw::SystemConfig &sys, const model::ModelConfig &m)
{
    std::cout << "\n" << sys.name << " / " << m.name << "\n";
    TextTable table({"L_in", "L_out", "LIA (s)", "IPEX (s)",
                     "FlexGen (s)", "vs IPEX", "vs FlexGen"});
    for (std::int64_t l_out : {32, 256}) {
        for (std::int64_t l_in : trace::standardLinSweep(l_out)) {
            const Scenario sc{1, l_in, l_out};
            const double lia =
                liaEngine(sys, m).estimate(sc).latency();
            const double ipex =
                ipexEngine(sys, m).estimate(sc).latency();
            const double flexgen =
                FlexGenModel(sys, m).estimate(sc).latency();
            table.addRow({std::to_string(l_in), std::to_string(l_out),
                          fmtDouble(lia, 2), fmtDouble(ipex, 2),
                          fmtDouble(flexgen, 2),
                          fmtRatio(ipex / lia),
                          fmtRatio(flexgen / lia)});
        }
        table.addSeparator();
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Figure 10: online inference latency (B = 1), "
                 "LIA vs IPEX vs FlexGen\n";

    const auto spr_a100 = lia::hw::sprA100();
    runComparison(spr_a100, lia::model::opt30b());
    runComparison(spr_a100, lia::model::opt175b());

    const auto spr_h100 = lia::hw::sprH100();
    runComparison(spr_h100, lia::model::opt66b());
    runComparison(spr_h100, lia::model::opt175b());

    std::cout << "\nPaper bands (SPR-A100): 1.8-2.1x vs IPEX and "
                 "5.3-7.3x vs FlexGen for\nOPT-30B; 1.1-1.3x and "
                 "8.5-12x for OPT-175B. (SPR-H100): 2.1-2.5x /\n"
                 "4.9-7.0x for OPT-66B; 1.1-1.5x / 4.0-5.1x for "
                 "OPT-175B.\n";
    return 0;
}
