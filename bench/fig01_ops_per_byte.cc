/**
 * @file
 * Regenerates Figure 1: operations/byte of each decoder sublayer for
 * OPT-175B at L = 512, B = 180, for the prefill and decoding stages
 * (the heat map annotated on the model diagram).
 */

#include <iostream>

#include "base/table.hh"
#include "model/sublayer.hh"

int
main()
{
    using namespace lia;
    using namespace lia::model;

    const auto config = opt175b();
    const std::int64_t batch = 180;
    const std::int64_t length = 512;

    std::cout << "Figure 1: operations/byte per sublayer, "
              << config.name << ", L=" << length << ", B=" << batch
              << "\n\n";

    TextTable table({"sublayer", "prefill ops/byte", "decode ops/byte"});
    for (auto sub : allSublayers()) {
        const Workload prefill{Stage::Prefill, batch, length};
        const Workload decode{Stage::Decode, batch, length};
        table.addRow({toString(sub),
                      fmtDouble(sublayerCosts(config, prefill, sub)
                                    .opsPerByte(),
                                1),
                      fmtDouble(sublayerCosts(config, decode, sub)
                                    .opsPerByte(),
                                1)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: intensities span ~1 (decode attention "
                 "scoring)\nto tens of thousands (prefill FC1/FC2); "
                 "the fused softmax/\nlayer-norm/residual sublayers "
                 "are omitted as in the paper.\n";
    return 0;
}
