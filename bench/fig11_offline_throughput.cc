/**
 * @file
 * Regenerates Figure 11: offline inference throughput (tokens/s) of
 * LIA, IPEX, and FlexGen at B = 64 and B = 900 for OPT-30B/OPT-175B
 * on SPR-A100 and OPT-66B/OPT-175B on SPR-H100. Rows whose memory
 * footprint exceeds the 512 GB evaluation system are marked with *
 * (latency-model evaluation), as in the paper.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"
#include "trace/azure.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

void
runComparison(const hw::SystemConfig &sys, const model::ModelConfig &m)
{
    std::cout << "\n" << sys.name << " / " << m.name << "\n";
    TextTable table({"B", "L_in", "L_out", "LIA tok/s", "IPEX tok/s",
                     "FlexGen tok/s", "vs IPEX", "vs FlexGen"});
    for (std::int64_t batch : {64, 900}) {
        for (std::int64_t l_out : {32, 256}) {
            for (std::int64_t l_in :
                 {static_cast<std::int64_t>(32),
                  trace::standardLinSweep(l_out).back()}) {
                const Scenario sc{batch, l_in, l_out};
                const auto lia = liaEngine(sys, m).estimate(sc);
                const auto ipex = ipexEngine(sys, m).estimate(sc);
                const auto flexgen =
                    FlexGenModel(sys, m).estimate(sc);
                const bool modeled =
                    model::inferenceFootprint(m, batch, l_in, l_out)
                        .total() > sys.cpuMemory.capacity;
                table.addRow(
                    {std::to_string(batch) + (modeled ? "*" : ""),
                     std::to_string(l_in), std::to_string(l_out),
                     fmtDouble(lia.throughput(sc), 1),
                     fmtDouble(ipex.throughput(sc), 1),
                     fmtDouble(flexgen.throughput(sc), 1),
                     fmtRatio(lia.throughput(sc) /
                              ipex.throughput(sc)),
                     fmtRatio(lia.throughput(sc) /
                              flexgen.throughput(sc))});
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Figure 11: offline inference throughput, "
                 "LIA vs IPEX vs FlexGen\n"
                 "(* = beyond the 512 GB evaluation system; "
                 "latency-model numbers, as in the paper)\n";

    const auto spr_a100 = lia::hw::sprA100();
    runComparison(spr_a100, lia::model::opt30b());
    runComparison(spr_a100, lia::model::opt175b());

    const auto spr_h100 = lia::hw::sprH100();
    runComparison(spr_h100, lia::model::opt66b());
    runComparison(spr_h100, lia::model::opt175b());

    std::cout << "\nPaper bands (SPR-A100): 1.5-6.0x vs IPEX and "
                 "2.0-5.9x vs FlexGen for\nOPT-30B; 1.1-6.1x and "
                 "1.3-6.0x for OPT-175B. (SPR-H100): 1.3-8.3x /\n"
                 "1.2-3.3x for OPT-66B; 1.2-10x / 1.5-3.7x for "
                 "OPT-175B.\n";
    return 0;
}
