/**
 * @file
 * Regenerates Figure 8: (a) CPU->GPU transfer bandwidth from DDR
 * versus interleaved CXL across transfer sizes; (b) CPU compute
 * throughput for sublayers 1 (QKV, parameter-bound) and 2 (Q*K^T,
 * KV-bound) with operands in CXL, normalised to DDR, sweeping L at
 * B=64 and B at L=256.
 */

#include <iostream>

#include "base/table.hh"
#include "base/units.hh"
#include "core/cost_model.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using core::CostModel;
    using core::CostModelOptions;
    using core::HostTier;
    using core::Policy;
    using model::Stage;
    using model::Workload;

    const auto sys = hw::withCxl(hw::sprA100());
    const auto m = model::opt175b();

    std::cout << "Figure 8(a): host-to-GPU transfer bandwidth, DDR "
                 "vs 2x interleaved CXL (" << sys.hostLink.name
              << ")\n\n";
    {
        TextTable table({"transfer size", "from DDR", "from CXL x2",
                         "from CXL x1"});
        const double link = sys.hostLink.bandwidth;
        const double cxl2 = sys.cxl.interleavedBandwidth();
        const double cxl1 = sys.cxl.perDeviceBandwidth;
        for (double bytes : {10e6, 30e6, 100e6, 300e6, 1e9, 3e9}) {
            auto effective = [&](double src_bw) {
                const double bw = std::min(link, src_bw);
                return bytes / (sys.hostLink.latency + bytes / bw);
            };
            table.addRow({fmtBytes(bytes),
                          fmtDouble(effective(1e18) / 1e9, 1),
                          fmtDouble(effective(cxl2) / 1e9, 1),
                          fmtDouble(effective(cxl1) / 1e9, 1)});
        }
        table.print(std::cout);
        std::cout << "\nObservation-1: two 17 GB/s expanders "
                     "interleaved match the\nPCIe-bound DDR path for "
                     "large transfers; one expander throttles.\n";
    }

    std::cout << "\nFigure 8(b): CPU compute throughput from CXL, "
                 "normalised to DDR\n\n";
    {
        CostModelOptions cxl_opts;
        cxl_opts.paramTier = HostTier::Cxl;
        cxl_opts.kvTier = HostTier::Cxl;
        CostModel ddr(sys, m, {});
        CostModel cxl(sys, m, cxl_opts);

        auto ratio = [&](Stage stage, std::int64_t b, std::int64_t l,
                         int sublayer) {
            Workload w{stage, b, l};
            const auto t_ddr =
                ddr.sublayerTiming(w, Policy::fullCpu(), sublayer);
            const auto t_cxl =
                cxl.sublayerTiming(w, Policy::fullCpu(), sublayer);
            return t_ddr.cpuTime / t_cxl.cpuTime;
        };

        TextTable table({"sweep", "value", "prefill-S1", "prefill-S2",
                         "decode-S1", "decode-S2"});
        for (std::int64_t l : {64, 256, 1024}) {
            table.addRow({"L (B=64)", std::to_string(l),
                          fmtPercent(ratio(Stage::Prefill, 64, l, 0)),
                          fmtPercent(ratio(Stage::Prefill, 64, l, 1)),
                          fmtPercent(ratio(Stage::Decode, 64, l, 0)),
                          fmtPercent(ratio(Stage::Decode, 64, l, 1))});
        }
        table.addSeparator();
        for (std::int64_t b : {1, 16, 64, 256}) {
            table.addRow({"B (L=256)", std::to_string(b),
                          fmtPercent(ratio(Stage::Prefill, b, 256, 0)),
                          fmtPercent(ratio(Stage::Prefill, b, 256, 1)),
                          fmtPercent(ratio(Stage::Decode, b, 256, 0)),
                          fmtPercent(ratio(Stage::Decode, b, 256, 1))});
        }
        table.print(std::cout);
        std::cout << "\nObservation-2: the parameter sublayer keeps "
                     "30-89% of its DDR\nthroughput (compute hides the "
                     "slow reads as intensity grows), while\nthe "
                     "ops/byte~1 attention sublayer collapses to "
                     "~15-20%.\n";
    }
    return 0;
}
