/**
 * @file
 * Extension bench (§7.1 "Adaptability to other models"): the policy
 * diversity MoE architectures introduce. As the expert count grows,
 * FC1/FC2 lose arithmetic intensity (every expert's weights are
 * touched once the batch is large) and the optimizer starts keeping
 * the FFN sublayers on the CPU — policies like (0,1,1,0,1,1) that
 * dense models never select.
 */

#include <iostream>

#include "base/table.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/sublayer.hh"

int
main()
{
    using namespace lia;
    using core::CostModel;
    using core::PolicyOptimizer;
    using model::Stage;
    using model::Workload;

    const auto sys = lia::hw::sprA100();
    std::cout << "Extension: MoE offloading-policy diversity on "
              << sys.name << "\n\n";

    TextTable table({"experts", "B", "decode policy", "FC1 ops/byte",
                     "FFN sublayers on CPU"});
    for (std::int64_t experts : {1, 4, 8, 16, 32}) {
        // An OPT-175B-scale trunk whose FFN is expert-parallel: big
        // enough that the attention-side parameter sublayers prefer
        // the GPU at large B, exposing the policy split.
        auto m = model::opt175b();
        m.numExperts = experts;
        m.expertTopK = std::min<std::int64_t>(2, experts);
        m.name = "MoE-" + std::to_string(experts) + "x175B";
        CostModel cm(sys, m, {});
        PolicyOptimizer opt(cm);
        for (std::int64_t batch : {64, 900}) {
            Workload w{Stage::Decode, batch, 512};
            const auto p = opt.optimize(w).policy;
            const double opb =
                model::sublayerCosts(m, w, model::Sublayer::Fc1)
                    .opsPerByte();
            const int ffn_cpu = (p.onCpu(4) ? 1 : 0) +
                                (p.onCpu(5) ? 1 : 0);
            table.addRow({std::to_string(experts),
                          std::to_string(batch), p.toString(),
                          fmtDouble(opb, 1),
                          std::to_string(ffn_cpu) + "/2"});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation (§7.1): dense models settle on "
                 "(0,1,1,0,0,0) at\nlarge B, while expert-heavy "
                 "models prefer shapes like (0,1,1,0,1,1) —\nshipping "
                 "every expert over PCIe costs more than computing "
                 "the FFN on\nthe CPU once per-expert intensity "
                 "collapses.\n";
    return 0;
}
