/**
 * @file
 * Regenerates Figure 5: GEMM and batched-GEMV throughput of AVX512,
 * SPR-AMX, GNR-AMX, and the P100/V100/A100/H100 GPUs across the
 * paper's shape sweeps (FC1 prefill GEMM over B*L; decode Q*K^T GEMV
 * over B and L).
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "hw/catalog.hh"
#include "hw/microbench.hh"

int
main()
{
    using namespace lia;
    using namespace lia::hw;

    const std::int64_t d_model = 12288;  // OPT-175B
    const std::int64_t n_heads = 96;
    const std::int64_t d_head = 128;

    const std::vector<ComputeDevice> devices{
        avx512Spr(), amxSpr(), amxGnr(), gpuP100(), gpuV100(),
        gpuA100(), gpuH100()};

    std::cout << "Figure 5 (left): GEMM throughput (TFLOPS), FC1 "
                 "shape (B*L, d) x (d, 4d), d=" << d_model << "\n\n";
    {
        std::vector<std::string> headers{"B*L"};
        for (const auto &dev : devices)
            headers.push_back(dev.name);
        TextTable table(headers);
        for (std::int64_t rows = 64; rows <= 36864; rows *= 4) {
            std::vector<std::string> cells{std::to_string(rows)};
            for (const auto &dev : devices) {
                cells.push_back(fmtDouble(
                    gemmThroughput(dev, {rows, d_model}) / 1e12, 2));
            }
            table.addRow(cells);
        }
        table.print(std::cout);
    }

    std::cout << "\nFigure 5 (right): batched GEMV throughput "
                 "(GFLOPS), Q*K^T shape (B*n_h, 1, d_h) x "
                 "(B*n_h, d_h, L)\n\n";
    {
        std::vector<std::string> headers{"B", "L"};
        for (const auto &dev : devices)
            headers.push_back(dev.name);
        TextTable table(headers);
        for (std::int64_t batch : {1, 8, 64, 256, 900}) {
            for (std::int64_t length : {128, 1024}) {
                std::vector<std::string> cells{
                    std::to_string(batch), std::to_string(length)};
                for (const auto &dev : devices) {
                    BatchedGemvShape shape{batch * n_heads, d_head,
                                           length};
                    cells.push_back(fmtDouble(
                        gemvThroughput(dev, shape) / 1e9, 1));
                }
                table.addRow(cells);
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper anchors: SPR-AMX ~20 TFLOPS GEMM (4.5x "
                 "AVX512), GNR ~2.4x SPR;\nSPR GEMV ~199 GFLOPS "
                 "matching AVX within 10%; GNR GEMV +70%;\nGPU GEMV "
                 "leads shrink at small shapes (kernel overhead).\n";
    return 0;
}
