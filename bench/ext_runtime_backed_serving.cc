/**
 * @file
 * Extension: runtime-backed serving — executing the scheduler's plans.
 *
 * Runs the preemptive serving engine twice per point on a tiny OPT
 * model: once purely analytical, once with a serve::RuntimeBackend
 * executing every iteration plan on the functional runtime (real
 * chunked prefill, decode, swap-to-CXL, evict-and-recompute). Sweeps
 * the DDR KV budget with and without a CXL pool (no pool prices the
 * swap exit infinite, so every preemption recomputes), and reports
 * the executed-work counters against the
 * engine's analytical accounting, greedy-output continuity across
 * preemption, and the wall-clock cost of functional execution — then
 * emits the sweep as JSON to BENCH_runtime_backed_serving.json (full
 * serving metrics via Metrics::toJson).
 *
 * Every backed run profiles the real kernels (wall-clock scoped
 * timers, ExecutorConfig::profileKernels); the per-point profiles go
 * to BENCH_kernel_profile.json. `--trace-out trace.json` records the
 * backed run at the largest DDR+CXL budget as a Chrome-trace /
 * Perfetto timeline.
 */

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "core/engine.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "obs/chrome_trace.hh"
#include "obs/profiler.hh"
#include "serve/engine.hh"
#include "serve/runtime_backend.hh"

namespace {

using namespace lia;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

serve::Config
configAt(double kv_cap_bytes, double decode_step_seconds)
{
    serve::Config cfg;
    cfg.requests = 64;
    cfg.seed = 21;
    cfg.trace = trace::TraceKind::Code;
    cfg.maxContext = 128;
    cfg.maxBatch = 8;
    cfg.policy = serve::SchedulerPolicy::Preemptive;
    cfg.prefillChunkTokens = 16;
    cfg.admissionWatermark = 0.1;
    cfg.kvBudgetCapBytes = kv_cap_bytes;
    // Mean interarrival of 20 decode steps: well under a request's
    // service time, so admission overcommits and preemption engages.
    cfg.arrivalRatePerSecond = 1.0 / (decode_step_seconds * 20.0);
    return cfg;
}

struct Point
{
    double kvCapBytes = 0;
    bool cxl = true;
    serve::Result result;
    serve::RuntimeBackend::Counters counters;
    std::size_t continuityChecked = 0;
    std::size_t continuityMismatches = 0;
    bool countersMatch = false;
    double analyticSeconds = 0;
    double backedSeconds = 0;
    std::string kernelProfileJson;  //!< wall-clock kernel breakdown
};

bool
countersMatchMetrics(const serve::RuntimeBackend::Counters &c,
                     const serve::Metrics &mx)
{
    return c.prefillChunks == mx.prefillChunks &&
           c.evictions == mx.recomputes &&
           c.recomputesVerified == mx.recomputes &&
           c.swapOuts == mx.swapOuts && c.swapIns == mx.swapIns &&
           c.swapOutBytes == mx.swapOutBytes &&
           c.swapInBytes == mx.swapInBytes &&
           static_cast<std::int64_t>(c.tokensProduced()) ==
               mx.tokensGenerated;
}

std::string
jsonRecord(const Point &p)
{
    // Harness-level facts only; the serving counters and
    // distributions come from Metrics::toJson.
    std::ostringstream out;
    out << "    {\"kv_cap_bytes\": " << p.kvCapBytes
        << ", \"cxl\": " << (p.cxl ? "true" : "false")
        << ", \"decode_steps\": " << p.counters.decodeSteps
        << ", \"counters_match\": "
        << (p.countersMatch ? "true" : "false")
        << ", \"continuity_checked\": " << p.continuityChecked
        << ", \"continuity_mismatches\": " << p.continuityMismatches
        << ", \"analytic_wall_s\": " << p.analyticSeconds
        << ", \"backed_wall_s\": " << p.backedSeconds
        << ", \"backend_counters\": " << p.counters.toJson()
        << ", \"metrics\": " << p.result.metrics.toJson() << "}";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const ArgParser args(argc, argv);
    const std::string trace_out = args.getString("trace-out");
    obs::ChromeTraceWriter trace;

    // The differential-test model: one KV token is 256 bytes, so KB
    // budgets force real preemption while forwards stay microseconds.
    const auto m = model::tinyOpt(32, 2, 2, 256, 101);

    std::cout << "Runtime-backed serving: " << m.name
              << " on SPR-A100, preemptive policy, code trace\n\n";

    const std::vector<double> caps = {16384, 24576, 32768, 49152,
                                      65536};
    TextTable table({"kv cap", "memory", "done", "tokens", "preempt",
                     "swap", "recompute", "chunks", "ctr ok",
                     "contin ok", "backed wall"});
    std::vector<Point> points;
    for (const bool cxl : {true, false}) {
        // Without the CXL pool the swap exit is priced infinite:
        // the same budget pressure drains through recompute instead.
        const auto sys =
            cxl ? hw::withCxl(hw::sprA100()) : hw::sprA100();
        core::EngineConfig engineCfg;
        engineCfg.costOptions.executionAwareObjective = true;
        engineCfg.autoMemoryPolicy = cxl;
        core::EngineModel engine(sys, m, engineCfg);
        auto costs = std::make_shared<const serve::IterationCostCache>(
            engine, 32);
        const double step = costs->time(model::Stage::Decode, 4, 64);

        for (double cap : caps) {
        Point p;
        p.kvCapBytes = cap;
        p.cxl = cxl;
        const auto cfg = configAt(cap, step);
        serve::ServingEngine serving(sys, m, cfg, costs);

        const auto t0 = Clock::now();
        const serve::Result analytic = serving.run();
        const auto t1 = Clock::now();

        // The backed run of the largest DDR+CXL budget is the traced
        // one; a sink never changes scheduling, so the analytic
        // cross-check below still holds (DESIGN.md §8).
        serve::Config backedCfg = cfg;
        if (!trace_out.empty() && cxl && cap == caps.back())
            backedCfg.sink = &trace;
        serve::ServingEngine backedServing(sys, m, backedCfg, costs);
        serve::RuntimeBackend backend(sys, m, cfg,
                                      /*profile_kernels=*/true);
        p.result = backedServing.run(&backend);
        const auto t2 = Clock::now();
        p.analyticSeconds = seconds(t0, t1);
        p.backedSeconds = seconds(t1, t2);
        p.counters = backend.counters();
        p.kernelProfileJson = backend.kernelProfiler()->toJson();

        // The backend is passive: both runs must schedule identically.
        LIA_ASSERT(analytic.metrics.iterations ==
                           p.result.metrics.iterations &&
                       analytic.metrics.makespan ==
                           p.result.metrics.makespan,
                   "runtime backend perturbed scheduling at cap ",
                   cap);
        p.countersMatch =
            countersMatchMetrics(p.counters, p.result.metrics);

        // Continuity: every preempted completion must reproduce its
        // uninterrupted greedy generation bit for bit.
        for (const auto &request : p.result.requests) {
            if (request.state != serve::RequestState::Finished ||
                request.preemptions == 0) {
                continue;
            }
            ++p.continuityChecked;
            if (backend.outputs(request.id) !=
                backend.referenceOutputs(request)) {
                ++p.continuityMismatches;
            }
        }

        const auto &mx = p.result.metrics;
        table.addRow(
            {fmtBytes(cap), cxl ? "DDR+CXL" : "DDR",
             std::to_string(mx.completed),
             std::to_string(mx.tokensGenerated),
             std::to_string(mx.preemptions),
             std::to_string(mx.swapOuts),
             std::to_string(mx.recomputes),
             std::to_string(mx.prefillChunks),
             p.countersMatch ? "yes" : "NO",
             std::to_string(p.continuityChecked -
                            p.continuityMismatches) +
                 "/" + std::to_string(p.continuityChecked),
             fmtDouble(p.backedSeconds * 1e3, 1) + " ms"});
        points.push_back(std::move(p));
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\nEvery iteration plan the scheduler emitted was "
                 "executed on the functional runtime; the counters "
                 "above must match the engine's analytical "
                 "accounting item for item.\n";

    std::ostringstream json;
    json << "{\n  \"bench\": \"runtime_backed_serving\",\n"
         << "  \"system\": \"" << hw::sprA100().name << "\",\n"
         << "  \"model\": \"" << m.name << "\",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i)
        json << jsonRecord(points[i])
             << (i + 1 < points.size() ? ",\n" : "\n");
    json << "  ]\n}\n";

    const std::string path = "BENCH_runtime_backed_serving.json";
    std::ofstream file(path);
    file << json.str();
    std::cout << "\nwrote " << path << "\n";

    // Wall-clock kernel attribution of every backed run (the data a
    // perf PR needs to argue where the time went).
    std::ostringstream prof;
    prof << "{\n  \"bench\": \"runtime_backed_serving\",\n"
         << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i)
        prof << "    {\"kv_cap_bytes\": " << points[i].kvCapBytes
             << ", \"cxl\": " << (points[i].cxl ? "true" : "false")
             << ", \"kernels\": " << points[i].kernelProfileJson
             << "}" << (i + 1 < points.size() ? ",\n" : "\n");
    prof << "  ]\n}\n";
    const std::string prof_path = "BENCH_kernel_profile.json";
    std::ofstream prof_file(prof_path);
    prof_file << prof.str();
    std::cout << "wrote " << prof_path << "\n";

    if (!trace_out.empty()) {
        if (trace.writeFile(trace_out))
            std::cout << "wrote " << trace.events().size()
                      << "-event Chrome trace to " << trace_out
                      << "\n";
        else
            std::cerr << "failed to write trace to " << trace_out
                      << "\n";
    }
    return 0;
}
