/**
 * @file
 * Regenerates Figure 4: at B = 32, the latency of computing the
 * CPU-offloaded attention-scoring sublayers versus transferring the
 * KV cache to the GPU, and the decode-latency reduction achieved by
 * FlexGen-style compute offloading, across context lengths.
 */

#include <iostream>

#include "base/table.hh"
#include "core/cost_model.hh"
#include "hw/catalog.hh"
#include "hw/system.hh"
#include "model/config.hh"

int
main()
{
    using namespace lia;
    using core::CostModel;
    using core::CostModelOptions;
    using core::Policy;
    using model::Stage;
    using model::Workload;

    const auto m = model::opt175b();
    const std::int64_t batch = 32;

    // The paper's §3 study runs FlexGen, whose AVX-era CPU attention
    // kernels reach only a small fraction of the DDR bandwidth the
    // optimised AMX path streams at (its measured sublayer compute
    // exceeded the KV transfer 1 s vs 0.4 s). Model both CPUs.
    auto amx_sys = hw::sprA100();
    auto avx_sys = amx_sys;
    avx_sys.cpu = hw::avx512Spr();
    avx_sys.cpu.streamEfficiency = hw::EfficiencyCurve(0.18);

    CostModelOptions opts;
    opts.overlap = false;
    CostModel avx_cm(avx_sys, m, opts);
    CostModel amx_cm(amx_sys, m, opts);

    std::cout << "Figure 4: compute-offloading the attention scoring "
                 "sublayers, " << m.name << ", B=" << batch << "\n\n";

    TextTable table({"L", "KV transfer to GPU", "AVX attn compute",
                     "AMX attn compute", "reduction (AVX era)",
                     "reduction (AMX)"});

    for (std::int64_t length : {64, 128, 256, 512, 1024}) {
        Workload w{Stage::Decode, batch, length};
        const double layers = static_cast<double>(m.numLayers);

        auto stage_time = [&](const CostModel &cm, const Policy &p) {
            return layers * cm.layerTiming(w, p).serialTime();
        };
        const double avx_attn =
            layers *
            avx_cm.layerTiming(w, Policy::attentionOnCpu()).cpuTime;
        const double amx_attn =
            layers *
            amx_cm.layerTiming(w, Policy::attentionOnCpu()).cpuTime;
        const double kv_xfer =
            layers *
            avx_cm.layerTiming(w, Policy::fullGpu()).kvPcieBytes /
            avx_sys.hostLink.bandwidth;

        const double avx_without =
            stage_time(avx_cm, Policy::fullGpu());
        const double avx_with =
            stage_time(avx_cm, Policy::attentionOnCpu());
        const double amx_without =
            stage_time(amx_cm, Policy::fullGpu());
        const double amx_with =
            stage_time(amx_cm, Policy::attentionOnCpu());
        table.addRow({std::to_string(length), fmtSeconds(kv_xfer),
                      fmtSeconds(avx_attn), fmtSeconds(amx_attn),
                      fmtPercent(1.0 - avx_with / avx_without),
                      fmtPercent(1.0 - amx_with / amx_without)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: with the AVX-era kernels the CPU sublayer "
                 "compute exceeds the\nKV transfer it replaces "
                 "(~1 s vs 0.4 s), so the reduction peaks at\n10.2% "
                 "(L=1024) and turns negative for short L; the AMX "
                 "column shows\nthe opening LIA exploits (§3.2, "
                 "§4).\n";
    return 0;
}
