/**
 * @file
 * Regenerates Figure 13: OPT-175B online latency and offline
 * throughput of LIA on a GNR-A100 system versus an SPR-H100 system —
 * the "scale the CPU or scale the GPU?" comparison (§7.6).
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "energy/economics.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto gnr_a100 = hw::gnrA100();
    const auto spr_h100 = hw::sprH100();
    const auto m = model::opt175b();

    std::cout << "Figure 13: LIA on GNR-A100 vs SPR-H100, " << m.name
              << "\n\nOnline latency (B = 1)\n";
    {
        TextTable table({"L_in", "L_out", "GNR-A100 (s)",
                         "SPR-H100 (s)", "GNR advantage"});
        for (std::int64_t l_out : {32, 256}) {
            for (std::int64_t l_in : trace::standardLinSweep(l_out)) {
                const Scenario sc{1, l_in, l_out};
                const double gnr =
                    liaEngine(gnr_a100, m).estimate(sc).latency();
                const double spr =
                    liaEngine(spr_h100, m).estimate(sc).latency();
                table.addRow({std::to_string(l_in),
                              std::to_string(l_out), fmtDouble(gnr, 2),
                              fmtDouble(spr, 2), fmtRatio(spr / gnr)});
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nOffline throughput (tokens/s)\n";
    {
        TextTable table({"B", "L_in", "GNR-A100", "SPR-H100",
                         "GNR/SPR"});
        for (std::int64_t batch : {64, 900}) {
            for (std::int64_t l_in : {32, 512, 1024}) {
                const Scenario sc{batch, l_in, 32};
                const auto gnr = liaEngine(gnr_a100, m).estimate(sc);
                const auto spr = liaEngine(spr_h100, m).estimate(sc);
                table.addRow({std::to_string(batch),
                              std::to_string(l_in),
                              fmtDouble(gnr.throughput(sc), 1),
                              fmtDouble(spr.throughput(sc), 1),
                              fmtRatio(gnr.throughput(sc) /
                                       spr.throughput(sc))});
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nSystem economics: GNR-A100 costs $"
              << gnr_a100.systemCost << " vs $" << spr_h100.systemCost
              << " for SPR-H100 ("
              << fmtRatio(spr_h100.systemCost / gnr_a100.systemCost)
              << " cheaper).\n";
    std::cout << "\nPaper shape: GNR-A100 wins online (1.4-2.0x) and "
                 "B=64 offline (up to\n1.9x) but reaches only ~70% of "
                 "SPR-H100 at B=900, at 1.7x lower cost.\n";
    return 0;
}
