/**
 * @file
 * Google-benchmark microbenchmarks of the functional back-end's
 * numeric kernels (real measured host performance, not modeled):
 * GEMM, batched attention scoring, softmax, and LayerNorm at
 * decoder-layer shapes of the tiny evaluation model.
 */

#include <benchmark/benchmark.h>

#include "base/rng.hh"
#include "runtime/kernels.hh"

namespace {

using namespace lia;
using namespace lia::runtime;

void
BM_Gemm(benchmark::State &state)
{
    const auto rows = static_cast<std::int64_t>(state.range(0));
    const std::int64_t d = 256;
    Rng rng(1);
    const Tensor a = Tensor::randomNormal({rows, d}, rng, 1.0);
    const Tensor b = Tensor::randomNormal({d, 4 * d}, rng, 1.0);
    for (auto _ : state) {
        Tensor c = matmul(a, b, Tensor(), KernelOptions{false});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * rows * d * 4 * d);
}
BENCHMARK(BM_Gemm)->Arg(8)->Arg(32)->Arg(128);

void
BM_GemmBf16Rounded(benchmark::State &state)
{
    const auto rows = static_cast<std::int64_t>(state.range(0));
    const std::int64_t d = 256;
    Rng rng(1);
    const Tensor a = Tensor::randomNormal({rows, d}, rng, 1.0);
    const Tensor b = Tensor::randomNormal({d, 4 * d}, rng, 1.0);
    for (auto _ : state) {
        Tensor c = matmul(a, b, Tensor(), KernelOptions{true});
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * rows * d * 4 * d);
}
BENCHMARK(BM_GemmBf16Rounded)->Arg(32);

void
BM_AttentionScores(benchmark::State &state)
{
    // Q x K^T for one head: (T, d_h) x (L, d_h)^T.
    const auto len = static_cast<std::int64_t>(state.range(0));
    Rng rng(2);
    const Tensor q = Tensor::randomNormal({16, 64}, rng, 1.0);
    const Tensor k = Tensor::randomNormal({len, 64}, rng, 1.0);
    for (auto _ : state) {
        Tensor s = matmulTransposed(q, k, KernelOptions{false});
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 16 * 64 * len);
}
BENCHMARK(BM_AttentionScores)->Arg(64)->Arg(256)->Arg(1024);

void
BM_CausalSoftmax(benchmark::State &state)
{
    const auto cols = static_cast<std::int64_t>(state.range(0));
    Rng rng(3);
    const Tensor base = Tensor::randomNormal({64, cols}, rng, 1.0);
    for (auto _ : state) {
        Tensor t = base.clone();
        causalSoftmaxRows(t, 0, KernelOptions{false});
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * cols);
}
BENCHMARK(BM_CausalSoftmax)->Arg(128)->Arg(1024);

void
BM_LayerNorm(benchmark::State &state)
{
    const auto width = static_cast<std::int64_t>(state.range(0));
    Rng rng(4);
    const Tensor x = Tensor::randomNormal({64, width}, rng, 1.0);
    Tensor gain({width}), bias({width});
    for (std::int64_t i = 0; i < width; ++i)
        gain.at(i) = 1.0f;
    for (auto _ : state) {
        Tensor y = layerNorm(x, gain, bias, KernelOptions{false});
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * width);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
