/**
 * @file
 * Regenerates Table 6: LIA's performance improvement over IPEX and
 * FlexGen on GNR-A100 and GNR-H100 systems for online and offline
 * inference across the evaluated models.
 */

#include <algorithm>
#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

namespace {

using namespace lia;
using namespace lia::baselines;
using core::Scenario;

struct Band
{
    double lo = 1e30;
    double hi = 0;

    void include(double v)
    {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    std::string str() const
    {
        return fmtDouble(lo, 1) + "-" + fmtDouble(hi, 1) + "x";
    }
};

void
runSystem(const hw::SystemConfig &sys,
          const std::vector<model::ModelConfig> &models)
{
    TextTable table({"scenario", "relative to", "model", "band"});
    for (const auto &m : models) {
        Band online_ipex, online_fg, offline_ipex, offline_fg;
        for (std::int64_t l_out : {32, 256}) {
            for (std::int64_t l_in :
                 {static_cast<std::int64_t>(32),
                  trace::standardLinSweep(l_out).back()}) {
                const Scenario sc{1, l_in, l_out};
                const double lia =
                    liaEngine(sys, m).estimate(sc).latency();
                online_ipex.include(
                    ipexEngine(sys, m).estimate(sc).latency() / lia);
                online_fg.include(
                    FlexGenModel(sys, m).estimate(sc).latency() /
                    lia);
            }
            for (std::int64_t batch : {64, 900}) {
                const Scenario sc{batch, 256, l_out};
                const auto lia = liaEngine(sys, m).estimate(sc);
                offline_ipex.include(
                    lia.throughput(sc) /
                    ipexEngine(sys, m).estimate(sc).throughput(sc));
                offline_fg.include(
                    lia.throughput(sc) /
                    FlexGenModel(sys, m).estimate(sc).throughput(sc));
            }
        }
        table.addRow({"online", "IPEX", m.name, online_ipex.str()});
        table.addRow({"online", "FlexGen", m.name, online_fg.str()});
        table.addRow({"offline", "IPEX", m.name, offline_ipex.str()});
        table.addRow({"offline", "FlexGen", m.name,
                      offline_fg.str()});
        table.addSeparator();
    }
    std::cout << "\n" << sys.name << "\n";
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Table 6: LIA improvement over IPEX and FlexGen on "
                 "Granite Rapids systems\n";
    runSystem(hw::gnrA100(), {model::opt30b(), model::opt175b()});
    runSystem(hw::gnrH100(), {model::opt66b(), model::opt175b()});

    std::cout << "\nPaper bands (GNR-A100): online 1.5-1.7x/5.6-9.1x "
                 "(OPT-30B) and\n1.1-1.2x/13-24x (OPT-175B) vs "
                 "IPEX/FlexGen; offline 1.1-4.2x/1.6-7.5x\nand "
                 "1.1-4.1x/1.5-9.4x. (GNR-H100): online 1.5-1.8x/"
                 "3.9-5.9x (OPT-66B),\n1.2-1.4x/8.3-12x (OPT-175B); "
                 "offline 1.3-3.6x/1.8-3.5x, 1.1-4.4x/1.3-4.1x.\n";
    return 0;
}
