/**
 * @file
 * Extension ablation (beyond the paper): the paper's front-end solves
 * Eq. (1) on the *serial* Eq.-(2) latency even though the back-end
 * executes with overlap (Optimization-2). An execution-aware
 * objective — re-arbitrating the serial winner against the three
 * primary policies under the overlap model — recovers latency the
 * serial objective leaves on the table, at the price of moving the
 * decode crossover earlier than the published Fig. 9.
 */

#include <iostream>

#include "base/table.hh"
#include "core/engine.hh"
#include "core/optimizer.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace {

using namespace lia;
using core::CostModel;
using core::CostModelOptions;
using core::EngineConfig;
using core::EngineModel;
using core::Policy;
using core::PolicyOptimizer;
using core::Scenario;

std::int64_t
decodeCrossover(const CostModel &cm)
{
    PolicyOptimizer opt(cm);
    std::int64_t lo = 1, hi = 4096;
    while (lo < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        model::Workload w{model::Stage::Decode, mid, 512};
        if (opt.optimize(w).policy == Policy::fullCpu())
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

int
main()
{
    std::cout << "Extension: serial vs execution-aware policy "
                 "objective\n\n";

    for (const auto &sys : {hw::sprA100(), hw::sprH100(),
                            hw::gnrA100()}) {
        for (const auto &m : {model::opt30b(), model::opt175b()}) {
            CostModelOptions serial_obj;
            CostModelOptions exec_obj;
            exec_obj.executionAwareObjective = true;
            CostModel cm_serial(sys, m, serial_obj);
            CostModel cm_exec(sys, m, exec_obj);

            std::cout << sys.name << " / " << m.name
                      << ": decode crossover B* "
                      << decodeCrossover(cm_serial) << " (serial) -> "
                      << decodeCrossover(cm_exec) << " (exec-aware)\n";
        }
    }

    std::cout << "\nEnd-to-end effect (latency in seconds):\n";
    TextTable table({"system", "model", "B", "L_in", "serial obj",
                     "exec-aware obj", "gain"});
    for (const auto &sys : {hw::sprA100(), hw::sprH100()}) {
        for (std::int64_t batch : {64, 400, 900}) {
            const auto m = model::opt30b();
            const Scenario sc{batch, 512, 32};
            EngineConfig base;
            EngineConfig ext;
            ext.costOptions.executionAwareObjective = true;
            const double t_base =
                EngineModel(sys, m, base).estimate(sc).latency();
            const double t_ext =
                EngineModel(sys, m, ext).estimate(sc).latency();
            table.addRow({sys.name, m.name, std::to_string(batch),
                          "512", fmtDouble(t_base, 2),
                          fmtDouble(t_ext, 2),
                          fmtRatio(t_base / t_ext)});
        }
    }
    table.print(std::cout);

    std::cout << "\nThe execution-aware objective never loses (gain "
                 ">= 1.0x) and helps\nmost in the mid-batch band "
                 "where parameter streams hide behind CPU\nattention "
                 "— the regime between the serial objective's "
                 "crossovers.\n";
    return 0;
}
