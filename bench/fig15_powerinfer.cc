/**
 * @file
 * Regenerates Figure 15: Llama2-70B online latency and offline
 * throughput of LIA versus PowerInfer on a GNR-A100 system,
 * including PowerInfer's CUDA OOM at B = 900.
 */

#include <iostream>

#include "baselines/powerinfer.hh"
#include "baselines/presets.hh"
#include "base/table.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "trace/azure.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    const auto sys = hw::gnrA100();
    const auto m = model::llama2_70b();
    PowerInferModel powerinfer(sys, m);

    std::cout << "Figure 15: LIA vs PowerInfer, " << m.name << " on "
              << sys.name << "\n\nOnline latency (B = 1)\n";
    {
        TextTable table({"L_in", "L_out", "LIA (s)", "PowerInfer (s)",
                         "LIA advantage"});
        for (std::int64_t l_out : {32, 256}) {
            for (std::int64_t l_in : {32, 512, 1024}) {
                const Scenario sc{1, l_in, l_out};
                const double lia =
                    liaEngine(sys, m).estimate(sc).latency();
                const double pi =
                    powerinfer.estimate(sc).latency();
                table.addRow({std::to_string(l_in),
                              std::to_string(l_out), fmtDouble(lia, 2),
                              fmtDouble(pi, 2), fmtRatio(pi / lia)});
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nOffline throughput (tokens/s)\n";
    {
        TextTable table({"B", "L_in", "LIA", "PowerInfer",
                         "LIA advantage"});
        for (std::int64_t batch : {64, 900}) {
            for (std::int64_t l_in : {32, 512}) {
                const Scenario sc{batch, l_in, 32};
                const auto lia_est = liaEngine(sys, m).estimate(sc);
                const auto pi_est = powerinfer.estimate(sc);
                std::string pi_cell = "CUDA OOM";
                std::string adv = "-";
                if (pi_est.feasible) {
                    pi_cell = fmtDouble(pi_est.throughput(sc), 1);
                    adv = fmtRatio(lia_est.throughput(sc) /
                                   pi_est.throughput(sc));
                }
                table.addRow({std::to_string(batch),
                              std::to_string(l_in),
                              fmtDouble(lia_est.throughput(sc), 1),
                              pi_cell, adv});
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper bands: 1.4-9.0x lower latency and 1.5-15x "
                 "higher throughput;\nPowerInfer OOMs at B=900 and "
                 "pays per-layer PCIe round trips for the\nhot/cold "
                 "neuron split (§7.9).\n";
    return 0;
}
