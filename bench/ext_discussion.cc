/**
 * @file
 * Regenerates the §8 discussion experiments: the Grace-Hopper
 * operating point, the cheap 3x-V100 data-offloading alternative,
 * and the CXL memory-system cost saving.
 */

#include <iostream>

#include "baselines/presets.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "energy/economics.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/footprint.hh"

int
main()
{
    using namespace lia;
    using namespace lia::baselines;
    using core::Scenario;

    std::cout << "§8 discussion experiments\n\n"
              << "(1) Grace-Hopper: 900 GB/s C2C link vs PCIe "
                 "systems, Llama2-70B\n";
    {
        const auto m = model::llama2_70b();
        TextTable table({"system", "policy (decode)", "latency B=1",
                         "tok/s B=64"});
        for (const auto &sys :
             {hw::graceHopper(), hw::gnrH100(), hw::sprH100()}) {
            const Scenario online{1, 512, 32};
            const Scenario offline{64, 512, 32};
            const auto est = liaEngine(sys, m).estimate(online);
            const auto off = liaEngine(sys, m).estimate(offline);
            table.addRow({sys.name,
                          est.decodePolicy.toString(),
                          fmtSeconds(est.latency()),
                          fmtDouble(off.throughput(offline), 1)});
        }
        table.print(std::cout);
        std::cout << "Paper: the C2C link flips the optimal policy "
                     "to all-GPU and yields\n1.8-2.3x lower latency / "
                     "3.0-4.1x higher throughput than GNR-H100.\n";
    }

    std::cout << "\n(2) Cheap multi-GPU alternative: OPT-175B "
                 "data-offloading on 3 pooled V100s\n";
    {
        const auto m = model::opt175b();
        const auto pooled = hw::cheapV100x3Pooled();
        const auto gnr = hw::gnrA100();
        TextTable table({"system", "cost ($)", "latency B=1 (s)",
                         "tok/s B=64"});
        const Scenario online{1, 512, 32};
        const Scenario offline{64, 512, 32};
        const auto lia_on = liaEngine(gnr, m).estimate(online);
        const auto lia_off = liaEngine(gnr, m).estimate(offline);
        const auto v100_on = FlexGenModel(pooled, m).estimate(online);
        const auto v100_off =
            FlexGenModel(pooled, m).estimate(offline);
        table.addRow({gnr.name, fmtDouble(gnr.systemCost, 0),
                      fmtDouble(lia_on.latency(), 2),
                      fmtDouble(lia_off.throughput(offline), 2)});
        table.addRow({pooled.name, fmtDouble(pooled.systemCost, 0),
                      fmtDouble(v100_on.latency(), 2),
                      fmtDouble(v100_off.throughput(offline), 2)});
        std::cout << "";
        table.print(std::cout);
        std::cout << "LIA advantage: "
                  << fmtRatio(v100_on.latency() / lia_on.latency())
                  << " latency, "
                  << fmtRatio(lia_off.throughput(offline) /
                              v100_off.throughput(offline))
                  << " throughput (paper: 6.3-11x and 2.2-16x, "
                     "ignoring inter-V100 traffic).\n";
    }

    std::cout << "\n(3) CXL memory-system cost saving, OPT-175B "
                 "inference data\n";
    {
        energy::EconomicsModel econ;
        const auto sys = hw::withCxl(hw::sprA100());
        const double bytes = 560e9;  // §8's example working set
        TextTable table({"configuration", "memory system cost"});
        table.addRow({"DDR only",
                      "$" + fmtDouble(
                                econ.memorySystemCost(sys, bytes, 0.0),
                                0)});
        table.addRow({"DDR + CXL (43% offloaded)",
                      "$" + fmtDouble(
                                econ.memorySystemCost(sys, bytes,
                                                      0.43),
                                0)});
        table.addRow({"DDR + CXL (half offloaded)",
                      "$" + fmtDouble(
                                econ.memorySystemCost(sys, bytes, 0.5),
                                0)});
        table.print(std::cout);
        std::cout << "Paper: $6,300 -> $3,200, an 8-9% total-system "
                     "cost reduction.\n";
    }
    return 0;
}
