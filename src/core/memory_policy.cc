#include "core/memory_policy.hh"

#include <algorithm>

#include "base/logging.hh"
#include "model/footprint.hh"
#include "model/sublayer.hh"

namespace lia {
namespace core {

double
MemoryPlacement::offloadedFraction() const
{
    const double total = ddrBytes + cxlBytes;
    return total > 0 ? cxlBytes / total : 0.0;
}

namespace {

/** Whether every parameter-dependent sublayer runs on the GPU. */
bool
paramSublayersOnGpu(const Policy &policy)
{
    for (auto sub : model::allSublayers()) {
        if (model::isParamSublayer(sub) &&
            policy.device(sub) == Device::Cpu) {
            return false;
        }
    }
    return true;
}

} // namespace

MemoryPlacement
planMemoryPlacement(const hw::SystemConfig &system,
                    const model::ModelConfig &config, std::int64_t batch,
                    std::int64_t l_in, std::int64_t l_out,
                    const Policy &decode_policy)
{
    const auto fp = model::inferenceFootprint(config, batch, l_in, l_out);

    MemoryPlacement placement;
    placement.ddrBytes = fp.total();

    if (!system.cxl.present()) {
        placement.note = "no CXL pool configured";
    } else if (!paramSublayersOnGpu(decode_policy)) {
        // Observation-2: CPU-computed parameter sublayers would read
        // weights at pool bandwidth; keep them in DDR.
        placement.note = "CPU computes parameter sublayers; params "
                         "stay in DDR";
    } else {
        const double cxl_cap = system.cxl.totalCapacity();
        const double offload = std::min(fp.paramBytes, cxl_cap);
        placement.paramTier = HostTier::Cxl;
        placement.paramCxlFraction =
            fp.paramBytes > 0 ? offload / fp.paramBytes : 0.0;
        placement.cxlBytes = offload;
        placement.ddrBytes = fp.total() - offload;
    }

    if (placement.ddrBytes > system.cpuMemory.capacity) {
        placement.feasible = false;
        placement.note = "DDR capacity exceeded";
    }
    if (placement.cxlBytes > system.cxl.totalCapacity()) {
        placement.feasible = false;
        placement.note = "CXL capacity exceeded";
    }
    return placement;
}

MemoryPlacement
obliviousCxlPlacement(const hw::SystemConfig &system,
                      const model::ModelConfig &config, std::int64_t batch,
                      std::int64_t l_in, std::int64_t l_out)
{
    LIA_ASSERT(system.cxl.present(), system.name, ": no CXL pool");
    const auto fp = model::inferenceFootprint(config, batch, l_in, l_out);

    MemoryPlacement placement;
    placement.paramTier = HostTier::Cxl;
    placement.kvTier = HostTier::Cxl;
    placement.paramCxlFraction = 1.0;
    placement.cxlBytes = fp.paramBytes + fp.kvCacheBytes;
    placement.ddrBytes = fp.activationBytes;
    if (placement.cxlBytes > system.cxl.totalCapacity()) {
        placement.feasible = false;
        placement.note = "CXL capacity exceeded";
    }
    return placement;
}

CostModelOptions
applyPlacement(CostModelOptions options, const MemoryPlacement &placement)
{
    options.paramTier = placement.paramTier;
    options.kvTier = placement.kvTier;
    return options;
}

} // namespace core
} // namespace lia
