#include "core/policy.hh"

#include "base/logging.hh"

namespace lia {
namespace core {

const char *
toString(Device device)
{
    return device == Device::Cpu ? "CPU" : "GPU";
}

Policy::Policy(const std::array<int, model::kNumSublayers> &bits)
{
    for (int i = 0; i < model::kNumSublayers; ++i) {
        LIA_ASSERT(bits[i] == 0 || bits[i] == 1, "policy bits are 0/1");
        if (bits[i])
            mask_ |= 1u << i;
    }
}

Policy
Policy::fromMask(unsigned mask)
{
    LIA_ASSERT(mask < kCount, "policy mask out of range: ", mask);
    Policy p;
    p.mask_ = mask;
    return p;
}

Device
Policy::device(int index) const
{
    LIA_ASSERT(index >= 0 && index < model::kNumSublayers,
               "sublayer index out of range: ", index);
    return (mask_ >> index) & 1u ? Device::Cpu : Device::Gpu;
}

Device
Policy::device(model::Sublayer sublayer) const
{
    return device(static_cast<int>(sublayer));
}

void
Policy::setDevice(int index, Device device)
{
    LIA_ASSERT(index >= 0 && index < model::kNumSublayers,
               "sublayer index out of range: ", index);
    if (device == Device::Cpu)
        mask_ |= 1u << index;
    else
        mask_ &= ~(1u << index);
}

int
Policy::cpuCount() const
{
    int count = 0;
    for (int i = 0; i < model::kNumSublayers; ++i)
        count += onCpu(i) ? 1 : 0;
    return count;
}

std::string
Policy::toString() const
{
    std::string out = "(";
    for (int i = 0; i < model::kNumSublayers; ++i) {
        out += onCpu(i) ? '1' : '0';
        if (i + 1 < model::kNumSublayers)
            out += ',';
    }
    out += ')';
    return out;
}

Policy
Policy::fullGpu()
{
    return Policy::fromMask(0b000000);
}

Policy
Policy::fullCpu()
{
    return Policy::fromMask(0b111111);
}

Policy
Policy::attentionOnCpu()
{
    // Sublayers 2 and 3 (0-based indices 1 and 2) on the CPU.
    return Policy::fromMask(0b000110);
}

} // namespace core
} // namespace lia
