/**
 * @file
 * Exhaustive compute-offloading policy optimizer (§5.1, Eq. 1).
 *
 * The policy space is tiny (2^6 assignments per stage), so LIA's
 * front-end solves Eq. (1) exactly: evaluate the per-layer latency of
 * every policy under the analytical cost model and keep the argmin.
 */

#ifndef LIA_CORE_OPTIMIZER_HH
#define LIA_CORE_OPTIMIZER_HH

#include <vector>

#include "core/cost_model.hh"

namespace lia {
namespace core {

/** A policy with its evaluated per-layer timing. */
struct PolicyChoice
{
    Policy policy;
    LayerTiming timing;

    /** Layer latency under the cost model's overlap setting. */
    double time(bool overlap) const { return timing.time(overlap); }
};

/** Exhaustive Eq.-(1) solver over the 64 policies. */
class PolicyOptimizer
{
  public:
    explicit PolicyOptimizer(const CostModel &cost_model);

    /** Optimal policy for the workload (Eq. 1). */
    PolicyChoice optimize(const model::Workload &workload,
                          bool gpu_resident = false) const;

    /** All 64 policies sorted by ascending layer latency. */
    std::vector<PolicyChoice> rank(const model::Workload &workload,
                                   bool gpu_resident = false) const;

  private:
    const CostModel &costModel_;
};

} // namespace core
} // namespace lia

#endif // LIA_CORE_OPTIMIZER_HH
