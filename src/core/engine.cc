#include "core/engine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "model/footprint.hh"

namespace lia {
namespace core {

using model::Stage;
using model::Workload;

double
InferenceEstimate::throughput(const Scenario &scenario) const
{
    const double t = latency();
    LIA_ASSERT(t > 0, "non-positive latency");
    return static_cast<double>(scenario.batch) *
           static_cast<double>(scenario.lOut) / t;
}

EngineModel::EngineModel(const hw::SystemConfig &system,
                         const model::ModelConfig &model,
                         EngineConfig config)
    : system_(system), model_(model), config_(std::move(config))
{
    model_.validate();
    if (config_.specDraftModel) {
        // Price drafting on the AMX CPU side alone: the draft runs
        // concurrently with nothing (the GPU is between verify
        // passes), and keeping it off the GPU is the whole point of
        // the cooperative split (DESIGN.md §11).
        EngineConfig draft_cfg;
        draft_cfg.costOptions = config_.costOptions;
        draft_cfg.cpuOnly = true;
        draft_cfg.enableResidency = false;
        draft_cfg.autoMemoryPolicy = false;
        draftEngine_ = std::make_shared<const EngineModel>(
            system_, *config_.specDraftModel, std::move(draft_cfg));
    }
}

namespace {

/** Blend two layer timings: f resident, (1-f) streamed. */
LayerTiming
blendTimings(const LayerTiming &streamed, const LayerTiming &resident,
             double f)
{
    LayerTiming mix;
    auto lerp = [f](double s, double r) { return (1.0 - f) * s + f * r; };
    mix.prefetchPcieTime =
        lerp(streamed.prefetchPcieTime, resident.prefetchPcieTime);
    mix.inlinePcieTime =
        lerp(streamed.inlinePcieTime, resident.inlinePcieTime);
    mix.cpuTime = lerp(streamed.cpuTime, resident.cpuTime);
    mix.gpuTime = lerp(streamed.gpuTime, resident.gpuTime);
    mix.paramPcieBytes =
        lerp(streamed.paramPcieBytes, resident.paramPcieBytes);
    mix.kvPcieBytes = lerp(streamed.kvPcieBytes, resident.kvPcieBytes);
    mix.actPcieBytes =
        lerp(streamed.actPcieBytes, resident.actPcieBytes);
    return mix;
}

MemoryPlacement
placementFromOptions(const hw::SystemConfig &system,
                     const model::ModelConfig &config,
                     const Scenario &scenario,
                     const CostModelOptions &opts)
{
    const auto fp = model::inferenceFootprint(config, scenario.batch,
                                              scenario.lIn,
                                              scenario.lOut);
    MemoryPlacement placement;
    placement.paramTier = opts.paramTier;
    placement.kvTier = opts.kvTier;
    double cxl = 0;
    double ddr = fp.activationBytes;
    (opts.paramTier == HostTier::Cxl ? cxl : ddr) += fp.paramBytes;
    if (opts.paramTier == HostTier::Cxl)
        placement.paramCxlFraction = 1.0;
    if (!opts.kvOnGpu)
        (opts.kvTier == HostTier::Cxl ? cxl : ddr) += fp.kvCacheBytes;
    placement.ddrBytes = ddr;
    placement.cxlBytes = cxl;
    if (ddr > system.cpuMemory.capacity) {
        placement.feasible = false;
        placement.note = "DDR capacity exceeded";
    }
    if (cxl > system.cxl.totalCapacity()) {
        placement.feasible = false;
        placement.note = "CXL capacity exceeded";
    }
    return placement;
}

} // namespace

EngineModel::StageContribution
EngineModel::stageTime(const CostModel &cm, const Workload &workload,
                       const ResidencyPlan &residency,
                       std::optional<Policy> forced) const
{
    const bool overlap = cm.options().overlap;
    const auto layers = model_.numLayers;
    PolicyOptimizer optimizer(cm);

    auto choose = [&](bool resident) -> PolicyChoice {
        if (config_.cpuOnly) {
            const Policy p = Policy::fullCpu();
            return {p, cm.layerTiming(workload, p, resident)};
        }
        if (forced.has_value()) {
            return {*forced, cm.layerTiming(workload, *forced, resident)};
        }
        return optimizer.optimize(workload, resident);
    };

    // Overlap works at *stage* granularity: parameter prefetch for
    // streamed layers proceeds whenever the link is free, including
    // while GPU-resident layers compute (LIA interleaves resident and
    // streamed layers for exactly this reason). The stage time is the
    // bottleneck of total link occupancy vs. the total dependency
    // chain; serial execution is the plain component sum.
    struct StageTotals
    {
        double link = 0;
        double chain = 0;
        double serial = 0;
        Breakdown breakdown;
        double pcieBytes = 0;

        void
        add(const LayerTiming &t, double layer_count)
        {
            link += layer_count *
                    (t.prefetchPcieTime + t.inlinePcieTime);
            chain += layer_count *
                     (t.inlinePcieTime + t.cpuTime + t.gpuTime);
            serial += layer_count * t.serialTime();
            breakdown.cpuTime += layer_count * t.cpuTime;
            breakdown.gpuTime += layer_count * t.gpuTime;
            breakdown.comTime +=
                layer_count * (t.prefetchPcieTime + t.inlinePcieTime);
            pcieBytes += layer_count * t.pcieBytes();
        }

        double
        time(bool overlapped) const
        {
            return overlapped ? std::max(link, chain) : serial;
        }
    };

    const PolicyChoice resident_choice = choose(true);
    const int resident_layers =
        config_.cacheGranularity == CacheGranularity::WholeLayer
            ? std::min<int>(residency.residentLayers,
                            static_cast<int>(layers))
            : 0;

    auto evaluate = [&](const PolicyChoice &streamed) {
        StageTotals totals;
        if (config_.cacheGranularity == CacheGranularity::WholeLayer) {
            if (resident_layers > 0)
                totals.add(resident_choice.timing, resident_layers);
            totals.add(streamed.timing, layers - resident_layers);
        } else {
            // FlexGen-style uniform caching: every layer keeps
            // fraction f of its parameters in GPU memory.
            const double f = residency.uniformCachedFraction;
            const auto resident_timing = cm.layerTiming(
                workload, streamed.policy, true);
            const auto mix =
                blendTimings(streamed.timing, resident_timing, f);
            totals.add(mix, static_cast<double>(layers));
        }
        return totals;
    };

    PolicyChoice best_streamed = choose(false);
    StageTotals best_totals = evaluate(best_streamed);

    // Stage-level arbitration of the streamed-layer policy: resident
    // layers donate link slack, which can flip the best choice toward
    // a prefetch-heavy policy that per-layer reasoning rejects.
    if (cm.options().executionAwareObjective && overlap &&
        !config_.cpuOnly && !forced.has_value()) {
        for (const Policy p :
             {Policy::fullCpu(), Policy::attentionOnCpu(),
              Policy::fullGpu()}) {
            PolicyChoice candidate{p,
                                   cm.layerTiming(workload, p, false)};
            const StageTotals totals = evaluate(candidate);
            if (totals.time(true) < best_totals.time(true)) {
                best_totals = totals;
                best_streamed = candidate;
            }
        }
    }

    StageContribution out;
    out.streamedPolicy = best_streamed.policy;
    out.residentPolicy = resident_layers > 0 ? resident_choice.policy
                                             : best_streamed.policy;
    out.time = best_totals.time(overlap);
    out.breakdown = best_totals.breakdown;
    out.pcieBytes = best_totals.pcieBytes;
    return out;
}

IterationEstimate
EngineModel::estimateIteration(const IterationScenario &scenario) const
{
    LIA_ASSERT(scenario.batch >= 1, "batch must be >= 1");
    LIA_ASSERT(scenario.context >= 1, "context must be >= 1");
    LIA_ASSERT(scenario.context <= model_.maxSeqLen,
               model_.name, ": context ", scenario.context,
               " exceeds model maximum ", model_.maxSeqLen);

    if (scenario.specDraftTokens > 0) {
        // Speculative decode step (DESIGN.md §11): k CPU-side draft
        // decodes followed by one k+1-token verify pass of the
        // target. The verify is priced as the marginal cost of
        // extending the target's context by k+1 tokens — the m=k+1
        // GEMM that converts decode's memory-bound GEMVs into
        // compute-dense work.
        LIA_ASSERT(scenario.stage == model::Stage::Decode,
                   "specDraftTokens on a non-decode iteration");
        LIA_ASSERT(draftEngine_ != nullptr,
                   "specDraftTokens priced without a specDraftModel");
        const std::int64_t k = scenario.specDraftTokens;
        LIA_ASSERT(scenario.context + k <= model_.maxSeqLen,
                   model_.name, ": verify end ", scenario.context + k,
                   " exceeds model maximum ", model_.maxSeqLen);

        IterationEstimate spec = estimatePrefillChunk(
            scenario.batch, scenario.context - 1, k + 1);
        const IterationEstimate draft = draftEngine_->estimateIteration(
            {model::Stage::Decode, scenario.batch, scenario.context});
        spec.time += static_cast<double>(k) * draft.time;
        spec.breakdown.cpuTime +=
            static_cast<double>(k) * draft.breakdown.cpuTime;
        spec.breakdown.gpuTime +=
            static_cast<double>(k) * draft.breakdown.gpuTime;
        spec.breakdown.comTime +=
            static_cast<double>(k) * draft.breakdown.comTime;
        spec.pcieBytes += static_cast<double>(k) * draft.pcieBytes;
        spec.feasible = spec.feasible && draft.feasible;
        if (!draft.feasible && spec.note.empty())
            spec.note = draft.note;
        spec.scenario = scenario;
        spec.chunkTokens = 0;
        return spec;
    }

    IterationEstimate est;
    est.scenario = scenario;
    CostModelOptions opts = config_.costOptions;
    const Workload workload{scenario.stage, scenario.batch,
                            scenario.context};

    // §6 memory policy at the iteration's actual batch size: whether
    // parameters may sit in CXL depends on the decode policy at this
    // (B, L), exactly as in the whole-run path. An iteration generates
    // one token, so the placement footprint uses l_out = 1.
    if (config_.autoMemoryPolicy && system_.cxl.present() &&
        !config_.cpuOnly) {
        CostModel probe_cm(system_, model_, opts);
        const Workload probe{Stage::Decode, scenario.batch,
                             scenario.context};
        const Policy probe_policy = config_.forcedDecodePolicy.value_or(
            PolicyOptimizer(probe_cm).optimize(probe).policy);
        est.placement =
            planMemoryPlacement(system_, model_, scenario.batch,
                                scenario.context, 1, probe_policy);
        opts = applyPlacement(opts, est.placement);
    }
    if (!est.placement.feasible) {
        est.feasible = false;
        est.note = est.placement.note;
    }

    const CostModel cm(system_, model_, opts);

    est.residency = ResidencyPlan{};
    est.residency.perLayerBytes = model_.decoderLayerParamBytes();
    if (!config_.cpuOnly && config_.enableResidency) {
        est.residency = planResidency(
            system_, model_, scenario.batch, scenario.context,
            opts.kvOnGpu, scenario.context, config_.cacheGranularity);
    }
    if (opts.kvOnGpu &&
        est.residency.reservedBytes > system_.gpu.memoryCapacity) {
        est.feasible = false;
        est.note = "GPU memory capacity exceeded (CUDA OOM)";
    }

    const auto forced = scenario.stage == Stage::Prefill
                            ? config_.forcedPrefillPolicy
                            : config_.forcedDecodePolicy;
    const auto c = stageTime(cm, workload, est.residency, forced);
    est.time = c.time;
    est.policy = c.streamedPolicy;
    est.residentPolicy = c.residentPolicy;
    est.breakdown = c.breakdown;
    est.pcieBytes = c.pcieBytes;
    return est;
}

IterationEstimate
EngineModel::estimatePrefillChunk(std::int64_t batch,
                                 std::int64_t history,
                                 std::int64_t tokens) const
{
    LIA_ASSERT(batch >= 1, "batch must be >= 1");
    LIA_ASSERT(tokens >= 1, "chunk must process at least one token");
    LIA_ASSERT(history >= 0, "negative KV history");
    LIA_ASSERT(history + tokens <= model_.maxSeqLen,
               model_.name, ": chunk end ", history + tokens,
               " exceeds model maximum ", model_.maxSeqLen);

    IterationEstimate full = estimateIteration(
        {Stage::Prefill, batch, history + tokens});
    full.chunkTokens = tokens;
    if (history <= 0)
        return full;

    const IterationEstimate prior =
        estimateIteration({Stage::Prefill, batch, history});
    IterationEstimate chunk = full;
    chunk.time = full.time - prior.time;
    chunk.pcieBytes = std::max(full.pcieBytes - prior.pcieBytes, 0.0);
    chunk.breakdown.cpuTime =
        std::max(full.breakdown.cpuTime - prior.breakdown.cpuTime, 0.0);
    chunk.breakdown.gpuTime =
        std::max(full.breakdown.gpuTime - prior.breakdown.gpuTime, 0.0);
    chunk.breakdown.comTime =
        std::max(full.breakdown.comTime - prior.breakdown.comTime, 0.0);
    if (chunk.time <= 0) {
        // The optimizer picked cheaper policies for the longer prefill
        // than for the history alone; the difference is not a price.
        // Charge the chunk as a standalone prefill instead.
        IterationEstimate standalone =
            estimateIteration({Stage::Prefill, batch, tokens});
        standalone.scenario = full.scenario;
        standalone.chunkTokens = tokens;
        return standalone;
    }
    return chunk;
}

InferenceEstimate
EngineModel::estimate(const Scenario &scenario) const
{
    LIA_ASSERT(scenario.batch >= 1, "batch must be >= 1");
    LIA_ASSERT(scenario.lIn >= 1 && scenario.lOut >= 1,
               "sequence lengths must be >= 1");
    LIA_ASSERT(scenario.lIn + scenario.lOut <= model_.maxSeqLen,
               model_.name, ": context ", scenario.lIn + scenario.lOut,
               " exceeds model maximum ", model_.maxSeqLen);

    InferenceEstimate est;
    CostModelOptions opts = config_.costOptions;

    // --- Memory-offloading policy (§6) -------------------------------
    if (config_.autoMemoryPolicy && system_.cxl.present() &&
        !config_.cpuOnly) {
        // Probe the decode policy with DDR-resident data first.
        CostModel probe_cm(system_, model_, opts);
        Workload probe{Stage::Decode, scenario.batch,
                       scenario.lIn + scenario.lOut / 2};
        Policy probe_policy = config_.forcedDecodePolicy.value_or(
            PolicyOptimizer(probe_cm).optimize(probe).policy);
        est.placement = planMemoryPlacement(system_, model_,
                                            scenario.batch, scenario.lIn,
                                            scenario.lOut, probe_policy);
        opts = applyPlacement(opts, est.placement);
    } else {
        est.placement =
            placementFromOptions(system_, model_, scenario, opts);
    }
    if (!est.placement.feasible) {
        est.feasible = false;
        est.note = est.placement.note;
    }

    const CostModel cm(system_, model_, opts);

    // --- Optimization-1 residency planning ---------------------------
    est.residency = ResidencyPlan{};
    est.residency.perLayerBytes = model_.decoderLayerParamBytes();
    if (!config_.cpuOnly && config_.enableResidency) {
        est.residency = planResidency(
            system_, model_, scenario.batch, scenario.lIn, opts.kvOnGpu,
            scenario.lIn + scenario.lOut, config_.cacheGranularity);
    }
    if (opts.kvOnGpu &&
        est.residency.reservedBytes > system_.gpu.memoryCapacity) {
        est.feasible = false;
        est.note = "GPU memory capacity exceeded (CUDA OOM)";
    }

    // --- Prefill stage ------------------------------------------------
    {
        Workload prefill{Stage::Prefill, scenario.batch, scenario.lIn};
        const auto c = stageTime(cm, prefill, est.residency,
                                 config_.forcedPrefillPolicy);
        est.prefillTime = c.time;
        est.prefillPolicy = c.streamedPolicy;
        est.residentPrefillPolicy = c.residentPolicy;
        est.breakdown.cpuTime += c.breakdown.cpuTime;
        est.breakdown.gpuTime += c.breakdown.gpuTime;
        est.breakdown.comTime += c.breakdown.comTime;
        est.pcieBytes += c.pcieBytes;
    }

    // --- Decode stage: one step per generated token -------------------
    for (std::int64_t t = 0; t < scenario.lOut; ++t) {
        Workload decode{Stage::Decode, scenario.batch, scenario.lIn + t};
        const auto c = stageTime(cm, decode, est.residency,
                                 config_.forcedDecodePolicy);
        est.decodeTime += c.time;
        if (t == 0) {
            est.decodePolicy = c.streamedPolicy;
            est.residentDecodePolicy = c.residentPolicy;
        }
        est.breakdown.cpuTime += c.breakdown.cpuTime;
        est.breakdown.gpuTime += c.breakdown.gpuTime;
        est.breakdown.comTime += c.breakdown.comTime;
        est.pcieBytes += c.pcieBytes;
    }

    return est;
}

double
expectedSpeculativeTokens(double alpha, std::int64_t k)
{
    LIA_ASSERT(alpha >= 0.0 && alpha <= 1.0,
               "acceptance rate ", alpha, " outside [0, 1]");
    LIA_ASSERT(k >= 0, "negative draft length");
    // Each of the k drafts survives only while every earlier one did
    // (i.i.d. per-draft acceptance alpha), and the correction/bonus
    // token always lands: E = 1 + alpha + ... + alpha^k.
    double expected = 0.0;
    double term = 1.0;
    for (std::int64_t i = 0; i <= k; ++i) {
        expected += term;
        term *= alpha;
    }
    return expected;
}

} // namespace core
} // namespace lia
