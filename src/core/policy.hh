/**
 * @file
 * Compute-offloading policy vectors (§5.1).
 *
 * A policy assigns each of the six decoder sublayers to the CPU or the
 * GPU. We follow the paper text's convention: p_i = 1 means sublayer i
 * is computed on the CPU, p_i = 0 on the GPU. (The printed equations use
 * the inverted convention; see DESIGN.md §4.)
 */

#ifndef LIA_CORE_POLICY_HH
#define LIA_CORE_POLICY_HH

#include <array>
#include <cstdint>
#include <string>

#include "model/sublayer.hh"

namespace lia {
namespace core {

/** Where a sublayer executes. */
enum class Device { Gpu = 0, Cpu = 1 };

const char *toString(Device device);

/** Offloading policy vector p = (p_1 ... p_6). */
class Policy
{
  public:
    /** All-GPU policy (0,0,0,0,0,0). */
    Policy() = default;

    /** Construct from six 0/1 flags, p_i = 1 meaning CPU. */
    explicit Policy(const std::array<int, model::kNumSublayers> &bits);

    /** Construct from a 6-bit mask; bit i is sublayer i's flag. */
    static Policy fromMask(unsigned mask);

    /** Device of sublayer @p index (0-based). */
    Device device(int index) const;
    Device device(model::Sublayer sublayer) const;

    /** Set sublayer @p index to @p device. */
    void setDevice(int index, Device device);

    /** Whether the sublayer runs on the CPU (p_i == 1). */
    bool onCpu(int index) const { return device(index) == Device::Cpu; }

    /** 6-bit mask form; bit i set means sublayer i on CPU. */
    unsigned mask() const { return mask_; }

    /** Number of CPU-assigned sublayers. */
    int cpuCount() const;

    /** Render as "(p1,p2,p3,p4,p5,p6)". */
    std::string toString() const;

    bool operator==(const Policy &other) const = default;

    // --- The three primary policies identified in §7.1 ---

    /** Full GPU compute: p = (0,0,0,0,0,0). */
    static Policy fullGpu();

    /** Full CPU offloading: p = (1,1,1,1,1,1). */
    static Policy fullCpu();

    /** Partial CPU offloading (attention on CPU): p = (0,1,1,0,0,0). */
    static Policy attentionOnCpu();

    /** Number of distinct policies (2^6). */
    static constexpr unsigned kCount = 64;

  private:
    unsigned mask_ = 0;
};

} // namespace core
} // namespace lia

#endif // LIA_CORE_POLICY_HH
