/**
 * @file
 * GPU-memory residency planning (Optimization-1, §5.2).
 *
 * LIA fills otherwise-unused GPU memory with *whole decoder layers*;
 * resident layers never pay the parameter PCIe transfer. FlexGen instead
 * caches per-sublayer slices across all layers — a coarser allocation
 * unit that wastes part of the capacity. Both granularities are
 * implemented so the Table 4 ablation and the FlexGen baseline share
 * this planner.
 */

#ifndef LIA_CORE_RESIDENCY_HH
#define LIA_CORE_RESIDENCY_HH

#include <cstdint>

#include "hw/system.hh"
#include "model/config.hh"

namespace lia {
namespace core {

/** Allocation unit for cached parameters in GPU memory. */
enum class CacheGranularity
{
    WholeLayer,          //!< LIA: all sublayers of as many layers as fit
    SublayerAcrossLayers //!< FlexGen: one weight matrix slice x all layers
};

/** Result of the GPU-memory planning pass. */
struct ResidencyPlan
{
    /** Decoder layers whose parameters fully reside in GPU memory. */
    int residentLayers = 0;

    /**
     * Fraction of *every* layer's parameter bytes cached on the GPU.
     * Zero under WholeLayer granularity; used by the FlexGen model.
     */
    double uniformCachedFraction = 0;

    double perLayerBytes = 0;   //!< parameter bytes of one decoder layer
    double reservedBytes = 0;   //!< working set kept free in GPU memory
    double gpuBytesUsed = 0;    //!< bytes of parameters actually cached

    /** Fraction of layers resident, for reporting. */
    double residentFraction(std::int64_t total_layers) const;
};

/**
 * Plan parameter residency for an inference run.
 *
 * @param system       the platform (GPU memory capacity matters)
 * @param config       the model
 * @param batch        batch size B
 * @param prompt_len   input token length (activation working set)
 * @param kv_on_gpu    reserve room for the whole KV cache in HBM
 * @param max_context  final context length (KV reservation size)
 * @param granularity  allocation unit (LIA vs. FlexGen)
 */
ResidencyPlan planResidency(const hw::SystemConfig &system,
                            const model::ModelConfig &config,
                            std::int64_t batch, std::int64_t prompt_len,
                            bool kv_on_gpu, std::int64_t max_context,
                            CacheGranularity granularity =
                                CacheGranularity::WholeLayer);

} // namespace core
} // namespace lia

#endif // LIA_CORE_RESIDENCY_HH
