/**
 * @file
 * Analytical latency model of a single decoder layer (§5.1, Eq. 1-9).
 *
 * Given a system, a model, and an offloading policy, computes the load /
 * compute / store latency of every sublayer, split into:
 *
 *  - prefetchable PCIe time: parameter (and decode KV) transfers that
 *    double-buffering can overlap with compute (Optimization-2, Fig. 7);
 *  - inline PCIe time: activation, residual, freshly-produced KV, and
 *    KV-store transfers that sit on the dependency critical path;
 *  - CPU and GPU compute time, roofline-style with size-dependent
 *    efficiency, honouring which host tier (DDR or CXL) each operand
 *    class resides in (§6).
 *
 * The same object reports both the serial layer time (overlap disabled,
 * used by Table 5's breakdown) and the steady-state pipelined time
 * max(prefetch, inline + compute) used end-to-end.
 */

#ifndef LIA_CORE_COST_MODEL_HH
#define LIA_CORE_COST_MODEL_HH

#include "core/policy.hh"
#include "hw/system.hh"
#include "model/config.hh"
#include "model/sublayer.hh"

namespace lia {
namespace core {

/** Host-side memory tier holding a class of data. */
enum class HostTier { Ddr, Cxl };

const char *toString(HostTier tier);

/** Knobs controlling the execution model. */
struct CostModelOptions
{
    /** Optimization-2: overlap transfers with compute. */
    bool overlap = true;

    /** Host tier holding model parameters (§6 policy may pick Cxl). */
    HostTier paramTier = HostTier::Ddr;

    /** Host tier holding the KV cache (§6 keeps it in DDR). */
    HostTier kvTier = HostTier::Ddr;

    /**
     * Keep the KV cache in GPU HBM instead of host memory. Used by the
     * small-batch data-offloading baselines (§3); LIA itself keeps all
     * intermediate values host-side.
     */
    bool kvOnGpu = false;

    /** Mini-batches pipelined through the prefill stage (Fig. 7). */
    int prefillMiniBatches = 2;

    /**
     * FlexGen-style decode mini-batching. LIA deliberately computes the
     * full batch in decode because compute does not scale down linearly
     * with mini-batch size (§5.2, Optimization-2).
     */
    bool decodeMiniBatchOverlap = false;
    int decodeMiniBatches = 4;

    /**
     * Extension (not in the paper): after the serial Eq.-(1) scan,
     * re-arbitrate the winner against the three §7.1 primary policies
     * under the overlap-aware execution model. The paper's front-end
     * optimizes the serial Eq. (2) even though the back-end overlaps,
     * which can leave latency on the table when a policy's parameter
     * stream hides fully behind compute; this flag recovers it. Off
     * by default to reproduce the published Fig.-9 crossovers.
     */
    bool executionAwareObjective = false;
};

/** Timing of one sublayer under a policy. */
struct SublayerTiming
{
    double prefetchPcieTime = 0;  //!< overlappable PCIe transfer time
    double inlinePcieTime = 0;    //!< critical-path load transfers
    double storePcieTime = 0;     //!< GPU->CPU result/KV store-back
    double cpuTime = 0;           //!< CPU compute time
    double gpuTime = 0;           //!< GPU compute time

    double paramPcieBytes = 0;    //!< PCIe bytes moving parameters
    double kvPcieBytes = 0;       //!< PCIe bytes moving KV data
    double actPcieBytes = 0;      //!< PCIe bytes moving activations

    double pcieBytes() const
    {
        return paramPcieBytes + kvPcieBytes + actPcieBytes;
    }

    /** Serial (unoverlapped) time of the sublayer. */
    double serialTime() const
    {
        return prefetchPcieTime + inlinePcieTime + storePcieTime +
               cpuTime + gpuTime;
    }
};

/** Aggregated timing of one decoder layer under a policy. */
struct LayerTiming
{
    double prefetchPcieTime = 0;
    double inlinePcieTime = 0;
    double cpuTime = 0;
    double gpuTime = 0;

    double paramPcieBytes = 0;
    double kvPcieBytes = 0;
    double actPcieBytes = 0;

    double pcieBytes() const
    {
        return paramPcieBytes + kvPcieBytes + actPcieBytes;
    }

    /** Sum of everything: overlap disabled. */
    double serialTime() const
    {
        return prefetchPcieTime + inlinePcieTime + cpuTime + gpuTime;
    }

    /** Steady-state per-layer time with double-buffered prefetch. */
    double overlappedTime() const;

    /** Pick per the overlap flag. */
    double time(bool overlap) const
    {
        return overlap ? overlappedTime() : serialTime();
    }
};

/**
 * Analytical per-layer latency model for one (system, model) pair.
 */
class CostModel
{
  public:
    CostModel(const hw::SystemConfig &system,
              const model::ModelConfig &model,
              CostModelOptions options = {});

    /** Timing of sublayer @p index (0-based) of a decoder layer. */
    SublayerTiming sublayerTiming(const model::Workload &workload,
                                  const Policy &policy, int index,
                                  bool gpu_resident = false) const;

    /** Timing of a whole decoder layer. */
    LayerTiming layerTiming(const model::Workload &workload,
                            const Policy &policy,
                            bool gpu_resident = false) const;

    const CostModelOptions &options() const { return options_; }
    const hw::SystemConfig &system() const { return system_; }
    const model::ModelConfig &model() const { return model_; }

    /** Replace the option set (e.g. to flip CXL placement). */
    void setOptions(const CostModelOptions &options);

  private:
    /** Effective CPU->GPU bandwidth for data sourced from @p tier. */
    double hostLinkBandwidth(HostTier tier) const;

    /** Host-tier read bandwidth seen by CPU compute. */
    double cpuTierBandwidth(HostTier tier) const;

    /** PCIe time for @p bytes sourced from @p tier. */
    double linkTime(double bytes, HostTier tier) const;

    /**
     * Compute time of a sublayer on @p device, with operand Y read from
     * @p tier_y when on the CPU, split into @p chunks mini-batches.
     */
    double computeTime(Device device, const model::SublayerCosts &costs,
                       double rows, HostTier tier_y, int chunks) const;

    /** Mini-batch chunk count for the stage/policy under options. */
    int chunksFor(model::Stage stage, const Policy &policy) const;

    hw::SystemConfig system_;
    model::ModelConfig model_;
    CostModelOptions options_;
};

} // namespace core
} // namespace lia

#endif // LIA_CORE_COST_MODEL_HH
