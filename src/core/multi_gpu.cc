#include "core/multi_gpu.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace core {

MultiGpuLiaModel::MultiGpuLiaModel(const hw::SystemConfig &base,
                                   const model::ModelConfig &model,
                                   int gpu_count,
                                   const hw::Link &fabric)
    : pooled_(base), model_(model), gpuCount_(gpu_count),
      fabric_(fabric)
{
    LIA_ASSERT(gpu_count >= 1, "need at least one GPU");
    model_.validate();
    const double n = static_cast<double>(gpu_count);
    pooled_.name = base.name + "-TPx" + std::to_string(gpu_count);
    pooled_.gpu.peakMatmulThroughput *= n;
    pooled_.gpu.memoryBandwidth *= n;
    pooled_.gpu.memoryCapacity *= n;
    // Each GPU rides its own host-link lanes; parameters shard, so
    // the aggregate streaming bandwidth scales too (§8).
    pooled_.hostLink.bandwidth *= n;
    pooled_.systemCost +=
        (n - 1.0) * 0.35 * base.systemCost;  // extra cards
}

double
MultiGpuLiaModel::allReduceTime(double bytes) const
{
    if (gpuCount_ == 1)
        return 0.0;
    const double n = static_cast<double>(gpuCount_);
    const double steps = 2.0 * (n - 1.0);
    return steps * fabric_.latency +
           steps * (bytes / n) / fabric_.bandwidth;
}

double
MultiGpuLiaModel::layerCommTime(const model::Workload &workload,
                                const Policy &policy) const
{
    if (gpuCount_ == 1)
        return 0.0;
    const double rows = static_cast<double>(workload.batch) *
                        static_cast<double>(workload.tokens());
    const double hidden_bytes =
        units::bytesPerElement * rows *
        static_cast<double>(model_.dModel);
    double comm = 0;
    // Megatron-style TP: a row-parallel matmul's output must be
    // all-reduced — after the attention output projection and after
    // FC2, whenever those sublayers run on the GPUs.
    if (policy.device(model::Sublayer::OutProjection) == Device::Gpu)
        comm += allReduceTime(hidden_bytes);
    if (policy.device(model::Sublayer::Fc2) == Device::Gpu)
        comm += allReduceTime(hidden_bytes);
    return comm;
}

double
MultiGpuLiaModel::iterationCommTime(const model::Workload &workload,
                                    const Policy &policy) const
{
    return static_cast<double>(model_.numLayers) *
           layerCommTime(workload, policy);
}

InferenceEstimate
MultiGpuLiaModel::estimate(const Scenario &scenario) const
{
    EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = pooled_.cxl.present();
    EngineModel engine(pooled_, model_, cfg);
    InferenceEstimate est = engine.estimate(scenario);

    const double layers = static_cast<double>(model_.numLayers);

    // Prefill all-reduces: once per layer.
    model::Workload prefill{model::Stage::Prefill, scenario.batch,
                            scenario.lIn};
    const double prefill_comm =
        layers * layerCommTime(prefill, est.prefillPolicy);
    est.prefillTime += prefill_comm;

    // Decode all-reduces: once per layer per generated token.
    double decode_comm = 0;
    for (std::int64_t t = 0; t < scenario.lOut; ++t) {
        model::Workload decode{model::Stage::Decode, scenario.batch,
                               scenario.lIn + t};
        decode_comm += layers * layerCommTime(decode, est.decodePolicy);
    }
    est.decodeTime += decode_comm;
    est.breakdown.comTime += prefill_comm + decode_comm;
    return est;
}

} // namespace core
} // namespace lia
