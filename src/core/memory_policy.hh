/**
 * @file
 * CXL memory-offloading policy (§6).
 *
 * For throughput-driven (large-B) inference, parameters move to the
 * interleaved CXL pool — the CPU-GPU link stays the bottleneck, so GPU
 * transfer speed is unchanged (Observation-1) — while the KV cache stays
 * in DDR so CPU-computed attention keeps full memory bandwidth
 * (Observation-2). The planner checks capacities and reports how much
 * DDR the placement frees.
 */

#ifndef LIA_CORE_MEMORY_POLICY_HH
#define LIA_CORE_MEMORY_POLICY_HH

#include <cstdint>
#include <string>

#include "core/cost_model.hh"
#include "core/policy.hh"
#include "hw/system.hh"
#include "model/config.hh"

namespace lia {
namespace core {

/** Host-side placement decision for one inference run. */
struct MemoryPlacement
{
    HostTier paramTier = HostTier::Ddr;
    HostTier kvTier = HostTier::Ddr;

    /** Fraction of parameter bytes actually placed in CXL. */
    double paramCxlFraction = 0;

    double ddrBytes = 0;   //!< bytes demanded from the DDR tier
    double cxlBytes = 0;   //!< bytes demanded from the CXL pool

    bool feasible = true;      //!< all tiers within capacity
    std::string note;          //!< reason when infeasible / fallback

    /** Fraction of total inference data offloaded out of DDR. */
    double offloadedFraction() const;
};

/**
 * Plan data placement for an inference run.
 *
 * Parameters go to CXL only when (a) a CXL pool exists and (b) the
 * decode-stage policy keeps all parameter-dependent sublayers on the
 * GPU — otherwise CPU compute would read weights through the slow pool
 * (Observation-2), so the planner falls back to DDR.
 */
MemoryPlacement planMemoryPlacement(const hw::SystemConfig &system,
                                    const model::ModelConfig &config,
                                    std::int64_t batch,
                                    std::int64_t l_in, std::int64_t l_out,
                                    const Policy &decode_policy);

/**
 * The oblivious placement the paper warns against: everything in CXL.
 * Used by the Fig. 8(b)/Observation-2 experiments.
 */
MemoryPlacement obliviousCxlPlacement(const hw::SystemConfig &system,
                                      const model::ModelConfig &config,
                                      std::int64_t batch,
                                      std::int64_t l_in,
                                      std::int64_t l_out);

/** Apply a placement to cost-model options. */
CostModelOptions applyPlacement(CostModelOptions options,
                                const MemoryPlacement &placement);

} // namespace core
} // namespace lia

#endif // LIA_CORE_MEMORY_POLICY_HH
