/**
 * @file
 * End-to-end inference estimator — LIA's algorithm front-end (§5, §7).
 *
 * Combines the analytical cost model, the exhaustive policy optimizer,
 * the Optimization-1 residency planner, and the §6 memory-offloading
 * policy into a single façade that mirrors the paper's latency model:
 * per-stage decoder-layer latency summed over layers, prefill plus
 * every decode step (with the KV context growing per token).
 *
 * The same engine, with different EngineConfig presets, models LIA and
 * the baselines (IPEX, FlexGen, naive data offloading) — isolating the
 * policy differences exactly as the paper's comparison does.
 */

#ifndef LIA_CORE_ENGINE_HH
#define LIA_CORE_ENGINE_HH

#include <memory>
#include <optional>
#include <string>

#include "core/cost_model.hh"
#include "core/memory_policy.hh"
#include "core/optimizer.hh"
#include "core/residency.hh"

namespace lia {
namespace core {

/** One inference operating point. */
struct Scenario
{
    std::int64_t batch = 1;   //!< B
    std::int64_t lIn = 512;   //!< input token length
    std::int64_t lOut = 32;   //!< output token length
};

/** Engine behaviour preset. */
struct EngineConfig
{
    CostModelOptions costOptions;

    /** Solve Eq. (1) per stage; otherwise use the forced policies. */
    bool optimizePolicies = true;
    std::optional<Policy> forcedPrefillPolicy;
    std::optional<Policy> forcedDecodePolicy;

    /** Optimization-1 (GPU parameter caching). */
    bool enableResidency = true;
    CacheGranularity cacheGranularity = CacheGranularity::WholeLayer;

    /** CPU-only execution (the IPEX baseline). */
    bool cpuOnly = false;

    /** Apply the §6 CXL memory-offloading policy automatically
     *  (a no-op on systems without a CXL pool). */
    bool autoMemoryPolicy = true;

    /**
     * Speculative-decoding draft companion (DESIGN.md §11). When set,
     * decode iterations with IterationScenario::specDraftTokens > 0
     * are priced as draft + verify: k CPU-side decode steps of this
     * model plus one k+1-token verify pass of the target. Unset
     * disables speculative pricing (specDraftTokens then panics).
     */
    std::optional<model::ModelConfig> specDraftModel;
};

/** Unoverlapped component totals (Table 5's breakdown). */
struct Breakdown
{
    double cpuTime = 0;  //!< CPU compute seconds
    double gpuTime = 0;  //!< GPU compute seconds
    double comTime = 0;  //!< CPU-GPU communication seconds
};

/** Result of estimating one scenario. */
struct InferenceEstimate
{
    bool feasible = true;   //!< memory capacities respected
    std::string note;       //!< OOM reason or memory-policy remark

    double prefillTime = 0;  //!< seconds
    double decodeTime = 0;   //!< seconds across all generated tokens

    Policy prefillPolicy;    //!< streamed-layer prefill policy
    Policy decodePolicy;     //!< streamed-layer decode policy (1st step)
    Policy residentPrefillPolicy;  //!< policy of GPU-resident layers
    Policy residentDecodePolicy;

    ResidencyPlan residency;
    MemoryPlacement placement;
    Breakdown breakdown;
    double pcieBytes = 0;    //!< total CPU-GPU traffic

    /** End-to-end seconds per query. */
    double latency() const { return prefillTime + decodeTime; }

    /** Generated tokens per second for the scenario. */
    double throughput(const Scenario &scenario) const;
};

/**
 * One scheduler iteration: a single stage executed once at a dynamic
 * batch size. A continuous-batching serving engine prices every
 * iteration through this instead of whole requests, because the batch
 * composition (and therefore the optimal policy) changes as requests
 * join and leave between iterations.
 */
struct IterationScenario
{
    model::Stage stage = model::Stage::Decode;

    /** Sequences taking part in this iteration. */
    std::int64_t batch = 1;

    /**
     * Token context: the prompt length for prefill iterations, the KV
     * history length for a decode step.
     */
    std::int64_t context = 512;

    /**
     * Speculative draft tokens verified this decode iteration (0 for
     * a plain decode step). A spec iteration prices k draft-model
     * decode steps plus one k+1-token verify pass of the target and
     * emits a variable 1..k+1 tokens; the expected yield at a given
     * acceptance rate is expectedSpeculativeTokens().
     */
    std::int64_t specDraftTokens = 0;
};

/** Cost of one scheduler iteration. */
struct IterationEstimate
{
    bool feasible = true;
    std::string note;

    double time = 0;          //!< seconds for the whole iteration
    Policy policy;            //!< streamed-layer policy chosen
    Policy residentPolicy;    //!< policy of GPU-resident layers
    Breakdown breakdown;
    double pcieBytes = 0;
    MemoryPlacement placement;
    ResidencyPlan residency;

    /**
     * The operating point this estimate priced — plan introspection
     * for callers that execute or cross-check priced iterations (the
     * runtime-backed serving path asserts the executed stage, batch,
     * and context against it). For a chunked prefill, context is the
     * chunk's end position (history + tokens) and chunkTokens the
     * tokens the chunk itself processes; chunkTokens == 0 otherwise.
     */
    IterationScenario scenario;
    std::int64_t chunkTokens = 0;
};

/** LIA's end-to-end analytical engine. */
class EngineModel
{
  public:
    EngineModel(const hw::SystemConfig &system,
                const model::ModelConfig &model,
                EngineConfig config = {});

    /** Estimate the full run for @p scenario. */
    InferenceEstimate estimate(const Scenario &scenario) const;

    /**
     * Price one scheduler iteration at its current dynamic batch size,
     * re-running the §6 memory policy, the Optimization-1 residency
     * plan, and the Eq.-(1) policy optimization for the iteration's
     * actual (stage, B, L) — the per-iteration analogue of estimate()
     * used by the continuous-batching serving engine.
     */
    IterationEstimate
    estimateIteration(const IterationScenario &scenario) const;

    /**
     * Price one *partial* prefill chunk: @p tokens prompt tokens
     * processed on top of @p history tokens of already-materialised KV
     * cache (chunked prefill). Priced as the marginal cost of
     * extending a prefill from @p history to @p history + @p tokens,
     * so the chunk costs of one prompt telescope back to the
     * monolithic prefill cost while later chunks correctly pay for
     * attention over the growing history. Falls back to pricing the
     * chunk as a standalone prefill when the telescoped difference is
     * not positive (policy switches between the two operating points).
     */
    IterationEstimate estimatePrefillChunk(std::int64_t batch,
                                           std::int64_t history,
                                           std::int64_t tokens) const;

    const hw::SystemConfig &system() const { return system_; }
    const model::ModelConfig &model() const { return model_; }
    const EngineConfig &config() const { return config_; }

  private:
    /** Per-layer time for one workload given residency interpolation. */
    struct StageContribution
    {
        double time = 0;
        Policy streamedPolicy;
        Policy residentPolicy;
        Breakdown breakdown;
        double pcieBytes = 0;
    };

    StageContribution stageTime(const CostModel &cm,
                                const model::Workload &workload,
                                const ResidencyPlan &residency,
                                std::optional<Policy> forced) const;

    hw::SystemConfig system_;
    model::ModelConfig model_;
    EngineConfig config_;

    /**
     * CPU-only pricing engine over config_.specDraftModel, built at
     * construction when set. Shared (not unique) so EngineModel stays
     * copyable — serving engines hold it by value; the draft engine
     * is immutable after construction so sharing is safe.
     */
    std::shared_ptr<const EngineModel> draftEngine_;
};

/**
 * Expected emitted tokens per speculative step at per-draft acceptance
 * rate @p alpha and draft length @p k: sum of alpha^i for i in [0, k]
 * = (1 - alpha^(k+1)) / (1 - alpha), reaching k+1 as alpha -> 1. The
 * serving layer divides the spec iteration price by this to compare
 * effective seconds/token against plain decode.
 */
double expectedSpeculativeTokens(double alpha, std::int64_t k);

} // namespace core
} // namespace lia

#endif // LIA_CORE_ENGINE_HH
