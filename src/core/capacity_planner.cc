#include "core/capacity_planner.hh"

#include <algorithm>

#include "base/logging.hh"
#include "model/footprint.hh"

namespace lia {
namespace core {

namespace {

EngineConfig
liaConfig(const hw::SystemConfig &system)
{
    EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = system.cxl.present();
    return cfg;
}

} // namespace

CapacityPlanner::CapacityPlanner(const hw::SystemConfig &system,
                                 const model::ModelConfig &model)
    : system_(system), model_(model),
      engine_(system, model, liaConfig(system))
{
    model_.validate();
}

std::int64_t
CapacityPlanner::maxFeasibleBatch(const PlannerRequest &request) const
{
    // With a CXL pool, parameters can leave DDR entirely (§6), so the
    // batch budget is DDR for KV/activations plus the pool for
    // parameters — capped by what actually fits the pool.
    const double params = model_.totalParamBytes();
    double ddr_budget = system_.cpuMemory.capacity;
    if (system_.cxl.present()) {
        ddr_budget -=
            std::max(0.0, params - system_.cxl.totalCapacity());
    } else {
        ddr_budget -= params;
    }
    if (ddr_budget <= 0)
        return 0;
    const auto cap = model::maxBatchForCapacity(
        model_, request.lIn, request.lOut, ddr_budget, false);
    return std::min(cap, request.maxBatch);
}

PlannerResult
CapacityPlanner::plan(const PlannerRequest &request) const
{
    LIA_ASSERT(request.lIn >= 1 && request.lOut >= 1,
               "bad request lengths");
    LIA_ASSERT(request.maxBatch >= 1, "bad max batch");

    PlannerResult result;
    const std::int64_t cap = maxFeasibleBatch(request);
    if (cap == 0) {
        result.note = "model does not fit host memory";
        return result;
    }

    // Geometric batch grid, always including the capacity edge.
    std::vector<std::int64_t> grid;
    for (std::int64_t b = 1; b < cap; b *= 2)
        grid.push_back(b);
    grid.push_back(cap);

    for (auto batch : grid) {
        const Scenario sc{batch, request.lIn, request.lOut};
        PlannerCandidate candidate;
        candidate.batch = batch;
        candidate.estimate = engine_.estimate(sc);
        if (!candidate.estimate.feasible)
            continue;
        candidate.throughput = candidate.estimate.throughput(sc);
        candidate.meetsSlo =
            request.latencySlo <= 0 ||
            candidate.estimate.latency() <= request.latencySlo;
        result.candidates.push_back(candidate);

        if (!candidate.meetsSlo)
            continue;
        if (!result.feasible ||
            candidate.throughput > result.best.throughput) {
            result.feasible = true;
            result.best = candidate;
        }
    }

    if (!result.feasible) {
        result.note = result.candidates.empty()
                          ? "no feasible batch size"
                          : "no batch size meets the latency SLO";
    } else if (result.best.estimate.placement.paramTier ==
               HostTier::Cxl) {
        result.note = "parameters offloaded to CXL";
    }
    return result;
}

} // namespace core
} // namespace lia
