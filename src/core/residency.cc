#include "core/residency.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/units.hh"
#include "model/footprint.hh"

namespace lia {
namespace core {

double
ResidencyPlan::residentFraction(std::int64_t total_layers) const
{
    LIA_ASSERT(total_layers > 0, "no layers");
    return static_cast<double>(residentLayers) /
           static_cast<double>(total_layers);
}

ResidencyPlan
planResidency(const hw::SystemConfig &system,
              const model::ModelConfig &config, std::int64_t batch,
              std::int64_t prompt_len, bool kv_on_gpu,
              std::int64_t max_context, CacheGranularity granularity)
{
    LIA_ASSERT(batch > 0 && prompt_len > 0 && max_context >= prompt_len,
               "bad residency request");

    ResidencyPlan plan;
    plan.perLayerBytes = config.decoderLayerParamBytes();

    // Working set that must stay free: double-buffered streaming slots
    // for one in-flight layer, the activation working set of the
    // prefill batch, and optionally the full KV cache.
    double reserve = 2.0 * plan.perLayerBytes +
                     model::activationBytes(config, batch, prompt_len);
    if (kv_on_gpu)
        reserve += model::kvCacheBytes(config, batch, max_context);
    plan.reservedBytes = reserve;

    const double capacity = system.gpu.memoryCapacity;
    const double spare = capacity - reserve;
    if (spare <= 0)
        return plan;  // nothing fits; streaming only

    if (granularity == CacheGranularity::WholeLayer) {
        const auto layers = static_cast<std::int64_t>(
            spare / plan.perLayerBytes);
        plan.residentLayers = static_cast<int>(
            std::min<std::int64_t>(layers, config.numLayers));
        plan.gpuBytesUsed = plan.residentLayers * plan.perLayerBytes;
    } else {
        // FlexGen slices parameters into d_model^2-sized quanta
        // replicated across all layers (e.g. ~4.7 GB per quantum for
        // OPT-30B, §5.2); capacity is consumed in those coarse units.
        const double quantum =
            units::bytesPerElement *
            static_cast<double>(config.dModel) *
            static_cast<double>(config.dModel) *
            static_cast<double>(config.numLayers);
        const double quanta = std::floor(spare / quantum);
        const double total_params =
            static_cast<double>(config.numLayers) * plan.perLayerBytes;
        plan.gpuBytesUsed = std::min(quanta * quantum, total_params);
        plan.uniformCachedFraction = plan.gpuBytesUsed / total_params;
    }
    return plan;
}

} // namespace core
} // namespace lia
