/**
 * @file
 * Deployment capacity planner.
 *
 * Answers the question a LIA operator actually has: "given this
 * machine and this workload shape, what batch size should I run — and
 * is the CXL pool worth enabling?" Searches feasible batch sizes
 * (capacity-bounded, optionally CXL-expanded) for the highest
 * throughput, optionally under a per-query latency SLO — the online /
 * offline split of §1 expressed as one knob.
 */

#ifndef LIA_CORE_CAPACITY_PLANNER_HH
#define LIA_CORE_CAPACITY_PLANNER_HH

#include <string>
#include <vector>

#include "core/engine.hh"

namespace lia {
namespace core {

/** What the operator wants to run. */
struct PlannerRequest
{
    std::int64_t lIn = 512;
    std::int64_t lOut = 32;

    /**
     * Per-query latency bound in seconds; 0 disables the bound
     * (pure throughput-driven planning).
     */
    double latencySlo = 0;

    /** Largest batch the serving layer can aggregate. */
    std::int64_t maxBatch = 4096;
};

/** One evaluated candidate deployment. */
struct PlannerCandidate
{
    std::int64_t batch = 0;
    InferenceEstimate estimate;
    double throughput = 0;   //!< tokens/s
    bool meetsSlo = true;
};

/** The planner's decision. */
struct PlannerResult
{
    bool feasible = false;
    std::string note;
    PlannerCandidate best;
    std::vector<PlannerCandidate> candidates;  //!< the explored grid
};

/** Batch-size planner for one (system, model) deployment. */
class CapacityPlanner
{
  public:
    CapacityPlanner(const hw::SystemConfig &system,
                    const model::ModelConfig &model);

    /** Pick the best batch size for @p request. */
    PlannerResult plan(const PlannerRequest &request) const;

    /** Largest batch that fits host memory for the request shape. */
    std::int64_t maxFeasibleBatch(const PlannerRequest &request) const;

  private:
    hw::SystemConfig system_;
    model::ModelConfig model_;
    EngineModel engine_;
};

} // namespace core
} // namespace lia

#endif // LIA_CORE_CAPACITY_PLANNER_HH
