#include "core/optimizer.hh"

#include <algorithm>
#include <array>

namespace lia {
namespace core {

PolicyOptimizer::PolicyOptimizer(const CostModel &cost_model)
    : costModel_(cost_model)
{
}

namespace {

/**
 * Policy visit order: the three primary policies of §7.1 first, so a
 * strict less-than comparison keeps them on exact ties against exotic
 * mixtures that the serial objective cannot distinguish.
 */
std::array<unsigned, Policy::kCount>
visitOrder()
{
    std::array<unsigned, Policy::kCount> order{};
    std::size_t n = 0;
    const unsigned preferred[] = {Policy::fullCpu().mask(),
                                  Policy::attentionOnCpu().mask(),
                                  Policy::fullGpu().mask()};
    for (unsigned m : preferred)
        order[n++] = m;
    for (unsigned m = 0; m < Policy::kCount; ++m) {
        bool is_preferred = false;
        for (unsigned p : preferred)
            is_preferred |= (m == p);
        if (!is_preferred)
            order[n++] = m;
    }
    return order;
}

} // namespace

PolicyChoice
PolicyOptimizer::optimize(const model::Workload &workload,
                          bool gpu_resident) const
{
    // The Eq. (2) objective is the *serial* per-layer latency: the
    // paper's front-end picks the policy on the unoverlapped sum, then
    // the back-end overlaps transfers at execution time (§5.2).
    PolicyChoice best;
    double best_time = -1.0;
    for (unsigned mask : visitOrder()) {
        const Policy p = Policy::fromMask(mask);
        const auto timing =
            costModel_.layerTiming(workload, p, gpu_resident);
        const double t = timing.serialTime();
        if (best_time < 0.0 || t < best_time) {
            best_time = t;
            best = {p, timing};
        }
    }

    // Optional extension: arbitrate the serial winner against the
    // three primary §7.1 policies under the *execution* (overlap-
    // aware) semantics — the serial objective occasionally
    // undervalues a policy whose parameter stream hides fully behind
    // compute (see CostModelOptions::executionAwareObjective).
    if (costModel_.options().executionAwareObjective &&
        costModel_.options().overlap) {
        double best_exec = best.timing.overlappedTime();
        for (const Policy p :
             {Policy::fullCpu(), Policy::attentionOnCpu(),
              Policy::fullGpu()}) {
            const auto timing =
                costModel_.layerTiming(workload, p, gpu_resident);
            if (timing.overlappedTime() < best_exec) {
                best_exec = timing.overlappedTime();
                best = {p, timing};
            }
        }
    }
    return best;
}

std::vector<PolicyChoice>
PolicyOptimizer::rank(const model::Workload &workload,
                      bool gpu_resident) const
{
    std::vector<PolicyChoice> choices;
    choices.reserve(Policy::kCount);
    for (unsigned mask : visitOrder()) {
        const Policy p = Policy::fromMask(mask);
        choices.push_back(
            {p, costModel_.layerTiming(workload, p, gpu_resident)});
    }
    std::stable_sort(choices.begin(), choices.end(),
                     [](const auto &a, const auto &b) {
                         return a.timing.serialTime() <
                                b.timing.serialTime();
                     });
    return choices;
}

} // namespace core
} // namespace lia
