/**
 * @file
 * Multi-GPU LIA extension (§8 "Scaling to multi-GPU").
 *
 * The paper sketches the extension: when LIA directs a sublayer to
 * the GPU, Tensor Parallelism distributes it across the GPUs; GPU
 * compute throughput and aggregate CPU-GPU bandwidth scale with the
 * GPU count, while inter-GPU all-reduces add communication that can
 * erode the scaling — especially over PCIe fabrics.
 *
 * The model: the GPU side is pooled (n x compute, HBM bandwidth and
 * capacity, host-link lanes), Eq. (1) optimizes policies against the
 * pooled platform, and every decoder layer whose output-projection or
 * FC2 runs on the GPUs pays a ring all-reduce of the hidden state.
 */

#ifndef LIA_CORE_MULTI_GPU_HH
#define LIA_CORE_MULTI_GPU_HH

#include "core/engine.hh"

namespace lia {
namespace core {

/** LIA deployed across several tensor-parallel GPUs. */
class MultiGpuLiaModel
{
  public:
    /**
     * @param base       single-GPU platform to replicate the GPU of
     * @param gpu_count  tensor-parallel width (>= 1)
     * @param fabric     inter-GPU link (ignored when gpu_count == 1)
     */
    MultiGpuLiaModel(const hw::SystemConfig &base,
                     const model::ModelConfig &model, int gpu_count,
                     const hw::Link &fabric);

    /** Estimate with TP compute and all-reduce overhead included. */
    InferenceEstimate estimate(const Scenario &scenario) const;

    /**
     * All-reduce seconds one engine iteration of @p workload pays
     * under @p policy, all layers included — the §8 communication
     * surcharge the serving layer adds on top of the pooled-platform
     * iteration price (serve::IterationCostCache). The streamed-layer
     * policy stands in for the whole stack; resident layers usually
     * share its placement.
     */
    double iterationCommTime(const model::Workload &workload,
                             const Policy &policy) const;

    /** The pooled platform the policies are optimized against. */
    const hw::SystemConfig &pooledSystem() const { return pooled_; }

    /** Tensor-parallel width. */
    int gpuCount() const { return gpuCount_; }

  private:
    /** Ring all-reduce seconds for @p bytes of payload. */
    double allReduceTime(double bytes) const;

    /** Per-layer all-reduce seconds for one workload and policy. */
    double layerCommTime(const model::Workload &workload,
                         const Policy &policy) const;

    hw::SystemConfig pooled_;
    model::ModelConfig model_;
    int gpuCount_;
    hw::Link fabric_;
};

} // namespace core
} // namespace lia

#endif // LIA_CORE_MULTI_GPU_HH
