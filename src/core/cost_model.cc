#include "core/cost_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace core {

using model::Stage;
using model::Sublayer;

const char *
toString(HostTier tier)
{
    return tier == HostTier::Ddr ? "DDR" : "CXL";
}

double
LayerTiming::overlappedTime() const
{
    // Steady-state pipelined rate (Fig. 7): bounded below by the PCIe
    // channel's total per-layer occupancy (prefetch shares the link
    // with inline traffic) and by the per-layer dependency chain
    // (inline hops and compute serialise across layers).
    return std::max(prefetchPcieTime + inlinePcieTime,
                    inlinePcieTime + cpuTime + gpuTime);
}

CostModel::CostModel(const hw::SystemConfig &system,
                     const model::ModelConfig &model,
                     CostModelOptions options)
    : system_(system), model_(model), options_(options)
{
    model_.validate();
    if (options_.paramTier == HostTier::Cxl ||
        options_.kvTier == HostTier::Cxl) {
        LIA_ASSERT(system_.cxl.present(),
                   system_.name, ": CXL tier requested without a pool");
    }
    LIA_ASSERT(options_.prefillMiniBatches >= 1 &&
               options_.decodeMiniBatches >= 1,
               "mini-batch counts must be >= 1");
}

void
CostModel::setOptions(const CostModelOptions &options)
{
    options_ = options;
    if (options_.paramTier == HostTier::Cxl ||
        options_.kvTier == HostTier::Cxl) {
        LIA_ASSERT(system_.cxl.present(),
                   system_.name, ": CXL tier requested without a pool");
    }
}

double
CostModel::hostLinkBandwidth(HostTier tier) const
{
    // Observation-1 (§6): the host link is the bottleneck as long as
    // the interleaved CXL pool supplies at least PCIe bandwidth;
    // otherwise the pool throttles the transfer.
    if (tier == HostTier::Cxl) {
        return std::min(system_.hostLink.bandwidth,
                        system_.cxl.interleavedBandwidth());
    }
    return system_.hostLink.bandwidth;
}

double
CostModel::cpuTierBandwidth(HostTier tier) const
{
    return system_.cpuReadBandwidth(tier == HostTier::Cxl);
}

double
CostModel::linkTime(double bytes, HostTier tier) const
{
    if (bytes <= 0)
        return 0.0;
    return system_.hostLink.latency + bytes / hostLinkBandwidth(tier);
}

int
CostModel::chunksFor(Stage stage, const Policy &policy) const
{
    // Mini-batching exists to overlap PCIe transfers with compute;
    // an all-CPU policy moves nothing, so the back-end would never
    // split it (Table 4: disabling Optimization-2 is a no-op at B=1).
    if (!options_.overlap || policy == Policy::fullCpu())
        return 1;
    if (stage == Stage::Prefill)
        return options_.prefillMiniBatches;
    return options_.decodeMiniBatchOverlap ? options_.decodeMiniBatches
                                           : 1;
}

double
CostModel::computeTime(Device device, const model::SublayerCosts &costs,
                       double rows, HostTier tier_y, int chunks) const
{
    const double n = static_cast<double>(chunks);
    const double chunk_rows = std::max(rows / n, 1.0);

    if (device == Device::Gpu) {
        const auto &gpu = system_.gpu;
        const double bytes = costs.dX + costs.dY + costs.dOut;
        const double eff = gpu.gemmEfficiency.at(chunk_rows);
        const double stream =
            gpu.streamEfficiency.at(std::max(bytes / n, 1.0));
        const double per_chunk =
            gpu.kernelOverhead +
            (bytes / n) / (gpu.memoryBandwidth * stream) +
            (costs.flops / n) / (gpu.peakMatmulThroughput * eff);
        return n * per_chunk;
    }

    const auto &cpu = system_.cpu;
    const double stream_x =
        cpu.streamEfficiency.at(std::max(costs.dX + costs.dOut, 1.0));
    // Activations and outputs always live in DDR; only the second
    // operand (parameters or KV cache) may sit in CXL (§6).
    const double bw_x = cpuTierBandwidth(HostTier::Ddr) * stream_x;
    double bw_y = cpuTierBandwidth(tier_y);
    if (tier_y == HostTier::Ddr)
        bw_y *= cpu.streamEfficiency.at(std::max(costs.dY, 1.0));
    const double eff = cpu.gemmEfficiency.at(chunk_rows);
    const double per_chunk =
        cpu.kernelOverhead +
        ((costs.dX + costs.dOut) / n) / bw_x + (costs.dY / n) / bw_y +
        (costs.flops / n) / (cpu.peakMatmulThroughput * eff);
    return n * per_chunk;
}

SublayerTiming
CostModel::sublayerTiming(const model::Workload &workload,
                          const Policy &policy, int index,
                          bool gpu_resident) const
{
    LIA_ASSERT(index >= 0 && index < model::kNumSublayers,
               "sublayer index out of range");

    const auto sublayer = model::allSublayers()[index];
    const auto costs = model::sublayerCosts(model_, workload, sublayer);
    const Device dev = policy.device(index);
    // p_0 = p_6: the first sublayer's producer is the previous decoder
    // layer's FC2 (steady state with an identical per-layer policy).
    const Device prev_dev =
        index == 0 ? policy.device(model::kNumSublayers - 1)
                   : policy.device(index - 1);

    const double rows = static_cast<double>(workload.batch) *
                        static_cast<double>(workload.tokens());
    int chunks = chunksFor(workload.stage, policy);
    // GPU-resident layers stream nothing in prefill, so the back-end
    // has no reason to pay the mini-batch split there either.
    if (gpu_resident && workload.stage == Stage::Prefill)
        chunks = 1;

    SublayerTiming t;

    // --- Load X: activation hop when adjacent devices differ (Eq. 4).
    if (dev != prev_dev) {
        t.inlinePcieTime += linkTime(costs.dX, HostTier::Ddr);
        t.actPcieBytes += costs.dX;
    }

    // --- Load Y: parameters or KV cache (Eq. 5/7).
    HostTier tier_y = HostTier::Ddr;
    if (model::isParamSublayer(sublayer)) {
        tier_y = options_.paramTier;
        if (dev == Device::Gpu && !gpu_resident) {
            // Parameters stream from host memory; prefetchable.
            t.prefetchPcieTime += linkTime(costs.dY, tier_y);
            t.paramPcieBytes += costs.dY;
        }
    } else {
        tier_y = options_.kvTier;
        if (workload.stage == Stage::Prefill) {
            // K/V were produced by sublayer 1 this layer (Eq. 7).
            if (dev != policy.device(0)) {
                t.inlinePcieTime += linkTime(costs.dY, HostTier::Ddr);
                t.kvPcieBytes += costs.dY;
            }
        } else if (options_.kvOnGpu) {
            if (dev == Device::Cpu) {
                // KV pinned in HBM but attention on CPU: ship it out.
                t.inlinePcieTime += linkTime(costs.dY, HostTier::Ddr);
                t.kvPcieBytes += costs.dY;
            }
        } else if (dev == Device::Gpu) {
            // The persistent host-side KV cache streams in. Only the
            // next layer's *parameters* are double-buffered (Fig. 7),
            // so this transfer sits on the critical path.
            t.inlinePcieTime += linkTime(costs.dY, tier_y);
            t.kvPcieBytes += costs.dY;
        }
    }

    // --- Load R: residual operand hop (Eq. 6). The residual operand is
    // the d_model-wide activation, B*T*d bytes.
    const double residual_bytes =
        units::bytesPerElement * rows * static_cast<double>(model_.dModel);
    if (sublayer == Sublayer::OutProjection &&
        dev != policy.device(0)) {
        t.inlinePcieTime += linkTime(residual_bytes, HostTier::Ddr);
        t.actPcieBytes += residual_bytes;
    }
    if (sublayer == Sublayer::Fc2 &&
        dev != policy.device(
            static_cast<int>(Sublayer::OutProjection))) {
        t.inlinePcieTime += linkTime(residual_bytes, HostTier::Ddr);
        t.actPcieBytes += residual_bytes;
    }

    // --- Compute (Eq. 8).
    // When the KV cache stays in HBM the GPU reads Y locally and the
    // CPU never holds it; tier only matters for CPU execution.
    const double comp =
        computeTime(dev, costs, rows, tier_y, chunks);
    if (dev == Device::Cpu)
        t.cpuTime += comp;
    else
        t.gpuTime += comp;

    // --- Store: GPU-computed KV returns to the host cache (Eq. 9).
    if (sublayer == Sublayer::QkvMapping && dev == Device::Gpu &&
        !options_.kvOnGpu) {
        t.storePcieTime += linkTime(costs.dKv, HostTier::Ddr);
        t.kvPcieBytes += costs.dKv;
    }

    return t;
}

LayerTiming
CostModel::layerTiming(const model::Workload &workload,
                       const Policy &policy, bool gpu_resident) const
{
    LayerTiming total;
    for (int i = 0; i < model::kNumSublayers; ++i) {
        const auto t = sublayerTiming(workload, policy, i, gpu_resident);
        total.prefetchPcieTime += t.prefetchPcieTime;
        // Stores sit on the dependency chain like other inline traffic
        // at layer granularity.
        total.inlinePcieTime += t.inlinePcieTime + t.storePcieTime;
        total.cpuTime += t.cpuTime;
        total.gpuTime += t.gpuTime;
        total.paramPcieBytes += t.paramPcieBytes;
        total.kvPcieBytes += t.kvPcieBytes;
        total.actPcieBytes += t.actPcieBytes;
    }
    return total;
}

} // namespace core
} // namespace lia
