#include "cluster/config.hh"

#include "base/logging.hh"

namespace lia {
namespace cluster {

const char *
toString(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::LeastKvLoaded:
        return "least-kv-loaded";
      case RoutingPolicy::SessionAffinity:
        return "session-affinity";
      case RoutingPolicy::TtftAware:
        return "ttft-aware";
    }
    return "?";
}

void
ClusterConfig::validate() const
{
    engine.validate();
    LIA_ASSERT(replicas >= 1, "need at least one replica");
    LIA_ASSERT(shardWidth >= 1, "shardWidth must be >= 1");
    LIA_ASSERT(sessions >= 1, "need at least one session");
    if (autoscaler.enabled) {
        autoscaler.validate();
        LIA_ASSERT(replicas <= autoscaler.maxReplicas,
                   "initial fleet exceeds maxReplicas");
        LIA_ASSERT(replicas >= autoscaler.minReplicas,
                   "initial fleet below minReplicas");
    }
}

} // namespace cluster
} // namespace lia
