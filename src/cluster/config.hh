/**
 * @file
 * Configuration of the cluster serving layer.
 *
 * A cluster run serves ONE shared arrival stream across N replica
 * engines (data parallelism), each of which may itself be a W-way
 * tensor-parallel shard group priced by the §8 multi-GPU model — so
 * the same knobs sweep "more replicas" against "wider replicas" at a
 * fixed GPU budget. The router picks a replica per request under one
 * of three policies; an optional autoscaler grows and shrinks the
 * fleet from observed queue-depth / KV-occupancy series.
 */

#ifndef LIA_CLUSTER_CONFIG_HH
#define LIA_CLUSTER_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <optional>

#include "hw/device.hh"
#include "serve/config.hh"

namespace lia {
namespace cluster {

/** How the router assigns an arriving request to a replica. */
enum class RoutingPolicy
{
    /**
     * Send each request to the replica with the lowest KV pressure
     * (reserved bytes plus the full demand of its waiting queue, over
     * its budget). Balances *memory* load, the binding resource of
     * KV-bound serving.
     */
    LeastKvLoaded,

    /**
     * Consistent hashing on the request's session id: requests of one
     * session land on one replica (prefix caches stay warm), and
     * scaling the fleet remaps only ~1/N of the sessions instead of
     * reshuffling everything.
     */
    SessionAffinity,

    /**
     * Send each request where its time-to-first-token is modeled to
     * be smallest: the replica minimising the estimated queue delay
     * (prefill backlog + one decode round, stretched by KV pressure).
     * Balances *latency*, which queue length alone proxies poorly
     * when replicas serve different-length prompts.
     */
    TtftAware,
};

const char *toString(RoutingPolicy policy);

/** Autoscaler thresholds and pacing. */
struct AutoscalerConfig
{
    bool enabled = false;

    std::size_t minReplicas = 1;  //!< never drain below this
    std::size_t maxReplicas = 8;  //!< never spawn above this

    /** Seconds of simulated time between evaluations. */
    double evaluationPeriod = 5.0;

    /**
     * Scale up when the fleet-mean queue depth (waiting requests per
     * active replica, averaged over the evaluation window's counter
     * samples) exceeds this.
     */
    double scaleUpQueueDepth = 8.0;

    /**
     * Scale down when the fleet-mean KV occupancy stays under this
     * while the queue-depth signal is also below its threshold —
     * capacity is provably idle, not merely momentarily quiet.
     */
    double scaleDownKvOccupancy = 0.15;

    /**
     * Consecutive breaching evaluations required before acting —
     * hysteresis against reacting to one bursty window.
     */
    int hysteresisTicks = 2;

    /** Seconds after any action before the next may trigger. */
    double cooldown = 10.0;

    /** Panics on malformed settings. */
    void validate() const;
};

/** Configuration of one cluster serving run. */
struct ClusterConfig
{
    /**
     * Per-replica engine configuration. `engine.requests` is the
     * TOTAL request count of the shared arrival stream (not
     * per-replica); `engine.arrivalRatePerSecond` is the aggregate
     * rate; `engine.seed` seeds arrivals (seed), request shapes
     * (seed + 1), and session ids (seed + 2); `engine.sink` is
     * ignored — set ClusterConfig::sink instead, which receives every
     * replica's events under per-replica track namespaces.
     */
    serve::Config engine;

    /** Initial replica count (>= 1). */
    std::size_t replicas = 2;

    /**
     * Tensor-parallel width of each replica (>= 1). Width > 1 prices
     * every replica against the §8 pooled platform and adds the ring
     * all-reduce surcharge to every iteration.
     */
    int shardWidth = 1;

    /**
     * Inter-GPU fabric of a shard group; defaults to the base
     * system's own gpuFabric, falling back to PCIe gen4 x16. Ignored
     * at shardWidth == 1.
     */
    std::optional<hw::Link> fabric;

    RoutingPolicy routing = RoutingPolicy::LeastKvLoaded;

    /** Distinct session ids in the arrival stream (>= 1). */
    std::size_t sessions = 16;

    AutoscalerConfig autoscaler;

    /**
     * Optional trace sink receiving every replica's spans and
     * counters under tracks::replica(i) namespaces. Not owned; must
     * outlive the run. Null emits nothing and changes nothing.
     */
    obs::EventSink *sink = nullptr;

    /** Panics on malformed settings. */
    void validate() const;
};

} // namespace cluster
} // namespace lia

#endif // LIA_CLUSTER_CONFIG_HH
