#include "cluster/router.hh"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "base/logging.hh"
#include "base/rng.hh"
#include "cluster/hash_ring.hh"
#include "core/capacity_planner.hh"
#include "hw/catalog.hh"
#include "obs/series.hh"
#include "obs/sink.hh"
#include "serve/instance.hh"
#include "serve/tracks.hh"
#include "sim/event_queue.hh"
#include "sim/serving.hh"
#include "trace/azure.hh"

namespace lia {
namespace cluster {

namespace {

/** The fabric a shard group all-reduces over. */
hw::Link
shardFabric(const ClusterConfig &config, const hw::SystemConfig &base)
{
    if (config.fabric)
        return *config.fabric;
    if (base.gpuFabric)
        return *base.gpuFabric;
    return hw::pcie4x16();
}

/** Mean of @p series samples in the window (now - period, now]. */
double
windowMean(const obs::SeriesRegistry::Series &series, double now,
           double period)
{
    double sum = 0;
    std::size_t count = 0;
    for (auto it = series.rbegin(); it != series.rend(); ++it) {
        if (it->seconds <= now - period)
            break;
        sum += it->value;
        ++count;
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

} // namespace

// --- Run-local state --------------------------------------------------

/** One live replica: its engine instance plus the observability
 *  plumbing that must outlive it. */
struct ClusterRouter::Replica
{
    std::size_t index = 0;
    double spawnedAt = 0;
    double retiredAt = -1;
    bool draining = false;
    std::size_t routed = 0;

    /** The autoscaler's signal source: every replica records its own
     *  counter series even when the user attached no sink. */
    std::unique_ptr<obs::SeriesRegistry> registry;

    /** Fan-out to the user's sink; null when none was configured. */
    std::unique_ptr<obs::TeeSink> tee;

    std::unique_ptr<serve::EngineInstance> instance;

    bool active() const { return !draining; }
};

struct ClusterRouter::RunState
{
    sim::EventQueue events;
    std::vector<std::unique_ptr<Replica>> replicas;
    ConsistentHashRing ring;
    ReplicaAutoscaler autoscaler;

    std::size_t submitted = 0;  //!< arrival events fired so far
    std::size_t scaleUps = 0;
    std::size_t scaleDowns = 0;
    std::size_t peakReplicas = 0;

    std::unordered_map<std::uint64_t, std::size_t> lastReplicaOf;
    std::size_t affinityChecked = 0;
    std::size_t affinityHits = 0;

    SampleStats activeReplicaSeries;

    RunState(const AutoscalerConfig &config) : autoscaler(config) {}

    std::size_t activeCount() const
    {
        std::size_t n = 0;
        for (const auto &r : replicas)
            n += r->active() ? 1 : 0;
        return n;
    }

    bool anyOutstanding() const
    {
        for (const auto &r : replicas)
            if (r->instance->outstanding() > 0)
                return true;
        return false;
    }
};

// --- Construction -----------------------------------------------------

ClusterRouter::ClusterRouter(const hw::SystemConfig &system,
                             const model::ModelConfig &model,
                             ClusterConfig config)
    : system_(system), model_(model), config_(std::move(config)),
      tensorParallel_(
          config_.shardWidth > 1
              ? std::make_unique<core::MultiGpuLiaModel>(
                    system, model, config_.shardWidth,
                    shardFabric(config_, system))
              : nullptr),
      engine_(tensorParallel_ ? tensorParallel_->pooledSystem()
                              : system_,
              model_,
              serve::pricingEngineConfig(
                  tensorParallel_ ? tensorParallel_->pooledSystem()
                                  : system_,
                  model_, config_.engine)),
      costs_(engine_, config_.engine.contextBucket,
             tensorParallel_.get())
{
    config_.validate();
    model_.validate();
    config_.engine.maxContext =
        std::min(config_.engine.maxContext, model_.maxSeqLen);
    // The cluster owns the sink plumbing; a sink on the inner engine
    // config would double-emit.
    config_.engine.sink = nullptr;

    // Same SLO-derived batch cap ServingEngine computes, against the
    // platform the replicas actually run on (pooled when sharded).
    if (config_.engine.policy == serve::SchedulerPolicy::SloAware &&
        config_.engine.slo.e2e > 0) {
        const std::int64_t typical_out =
            config_.engine.trace == trace::TraceKind::Code
                ? 32
                : (config_.engine.trace ==
                           trace::TraceKind::Conversation
                       ? 256
                       : 144);
        core::PlannerRequest request;
        request.lOut = std::min<std::int64_t>(
            typical_out, config_.engine.maxContext / 4);
        request.lIn = (config_.engine.maxContext - request.lOut) / 2;
        request.latencySlo = config_.engine.slo.e2e;
        request.maxBatch = config_.engine.maxBatch;
        const auto planned =
            core::CapacityPlanner(engine_.system(), model_)
                .plan(request);
        if (planned.feasible)
            plannerCap_ = planned.best.batch;
    }
}

// --- Replica lifecycle ------------------------------------------------

ClusterRouter::Replica &
ClusterRouter::spawnReplica(RunState &state, double now)
{
    auto replica = std::make_unique<Replica>();
    replica->index = state.replicas.size();
    replica->spawnedAt = now;
    replica->registry = std::make_unique<obs::SeriesRegistry>();

    serve::Config engine_config = config_.engine;
    if (config_.sink) {
        replica->tee = std::make_unique<obs::TeeSink>(
            std::vector<obs::EventSink *>{config_.sink,
                                          replica->registry.get()});
        engine_config.sink = replica->tee.get();
    } else {
        engine_config.sink = replica->registry.get();
    }

    replica->instance = std::make_unique<serve::EngineInstance>(
        engine_.system(), model_, std::move(engine_config), costs_,
        state.events, serve::tracks::replica(replica->index));
    replica->instance->setPlannerCap(plannerCap_);

    state.ring.addNode(replica->index);
    state.replicas.push_back(std::move(replica));
    state.peakReplicas =
        std::max(state.peakReplicas, state.activeCount());
    return *state.replicas.back();
}

// --- Routing ----------------------------------------------------------

std::size_t
ClusterRouter::route(RunState &state, std::uint64_t session)
{
    std::size_t chosen = state.replicas.size();

    switch (config_.routing) {
      case RoutingPolicy::SessionAffinity:
        chosen = state.ring.nodeFor(session);
        break;

      case RoutingPolicy::LeastKvLoaded: {
        double best = std::numeric_limits<double>::infinity();
        for (const auto &r : state.replicas) {
            if (!r->active())
                continue;
            const double load = r->instance->kvLoad();
            if (load < best) {
                best = load;
                chosen = r->index;
            }
        }
        break;
      }

      case RoutingPolicy::TtftAware: {
        double best = std::numeric_limits<double>::infinity();
        for (const auto &r : state.replicas) {
            if (!r->active())
                continue;
            const double delay =
                r->instance->estimatedQueueDelay();
            if (delay < best) {
                best = delay;
                chosen = r->index;
            }
        }
        break;
      }
    }

    LIA_ASSERT(chosen < state.replicas.size(),
               "router found no active replica");
    LIA_ASSERT(state.replicas[chosen]->active(),
               "routed to a draining replica");

    auto seen = state.lastReplicaOf.find(session);
    if (seen != state.lastReplicaOf.end()) {
        ++state.affinityChecked;
        state.affinityHits += seen->second == chosen ? 1 : 0;
        seen->second = chosen;
    } else {
        state.lastReplicaOf.emplace(session, chosen);
    }
    ++state.replicas[chosen]->routed;
    return chosen;
}

// --- Autoscaling ------------------------------------------------------

void
ClusterRouter::autoscalerTick(RunState &state)
{
    const double now = state.events.now();
    const double period = config_.autoscaler.evaluationPeriod;

    // Finish any decommission whose drain completed.
    for (auto &r : state.replicas)
        if (r->draining && r->retiredAt < 0 &&
            r->instance->drained())
            r->retiredAt = now;

    // Fleet signals: mean of each active replica's window-mean of the
    // counters its engine emitted (an idle replica contributes 0).
    AutoscalerSignals signals;
    signals.activeReplicas = state.activeCount();
    if (signals.activeReplicas > 0) {
        double queue = 0, kv = 0;
        for (const auto &r : state.replicas) {
            if (!r->active())
                continue;
            queue += windowMean(r->registry->at("queue_depth"), now,
                                period);
            kv += windowMean(r->registry->at("kv_occupancy"), now,
                             period);
        }
        const double n =
            static_cast<double>(signals.activeReplicas);
        signals.meanQueueDepth = queue / n;
        signals.meanKvOccupancy = kv / n;
    }

    switch (state.autoscaler.evaluate(now, signals)) {
      case ScaleDecision::Hold:
        break;

      case ScaleDecision::Up:
        spawnReplica(state, now);
        ++state.scaleUps;
        break;

      case ScaleDecision::Down: {
        // Drain the active replica with the least outstanding work
        // (cheapest to finish); ties retire the newest.
        Replica *victim = nullptr;
        for (auto &r : state.replicas) {
            if (!r->active())
                continue;
            if (!victim ||
                r->instance->outstanding() <=
                    victim->instance->outstanding())
                victim = r.get();
        }
        LIA_ASSERT(victim, "scale-down with no active replica");
        victim->draining = true;
        state.ring.removeNode(victim->index);
        if (victim->instance->drained())
            victim->retiredAt = now;
        ++state.scaleDowns;
        break;
      }
    }

    state.activeReplicaSeries.add(
        static_cast<double>(state.activeCount()));

    // Keep evaluating while the run still has work; once the stream
    // is fully submitted and served, stop so the queue can drain.
    if (state.submitted < config_.engine.requests ||
        state.anyOutstanding())
        state.events.schedule(now + period,
                              [this, &state]() {
                                  autoscalerTick(state);
                              });
}

// --- The run ----------------------------------------------------------

ClusterResult
ClusterRouter::run()
{
    RunState state(config_.autoscaler);

    for (std::size_t i = 0; i < config_.replicas; ++i)
        spawnReplica(state, 0.0);

    // One shared stream, pre-drawn with the engine's seed convention
    // (arrivals: seed, shapes: seed + 1) plus session ids from
    // seed + 2 — a single-replica cluster therefore serves exactly
    // the workload ServingEngine would.
    sim::PoissonProcess arrivals(config_.engine.arrivalRatePerSecond,
                                 config_.engine.seed);
    trace::AzureTraceGenerator gen(config_.engine.trace,
                                   config_.engine.maxContext,
                                   config_.engine.seed + 1);
    Rng session_rng(config_.engine.seed + 2);
    for (std::size_t i = 0; i < config_.engine.requests; ++i) {
        const double arrival = arrivals.next();
        const trace::Request shape = gen.next();
        const auto session = static_cast<std::uint64_t>(
            session_rng.uniformInt(
                0,
                static_cast<std::int64_t>(config_.sessions) - 1));
        state.events.schedule(
            arrival, [this, &state, shape, session]() {
                ++state.submitted;
                const std::size_t target = route(state, session);
                state.replicas[target]->instance->submit(shape.lIn,
                                                         shape.lOut);
            });
    }

    if (config_.autoscaler.enabled)
        state.events.schedule(
            config_.autoscaler.evaluationPeriod,
            [this, &state]() { autoscalerTick(state); });

    setSimTimeProvider(
        [&state] { return state.events.now(); });
    state.events.run();
    setSimTimeProvider(nullptr);

    // Drain-before-decommission must leave nothing behind: every
    // submitted request reached a terminal state on some replica.
    ClusterResult result;
    result.shardWidth = config_.shardWidth;
    result.makespan = state.events.now();
    result.requestsRouted = state.submitted;
    result.scaleUps = state.scaleUps;
    result.scaleDowns = state.scaleDowns;
    result.peakReplicas = state.peakReplicas;
    result.finalReplicas = state.activeCount();
    result.activeReplicaSeries = std::move(state.activeReplicaSeries);
    result.sessionAffinityHitRate =
        state.affinityChecked > 0
            ? static_cast<double>(state.affinityHits) /
                  static_cast<double>(state.affinityChecked)
            : 0.0;

    LIA_ASSERT(state.submitted == config_.engine.requests,
               "arrival stream did not fully fire");
    std::size_t routed_total = 0, terminal_total = 0;
    for (auto &r : state.replicas) {
        LIA_ASSERT(r->instance->drained(), "replica ", r->index,
                   " stranded ", r->instance->outstanding(),
                   " requests");
        if (r->draining && r->retiredAt < 0)
            r->retiredAt = result.makespan;
        routed_total += r->routed;

        ReplicaReport report;
        report.index = r->index;
        report.spawnedAt = r->spawnedAt;
        report.retiredAt = r->retiredAt;
        report.routed = r->routed;
        report.result = r->instance->finalize();
        LIA_ASSERT(report.result.requests.size() == r->routed,
                   "replica lost requests");
        terminal_total += report.result.metrics.completed +
                          report.result.metrics.rejected();
        result.aggregate.merge(report.result.metrics);
        result.mergedSeries.merge(*r->registry);
        result.replicas.push_back(std::move(report));
    }
    LIA_ASSERT(routed_total == state.submitted,
               "routed != submitted");
    LIA_ASSERT(terminal_total == state.submitted,
               "cluster dropped requests");
    return result;
}

// --- Result helpers ---------------------------------------------------

double
ClusterResult::goodputPerSecond(const serve::SloTargets &slo) const
{
    if (makespan <= 0)
        return 0.0;
    std::size_t good = 0;
    for (const ReplicaReport &replica : replicas)
        for (const serve::Request &request : replica.result.requests)
            good += serve::meetsSlo(request, slo) ? 1 : 0;
    return static_cast<double>(good) / makespan;
}

double
ClusterResult::sloAttainment(const serve::SloTargets &slo) const
{
    std::size_t finished = 0, good = 0;
    for (const ReplicaReport &replica : replicas) {
        for (const serve::Request &request :
             replica.result.requests) {
            if (request.state != serve::RequestState::Finished)
                continue;
            ++finished;
            good += serve::meetsSlo(request, slo) ? 1 : 0;
        }
    }
    return finished > 0 ? static_cast<double>(good) /
                              static_cast<double>(finished)
                        : 0.0;
}

} // namespace cluster
} // namespace lia
