/**
 * @file
 * Cluster router: one arrival stream over N serving-engine replicas.
 *
 * The tentpole of the cluster layer. A ClusterRouter owns the shared
 * DES clock, pre-draws the shared Poisson arrival stream (same seed
 * convention as ServingEngine: arrivals from seed, shapes from
 * seed + 1, session ids from seed + 2), and dispatches every arrival
 * to one of N serve::EngineInstance replicas under a RoutingPolicy.
 * Replicas may be W-way tensor-parallel shard groups: width > 1
 * prices every iteration against the §8 pooled platform plus the ring
 * all-reduce surcharge (core::MultiGpuLiaModel through
 * serve::IterationCostCache), so "N narrow replicas vs N/W wide ones
 * at a fixed GPU budget" is a fair sweep.
 *
 * With the autoscaler enabled, a periodic evaluation event reads the
 * queue-depth / KV-occupancy counter series each replica's engine
 * already emits (per-replica obs::SeriesRegistry), asks the
 * ReplicaAutoscaler for a decision, and spawns or drains replicas.
 * Draining is graceful: the replica stops receiving traffic, serves
 * out its queue, and is decommissioned only once empty — a cluster
 * run never drops or strands a routed request, which run() asserts.
 *
 * Everything advances on ONE sim::EventQueue, single-threaded and
 * deterministic: equal ClusterConfigs produce bit-identical results
 * and traces.
 */

#ifndef LIA_CLUSTER_ROUTER_HH
#define LIA_CLUSTER_ROUTER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "cluster/autoscaler.hh"
#include "cluster/config.hh"
#include "obs/series.hh"
#include "core/engine.hh"
#include "core/multi_gpu.hh"
#include "serve/cost_cache.hh"
#include "serve/engine.hh"

namespace lia {
namespace cluster {

/** One replica's lifecycle and final engine result. */
struct ReplicaReport
{
    std::size_t index = 0;
    double spawnedAt = 0;   //!< simulated spawn time
    double retiredAt = -1;  //!< decommission time; < 0 = active at end
    std::size_t routed = 0; //!< requests this replica received
    serve::Result result;   //!< the engine's own account of its run
};

/** Outcome of one cluster run. */
struct ClusterResult
{
    /** Fleet metrics: every replica's Metrics merged (percentiles
     *  over the union of samples; makespan = the shared clock). */
    serve::Metrics aggregate;

    std::vector<ReplicaReport> replicas;

    std::size_t requestsRouted = 0;  //!< == ClusterConfig requests
    std::size_t scaleUps = 0;        //!< autoscaler spawns
    std::size_t scaleDowns = 0;      //!< autoscaler drains initiated
    std::size_t peakReplicas = 0;    //!< most replicas ever active
    std::size_t finalReplicas = 0;   //!< active when the run drained

    /**
     * Of the routed requests whose session had been routed before,
     * the fraction that landed on the same replica as last time.
     * 1.0 under SessionAffinity with a static fleet; autoscaling
     * remaps ~1/N of sessions per resize.
     */
    double sessionAffinityHitRate = 0;

    /** Active-replica count sampled at every autoscaler evaluation. */
    SampleStats activeReplicaSeries;

    /**
     * Every replica's counter series folded into one registry
     * (obs::SeriesRegistry::merge, in replica order): the fleet-wide
     * series artifact, one file instead of N per-replica ones. Counter
     * names are shared across replicas, so same-named series interleave
     * on the shared clock.
     */
    obs::SeriesRegistry mergedSeries;

    int shardWidth = 1;    //!< tensor-parallel width of each replica
    double makespan = 0;   //!< shared-clock span of the whole run

    /** GPUs the fleet held at its peak. */
    std::size_t peakGpus() const
    {
        return peakReplicas * static_cast<std::size_t>(shardWidth);
    }

    /** Fleet goodput: SLO-meeting completions per second, fleet-wide
     *  (all replicas' requests against the shared makespan). */
    double goodputPerSecond(const serve::SloTargets &slo) const;

    /** Fraction of fleet completions meeting @p slo. */
    double sloAttainment(const serve::SloTargets &slo) const;
};

/** The cluster serving deployment: (system, model, config). */
class ClusterRouter
{
  public:
    /**
     * @param system  the SINGLE-GPU base platform; shardWidth > 1
     *                pools it per §8 before pricing
     * @param model   served model
     * @param config  cluster configuration (copied)
     */
    ClusterRouter(const hw::SystemConfig &system,
                  const model::ModelConfig &model,
                  ClusterConfig config);

    /**
     * Simulate the configured stream to completion. Deterministic:
     * equal configs (seed included) yield bit-identical results, and
     * repeated calls are independent. Asserts that every routed
     * request reached a terminal state (drain-before-decommission
     * leaves nothing behind).
     */
    ClusterResult run();

    /** The pricing engine every replica shares (pooled platform when
     *  shardWidth > 1). */
    const core::EngineModel &pricingEngine() const { return engine_; }

    /** The shared iteration-cost cache (TP surcharge included). */
    const serve::IterationCostCache &costs() const { return costs_; }

    const ClusterConfig &config() const { return config_; }

  private:
    struct Replica;
    struct RunState;

    /** Create replica @p index at time @p now, wired to the shared
     *  queue under tracks::replica(index). */
    Replica &spawnReplica(RunState &state, double now);

    /** Route one request; returns the chosen replica index. */
    std::size_t route(RunState &state, std::uint64_t session);

    /** One autoscaler evaluation (and tick rescheduling). */
    void autoscalerTick(RunState &state);

    hw::SystemConfig system_;  //!< base (single-GPU) platform
    model::ModelConfig model_;
    ClusterConfig config_;

    /** §8 pooled deployment; null at shardWidth == 1. */
    std::unique_ptr<core::MultiGpuLiaModel> tensorParallel_;

    core::EngineModel engine_;
    serve::IterationCostCache costs_;
    std::int64_t plannerCap_ = 0;
};

} // namespace cluster
} // namespace lia

#endif // LIA_CLUSTER_ROUTER_HH
