#include "cluster/autoscaler.hh"

#include "base/logging.hh"

namespace lia {
namespace cluster {

void
AutoscalerConfig::validate() const
{
    LIA_ASSERT(minReplicas >= 1, "minReplicas must be >= 1");
    LIA_ASSERT(maxReplicas >= minReplicas,
               "maxReplicas below minReplicas");
    LIA_ASSERT(evaluationPeriod > 0, "evaluationPeriod must be > 0");
    LIA_ASSERT(scaleUpQueueDepth > 0, "scaleUpQueueDepth must be > 0");
    LIA_ASSERT(scaleDownKvOccupancy >= 0,
               "scaleDownKvOccupancy must be >= 0");
    LIA_ASSERT(hysteresisTicks >= 1, "hysteresisTicks must be >= 1");
    LIA_ASSERT(cooldown >= 0, "cooldown must be >= 0");
}

ReplicaAutoscaler::ReplicaAutoscaler(const AutoscalerConfig &config)
    : config_(config)
{
    config_.validate();
}

ScaleDecision
ReplicaAutoscaler::evaluate(double now,
                            const AutoscalerSignals &signals)
{
    // Classify this window. Scale-down needs BOTH signals quiet:
    // low KV occupancy with a deep queue means requests are waiting
    // on admission, not that capacity is idle.
    const bool pressured =
        signals.meanQueueDepth > config_.scaleUpQueueDepth;
    const bool idle =
        !pressured &&
        signals.meanKvOccupancy < config_.scaleDownKvOccupancy;

    if (pressured) {
        ++upStreak_;
        downStreak_ = 0;
    } else if (idle) {
        ++downStreak_;
        upStreak_ = 0;
    } else {
        upStreak_ = 0;
        downStreak_ = 0;
    }

    if (acted_ && now - lastAction_ < config_.cooldown)
        return ScaleDecision::Hold;

    if (upStreak_ >= config_.hysteresisTicks &&
        signals.activeReplicas < config_.maxReplicas) {
        upStreak_ = 0;
        downStreak_ = 0;
        acted_ = true;
        lastAction_ = now;
        return ScaleDecision::Up;
    }
    if (downStreak_ >= config_.hysteresisTicks &&
        signals.activeReplicas > config_.minReplicas) {
        upStreak_ = 0;
        downStreak_ = 0;
        acted_ = true;
        lastAction_ = now;
        return ScaleDecision::Down;
    }
    return ScaleDecision::Hold;
}

} // namespace cluster
} // namespace lia
