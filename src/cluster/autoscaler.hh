/**
 * @file
 * Replica autoscaler: a pure threshold state machine.
 *
 * The router samples fleet signals (mean queue depth, mean KV
 * occupancy — read back from the per-replica obs::SeriesRegistry
 * counters the engines already emit) once per evaluation period and
 * feeds them to evaluate(). The machine answers Hold / Up / Down,
 * applying hysteresis (a threshold must be breached on consecutive
 * evaluations before acting) and a post-action cooldown so the fleet
 * doesn't thrash on bursty arrivals. It holds no engine state, which
 * is what makes it unit-testable without a simulation.
 */

#ifndef LIA_CLUSTER_AUTOSCALER_HH
#define LIA_CLUSTER_AUTOSCALER_HH

#include <cstddef>

#include "cluster/config.hh"

namespace lia {
namespace cluster {

/** Fleet-wide load signals for one evaluation. */
struct AutoscalerSignals
{
    /** Mean waiting-queue depth per active replica over the window. */
    double meanQueueDepth = 0;

    /** Mean KV occupancy (reserved/budget) over the window. */
    double meanKvOccupancy = 0;

    /** Replicas currently accepting traffic (not draining). */
    std::size_t activeReplicas = 0;
};

/** What the fleet should do after one evaluation. */
enum class ScaleDecision
{
    Hold,
    Up,    //!< spawn one replica
    Down,  //!< drain (then decommission) one replica
};

/** Threshold + hysteresis + cooldown scaling policy. */
class ReplicaAutoscaler
{
  public:
    explicit ReplicaAutoscaler(const AutoscalerConfig &config);

    /**
     * Evaluate the signals at simulated time @p now. Streaks
     * accumulate on every call; an action is returned only once a
     * streak reaches hysteresisTicks, the cooldown since the last
     * action has passed, and the fleet bounds permit it. Returning Up
     * or Down records the action (streaks reset, cooldown restarts).
     */
    ScaleDecision evaluate(double now,
                           const AutoscalerSignals &signals);

    /** Consecutive scale-up-breaching evaluations so far. */
    int upStreak() const { return upStreak_; }

    /** Consecutive scale-down-breaching evaluations so far. */
    int downStreak() const { return downStreak_; }

    const AutoscalerConfig &config() const { return config_; }

  private:
    AutoscalerConfig config_;
    int upStreak_ = 0;
    int downStreak_ = 0;
    bool acted_ = false;    //!< whether lastAction_ is meaningful
    double lastAction_ = 0;
};

} // namespace cluster
} // namespace lia

#endif // LIA_CLUSTER_AUTOSCALER_HH
