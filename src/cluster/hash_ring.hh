/**
 * @file
 * Consistent-hash ring for session-affinity routing.
 *
 * The classic construction: every node projects `vnodes` virtual
 * points onto a 64-bit ring; a key routes to the first virtual point
 * clockwise from its own hash. Adding or removing one node therefore
 * remaps only the keys between its points and their predecessors —
 * ~1/N of the keyspace — which is exactly the property the cluster
 * autoscaler needs: scaling the fleet must not cold-start every
 * session's prefix cache, only the sessions that actually moved.
 *
 * Everything is deterministic: FNV-1a over fixed-width bytes, no
 * randomised vnode placement, std::map iteration order.
 */

#ifndef LIA_CLUSTER_HASH_RING_HH
#define LIA_CLUSTER_HASH_RING_HH

#include <cstddef>
#include <cstdint>
#include <map>

namespace lia {
namespace cluster {

/** Deterministic consistent-hash ring over integer node ids. */
class ConsistentHashRing
{
  public:
    /** @param vnodes  virtual points per node (>= 1). */
    explicit ConsistentHashRing(int vnodes = 16);

    /** Project @p node onto the ring. Adding twice is a no-op. */
    void addNode(std::size_t node);

    /** Remove every virtual point of @p node. */
    void removeNode(std::size_t node);

    bool empty() const { return ring_.empty(); }

    /** Distinct nodes currently on the ring. */
    std::size_t nodeCount() const { return nodes_; }

    /**
     * The node owning @p key: the first virtual point at or clockwise
     * after hash(key), wrapping at the top. Panics on an empty ring.
     */
    std::size_t nodeFor(std::uint64_t key) const;

    /** FNV-1a over the 8 little-endian bytes of @p value. */
    static std::uint64_t hash(std::uint64_t value);

  private:
    /** Ring position of @p node's @p replica-th virtual point. */
    static std::uint64_t point(std::size_t node, int replica);

    int vnodes_;
    std::size_t nodes_ = 0;
    std::map<std::uint64_t, std::size_t> ring_;
};

} // namespace cluster
} // namespace lia

#endif // LIA_CLUSTER_HASH_RING_HH
