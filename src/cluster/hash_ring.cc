#include "cluster/hash_ring.hh"

#include "base/logging.hh"

namespace lia {
namespace cluster {

ConsistentHashRing::ConsistentHashRing(int vnodes) : vnodes_(vnodes)
{
    LIA_ASSERT(vnodes >= 1, "need at least one virtual node");
}

std::uint64_t
ConsistentHashRing::hash(std::uint64_t value)
{
    // FNV-1a, 64-bit: byte-at-a-time over the little-endian value.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xffULL;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
ConsistentHashRing::point(std::size_t node, int replica)
{
    // Mix node and vnode index into one 64-bit key, then hash TWICE.
    // The double hash keeps the vnode-point domain disjoint from the
    // key domain nodeFor() searches: node 0's points would otherwise
    // be hash(0 .. vnodes-1) — exactly the hashes of small integer
    // session ids, so every such session would find an exactly-equal
    // point and the whole keyspace would collapse onto node 0.
    return hash(hash(
        static_cast<std::uint64_t>(node) * 0x9e3779b97f4a7c15ULL +
        static_cast<std::uint64_t>(replica)));
}

void
ConsistentHashRing::addNode(std::size_t node)
{
    bool added = false;
    for (int v = 0; v < vnodes_; ++v)
        added |= ring_.emplace(point(node, v), node).second;
    if (added)
        ++nodes_;
}

void
ConsistentHashRing::removeNode(std::size_t node)
{
    bool removed = false;
    for (int v = 0; v < vnodes_; ++v)
        removed |= ring_.erase(point(node, v)) > 0;
    if (removed)
        --nodes_;
}

std::size_t
ConsistentHashRing::nodeFor(std::uint64_t key) const
{
    LIA_ASSERT(!ring_.empty(), "routing over an empty ring");
    auto it = ring_.lower_bound(hash(key));
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

} // namespace cluster
} // namespace lia
