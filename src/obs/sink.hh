/**
 * @file
 * Structured-event sink interface of the observability layer.
 *
 * Components that want to be traceable (the serving engine, the
 * scheduler, sim::TransferChannel) emit spans, instant events, and
 * counter samples against an abstract EventSink instead of any
 * concrete trace format. Emission is always guarded by a null check
 * at the call site, so an untraced run performs no work at all — not
 * even argument formatting — and is bit-identical to a build without
 * the hooks (the overhead policy of DESIGN.md §8).
 *
 * Times are seconds on whichever axis the emitter lives on: the
 * serving engine emits simulated seconds, wall-clock profilers real
 * seconds. A sink never interprets the axis, it only records it.
 *
 * Concrete sinks: obs::ChromeTraceWriter (chrome://tracing / Perfetto
 * JSON), obs::SeriesRegistry (counter time series), obs::NullSink
 * (explicit no-op), obs::TeeSink (fan-out).
 */

#ifndef LIA_OBS_SINK_HH
#define LIA_OBS_SINK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lia {
namespace obs {

/**
 * One timeline a sink can place events on, identified Chrome-trace
 * style: pid groups related tracks (a "process" lane in Perfetto),
 * tid separates the tracks inside the group.
 */
struct Track
{
    std::int32_t pid = 0;
    std::int32_t tid = 0;

    bool operator==(const Track &other) const
    {
        return pid == other.pid && tid == other.tid;
    }
    bool operator<(const Track &other) const
    {
        return pid != other.pid ? pid < other.pid : tid < other.tid;
    }
};

/**
 * One pre-rendered event argument: a key plus its value already
 * formatted as a JSON literal. Rendering at the call site keeps the
 * sink interface format-agnostic and the formatting deterministic
 * (see jsonNumber()).
 */
struct Arg
{
    std::string key;
    std::string json;  //!< rendered JSON value, quoting included
};

using Args = std::vector<Arg>;

/**
 * Deterministically format @p value as a JSON number literal.
 *
 * Shortest round-trip-ish rendering via "%.9g": stable across runs on
 * one platform (the golden-trace test byte-compares two runs), and
 * never locale-dependent. Non-finite values render as 0 — JSON has no
 * Inf/NaN literal.
 */
std::string jsonNumber(double value);

/** Escape @p text for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** Build an argument from a double (rendered via jsonNumber). */
Arg arg(std::string key, double value);

/** Build an argument from an integer. */
Arg arg(std::string key, std::int64_t value);

/** Build an argument from a string (quoted and escaped). */
Arg arg(std::string key, const std::string &value);
Arg arg(std::string key, const char *value);

/** Abstract receiver of spans, instants, and counter samples. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /**
     * Name @p track for the display layer: @p process labels the pid
     * group, @p thread the individual track. Idempotent per track;
     * call once before (or after) emitting onto the track.
     */
    virtual void setTrackName(Track track, const std::string &process,
                              const std::string &thread) = 0;

    /**
     * Open a span named @p name at @p seconds. Spans on one track may
     * nest but must close in LIFO order (Chrome-trace B/E semantics);
     * the schema test enforces balance and per-track monotonicity.
     */
    virtual void beginSpan(Track track, const char *name,
                           double seconds, Args args = {}) = 0;

    /** Close the innermost open span of @p track at @p seconds. */
    virtual void endSpan(Track track, double seconds) = 0;

    /** A zero-duration marker event. */
    virtual void instant(Track track, const char *name, double seconds,
                         Args args = {}) = 0;

    /** One sample of the counter @p name (a Perfetto counter track). */
    virtual void counter(Track track, const char *name, double seconds,
                         double value) = 0;
};

/** The explicit do-nothing sink (for symmetry tests and defaults). */
class NullSink final : public EventSink
{
  public:
    void setTrackName(Track, const std::string &,
                      const std::string &) override
    {
    }
    void beginSpan(Track, const char *, double, Args) override {}
    void endSpan(Track, double) override {}
    void instant(Track, const char *, double, Args) override {}
    void counter(Track, const char *, double, double) override {}
};

/** Fans every event out to a list of child sinks (none owned). */
class TeeSink final : public EventSink
{
  public:
    explicit TeeSink(std::vector<EventSink *> sinks);

    void setTrackName(Track track, const std::string &process,
                      const std::string &thread) override;
    void beginSpan(Track track, const char *name, double seconds,
                   Args args = {}) override;
    void endSpan(Track track, double seconds) override;
    void instant(Track track, const char *name, double seconds,
                 Args args = {}) override;
    void counter(Track track, const char *name, double seconds,
                 double value) override;

  private:
    std::vector<EventSink *> sinks_;
};

} // namespace obs
} // namespace lia

#endif // LIA_OBS_SINK_HH
