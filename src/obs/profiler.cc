#include "obs/profiler.hh"

#include <fstream>
#include <sstream>

#include "obs/sink.hh"

namespace lia {
namespace obs {

void
KernelProfiler::record(const char *name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_[name].add(seconds);
}

std::map<std::string, SampleStats>
KernelProfiler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

double
KernelProfiler::totalSeconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    if (it == stats_.end() || it->second.empty())
        return 0;
    return it->second.mean() * double(it->second.count());
}

std::size_t
KernelProfiler::calls(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    return it == stats_.end() ? 0 : it->second.count();
}

void
KernelProfiler::write(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{";
    bool firstKernel = true;
    for (const auto &entry : stats_) {
        const SampleStats &s = entry.second;
        if (s.empty())
            continue;
        if (!firstKernel)
            os << ",";
        firstKernel = false;
        os << "\n\"" << jsonEscape(entry.first) << "\":{"
           << "\"calls\":" << s.count()
           << ",\"total_s\":" << jsonNumber(s.mean() * double(s.count()))
           << ",\"mean_s\":" << jsonNumber(s.mean())
           << ",\"min_s\":" << jsonNumber(s.min())
           << ",\"max_s\":" << jsonNumber(s.max())
           << ",\"p50_s\":" << jsonNumber(s.p50())
           << ",\"p95_s\":" << jsonNumber(s.p95()) << "}";
    }
    os << "\n}\n";
}

std::string
KernelProfiler::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

bool
KernelProfiler::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    write(os);
    return bool(os);
}

} // namespace obs
} // namespace lia
