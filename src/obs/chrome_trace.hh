/**
 * @file
 * Chrome-trace-event / Perfetto JSON exporter.
 *
 * Records every sink event in memory and renders the Trace Event
 * Format's JSON-object flavour ({"traceEvents": [...]}), which both
 * chrome://tracing and ui.perfetto.dev load directly. Timestamps are
 * converted from the emitter's seconds to the format's microseconds;
 * everything else is written exactly as emitted, in emission order,
 * with deterministic number formatting — two identical runs produce
 * byte-identical files (the golden-trace test relies on this).
 *
 * The writer keeps the events in structured form (events()) so tests
 * can validate schema properties — span balance, per-track timestamp
 * monotonicity — without parsing JSON back.
 */

#ifndef LIA_OBS_CHROME_TRACE_HH
#define LIA_OBS_CHROME_TRACE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.hh"

namespace lia {
namespace obs {

/** EventSink rendering the Chrome trace-event JSON format. */
class ChromeTraceWriter final : public EventSink
{
  public:
    /** One recorded event, pre-rendering. */
    struct Event
    {
        char phase = 'i';     //!< 'B', 'E', 'i', or 'C'
        Track track;
        double seconds = 0;   //!< emitter-axis time
        std::string name;     //!< empty for 'E'
        std::string args;     //!< rendered JSON object body, "" = none
    };

    void setTrackName(Track track, const std::string &process,
                      const std::string &thread) override;
    void beginSpan(Track track, const char *name, double seconds,
                   Args args = {}) override;
    void endSpan(Track track, double seconds) override;
    void instant(Track track, const char *name, double seconds,
                 Args args = {}) override;
    void counter(Track track, const char *name, double seconds,
                 double value) override;

    /** Recorded events in emission order (metadata excluded). */
    const std::vector<Event> &events() const { return events_; }

    /** Render the complete trace document. */
    void write(std::ostream &os) const;

    /** Render to a string (golden-trace byte comparisons). */
    std::string toJson() const;

    /**
     * Write the trace to @p path; returns false when the file cannot
     * be opened (the run's results are never at stake for a trace).
     */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<Event> events_;

    /** (pid, tid) -> (process label, track label). */
    std::map<Track, std::pair<std::string, std::string>> trackNames_;
};

/** Render an Args list as a JSON object body ("k": v, ...). */
std::string renderArgs(const Args &args);

} // namespace obs
} // namespace lia

#endif // LIA_OBS_CHROME_TRACE_HH
