#include "obs/sink.hh"

#include <cmath>
#include <cstdio>
#include <utility>

#include "base/logging.hh"

namespace lia {
namespace obs {

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

Arg
arg(std::string key, double value)
{
    return {std::move(key), jsonNumber(value)};
}

Arg
arg(std::string key, std::int64_t value)
{
    return {std::move(key), std::to_string(value)};
}

Arg
arg(std::string key, const std::string &value)
{
    std::string json;
    json += '"';
    json += jsonEscape(value);
    json += '"';
    return {std::move(key), std::move(json)};
}

Arg
arg(std::string key, const char *value)
{
    return arg(std::move(key), std::string(value));
}

TeeSink::TeeSink(std::vector<EventSink *> sinks)
    : sinks_(std::move(sinks))
{
    for (const EventSink *sink : sinks_)
        LIA_ASSERT(sink != nullptr, "null child sink in TeeSink");
}

void
TeeSink::setTrackName(Track track, const std::string &process,
                      const std::string &thread)
{
    for (EventSink *sink : sinks_)
        sink->setTrackName(track, process, thread);
}

void
TeeSink::beginSpan(Track track, const char *name, double seconds,
                   Args args)
{
    for (EventSink *sink : sinks_)
        sink->beginSpan(track, name, seconds, args);
}

void
TeeSink::endSpan(Track track, double seconds)
{
    for (EventSink *sink : sinks_)
        sink->endSpan(track, seconds);
}

void
TeeSink::instant(Track track, const char *name, double seconds,
                 Args args)
{
    for (EventSink *sink : sinks_)
        sink->instant(track, name, seconds, args);
}

void
TeeSink::counter(Track track, const char *name, double seconds,
                 double value)
{
    for (EventSink *sink : sinks_)
        sink->counter(track, name, seconds, value);
}

} // namespace obs
} // namespace lia
