#include "obs/series.hh"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>

namespace lia {
namespace obs {

void
SeriesRegistry::counter(Track, const char *name, double seconds,
                        double value)
{
    series_[name].push_back({seconds, value});
}

const SeriesRegistry::Series &
SeriesRegistry::at(const std::string &name) const
{
    static const Series empty;
    auto it = series_.find(name);
    return it == series_.end() ? empty : it->second;
}

void
SeriesRegistry::merge(const SeriesRegistry &other)
{
    for (const auto &[name, points] : other.series_) {
        auto [it, inserted] = series_.try_emplace(name, points);
        if (inserted)
            continue;
        Series merged;
        merged.reserve(it->second.size() + points.size());
        // std::merge is stable: on equal timestamps, existing points
        // (the first range) come first.
        std::merge(it->second.begin(), it->second.end(),
                   points.begin(), points.end(),
                   std::back_inserter(merged),
                   [](const Point &a, const Point &b) {
                       return a.seconds < b.seconds;
                   });
        it->second = std::move(merged);
    }
}

void
SeriesRegistry::write(std::ostream &os) const
{
    os << "{";
    bool firstSeries = true;
    for (const auto &entry : series_) {
        if (!firstSeries)
            os << ",";
        firstSeries = false;
        os << "\n\"" << jsonEscape(entry.first) << "\":{\"t\":[";
        bool first = true;
        for (const Point &p : entry.second) {
            if (!first)
                os << ",";
            first = false;
            os << jsonNumber(p.seconds);
        }
        os << "],\"v\":[";
        first = true;
        for (const Point &p : entry.second) {
            if (!first)
                os << ",";
            first = false;
            os << jsonNumber(p.value);
        }
        os << "]}";
    }
    os << "\n}\n";
}

std::string
SeriesRegistry::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

bool
SeriesRegistry::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    write(os);
    return bool(os);
}

} // namespace obs
} // namespace lia
