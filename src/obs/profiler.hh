/**
 * @file
 * Wall-clock kernel profiler.
 *
 * Aggregates scoped wall-time measurements per kernel name into
 * SampleStats — this is the one obs component that lives on real time
 * rather than the simulated axis, because it measures the actual
 * runtime::kernels / base::ThreadPool execution of PR 4.
 *
 * Overhead policy: a Scope constructed with a null profiler never
 * reads the clock, so instrumented kernels run the untouched
 * bit-identical hot path unless ExecutorConfig::profileKernels turns
 * profiling on. Recording takes a mutex — acceptable because kernels
 * are invoked from the executor's (single) control thread; worker
 * threads never record, only the thread-pool observer hook does, and
 * that also runs on the calling thread.
 */

#ifndef LIA_OBS_PROFILER_HH
#define LIA_OBS_PROFILER_HH

#include <chrono>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "base/stats.hh"
#include "base/thread_pool.hh"

namespace lia {
namespace obs {

/** Per-kernel wall-clock aggregation with RAII measurement scopes. */
class KernelProfiler final : public base::ParallelObserver
{
  public:
    /**
     * Times one kernel invocation. With a null profiler the
     * constructor and destructor do nothing at all.
     */
    class Scope
    {
      public:
        Scope(KernelProfiler *profiler, const char *name)
            : profiler_(profiler), name_(name)
        {
            if (profiler_)
                start_ = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (!profiler_)
                return;
            auto end = std::chrono::steady_clock::now();
            profiler_->record(
                name_, std::chrono::duration<double>(end - start_)
                           .count());
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        KernelProfiler *profiler_;
        const char *name_;
        std::chrono::steady_clock::time_point start_;
    };

    /** Add one measurement of @p seconds under @p name. */
    void record(const char *name, double seconds);

    /** ThreadPool observer hook: one drained parallelFor loop. */
    void onParallelFor(double seconds) override
    {
        record("thread_pool.parallel_for", seconds);
    }

    /** Snapshot of the per-kernel distributions. */
    std::map<std::string, SampleStats> stats() const;

    /** Accumulated wall seconds under @p name (0 when absent). */
    double totalSeconds(const std::string &name) const;

    /** Number of recorded invocations of @p name. */
    std::size_t calls(const std::string &name) const;

    /**
     * {"kernel": {"calls": n, "total_s": ..., "mean_s": ...,
     *             "min_s": ..., "max_s": ..., "p50_s": ...,
     *             "p95_s": ...}, ...}
     */
    std::string toJson() const;

    void write(std::ostream &os) const;

    /** Write toJson() to @p path; false when the file cannot open. */
    bool writeFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, SampleStats> stats_;
};

} // namespace obs
} // namespace lia

#endif // LIA_OBS_PROFILER_HH
