#include "obs/timeline.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace lia {
namespace obs {

namespace {

/** Lifecycle phases in canonical order (DESIGN.md §13). */
const char *const kCanonicalPhases[] = {
    "queued", "prefill", "decode", "recompute", "preempted",
    "swapped",
};

} // namespace

std::map<std::string, double>
TimelineRecorder::Record::phaseSeconds() const
{
    std::map<std::string, double> totals;
    for (const Segment &segment : segments)
        totals[segment.phase] += segment.seconds();
    return totals;
}

double
TimelineRecorder::Record::segmentSeconds() const
{
    double total = 0;
    for (const Segment &segment : segments)
        total += segment.seconds();
    return total;
}

bool
TimelineRecorder::Record::contiguous() const
{
    if (!finished)
        return false;
    if (segments.empty())
        return arrive == finish;
    // Exact comparison on purpose: the emitter closes and opens
    // adjacent spans with the same timestamp, so boundary doubles are
    // identical, not merely close.
    if (segments.front().begin != arrive)
        return false;
    for (std::size_t i = 1; i < segments.size(); ++i) {
        if (segments[i].begin != segments[i - 1].end)
            return false;
    }
    return segments.back().end == finish;
}

void
TimelineRecorder::setTrackName(Track track, const std::string &,
                               const std::string &thread)
{
    const auto it = states_.find(track);
    if (it != states_.end()) {
        it->second.record.label = thread;
        dirty_ = true;
    }
}

void
TimelineRecorder::beginSpan(Track track, const char *name,
                            double seconds, Args)
{
    const auto it = states_.find(track);
    if (it == states_.end())
        return; // not a request track (no "arrive" seen)
    State &state = it->second;
    if (++state.depth == 1) {
        state.record.segments.push_back(
            Segment{name, seconds, seconds});
        state.open = true;
    }
    dirty_ = true;
}

void
TimelineRecorder::endSpan(Track track, double seconds)
{
    const auto it = states_.find(track);
    if (it == states_.end())
        return;
    State &state = it->second;
    if (state.depth <= 0)
        return;
    if (--state.depth == 0 && state.open) {
        state.record.segments.back().end = seconds;
        state.open = false;
    }
    dirty_ = true;
}

void
TimelineRecorder::instant(Track track, const char *name,
                          double seconds, Args)
{
    const std::string event = name;
    if (event == "arrive") {
        State &state = states_[track];
        state.record.track = track;
        state.record.arrive = seconds;
        dirty_ = true;
        return;
    }
    if (event == "finish") {
        const auto it = states_.find(track);
        if (it == states_.end())
            return;
        it->second.record.finish = seconds;
        it->second.record.finished = true;
        dirty_ = true;
    }
}

void
TimelineRecorder::refresh() const
{
    if (!dirty_)
        return;
    records_.clear();
    for (const auto &[track, state] : states_)
        records_.emplace(track, state.record);
    dirty_ = false;
}

std::vector<const TimelineRecorder::Record *>
TimelineRecorder::finished() const
{
    refresh();
    std::vector<const Record *> out;
    for (const auto &[track, record] : records_) {
        if (record.finished)
            out.push_back(&record);
    }
    return out;
}

std::size_t
TimelineRecorder::finishedCount() const
{
    return finished().size();
}

std::vector<std::string>
TimelineRecorder::phases() const
{
    refresh();
    std::vector<std::string> out;
    std::vector<std::string> extras;
    std::map<std::string, bool> seen;
    for (const auto &[track, record] : records_) {
        for (const Segment &segment : record.segments)
            seen[segment.phase] = true;
    }
    for (const char *phase : kCanonicalPhases) {
        if (seen.count(phase)) {
            out.push_back(phase);
            seen.erase(phase);
        }
    }
    for (const auto &[phase, unused] : seen)
        out.push_back(phase); // unexpected names, alphabetical
    return out;
}

namespace {

void
writePhaseMap(std::ostream &os, const std::vector<std::string> &phases,
              const std::map<std::string, double> &totals,
              double denominator, bool as_fraction)
{
    os << "{";
    bool first = true;
    for (const std::string &phase : phases) {
        const auto it = totals.find(phase);
        const double value = it == totals.end() ? 0.0 : it->second;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(phase) << "\":"
           << jsonNumber(as_fraction
                             ? (denominator > 0 ? value / denominator
                                                : 0.0)
                             : value);
    }
    os << "}";
}

} // namespace

void
TimelineRecorder::writeBlame(std::ostream &os,
                             const std::vector<double> &tail_pcts) const
{
    refresh();
    const std::vector<std::string> phase_names = phases();
    std::vector<const Record *> done = finished();

    // Slowest first; ties break on track order so the report is a
    // pure function of the event stream.
    std::sort(done.begin(), done.end(),
              [](const Record *a, const Record *b) {
                  if (a->e2e() != b->e2e())
                      return a->e2e() > b->e2e();
                  return a->track < b->track;
              });

    Histogram e2e_hist;
    std::map<std::string, Histogram> phase_hists;
    std::map<std::string, double> overall_phase;
    double overall_e2e = 0;
    for (const Record *record : done) {
        e2e_hist.add(record->e2e());
        overall_e2e += record->e2e();
        for (const auto &[phase, total] : record->phaseSeconds()) {
            phase_hists[phase].add(total);
            overall_phase[phase] += total;
        }
    }

    os << "{\"requests\":" << records_.size()
       << ",\"finished\":" << done.size() << ",\"phases\":[";
    for (std::size_t i = 0; i < phase_names.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << jsonEscape(phase_names[i]) << "\"";
    }
    os << "],\"overall\":{\"count\":" << done.size()
       << ",\"e2e_s\":" << jsonNumber(overall_e2e) << ",\"phase_s\":";
    writePhaseMap(os, phase_names, overall_phase, 0, false);
    os << ",\"phase_frac\":";
    writePhaseMap(os, phase_names, overall_phase, overall_e2e, true);
    os << "},\"e2e_hist\":";
    e2e_hist.write(os);
    os << ",\"phase_hist\":{";
    bool first = true;
    for (const std::string &phase : phase_names) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(phase) << "\":";
        phase_hists[phase].write(os);
    }
    os << "},\"tails\":[";
    first = true;
    for (double pct : tail_pcts) {
        LIA_ASSERT(pct >= 0 && pct < 100, "tail pct ", pct,
                   " out of [0, 100)");
        if (!first)
            os << ",";
        first = false;
        // Slowest (100 - pct)% of finished requests, at least one so
        // every tail row carries a concrete culprit.
        std::size_t count = 0;
        if (!done.empty()) {
            count = static_cast<std::size_t>(std::ceil(
                static_cast<double>(done.size()) * (100.0 - pct) /
                100.0));
            count = std::max<std::size_t>(
                1, std::min(count, done.size()));
        }
        std::map<std::string, double> tail_phase;
        double tail_e2e = 0;
        for (std::size_t i = 0; i < count; ++i) {
            tail_e2e += done[i]->e2e();
            for (const auto &[phase, total] :
                 done[i]->phaseSeconds())
                tail_phase[phase] += total;
        }
        os << "{\"pct\":" << jsonNumber(pct) << ",\"count\":" << count
           << ",\"e2e_s\":" << jsonNumber(tail_e2e) << ",\"phase_s\":";
        writePhaseMap(os, phase_names, tail_phase, 0, false);
        os << ",\"phase_frac\":";
        writePhaseMap(os, phase_names, tail_phase, tail_e2e, true);
        if (count > 0) {
            const Record *slowest = done[0];
            os << ",\"slowest\":{\"pid\":" << slowest->track.pid
               << ",\"tid\":" << slowest->track.tid
               << ",\"e2e_s\":" << jsonNumber(slowest->e2e())
               << ",\"phase_s\":";
            writePhaseMap(os, phase_names, slowest->phaseSeconds(), 0,
                          false);
            os << "}";
        }
        os << "}";
    }
    os << "]}";
}

std::string
TimelineRecorder::blameReport(const std::vector<double> &tail_pcts) const
{
    std::ostringstream os;
    writeBlame(os, tail_pcts);
    return os.str();
}

bool
TimelineRecorder::writeFile(const std::string &path,
                            const std::vector<double> &tail_pcts) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeBlame(os, tail_pcts);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace obs
} // namespace lia
