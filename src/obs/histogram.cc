#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "obs/sink.hh"

namespace lia {
namespace obs {

std::int32_t
Histogram::bucketFor(double value) const
{
    if (edges_.empty())
        edges_.push_back(bounds_.lo);
    // Extend the materialised edges until one covers the value. The
    // repeated multiply keeps the mapping exact across runs — every
    // histogram with equal Bounds computes the identical edge list.
    while (edges_.back() < value) {
        LIA_ASSERT(edges_.size() < 4096,
                   "histogram value ", value,
                   " beyond any sane bucket range");
        edges_.push_back(edges_.back() * bounds_.growth);
    }
    const auto it =
        std::lower_bound(edges_.begin(), edges_.end(), value);
    return static_cast<std::int32_t>(it - edges_.begin());
}

void
Histogram::add(double value)
{
    LIA_ASSERT(std::isfinite(value),
               "histogram sample must be finite");
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (value <= 0) {
        ++zeros_;
        return;
    }
    ++buckets_[bucketFor(value)];
}

void
Histogram::merge(const Histogram &other)
{
    LIA_ASSERT(bounds_ == other.bounds_,
               "merging histograms with different bucket schemes");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    zeros_ += other.zeros_;
    for (const auto &[index, n] : other.buckets_)
        buckets_[index] += n;
}

double
Histogram::upperEdge(std::int32_t index) const
{
    LIA_ASSERT(index >= 0, "negative bucket index");
    if (edges_.empty())
        edges_.push_back(bounds_.lo);
    while (static_cast<std::int32_t>(edges_.size()) <= index)
        edges_.push_back(edges_.back() * bounds_.growth);
    return edges_[static_cast<std::size_t>(index)];
}

double
Histogram::quantile(double pct) const
{
    LIA_ASSERT(pct >= 0 && pct <= 100, "quantile pct ", pct,
               " out of [0, 100]");
    if (count_ == 0)
        return 0.0;
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(pct / 100.0 *
                         static_cast<double>(count_))));
    std::uint64_t seen = zeros_;
    if (rank <= seen)
        return 0.0;
    for (const auto &[index, n] : buckets_) {
        seen += n;
        if (rank <= seen)
            return std::min(upperEdge(index), max_);
    }
    return max_;
}

void
Histogram::write(std::ostream &os) const
{
    os << "{\"lo\":" << jsonNumber(bounds_.lo)
       << ",\"growth\":" << jsonNumber(bounds_.growth)
       << ",\"count\":" << count_ << ",\"zeros\":" << zeros_
       << ",\"sum\":" << jsonNumber(sum_)
       << ",\"min\":" << jsonNumber(min())
       << ",\"max\":" << jsonNumber(max()) << ",\"buckets\":{";
    bool first = true;
    for (const auto &[index, n] : buckets_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << index << "\":" << n;
    }
    os << "}}";
}

std::string
Histogram::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
Histogram::writeProm(std::ostream &os, const std::string &name,
                     const std::string &help,
                     const std::string &labels) const
{
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " histogram\n";
    auto bucketLine = [&](const std::string &le,
                          std::uint64_t cumulative) {
        os << name << "_bucket{";
        if (!labels.empty())
            os << labels << ",";
        os << "le=\"" << le << "\"} " << cumulative << "\n";
    };
    std::uint64_t cumulative = zeros_;
    if (zeros_ > 0)
        bucketLine("0", cumulative);
    for (const auto &[index, n] : buckets_) {
        cumulative += n;
        bucketLine(jsonNumber(upperEdge(index)), cumulative);
    }
    bucketLine("+Inf", count_);
    const std::string suffix =
        labels.empty() ? "" : "{" + labels + "}";
    os << name << "_sum" << suffix << " " << jsonNumber(sum_) << "\n"
       << name << "_count" << suffix << " " << count_ << "\n";
}

} // namespace obs
} // namespace lia
