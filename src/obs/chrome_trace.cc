#include "obs/chrome_trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lia {
namespace obs {

namespace {

/**
 * Trace-event timestamps are microseconds; "%.3f" keeps sub-µs
 * precision from the double-seconds axis while staying deterministic.
 */
std::string
renderMicros(double seconds)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

} // namespace

std::string
renderArgs(const Args &args)
{
    std::string out;
    for (const Arg &a : args) {
        if (!out.empty())
            out += ',';
        out += '"';
        out += jsonEscape(a.key);
        out += "\":";
        out += a.json;
    }
    return out;
}

void
ChromeTraceWriter::setTrackName(Track track, const std::string &process,
                                const std::string &thread)
{
    trackNames_[track] = {process, thread};
}

void
ChromeTraceWriter::beginSpan(Track track, const char *name,
                             double seconds, Args args)
{
    events_.push_back({'B', track, seconds, name, renderArgs(args)});
}

void
ChromeTraceWriter::endSpan(Track track, double seconds)
{
    events_.push_back({'E', track, seconds, "", ""});
}

void
ChromeTraceWriter::instant(Track track, const char *name, double seconds,
                           Args args)
{
    events_.push_back({'i', track, seconds, name, renderArgs(args)});
}

void
ChromeTraceWriter::counter(Track track, const char *name, double seconds,
                           double value)
{
    std::string args = "\"value\":";
    args += jsonNumber(value);
    events_.push_back({'C', track, seconds, name, std::move(args)});
}

void
ChromeTraceWriter::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Metadata first: name the process groups and the tracks. The map
    // iterates in Track order, which is itself deterministic.
    std::map<std::int32_t, std::string> processNames;
    for (const auto &entry : trackNames_)
        processNames.emplace(entry.first.pid, entry.second.first);
    for (const auto &entry : processNames) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
           << entry.first << ",\"tid\":0,\"args\":{\"name\":\""
           << jsonEscape(entry.second) << "\"}}";
    }
    for (const auto &entry : trackNames_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << entry.first.pid << ",\"tid\":" << entry.first.tid
           << ",\"args\":{\"name\":\"" << jsonEscape(entry.second.second)
           << "\"}}";
    }

    for (const Event &event : events_) {
        sep();
        os << "{\"ph\":\"" << event.phase << "\",\"pid\":"
           << event.track.pid << ",\"tid\":" << event.track.tid
           << ",\"ts\":" << renderMicros(event.seconds);
        if (event.phase != 'E')
            os << ",\"name\":\"" << jsonEscape(event.name) << "\"";
        if (event.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!event.args.empty())
            os << ",\"args\":{" << event.args << "}";
        os << "}";
    }
    os << "\n]}\n";
}

std::string
ChromeTraceWriter::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

bool
ChromeTraceWriter::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    write(os);
    return bool(os);
}

} // namespace obs
} // namespace lia
