/**
 * @file
 * Per-request tail-latency attribution over the event stream.
 *
 * A TimelineRecorder is an EventSink that reconstructs every served
 * request's lifecycle from the spans the serving layer already emits
 * (DESIGN.md §8): a request track carries exactly one open state span
 * at a time — queued / prefill / decode / recompute / preempted /
 * swapped — bracketed by `arrive` and `finish` instants, with every
 * transition closing one span and opening the next at the same
 * timestamp. The recorder therefore recovers, per request, an *exact
 * partition* of [arrive, finish] into lifecycle phases: queue wait,
 * chunked prefill (prefix-cache hits shorten it), decode iterations
 * (speculative draft+verify runs inside them), swap-channel stalls,
 * evict stalls, and recompute passes.
 *
 * From that partition it renders the "blame report" (DESIGN.md §13):
 * for the slowest decile / percentile / permille of finished
 * requests, which phase contributed what fraction of end-to-end
 * latency — the answer to "why was a p99.9 request slow". Rendering
 * is deterministic (obs::jsonNumber, sorted keys, total ordering on
 * ties), so two identical runs produce byte-identical reports.
 *
 * Requests from any number of engines can share one recorder: tracks
 * from different replica namespaces (distinct pids) stay distinct, so
 * attaching a recorder as the cluster sink yields the cluster-wide
 * report directly.
 */

#ifndef LIA_OBS_TIMELINE_HH
#define LIA_OBS_TIMELINE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "obs/sink.hh"

namespace lia {
namespace obs {

/** Reconstructs per-request phase timelines from sink events. */
class TimelineRecorder final : public EventSink
{
  public:
    /** One contiguous stretch of a request's lifetime in one phase. */
    struct Segment
    {
        std::string phase;  //!< lifecycle span name ("decode", ...)
        double begin = 0;
        double end = 0;

        double seconds() const { return end - begin; }
    };

    /** The reconstructed lifecycle of one request. */
    struct Record
    {
        Track track;        //!< pid = engine/replica, tid = request id
        std::string label;  //!< thread name ("req 7"), if ever named
        double arrive = -1;
        double finish = -1;
        bool finished = false;

        /** Phase segments in lifecycle order. */
        std::vector<Segment> segments;

        double e2e() const { return finish - arrive; }

        /** Total seconds per phase, keyed by phase name. */
        std::map<std::string, double> phaseSeconds() const;

        /** Sum of all segment durations (== e2e up to fp rounding). */
        double segmentSeconds() const;

        /**
         * Whether the segments are an exact partition of
         * [arrive, finish]: first begins at arrive, each begins
         * exactly where its predecessor ended, last ends at finish.
         * Exact double comparison — the emitter uses one timestamp
         * for both sides of a transition, so a finished request's
         * timeline partitions exactly by construction (the property
         * test pins this for every scheduler feature).
         */
        bool contiguous() const;
    };

    // --- EventSink ---------------------------------------------------

    void setTrackName(Track track, const std::string &process,
                      const std::string &thread) override;
    void beginSpan(Track track, const char *name, double seconds,
                   Args args = {}) override;
    void endSpan(Track track, double seconds) override;
    void instant(Track track, const char *name, double seconds,
                 Args args = {}) override;
    void counter(Track, const char *, double, double) override {}

    // --- Post-run queries --------------------------------------------

    /** Requests that emitted `arrive`, in track order. */
    const std::map<Track, Record> &records() const
    {
        refresh();
        return records_;
    }

    /** Records of finished requests, in track order. */
    std::vector<const Record *> finished() const;

    /** Requests seen / finished. */
    std::size_t arrived() const { return records().size(); }
    std::size_t finishedCount() const;

    /**
     * Phase names observed across all requests: the canonical
     * lifecycle order first (queued, prefill, decode, recompute,
     * preempted, swapped), then any unexpected names alphabetically.
     */
    std::vector<std::string> phases() const;

    /**
     * The blame report as a deterministic JSON object. For the whole
     * finished population and for each tail quantile (percent, e.g.
     * 99.9 = slowest permille, always at least one request), the
     * report carries the per-phase second totals and fractions of
     * summed end-to-end latency, plus the slowest request's own
     * breakdown; per-phase and e2e histograms ride along for
     * cluster-level re-aggregation.
     */
    std::string blameReport(
        const std::vector<double> &tail_pcts = {90.0, 99.0,
                                                99.9}) const;

    void writeBlame(std::ostream &os,
                    const std::vector<double> &tail_pcts = {
                        90.0, 99.0, 99.9}) const;

    /** Write blameReport() to @p path; false when it cannot open. */
    bool writeFile(const std::string &path,
                   const std::vector<double> &tail_pcts = {
                       90.0, 99.0, 99.9}) const;

  private:
    struct State
    {
        Record record;
        int depth = 0;       //!< nested-span depth on this track
        bool open = false;   //!< a segment is currently open
    };

    std::map<Track, State> states_;

    /** Finished view; rebuilt lazily is overkill — records_ mirrors
     *  states_ on demand. */
    mutable std::map<Track, Record> records_;
    mutable bool dirty_ = true;

    void refresh() const;
};

} // namespace obs
} // namespace lia

#endif // LIA_OBS_TIMELINE_HH
