/**
 * @file
 * Deterministic log-bucketed streaming histogram.
 *
 * The tail-latency layer's distribution type (DESIGN.md §13): where
 * SampleStats retains every sample so it can answer exact order
 * statistics, a Histogram keeps only exact *counts* in buckets whose
 * boundaries are fixed up front — O(buckets) state on hot serving
 * paths, mergeable across replicas for cluster-wide aggregation, and
 * byte-stable JSON so bench artifacts stay `cmp`-deterministic.
 *
 * Buckets are geometric: bucket i covers (lo*g^(i-1), lo*g^i], bucket
 * 0 covers (0, lo], and non-positive values land in a dedicated zero
 * bucket. Boundaries are materialised by repeated multiplication (no
 * log() indexing), so the value->bucket mapping is exact and identical
 * across runs, merges, and thread counts. Quantiles come back as the
 * upper edge of the bucket holding the requested rank — deterministic
 * and conservative (never under-reports a tail), with relative error
 * bounded by the growth factor.
 */

#ifndef LIA_OBS_HISTOGRAM_HH
#define LIA_OBS_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace lia {
namespace obs {

/** Streaming histogram over fixed geometric bucket boundaries. */
class Histogram
{
  public:
    /** Bucketing scheme; two histograms merge only when equal. */
    struct Bounds
    {
        /** Upper edge of the first positive bucket, seconds-ish. */
        double lo = 1e-6;

        /** Geometric growth per bucket: 2^(1/8) ≈ 9% relative width,
         *  so a quantile read off a bucket edge overstates the true
         *  order statistic by at most that factor. */
        double growth = 1.0905077326652577;

        bool operator==(const Bounds &other) const
        {
            return lo == other.lo && growth == other.growth;
        }
    };

    Histogram() = default;
    explicit Histogram(Bounds bounds) : bounds_(bounds) {}

    /** Count one sample (<= 0 lands in the zero bucket). */
    void add(double value);

    /**
     * Fold @p other into this histogram: per-bucket counts, totals,
     * and extremes combine exactly (counts are integers, so merging
     * is associative and loss-free — the property cluster aggregation
     * rests on). Panics when the bucketing schemes differ.
     */
    void merge(const Histogram &other);

    const Bounds &bounds() const { return bounds_; }
    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double sum() const { return sum_; }
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }

    /** Samples that landed in the zero bucket (value <= 0). */
    std::uint64_t zeros() const { return zeros_; }

    /** Sparse bucket counts, keyed by bucket index. */
    const std::map<std::int32_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

    /** Upper boundary of bucket @p index (lo * growth^index). */
    double upperEdge(std::int32_t index) const;

    /**
     * Quantile estimate for @p pct in [0, 100]: the upper edge of the
     * bucket holding sample rank ceil(pct/100 * count), clamped to
     * the observed maximum. Deterministic; 0 on an empty histogram.
     */
    double quantile(double pct) const;

    /** Convenience accessors for the tail percentiles. */
    double p50() const { return quantile(50.0); }
    double p95() const { return quantile(95.0); }
    double p99() const { return quantile(99.0); }
    double p999() const { return quantile(99.9); }

    /**
     * Byte-stable JSON object: bounds, totals, and the sparse bucket
     * counts in index order, all numbers via obs::jsonNumber.
     */
    std::string toJson() const;
    void write(std::ostream &os) const;

    /**
     * Prometheus text-exposition histogram: HELP/TYPE headers, one
     * cumulative `le` line per non-empty bucket edge plus "+Inf", and
     * the _sum/_count pair. @p labels is a pre-rendered label body
     * ('replica="0"'), empty for none.
     */
    void writeProm(std::ostream &os, const std::string &name,
                   const std::string &help,
                   const std::string &labels = "") const;

  private:
    /** Smallest bucket whose upper edge is >= value (value > 0). */
    std::int32_t bucketFor(double value) const;

    Bounds bounds_;
    std::map<std::int32_t, std::uint64_t> buckets_;
    std::uint64_t zeros_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;

    /** Materialised upper edges; grows on demand, never shrinks. */
    mutable std::vector<double> edges_;
};

} // namespace obs
} // namespace lia

#endif // LIA_OBS_HISTOGRAM_HH
