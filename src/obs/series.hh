/**
 * @file
 * Counter time-series registry.
 *
 * An EventSink that keeps only the counter samples, as named (time,
 * value) series — KV occupancy, queue depth, batch occupancy per
 * engine iteration. Where ChromeTraceWriter answers "what happened
 * when" visually, the registry keeps the raw series for programmatic
 * post-processing: plotting scripts, regression thresholds, or the
 * bench JSON artifacts. Span and instant events are discarded, so it
 * is cheap enough to tee alongside a trace writer.
 */

#ifndef LIA_OBS_SERIES_HH
#define LIA_OBS_SERIES_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.hh"

namespace lia {
namespace obs {

/** Collects counter samples into named time series. */
class SeriesRegistry final : public EventSink
{
  public:
    /** One counter sample on the emitter's time axis. */
    struct Point
    {
        double seconds = 0;
        double value = 0;
    };

    using Series = std::vector<Point>;

    void setTrackName(Track, const std::string &,
                      const std::string &) override
    {
    }
    void beginSpan(Track, const char *, double, Args) override {}
    void endSpan(Track, double) override {}
    void instant(Track, const char *, double, Args) override {}
    void counter(Track track, const char *name, double seconds,
                 double value) override;

    /** All series, keyed by counter name, samples in emission order. */
    const std::map<std::string, Series> &series() const
    {
        return series_;
    }

    /** Samples of one series; empty when @p name was never sampled. */
    const Series &at(const std::string &name) const;

    /**
     * Fold @p other's series into this registry (the obs twin of
     * serve::Metrics::merge): same-named series interleave by
     * timestamp with a stable std::merge — on ties, this registry's
     * points precede @p other's — and unknown names copy over whole.
     * Each input series must be time-sorted, which emission order
     * guarantees for engine-produced registries; the result then is
     * too, so a cluster can merge per-replica registries in replica
     * order into one deterministic fleet-wide artifact.
     */
    void merge(const SeriesRegistry &other);

    /** {"name": {"t": [...], "v": [...]}, ...} with jsonNumber values. */
    std::string toJson() const;

    void write(std::ostream &os) const;

    /** Write toJson() to @p path; false when the file cannot open. */
    bool writeFile(const std::string &path) const;

  private:
    std::map<std::string, Series> series_;
};

} // namespace obs
} // namespace lia

#endif // LIA_OBS_SERIES_HH
