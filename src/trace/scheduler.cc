#include "trace/scheduler.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"
#include "model/footprint.hh"

namespace lia {
namespace trace {

namespace {

core::EngineConfig
liaConfig(const hw::SystemConfig &system)
{
    core::EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = system.cxl.present();
    return cfg;
}

std::int64_t
padTo(std::int64_t value, std::int64_t granule)
{
    return (value + granule - 1) / granule * granule;
}

} // namespace

BatchScheduler::BatchScheduler(const hw::SystemConfig &system,
                               const model::ModelConfig &model)
    : system_(system), model_(model),
      engine_(system, model, liaConfig(system))
{
    model_.validate();
}

ScheduleResult
BatchScheduler::schedule(const std::vector<Request> &requests,
                         const SchedulerConfig &config) const
{
    LIA_ASSERT(!requests.empty(), "nothing to schedule");
    LIA_ASSERT(config.maxBatch >= 1, "bad batch ceiling");
    LIA_ASSERT(config.inputBucket >= 1 && config.outputBucket >= 1,
               "bad bucket granularity");

    // Group by padded shape.
    std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t>
        buckets;
    std::int64_t useful = 0;
    for (const auto &request : requests) {
        LIA_ASSERT(request.lIn >= 1 && request.lOut >= 1,
                   "bad request");
        // Pad the output first, then give the input whatever context
        // budget remains — padding must never shrink a request.
        std::int64_t l_out =
            padTo(request.lOut, config.outputBucket);
        if (request.lIn + l_out > model_.maxSeqLen)
            l_out = model_.maxSeqLen - request.lIn;
        const std::int64_t l_in =
            std::min(padTo(request.lIn, config.inputBucket),
                     model_.maxSeqLen - l_out);
        LIA_ASSERT(l_in >= request.lIn && l_out >= request.lOut,
                   "request exceeds the model context budget");
        buckets[{l_in, l_out}] += 1;
        useful += request.lOut;
    }

    ScheduleResult result;
    result.usefulTokens = useful;

    for (const auto &[shape, count] : buckets) {
        const auto [l_in, l_out] = shape;
        // The engine caps the batch by memory capacity too.
        std::int64_t capacity_cap = model::maxBatchForCapacity(
            model_, l_in, l_out, system_.hostMemoryCapacity());
        capacity_cap = std::max<std::int64_t>(capacity_cap, 1);
        const std::int64_t batch_cap =
            std::min(config.maxBatch, capacity_cap);

        std::int64_t remaining = count;
        while (remaining > 0) {
            const std::int64_t batch =
                std::min(remaining, batch_cap);
            const core::Scenario sc{batch, l_in, l_out};
            const auto est = engine_.estimate(sc);
            result.batches.push_back(
                ScheduledBatch{batch, l_in, l_out, est.latency()});
            result.makespan += est.latency();
            result.paddedTokens += batch * l_out;
            remaining -= batch;
        }
    }
    return result;
}

} // namespace trace
} // namespace lia
