/**
 * @file
 * Workload generation following the Azure LLM inference trace
 * statistics the paper samples its token lengths from (§7 "Token
 * sequence lengths", [38]).
 *
 * Input lengths are uniformly distributed over [32, model maximum];
 * output lengths concentrate at 32 tokens (code traces) or 256 tokens
 * (conversation traces).
 */

#ifndef LIA_TRACE_AZURE_HH
#define LIA_TRACE_AZURE_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "core/engine.hh"

namespace lia {
namespace trace {

/** Which trace family's output-length statistics to follow. */
enum class TraceKind
{
    Code,          //!< short responses, L_out ~ 32
    Conversation,  //!< long responses, L_out ~ 256

    /**
     * Online mix: each request is drawn from the code or conversation
     * family with equal probability — the interleaved stream a
     * user-facing endpoint actually sees, and the workload whose
     * output-length spread makes iteration-level (continuous)
     * batching pay off over static batching.
     */
    Mixed,
};

const char *toString(TraceKind kind);

/** One inference request drawn from the trace distribution. */
struct Request
{
    std::int64_t lIn = 0;
    std::int64_t lOut = 0;
};

/** Deterministic generator of trace-shaped requests. */
class AzureTraceGenerator
{
  public:
    AzureTraceGenerator(TraceKind kind, std::int64_t max_context,
                        std::uint64_t seed = 1);

    /** Draw the next request. */
    Request next();

    /** Draw @p count requests. */
    std::vector<Request> batch(std::size_t count);

  private:
    TraceKind kind_;
    std::int64_t maxContext_;
    Rng rng_;
};

/**
 * The evaluation grid of input lengths used across Figs. 10-12:
 * 32 up to the model-defined maximum (2016 when generating 32 tokens,
 * 1792 when generating 256, so L_in + L_out <= 2048).
 */
std::vector<std::int64_t> standardLinSweep(std::int64_t l_out,
                                           std::int64_t max_seq = 2048);

/** The three batch-size operating points of §7 (1, 64, 900). */
std::vector<std::int64_t> standardBatchSweep();

} // namespace trace
} // namespace lia

#endif // LIA_TRACE_AZURE_HH
