#include "trace/sharing.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lia {
namespace trace {

ZipfianPromptPools::ZipfianPromptPools(TraceKind kind,
                                       std::int64_t max_context,
                                       std::int64_t pools,
                                       double exponent, double fraction,
                                       std::int64_t block_tokens,
                                       std::uint64_t seed)
    : shapes_(kind, max_context, seed),
      // Salt the pool stream away from the shape stream: the shapes
      // must stay bit-identical to an independent-prompt run at the
      // same seed, so pool draws use their own generator.
      rng_(seed ^ 0x5a17ed9e3779b97fULL)
{
    LIA_ASSERT(pools >= 1, "need at least one sharing pool");
    LIA_ASSERT(exponent > 0, "bad sharing exponent");
    LIA_ASSERT(fraction > 0 && fraction <= 1, "bad shared fraction");
    LIA_ASSERT(block_tokens >= 1, "bad block granularity");

    poolCdf_.reserve(static_cast<std::size_t>(pools));
    double total = 0;
    for (std::int64_t k = 0; k < pools; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
        poolCdf_.push_back(total);
    }
    for (double &w : poolCdf_)
        w /= total;

    // Pool prefix lengths: at least one block, at most the fraction
    // ceiling, drawn in whole blocks so cached spans align with the
    // radix tree's granularity.
    const std::int64_t max_blocks = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(fraction *
                                     static_cast<double>(max_context)) /
               block_tokens);
    poolTokens_.reserve(static_cast<std::size_t>(pools));
    for (std::int64_t k = 0; k < pools; ++k)
        poolTokens_.push_back(rng_.uniformInt(1, max_blocks) *
                              block_tokens);
}

std::int64_t
ZipfianPromptPools::poolPrefixTokens(std::int64_t pool) const
{
    LIA_ASSERT(pool >= 0 &&
                   pool < static_cast<std::int64_t>(poolTokens_.size()),
               "pool rank out of range");
    return poolTokens_[static_cast<std::size_t>(pool)];
}

SharedRequest
ZipfianPromptPools::next()
{
    SharedRequest request;
    request.shape = shapes_.next();

    const double u = rng_.uniform();
    const auto it =
        std::lower_bound(poolCdf_.begin(), poolCdf_.end(), u);
    request.poolId = static_cast<std::int64_t>(
        std::min<std::size_t>(
            static_cast<std::size_t>(it - poolCdf_.begin()),
            poolCdf_.size() - 1));

    // A member shares at most lIn - 1 tokens: the prefill pass must
    // still process at least one token to sample its first output.
    request.sharedTokens =
        std::min(poolPrefixTokens(request.poolId),
                 request.shape.lIn - 1);
    return request;
}

} // namespace trace
} // namespace lia
