#include "trace/azure.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lia {
namespace trace {

const char *
toString(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Code:
        return "code";
      case TraceKind::Conversation:
        return "conversation";
      case TraceKind::Mixed:
        return "mixed";
    }
    LIA_PANIC("unknown trace kind");
}

AzureTraceGenerator::AzureTraceGenerator(TraceKind kind,
                                         std::int64_t max_context,
                                         std::uint64_t seed)
    : kind_(kind), maxContext_(max_context), rng_(seed)
{
    LIA_ASSERT(max_context >= 64, "context too small for the trace");
}

Request
AzureTraceGenerator::next()
{
    Request r;
    // Mean output lengths from the code/conversation traces; clamp the
    // spread so l_in + l_out always fits the context. The mixed trace
    // flips a fair coin per request between the two families.
    TraceKind kind = kind_;
    if (kind == TraceKind::Mixed)
        kind = rng_.bernoulli(0.5) ? TraceKind::Code
                                   : TraceKind::Conversation;
    const std::int64_t mean_out =
        kind == TraceKind::Code ? 32 : 256;
    const double drawn = rng_.normal(static_cast<double>(mean_out),
                                     static_cast<double>(mean_out) / 4.0);
    r.lOut = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(drawn), 8,
        std::min(mean_out * 2, maxContext_ - 32));
    // Input lengths are uniformly distributed (§7).
    r.lIn = rng_.uniformInt(32, maxContext_ - r.lOut);
    return r;
}

std::vector<Request>
AzureTraceGenerator::batch(std::size_t count)
{
    std::vector<Request> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

std::vector<std::int64_t>
standardLinSweep(std::int64_t l_out, std::int64_t max_seq)
{
    LIA_ASSERT(l_out > 0 && l_out < max_seq, "bad l_out");
    const std::int64_t l_max = max_seq - l_out;
    std::vector<std::int64_t> sweep{32, 128, 512, 1024};
    sweep.erase(std::remove_if(sweep.begin(), sweep.end(),
                               [l_max](std::int64_t l) {
                                   return l >= l_max;
                               }),
                sweep.end());
    sweep.push_back(l_max);
    return sweep;
}

std::vector<std::int64_t>
standardBatchSweep()
{
    return {1, 64, 900};
}

} // namespace trace
} // namespace lia
