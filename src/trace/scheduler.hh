/**
 * @file
 * Offline batch scheduler.
 *
 * The paper's throughput-driven scenarios assume a corpus already
 * grouped into uniform batches; real corpora have mixed lengths. This
 * scheduler buckets requests by padded (L_in, L_out), splits buckets
 * into engine-sized batches, prices each batch with the LIA engine,
 * and reports makespan / effective throughput / padding waste — the
 * orchestration layer a deployment would run above the back-end.
 */

#ifndef LIA_TRACE_SCHEDULER_HH
#define LIA_TRACE_SCHEDULER_HH

#include <vector>

#include "core/engine.hh"
#include "trace/azure.hh"

namespace lia {
namespace trace {

/** Scheduling knobs. */
struct SchedulerConfig
{
    std::int64_t maxBatch = 256;          //!< engine batch ceiling
    std::int64_t inputBucket = 128;       //!< L_in padding granularity
    std::int64_t outputBucket = 32;       //!< L_out padding granularity
};

/** One batch the scheduler dispatched. */
struct ScheduledBatch
{
    std::int64_t batch = 0;   //!< requests in the batch
    std::int64_t lIn = 0;     //!< padded input length
    std::int64_t lOut = 0;    //!< padded output length
    double latency = 0;       //!< engine seconds for the batch
};

/** Outcome of scheduling one corpus. */
struct ScheduleResult
{
    std::vector<ScheduledBatch> batches;
    double makespan = 0;          //!< serial seconds over all batches
    std::int64_t usefulTokens = 0;   //!< requested output tokens
    std::int64_t paddedTokens = 0;   //!< tokens actually generated

    /** Useful generated tokens per second. */
    double throughput() const
    {
        return makespan > 0
                   ? static_cast<double>(usefulTokens) / makespan
                   : 0.0;
    }

    /** Fraction of generated tokens wasted on padding. */
    double paddingWaste() const
    {
        return paddedTokens > 0
                   ? 1.0 - static_cast<double>(usefulTokens) /
                               static_cast<double>(paddedTokens)
                   : 0.0;
    }
};

/** Length-bucketing batch scheduler over the LIA engine. */
class BatchScheduler
{
  public:
    BatchScheduler(const hw::SystemConfig &system,
                   const model::ModelConfig &model);

    /** Schedule @p requests under @p config. */
    ScheduleResult schedule(const std::vector<Request> &requests,
                            const SchedulerConfig &config) const;

  private:
    hw::SystemConfig system_;
    model::ModelConfig model_;
    core::EngineModel engine_;
};

} // namespace trace
} // namespace lia

#endif // LIA_TRACE_SCHEDULER_HH
