/**
 * @file
 * Zipfian prompt-sharing workload: the trace-shaped request stream of
 * azure.hh plus a popularity-skewed pool assignment, modelling the
 * shared-system-prompt / few-shot-template reuse that makes
 * cross-request prefix caching (serve/prefix_cache.hh) pay off.
 *
 * Each request draws a pool with probability proportional to
 * 1/(rank+1)^exponent; every member of one pool shares a fixed,
 * block-aligned prompt prefix (the pool's prefix length is drawn once,
 * deterministically from the pool rank). The request *shapes* come
 * from the same AzureTraceGenerator stream at the same seed, so a
 * pooled run and an independent run with equal seeds see bit-identical
 * (lIn, lOut) sequences — only the sharing structure differs.
 */

#ifndef LIA_TRACE_SHARING_HH
#define LIA_TRACE_SHARING_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "trace/azure.hh"

namespace lia {
namespace trace {

/** One request plus its prompt-sharing pool membership. */
struct SharedRequest
{
    Request shape;

    /** Pool rank (0 = most popular); -1 = independent prompt. */
    std::int64_t poolId = -1;

    /** Prompt tokens shared with the pool (block-aligned, < lIn). */
    std::int64_t sharedTokens = 0;
};

/** Deterministic Zipfian prompt-sharing request generator. */
class ZipfianPromptPools
{
  public:
    /**
     * @param kind         trace family for the request shapes
     * @param max_context  trace length ceiling (as azure.hh)
     * @param pools        number of sharing pools (>= 1)
     * @param exponent     Zipf skew of pool popularity (> 0)
     * @param fraction     pool-prefix ceiling as a fraction of
     *                     max_context, in (0, 1]
     * @param block_tokens prefix lengths round to this granularity
     * @param seed         shape stream seed (matches the independent
     *                     generator's convention: engine seed + 1)
     */
    ZipfianPromptPools(TraceKind kind, std::int64_t max_context,
                       std::int64_t pools, double exponent,
                       double fraction, std::int64_t block_tokens,
                       std::uint64_t seed = 1);

    /** Draw the next request with its pool assignment. */
    SharedRequest next();

    /** Pool prefix length of @p pool, tokens (block multiple). */
    std::int64_t poolPrefixTokens(std::int64_t pool) const;

  private:
    AzureTraceGenerator shapes_;
    Rng rng_;

    /** Cumulative Zipf weights, poolWeights_[k] = P(pool <= k). */
    std::vector<double> poolCdf_;

    /** Per-pool shared prefix length, tokens. */
    std::vector<std::int64_t> poolTokens_;
};

} // namespace trace
} // namespace lia

#endif // LIA_TRACE_SHARING_HH
