#include "energy/power.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lia {
namespace energy {

PowerModel::PowerModel(const hw::SystemConfig &system) : system_(system)
{
}

EnergyReport
PowerModel::energy(const core::InferenceEstimate &estimate) const
{
    EnergyReport report;
    report.wallSeconds = estimate.latency();
    LIA_ASSERT(report.wallSeconds > 0, "non-positive latency");

    // Idle floors burn for the entire run.
    const double static_power = system_.staticPower +
                                system_.cpu.idlePower +
                                system_.gpu.idlePower *
                                    static_cast<double>(system_.gpuCount);
    report.staticJoules = static_power * report.wallSeconds;

    // Dynamic power scales with device busy fraction; busy time beyond
    // the wall clock (overlapped runs) is clamped at full utilisation.
    const double cpu_busy =
        std::min(estimate.breakdown.cpuTime, report.wallSeconds);
    const double gpu_busy =
        std::min(estimate.breakdown.gpuTime, report.wallSeconds);
    report.cpuJoules =
        (system_.cpu.tdp - system_.cpu.idlePower) * cpu_busy;
    report.gpuJoules =
        (system_.gpu.tdp - system_.gpu.idlePower) * gpu_busy *
        static_cast<double>(std::max(system_.gpuCount, 1));
    return report;
}

double
PowerModel::energyPerToken(const core::InferenceEstimate &estimate,
                           const core::Scenario &scenario) const
{
    const double tokens = static_cast<double>(scenario.batch) *
                          static_cast<double>(scenario.lOut);
    LIA_ASSERT(tokens > 0, "no generated tokens");
    return energy(estimate).totalJoules() / tokens;
}

double
PowerModel::averagePower(const core::InferenceEstimate &estimate) const
{
    const auto report = energy(estimate);
    return report.totalJoules() / report.wallSeconds;
}

} // namespace energy
} // namespace lia
