#include "energy/economics.hh"

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace energy {

EconomicsModel::EconomicsModel(EconomicsConfig config) : config_(config)
{
    LIA_ASSERT(config_.amortizationYears > 0, "bad amortization period");
    LIA_ASSERT(config_.electricityPerKwh >= 0, "bad electricity rate");
}

double
EconomicsModel::capitalPerHour(const hw::SystemConfig &system) const
{
    const double hours = config_.amortizationYears * 365.0 * 24.0;
    return system.systemCost / hours;
}

double
EconomicsModel::electricityPerHour(double average_watts) const
{
    LIA_ASSERT(average_watts >= 0, "negative power");
    return average_watts / 1000.0 * config_.electricityPerKwh;
}

double
EconomicsModel::costPerMillionTokens(const hw::SystemConfig &system,
                                     double tokens_per_second,
                                     double average_watts) const
{
    LIA_ASSERT(tokens_per_second > 0, "non-positive throughput");
    const double dollars_per_hour =
        capitalPerHour(system) + electricityPerHour(average_watts);
    const double tokens_per_hour = tokens_per_second * 3600.0;
    return dollars_per_hour / tokens_per_hour * 1e6;
}

double
EconomicsModel::memorySystemCost(const hw::SystemConfig &system,
                                 double bytes, double cxl_fraction) const
{
    LIA_ASSERT(cxl_fraction >= 0 && cxl_fraction <= 1,
               "bad CXL fraction");
    const double gb = bytes / units::GB;
    const double ddr_rate = system.cpuMemory.costPerGB;
    const double cxl_rate =
        system.cxl.present() ? system.cxl.costPerGB : ddr_rate;
    return gb * ((1.0 - cxl_fraction) * ddr_rate +
                 cxl_fraction * cxl_rate);
}

} // namespace energy
} // namespace lia
