/**
 * @file
 * Power and energy model (§7.5).
 *
 * The paper measures whole-system wall power with ipmitool and converts
 * it to energy per generated token. We model system power as a static
 * floor plus per-device dynamic power scaled by utilisation (busy time
 * over wall time), which reproduces the paper's two observations: LIA
 * wins on static energy through shorter latency, and wins on dynamic
 * energy by steering compute-intensive phases to the more efficient
 * device.
 */

#ifndef LIA_ENERGY_POWER_HH
#define LIA_ENERGY_POWER_HH

#include "core/engine.hh"
#include "hw/system.hh"

namespace lia {
namespace energy {

/** Energy accounting for one inference estimate. */
struct EnergyReport
{
    double wallSeconds = 0;
    double staticJoules = 0;
    double cpuJoules = 0;
    double gpuJoules = 0;

    double totalJoules() const
    {
        return staticJoules + cpuJoules + gpuJoules;
    }
};

/** System-level power/energy model. */
class PowerModel
{
  public:
    explicit PowerModel(const hw::SystemConfig &system);

    /** Energy of one estimated run. */
    EnergyReport energy(const core::InferenceEstimate &estimate) const;

    /** Joules per generated token. */
    double energyPerToken(const core::InferenceEstimate &estimate,
                          const core::Scenario &scenario) const;

    /** Average wall power over the run, watts. */
    double averagePower(const core::InferenceEstimate &estimate) const;

  private:
    hw::SystemConfig system_;
};

} // namespace energy
} // namespace lia

#endif // LIA_ENERGY_POWER_HH
