/**
 * @file
 * Cost-efficiency model (§7.8, §8).
 *
 * Amortises the system purchase price over a three-year service life,
 * adds electricity at the paper's $0.10/kWh rate, and converts a
 * sustained throughput into dollars per million generated tokens. Also
 * prices memory systems with and without the CXL blend (§8's
 * "$6,300 -> $3,200" example).
 */

#ifndef LIA_ENERGY_ECONOMICS_HH
#define LIA_ENERGY_ECONOMICS_HH

#include "hw/system.hh"
#include "model/config.hh"

namespace lia {
namespace energy {

/** Economic parameters (defaults follow the paper's footnotes). */
struct EconomicsConfig
{
    double amortizationYears = 3.0;
    double electricityPerKwh = 0.10;  //!< USD, Louisiana rate
};

/** Cost model for a system running at a sustained throughput. */
class EconomicsModel
{
  public:
    explicit EconomicsModel(EconomicsConfig config = {});

    /** Amortised capital cost per hour of operation, USD. */
    double capitalPerHour(const hw::SystemConfig &system) const;

    /** Electricity cost per hour at @p average_watts, USD. */
    double electricityPerHour(double average_watts) const;

    /**
     * USD per million generated tokens at @p tokens_per_second with
     * @p average_watts wall power.
     */
    double costPerMillionTokens(const hw::SystemConfig &system,
                                double tokens_per_second,
                                double average_watts) const;

    /**
     * Price of a host memory system holding @p bytes: DDR-only versus
     * the DDR+CXL blend that offloads @p cxl_fraction of the bytes.
     */
    double memorySystemCost(const hw::SystemConfig &system, double bytes,
                            double cxl_fraction) const;

  private:
    EconomicsConfig config_;
};

} // namespace energy
} // namespace lia

#endif // LIA_ENERGY_ECONOMICS_HH
