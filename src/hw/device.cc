#include "hw/device.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lia {
namespace hw {

EfficiencyCurve::EfficiencyCurve(double constant)
    : points_{{1.0, constant}}
{
    LIA_ASSERT(constant > 0.0 && constant <= 1.0,
               "efficiency must be in (0,1], got ", constant);
}

EfficiencyCurve::EfficiencyCurve(std::vector<Point> points)
    : points_(std::move(points))
{
    LIA_ASSERT(!points_.empty(), "efficiency curve needs points");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        LIA_ASSERT(points_[i].metric > 0.0, "metric must be positive");
        LIA_ASSERT(points_[i].efficiency > 0.0 &&
                   points_[i].efficiency <= 1.0,
                   "efficiency must be in (0,1]");
        if (i > 0) {
            LIA_ASSERT(points_[i].metric > points_[i - 1].metric,
                       "curve points must be sorted by metric");
        }
    }
}

double
EfficiencyCurve::at(double metric) const
{
    LIA_ASSERT(metric > 0.0, "metric must be positive, got ", metric);
    if (metric <= points_.front().metric)
        return points_.front().efficiency;
    if (metric >= points_.back().metric)
        return points_.back().efficiency;

    const double lx = std::log10(metric);
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (metric <= points_[i].metric) {
            const double x0 = std::log10(points_[i - 1].metric);
            const double x1 = std::log10(points_[i].metric);
            const double y0 = points_[i - 1].efficiency;
            const double y1 = points_[i].efficiency;
            const double t = (lx - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    return points_.back().efficiency;
}

double
ComputeDevice::matmulTime(double flops, double bytes,
                          double size_metric) const
{
    LIA_ASSERT(peakMatmulThroughput > 0, name, ": no peak throughput");
    LIA_ASSERT(memoryBandwidth > 0, name, ": no memory bandwidth");
    const double eff = gemmEfficiency.at(std::max(size_metric, 1.0));
    const double compute = flops / (peakMatmulThroughput * eff);
    const double stream_eff = streamEfficiency.at(std::max(bytes, 1.0));
    const double memory = bytes / (memoryBandwidth * stream_eff);
    return kernelOverhead + compute + memory;
}

double
ComputeDevice::matmulThroughput(double flops, double bytes,
                                double size_metric) const
{
    const double t = matmulTime(flops, bytes, size_metric);
    LIA_ASSERT(t > 0, "matmul time must be positive");
    return flops / t;
}

double
Link::transferTime(double bytes) const
{
    LIA_ASSERT(bandwidth > 0, name, ": link has no bandwidth");
    if (bytes <= 0)
        return 0.0;
    return latency + bytes / bandwidth;
}

double
CxlPool::interleavedBandwidth() const
{
    return deviceCount * perDeviceBandwidth;
}

double
CxlPool::totalCapacity() const
{
    return deviceCount * perDeviceCapacity;
}

} // namespace hw
} // namespace lia
