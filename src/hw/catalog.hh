/**
 * @file
 * Catalog of calibrated hardware descriptors.
 *
 * Every factory returns a value object whose parameters are calibrated
 * against the paper's §4 microbenchmarks (Fig. 5), the cited CXL
 * characterisation [48], and public spec sheets. DESIGN.md §4 documents
 * the calibration targets; tests/hw/catalog_test.cc asserts them.
 */

#ifndef LIA_HW_CATALOG_HH
#define LIA_HW_CATALOG_HH

#include "hw/device.hh"

namespace lia {
namespace hw {

// --- CPU compute engines -------------------------------------------------

/** 40-core Sapphire Rapids using only AVX512 (FlexGen's substrate). */
ComputeDevice avx512Spr();

/** 40-core Sapphire Rapids with AMX (Xeon Platinum 8460H). */
ComputeDevice amxSpr();

/** 128-core Granite Rapids with AMX. */
ComputeDevice amxGnr();

/** Two-socket Granite Rapids with AMX (§4.1). */
ComputeDevice amxGnr2S();

/** NVIDIA Grace CPU with SVE2 (§8, Grace-Hopper discussion). */
ComputeDevice graceCpu();

// --- GPUs ----------------------------------------------------------------

ComputeDevice gpuP100();
ComputeDevice gpuV100();
ComputeDevice gpuA100();  //!< PCIe 4.0, 40 GB HBM2
ComputeDevice gpuA100Sxm(); //!< 80 GB SXM variant used in the DGX (§7.8)
ComputeDevice gpuH100();  //!< PCIe 5.0, 80 GB HBM3

// --- Memory tiers ---------------------------------------------------------

/** 8-channel DDR5-4800 (SPR socket), 512 GB. */
MemoryTier ddr5Spr();

/** 12-channel DDR5-5600 (GNR socket). */
MemoryTier ddr5Gnr();

/** Grace LPDDR5X memory. */
MemoryTier lpddr5Grace();

/** Two Samsung 128 GB CXL Type-3 expanders (DDR4-based). */
CxlPool cxlSamsungX2();

// --- Links ----------------------------------------------------------------

Link pcie4x16();    //!< A100 host link
Link pcie5x16();    //!< H100 host link
Link nvlink3();     //!< DGX-A100 NVLink fabric (per GPU)
Link nvlinkC2C();   //!< Grace-Hopper chip-to-chip link

} // namespace hw
} // namespace lia

#endif // LIA_HW_CATALOG_HH
