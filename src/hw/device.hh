/**
 * @file
 * Hardware component descriptors used across the performance models.
 *
 * These structures carry the calibrated parameters of the CPUs, GPUs,
 * memory tiers, and interconnects the paper evaluates on. All timing
 * math consumes them through simple roofline-style helper functions, so
 * the descriptors double as a documentation of the calibration data.
 */

#ifndef LIA_HW_DEVICE_HH
#define LIA_HW_DEVICE_HH

#include <string>
#include <vector>

namespace lia {
namespace hw {

/** Whether a compute device is the host CPU or a discrete GPU. */
enum class ComputeKind { Cpu, Gpu };

/**
 * Piecewise log-linear efficiency curve.
 *
 * Maps a scalar "problem size" metric (e.g. the GEMM row count B*L) to a
 * fraction of peak throughput actually achieved. Points are interpolated
 * linearly in log10(metric) and clamped at the ends. This is how the
 * size-dependent utilisation measured in the paper's Fig. 5 enters the
 * model: small problems under-utilise wide engines, and the AMX software
 * stack reaches lower peak fractions than mature GPU libraries.
 */
class EfficiencyCurve
{
  public:
    /** One calibration point: problem-size metric and efficiency. */
    struct Point
    {
        double metric;      //!< problem-size metric, must be > 0
        double efficiency;  //!< fraction of peak in (0, 1]
    };

    /** A constant-efficiency curve. */
    explicit EfficiencyCurve(double constant = 1.0);

    /** A curve through the given points (sorted by metric). */
    explicit EfficiencyCurve(std::vector<Point> points);

    /** Efficiency at @p metric, clamped to the curve's range. */
    double at(double metric) const;

  private:
    std::vector<Point> points_;
};

/**
 * A matrix-multiplication-capable compute device.
 *
 * Captures the parameters of one compute engine: peak half-precision
 * matmul throughput, the bandwidth of the memory it computes from, and
 * the efficiency curves and overheads that shape measured throughput.
 */
struct ComputeDevice
{
    std::string name;           //!< e.g. "SPR-AMX"
    ComputeKind kind = ComputeKind::Cpu;

    double peakMatmulThroughput = 0;  //!< FLOP/s, BF16/FP16
    double memoryBandwidth = 0;       //!< achieved B/s of attached memory
    double memoryCapacity = 0;        //!< bytes (HBM for GPUs, DRAM for CPUs)
    double kernelOverhead = 0;        //!< seconds of fixed launch cost

    /** GEMM efficiency vs. output row count (B*L for FC-style GEMMs). */
    EfficiencyCurve gemmEfficiency{1.0};
    /**
     * Fraction of memoryBandwidth achieved by streaming (GEMV-style)
     * kernels, as a function of bytes touched. GPUs ramp up slowly with
     * transfer size (small batched GEMVs under-fill the HBM system),
     * which is why SPR reaches 35% of H100 GEMV throughput at small
     * shapes but only 15% at large ones (§4.2).
     */
    EfficiencyCurve streamEfficiency{1.0};

    double tdp = 0;        //!< watts at full load
    double idlePower = 0;  //!< watts when idle

    /**
     * Time to run a matmul with @p flops of work touching @p bytes of
     * operand/result data, following the paper's Eq. (8) roofline sum
     * with size-dependent efficiency and fixed kernel overhead.
     *
     * @param flops       floating point operations
     * @param bytes       operand and result bytes moved through memory
     * @param size_metric problem-size metric for the efficiency curve
     */
    double matmulTime(double flops, double bytes, double size_metric) const;

    /** Effective matmul throughput (FLOP/s) for the same arguments. */
    double matmulThroughput(double flops, double bytes,
                            double size_metric) const;
};

/**
 * One tier of the host memory system (DDR or a CXL expander pool).
 */
struct MemoryTier
{
    std::string name;          //!< e.g. "DDR5-4800 x8"
    double bandwidth = 0;      //!< achieved B/s
    double latency = 0;        //!< loaded access latency, seconds
    double capacity = 0;       //!< bytes
    double costPerGB = 0;      //!< USD per (decimal) GB
};

/**
 * A CPU-GPU or GPU-GPU interconnect.
 */
struct Link
{
    std::string name;          //!< e.g. "PCIe 5.0 x16"
    double bandwidth = 0;      //!< effective B/s per direction
    double latency = 0;        //!< per-transfer setup latency, seconds

    /** Time to move @p bytes across the link. */
    double transferTime(double bytes) const;
};

/**
 * A pool of CXL Type-3 memory expanders.
 *
 * Multiple devices are page-interleaved (Observation-1, §6), so their
 * bandwidth aggregates toward the GPU transfer path. CPU compute reading
 * operands from CXL sees the pool bandwidth instead of DDR bandwidth.
 */
struct CxlPool
{
    int deviceCount = 0;
    double perDeviceBandwidth = 0;   //!< achieved B/s per expander
    double perDeviceCapacity = 0;    //!< bytes per expander
    double latency = 0;              //!< loaded latency, seconds
    double costPerGB = 0;            //!< USD per GB (repurposed DDR4)

    /** Aggregate interleaved bandwidth of the pool. */
    double interleavedBandwidth() const;

    /** Total capacity of the pool. */
    double totalCapacity() const;

    /** Whether the pool has at least one device. */
    bool present() const { return deviceCount > 0; }
};

} // namespace hw
} // namespace lia

#endif // LIA_HW_DEVICE_HH
