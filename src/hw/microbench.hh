/**
 * @file
 * Matrix-multiplication microbenchmark model (§4, Fig. 5).
 *
 * Emulates the paper's GEMM and batched-GEMV throughput measurements for
 * any ComputeDevice. The GEMM benchmark uses the FC1 sublayer shape
 * (B*L, d_model) x (d_model, 4*d_model); the GEMV benchmark uses the
 * Q*K^T decode shape (B*n_h, 1, d_h) x (B*n_h, d_h, L).
 */

#ifndef LIA_HW_MICROBENCH_HH
#define LIA_HW_MICROBENCH_HH

#include <cstdint>

#include "hw/device.hh"

namespace lia {
namespace hw {

/** Shape of the FC1-style GEMM benchmark. */
struct GemmShape
{
    std::int64_t rows = 0;     //!< B*L
    std::int64_t dModel = 0;   //!< model dimension

    /** Total floating point operations: 2 * rows * d * 4d. */
    double flops() const;

    /** Operand + result bytes at 2 bytes/element. */
    double bytes() const;
};

/** Shape of the batched Q*K^T GEMV benchmark. */
struct BatchedGemvShape
{
    std::int64_t batches = 0;  //!< B * n_h
    std::int64_t dHead = 0;    //!< head dimension
    std::int64_t seqLen = 0;   //!< L (columns of K^T)

    /** Total floating point operations: 2 * batches * d_h * L. */
    double flops() const;

    /** Operand + result bytes at 2 bytes/element. */
    double bytes() const;
};

/** Modeled achieved GEMM throughput (FLOP/s) for the device. */
double gemmThroughput(const ComputeDevice &dev, const GemmShape &shape);

/** Modeled achieved batched-GEMV throughput (FLOP/s) for the device. */
double gemvThroughput(const ComputeDevice &dev,
                      const BatchedGemvShape &shape);

} // namespace hw
} // namespace lia

#endif // LIA_HW_MICROBENCH_HH
