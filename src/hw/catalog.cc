#include "hw/catalog.hh"

#include "base/units.hh"

namespace lia {
namespace hw {

using namespace units;

namespace {

/**
 * GPU streaming-efficiency curve over bytes touched: batched GEMV
 * kernels under-fill HBM until transfers are large (§4.2).
 */
EfficiencyCurve
gpuStreamCurve()
{
    return EfficiencyCurve({{1.0 * MB, 0.25},
                            {30.0 * MB, 0.45},
                            {300.0 * MB, 0.65},
                            {3.0 * GB, 0.77}});
}

/** CPUs keep a flat, high streaming efficiency. */
EfficiencyCurve
cpuStreamCurve()
{
    return EfficiencyCurve(0.77);
}

} // namespace

ComputeDevice
avx512Spr()
{
    ComputeDevice d;
    d.name = "AVX512";
    d.kind = ComputeKind::Cpu;
    d.peakMatmulThroughput = 11.3 * TFLOPS;
    d.memoryBandwidth = 260 * GB_s;
    d.memoryCapacity = 512 * GiB;
    d.kernelOverhead = 2 * us;
    // Mature AVX libraries reach a high, nearly flat fraction of peak.
    d.gemmEfficiency = EfficiencyCurve({{64, 0.30},
                                        {512, 0.36},
                                        {4096, 0.39},
                                        {36864, 0.39}});
    d.streamEfficiency = cpuStreamCurve();
    d.tdp = 350;
    d.idlePower = 90;
    return d;
}

ComputeDevice
amxSpr()
{
    ComputeDevice d;
    d.name = "SPR-AMX";
    d.kind = ComputeKind::Cpu;
    // 90.1 TFLOPS theoretical peak (§4.1); measured max ~20 TFLOPS, i.e.
    // ~22% utilisation with the young AMX software stack.
    d.peakMatmulThroughput = 90.1 * TFLOPS;
    d.memoryBandwidth = 260 * GB_s;
    d.memoryCapacity = 512 * GiB;
    d.kernelOverhead = 2 * us;
    // Large LLM-shaped GEMMs approach the footnote-4 "well optimised
    // shape" regime, so the tail sits above the mid-sweep utilisation.
    d.gemmEfficiency = EfficiencyCurve({{64, 0.080},
                                        {512, 0.170},
                                        {4096, 0.240},
                                        {36864, 0.260}});
    d.streamEfficiency = cpuStreamCurve();
    d.tdp = 350;
    d.idlePower = 90;
    return d;
}

ComputeDevice
amxGnr()
{
    ComputeDevice d;
    d.name = "GNR-AMX";
    d.kind = ComputeKind::Cpu;
    // 128 cores: 3.2x the SPR core count; AMX throughput scales with
    // cores (§4.1). Measured max ~2.4x SPR => ~48 TFLOPS.
    d.peakMatmulThroughput = 240 * TFLOPS;
    // 12 channels of DDR5-5600: ~1.7x SPR's achieved bandwidth (§4.2).
    d.memoryBandwidth = 442 * GB_s;
    d.memoryCapacity = 1024 * GiB;
    d.kernelOverhead = 2 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.067},
                                        {512, 0.140},
                                        {4096, 0.180},
                                        {36864, 0.190}});
    d.streamEfficiency = cpuStreamCurve();
    d.tdp = 500;
    d.idlePower = 120;
    return d;
}

ComputeDevice
amxGnr2S()
{
    ComputeDevice d = amxGnr();
    d.name = "GNR-AMX-2S";
    // A second socket adds 1.8x GEMM throughput (§4.1) and doubles the
    // memory system.
    d.peakMatmulThroughput *= 1.8;
    d.memoryBandwidth *= 2.0;
    d.memoryCapacity *= 2.0;
    d.tdp *= 2.0;
    d.idlePower *= 2.0;
    return d;
}

ComputeDevice
graceCpu()
{
    ComputeDevice d;
    d.name = "Grace";
    d.kind = ComputeKind::Cpu;
    // SVE2 peak of 6.91 TFLOPS, 30x lower than GNR (§8 footnote).
    d.peakMatmulThroughput = 6.91 * TFLOPS;
    d.memoryBandwidth = 450 * GB_s;  // of 512 GB/s LPDDR5X peak
    d.memoryCapacity = 480 * GiB;
    d.kernelOverhead = 2 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.30},
                                        {512, 0.40},
                                        {36864, 0.45}});
    d.streamEfficiency = cpuStreamCurve();
    d.tdp = 250;
    d.idlePower = 70;
    return d;
}

ComputeDevice
gpuP100()
{
    ComputeDevice d;
    d.name = "P100";
    d.kind = ComputeKind::Gpu;
    d.peakMatmulThroughput = 18.7 * TFLOPS;  // FP16, no tensor cores
    d.memoryBandwidth = 634 * GB_s;          // achieved, of 732 peak
    d.memoryCapacity = 16 * GiB;
    d.kernelOverhead = 10 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.30},
                                        {512, 0.40},
                                        {4096, 0.44},
                                        {36864, 0.44}});
    d.streamEfficiency = gpuStreamCurve();
    d.tdp = 250;
    d.idlePower = 30;
    return d;
}

ComputeDevice
gpuV100()
{
    ComputeDevice d;
    d.name = "V100";
    d.kind = ComputeKind::Gpu;
    d.peakMatmulThroughput = 112 * TFLOPS;  // FP16 tensor cores
    d.memoryBandwidth = 765 * GB_s;
    d.memoryCapacity = 32 * GiB;
    d.kernelOverhead = 10 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.23},
                                        {512, 0.45},
                                        {4096, 0.75},
                                        {36864, 0.85}});
    d.streamEfficiency = gpuStreamCurve();
    d.tdp = 300;
    d.idlePower = 35;
    return d;
}

ComputeDevice
gpuA100()
{
    ComputeDevice d;
    d.name = "A100";
    d.kind = ComputeKind::Gpu;
    d.peakMatmulThroughput = 312 * TFLOPS;  // BF16 tensor cores
    d.memoryBandwidth = 1300 * GB_s;        // achieved, of 1555 peak
    d.memoryCapacity = 40 * GiB;
    d.kernelOverhead = 10 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.154},
                                        {512, 0.350},
                                        {4096, 0.520},
                                        {36864, 0.583}});
    d.streamEfficiency = gpuStreamCurve();
    d.tdp = 300;
    d.idlePower = 40;
    return d;
}

ComputeDevice
gpuA100Sxm()
{
    ComputeDevice d = gpuA100();
    d.name = "A100-SXM-80GB";
    d.memoryCapacity = 80 * GiB;
    d.memoryBandwidth = 1700 * GB_s;  // HBM2e
    d.tdp = 400;
    return d;
}

ComputeDevice
gpuH100()
{
    ComputeDevice d;
    d.name = "H100";
    d.kind = ComputeKind::Gpu;
    d.peakMatmulThroughput = 756 * TFLOPS;  // BF16, PCIe variant
    d.memoryBandwidth = 1733 * GB_s;        // achieved HBM3
    d.memoryCapacity = 80 * GiB;
    d.kernelOverhead = 10 * us;
    d.gemmEfficiency = EfficiencyCurve({{64, 0.086},
                                        {512, 0.250},
                                        {4096, 0.450},
                                        {36864, 0.530}});
    d.streamEfficiency = gpuStreamCurve();
    d.tdp = 350;
    d.idlePower = 45;
    return d;
}

MemoryTier
ddr5Spr()
{
    MemoryTier m;
    m.name = "DDR5-4800 x8";
    m.bandwidth = 260 * GB_s;
    m.latency = 100 * ns;
    m.capacity = 512 * GiB;
    m.costPerGB = 11.25;  // [4], $ per GB for commodity 32 GB DIMMs
    return m;
}

MemoryTier
ddr5Gnr()
{
    MemoryTier m;
    m.name = "DDR5-5600 x12";
    m.bandwidth = 442 * GB_s;
    m.latency = 100 * ns;
    m.capacity = 1024 * GiB;
    m.costPerGB = 11.25;
    return m;
}

MemoryTier
lpddr5Grace()
{
    MemoryTier m;
    m.name = "LPDDR5X";
    m.bandwidth = 450 * GB_s;
    m.latency = 110 * ns;
    m.capacity = 480 * GiB;
    m.costPerGB = 14.0;
    return m;
}

CxlPool
cxlSamsungX2()
{
    CxlPool p;
    p.deviceCount = 2;
    // Each expander sustains ~17 GB/s toward the host (Fig. 8a).
    p.perDeviceBandwidth = 17 * GB_s;
    p.perDeviceCapacity = 128 * GiB;
    // 140-170 ns over DDR's ~100 ns loaded latency [48].
    p.latency = 250 * ns;
    // Repurposed DDR4 from retired servers [54]; §8's memory-cost
    // example ($6,300 -> $3,200 for 560 GB half-offloaded) implies
    // nearly free media plus enclosure overhead.
    p.costPerGB = 0.20;
    return p;
}

Link
pcie4x16()
{
    Link l;
    l.name = "PCIe 4.0 x16";
    l.bandwidth = 26 * GB_s;  // achieved, of 32 GB/s raw
    l.latency = 10 * us;
    return l;
}

Link
pcie5x16()
{
    Link l;
    l.name = "PCIe 5.0 x16";
    l.bandwidth = 52 * GB_s;  // achieved, of 64 GB/s raw
    l.latency = 10 * us;
    return l;
}

Link
nvlink3()
{
    Link l;
    l.name = "NVLink 3.0";
    l.bandwidth = 600 * GB_s;
    l.latency = 3 * us;
    return l;
}

Link
nvlinkC2C()
{
    Link l;
    l.name = "NVLink-C2C";
    l.bandwidth = 900 * GB_s;
    l.latency = 2 * us;
    return l;
}

} // namespace hw
} // namespace lia
