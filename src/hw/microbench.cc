#include "hw/microbench.hh"

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace hw {

double
GemmShape::flops() const
{
    // (rows, d) x (d, 4d): 2 multiply-accumulate FLOPs per output cell.
    return 2.0 * static_cast<double>(rows) * dModel * (4.0 * dModel);
}

double
GemmShape::bytes() const
{
    const double d = static_cast<double>(dModel);
    const double r = static_cast<double>(rows);
    return units::bytesPerElement * (r * d + d * 4.0 * d + r * 4.0 * d);
}

double
BatchedGemvShape::flops() const
{
    return 2.0 * static_cast<double>(batches) * dHead * seqLen;
}

double
BatchedGemvShape::bytes() const
{
    const double b = static_cast<double>(batches);
    const double dh = static_cast<double>(dHead);
    const double l = static_cast<double>(seqLen);
    // Vector + matrix + result per batch.
    return units::bytesPerElement * b * (dh + dh * l + l);
}

double
gemmThroughput(const ComputeDevice &dev, const GemmShape &shape)
{
    LIA_ASSERT(shape.rows > 0 && shape.dModel > 0, "bad GEMM shape");
    return dev.matmulThroughput(shape.flops(), shape.bytes(),
                                static_cast<double>(shape.rows));
}

double
gemvThroughput(const ComputeDevice &dev, const BatchedGemvShape &shape)
{
    LIA_ASSERT(shape.batches > 0 && shape.dHead > 0 && shape.seqLen > 0,
               "bad GEMV shape");
    // GEMV work is memory-bound: the size metric for the (irrelevant)
    // compute-efficiency term is the batch count, and bytes dominate.
    return dev.matmulThroughput(shape.flops(), shape.bytes(),
                                static_cast<double>(shape.batches));
}

} // namespace hw
} // namespace lia
