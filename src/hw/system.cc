#include "hw/system.hh"

#include <algorithm>

#include "base/logging.hh"
#include "hw/catalog.hh"

namespace lia {
namespace hw {

double
SystemConfig::cpuReadBandwidth(bool from_cxl) const
{
    if (!from_cxl)
        return cpuMemory.bandwidth;
    LIA_ASSERT(cxl.present(), name, ": no CXL pool configured");
    // Interleaved CXL reads cannot exceed what the pool provides, nor
    // what the CPU's memory system can absorb.
    return std::min(cxl.interleavedBandwidth(), cpuMemory.bandwidth);
}

double
SystemConfig::hostMemoryCapacity() const
{
    return cpuMemory.capacity + cxl.totalCapacity();
}

SystemConfig
sprA100()
{
    SystemConfig s;
    s.name = "SPR-A100";
    s.cpu = amxSpr();
    s.gpu = gpuA100();
    s.cpuMemory = ddr5Spr();
    s.hostLink = pcie4x16();
    s.systemCost = 18'000;
    s.staticPower = 180;
    return s;
}

SystemConfig
sprH100()
{
    SystemConfig s = sprA100();
    s.name = "SPR-H100";
    s.gpu = gpuH100();
    s.hostLink = pcie5x16();
    s.systemCost = 36'000;
    return s;
}

SystemConfig
gnrA100()
{
    SystemConfig s;
    s.name = "GNR-A100";
    s.cpu = amxGnr();
    s.gpu = gpuA100();
    s.cpuMemory = ddr5Gnr();
    s.hostLink = pcie4x16();
    s.systemCost = 22'000;  // §7.8 footnote
    s.staticPower = 200;
    return s;
}

SystemConfig
gnrH100()
{
    SystemConfig s = gnrA100();
    s.name = "GNR-H100";
    s.gpu = gpuH100();
    s.hostLink = pcie5x16();
    s.systemCost = 40'000;
    return s;
}

SystemConfig
graceHopper()
{
    SystemConfig s;
    s.name = "Grace-Hopper";
    s.cpu = graceCpu();
    s.gpu = gpuH100();
    s.gpu.name = "H100-GH200";
    s.gpu.memoryCapacity = 96.0 * 1024 * 1024 * 1024;
    s.cpuMemory = lpddr5Grace();
    s.hostLink = nvlinkC2C();
    s.systemCost = 45'000;
    s.staticPower = 200;
    return s;
}

SystemConfig
dgxA100()
{
    SystemConfig s;
    s.name = "DGX-A100";
    // The DGX host CPU plays no compute role in the TP baseline.
    s.cpu = avx512Spr();
    s.cpu.name = "EPYC-host";
    s.gpu = gpuA100Sxm();
    s.cpuMemory = ddr5Spr();
    s.cpuMemory.capacity = 2.0 * 1024 * 1024 * 1024 * 1024.0;
    s.hostLink = pcie4x16();
    s.gpuCount = 8;
    s.gpuFabric = nvlink3();
    s.systemCost = 200'000;  // §7.8 footnote
    s.staticPower = 1'200;
    return s;
}

SystemConfig
cheapV100x3()
{
    SystemConfig s;
    s.name = "3xV100";
    s.cpu = avx512Spr();
    s.cpu.name = "low-end-host";
    s.cpu.peakMatmulThroughput /= 2.0;
    s.cpu.memoryBandwidth = 150e9;
    s.gpu = gpuV100();
    s.cpuMemory = ddr5Spr();
    s.cpuMemory.bandwidth = 150e9;
    s.hostLink = pcie4x16();
    s.gpuCount = 3;
    s.gpuFabric = pcie4x16();
    s.systemCost = 21'000;  // ~GNR-A100 price point (§8)
    s.staticPower = 200;
    return s;
}

SystemConfig
cheapV100x3Pooled()
{
    SystemConfig s = cheapV100x3();
    s.name = "3xV100-pooled";
    s.gpu.name = "V100x3";
    s.gpu.peakMatmulThroughput *= 3.0;
    s.gpu.memoryBandwidth *= 3.0;
    s.gpu.memoryCapacity *= 3.0;
    // A low-end host cannot feed three x16 links at full rate; the
    // cards share its limited PCIe lanes (~1.25x one gen-4 x16).
    s.hostLink.bandwidth *= 1.25;
    s.gpuCount = 1;
    s.gpuFabric.reset();
    return s;
}

SystemConfig
withCxl(SystemConfig sys)
{
    sys.cxl = cxlSamsungX2();
    sys.name += "+CXL";
    return sys;
}

SystemConfig
systemByName(const std::string &name)
{
    const bool wants_cxl = name.size() > 4 &&
                           name.substr(name.size() - 4) == "+CXL";
    const std::string base =
        wants_cxl ? name.substr(0, name.size() - 4) : name;
    SystemConfig sys;
    if (base == "SPR-A100")
        sys = sprA100();
    else if (base == "SPR-H100")
        sys = sprH100();
    else if (base == "GNR-A100")
        sys = gnrA100();
    else if (base == "GNR-H100")
        sys = gnrH100();
    else if (base == "Grace-Hopper")
        sys = graceHopper();
    else if (base == "DGX-A100")
        sys = dgxA100();
    else if (base == "3xV100")
        sys = cheapV100x3();
    else
        LIA_FATAL("unknown system '", name, "'");
    return wants_cxl ? withCxl(sys) : sys;
}

std::vector<std::string>
knownSystemNames()
{
    return {"SPR-A100", "SPR-H100",     "GNR-A100", "GNR-H100",
            "Grace-Hopper", "DGX-A100", "3xV100",
            "SPR-A100+CXL", "GNR-A100+CXL"};
}

} // namespace hw
} // namespace lia
