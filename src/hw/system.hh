/**
 * @file
 * Whole-system configurations pairing a CPU, GPU(s), memory, and links.
 *
 * A SystemConfig is the unit the LIA planner reasons about: it provides
 * the bandwidth/throughput constants in the paper's Eq. (2)-(9) and the
 * capacity limits for the memory-offloading policy.
 */

#ifndef LIA_HW_SYSTEM_HH
#define LIA_HW_SYSTEM_HH

#include <optional>
#include <string>
#include <vector>

#include "hw/device.hh"

namespace lia {
namespace hw {

/** A complete evaluation platform. */
struct SystemConfig
{
    std::string name;       //!< e.g. "SPR-A100"

    ComputeDevice cpu;      //!< host CPU (AMX or AVX engine selected)
    ComputeDevice gpu;      //!< the single (or per-node) GPU
    MemoryTier cpuMemory;   //!< DDR tier attached to the CPU
    CxlPool cxl;            //!< optional CXL expansion (deviceCount == 0
                            //!< when absent)
    Link hostLink;          //!< CPU <-> GPU link (PCIe or C2C)

    int gpuCount = 1;               //!< >1 only for multi-GPU baselines
    std::optional<Link> gpuFabric;  //!< inter-GPU link when gpuCount > 1

    double systemCost = 0;      //!< whole-system price, USD
    double staticPower = 0;     //!< chassis/fans/idle board power, watts

    /** Effective bandwidth for CPU compute reading from the given pool. */
    double cpuReadBandwidth(bool from_cxl) const;

    /** Total host-side memory capacity (DDR + CXL). */
    double hostMemoryCapacity() const;
};

// --- Evaluation-system presets (Table 2 and §7.6/§7.8/§8) ---------------

SystemConfig sprA100();       //!< Table 2 with the A100 card
SystemConfig sprH100();       //!< Table 2 with the H100 card
SystemConfig gnrA100();       //!< §7.6 Granite Rapids host, A100
SystemConfig gnrH100();       //!< §7.6 Granite Rapids host, H100
SystemConfig graceHopper();   //!< §8 Grace-Hopper superchip
SystemConfig dgxA100();       //!< §7.8 8x A100-80GB NVLink system
SystemConfig cheapV100x3();   //!< §8 3x V100 + low-end CPU alternative

/**
 * The §8 comparator as a *data-offloading* platform: the three V100s
 * pooled into one accelerator (3x compute/HBM/host-link lanes), which
 * is generous to the baseline since the paper explicitly ignores
 * inter-V100 communication overhead.
 */
SystemConfig cheapV100x3Pooled();

/** Attach the two-expander CXL pool to a system (Table 2 option). */
SystemConfig withCxl(SystemConfig sys);

/**
 * Look up an evaluation-system preset by name (case-sensitive, e.g.
 * "SPR-A100", "GNR-H100", "SPR-A100+CXL"); fatal on unknown names.
 */
SystemConfig systemByName(const std::string &name);

/** Names accepted by systemByName. */
std::vector<std::string> knownSystemNames();

} // namespace hw
} // namespace lia

#endif // LIA_HW_SYSTEM_HH
