/**
 * @file
 * PowerInfer baseline model (§7.9).
 *
 * PowerInfer splits each FFN's neurons into a GPU-resident hot set and
 * a CPU-resident cold set, relying on activation sparsity to keep the
 * cold work small. The consequence the paper highlights: per-layer
 * intra-layer activation traffic over PCIe in *both* directions for
 * every token, KV/activations pinned in GPU memory (so large batches
 * OOM), and accuracy-compromising model adaptation for non-ReLU models.
 * This model reproduces those performance characteristics.
 */

#ifndef LIA_BASELINES_POWERINFER_HH
#define LIA_BASELINES_POWERINFER_HH

#include "core/engine.hh"

namespace lia {
namespace baselines {

/** Tunables of the PowerInfer performance model. */
struct PowerInferConfig
{
    /**
     * Fraction of cold neurons activated per token. ReLU-adapted
     * Llama models retain noticeable density, limiting the CPU-side
     * savings (§7.9).
     */
    double coldActivationRate = 0.4;

    /** Fraction of FFN neurons classified hot (capacity permitting). */
    double hotFractionTarget = 0.2;
};

/** Analytical PowerInfer performance model. */
class PowerInferModel
{
  public:
    PowerInferModel(const hw::SystemConfig &system,
                    const model::ModelConfig &model,
                    PowerInferConfig config = {});

    core::InferenceEstimate estimate(const core::Scenario &scenario) const;

  private:
    /** Per-layer latency of one stage. */
    double layerTime(const model::Workload &workload,
                     double hot_fraction) const;

    hw::SystemConfig system_;
    model::ModelConfig model_;
    PowerInferConfig config_;
};

} // namespace baselines
} // namespace lia

#endif // LIA_BASELINES_POWERINFER_HH
