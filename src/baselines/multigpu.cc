#include "baselines/multigpu.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"
#include "model/footprint.hh"
#include "model/sublayer.hh"

namespace lia {
namespace baselines {

using model::Stage;
using model::Workload;

TensorParallelModel::TensorParallelModel(const hw::SystemConfig &system,
                                         const model::ModelConfig &model)
    : system_(system), model_(model)
{
    model_.validate();
    LIA_ASSERT(system_.gpuCount > 1, "tensor parallelism needs >1 GPU");
    LIA_ASSERT(system_.gpuFabric.has_value(),
               system_.name, ": no GPU fabric configured");
}

double
TensorParallelModel::allReduceTime(double bytes) const
{
    const double n = static_cast<double>(system_.gpuCount);
    const auto &fabric = *system_.gpuFabric;
    // Ring all-reduce: 2(n-1) steps, each moving bytes/n per GPU.
    const double steps = 2.0 * (n - 1.0);
    return steps * fabric.latency +
           steps * (bytes / n) / fabric.bandwidth;
}

double
TensorParallelModel::layerTime(const Workload &workload) const
{
    const auto &gpu = system_.gpu;
    const double n = static_cast<double>(system_.gpuCount);
    const double rows = static_cast<double>(workload.batch) *
                        static_cast<double>(workload.tokens());

    double compute = 0;
    for (auto sub : model::allSublayers()) {
        const auto costs = model::sublayerCosts(model_, workload, sub);
        // Heads and FFN columns shard evenly across GPUs.
        compute += gpu.matmulTime(
            costs.flops / n,
            (costs.dX + costs.dY + costs.dOut) / n, rows);
    }

    // Two all-reduces of the hidden state per layer (Megatron TP).
    const double hidden_bytes =
        units::bytesPerElement * rows * static_cast<double>(model_.dModel);
    return compute + 2.0 * allReduceTime(hidden_bytes);
}

core::InferenceEstimate
TensorParallelModel::estimate(const core::Scenario &scenario) const
{
    core::InferenceEstimate est;

    const double n = static_cast<double>(system_.gpuCount);
    const auto fp = model::inferenceFootprint(model_, scenario.batch,
                                              scenario.lIn,
                                              scenario.lOut);
    // Everything shards across the GPUs; activations replicate.
    const double per_gpu =
        (fp.paramBytes + fp.kvCacheBytes) / n + fp.activationBytes;
    if (per_gpu > system_.gpu.memoryCapacity) {
        est.feasible = false;
        est.note = "GPU memory capacity exceeded (OOM)";
    }

    const double layers = static_cast<double>(model_.numLayers);
    Workload prefill{Stage::Prefill, scenario.batch, scenario.lIn};
    est.prefillTime = layers * layerTime(prefill);
    for (std::int64_t t = 0; t < scenario.lOut; ++t) {
        Workload decode{Stage::Decode, scenario.batch, scenario.lIn + t};
        est.decodeTime += layers * layerTime(decode);
    }
    est.prefillPolicy = core::Policy::fullGpu();
    est.decodePolicy = core::Policy::fullGpu();
    return est;
}

double
TensorParallelModel::perGpuThroughput(const core::Scenario &scenario) const
{
    const auto est = estimate(scenario);
    return est.throughput(scenario) /
           static_cast<double>(system_.gpuCount);
}

} // namespace baselines
} // namespace lia
