#include "baselines/powerinfer.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/units.hh"
#include "model/footprint.hh"
#include "model/sublayer.hh"

namespace lia {
namespace baselines {

using model::Stage;
using model::Sublayer;
using model::Workload;

namespace {

/** Random-access sparse weight gathers achieve poor DRAM efficiency. */
constexpr double kSparseStreamEfficiency = 0.2;

} // namespace

PowerInferModel::PowerInferModel(const hw::SystemConfig &system,
                                 const model::ModelConfig &model,
                                 PowerInferConfig config)
    : system_(system), model_(model), config_(config)
{
    model_.validate();
    LIA_ASSERT(config_.coldActivationRate > 0 &&
               config_.coldActivationRate <= 1.0,
               "bad cold activation rate");
    LIA_ASSERT(config_.hotFractionTarget >= 0 &&
               config_.hotFractionTarget <= 1.0, "bad hot fraction");
}

double
PowerInferModel::layerTime(const Workload &workload,
                           double hot_fraction) const
{
    const auto &gpu = system_.gpu;
    const auto &cpu = system_.cpu;
    const auto &link = system_.hostLink;
    const double rows = static_cast<double>(workload.batch) *
                        static_cast<double>(workload.tokens());

    double gpu_time = 0;
    double cpu_time = 0;
    double xfer_time = 0;

    for (auto sub : model::allSublayers()) {
        const auto costs = model::sublayerCosts(model_, workload, sub);
        const bool is_ffn = sub == Sublayer::Fc1 || sub == Sublayer::Fc2;
        if (!is_ffn) {
            // Attention and projections run fully on the GPU with KV
            // and weights resident in HBM.
            gpu_time += gpu.matmulTime(
                costs.flops, costs.dX + costs.dY + costs.dOut, rows);
            continue;
        }

        // Hot neurons on GPU.
        const double h = hot_fraction;
        gpu_time += gpu.matmulTime(
            costs.flops * h,
            costs.dX + costs.dY * h + costs.dOut * h, rows);

        // Cold neurons on CPU. Sparsity only helps while few tokens
        // are in flight: the activated-neuron union saturates with
        // batch size, which is why PowerInfer gains little from
        // large-batch processing (§7.9).
        double rate = config_.coldActivationRate;
        if (workload.stage == Stage::Prefill) {
            rate = 1.0;  // prompt tokens activate nearly everything
        } else {
            rate = 1.0 - std::pow(1.0 - rate, static_cast<double>(rows));
        }
        const double cold_flops = costs.flops * (1.0 - h) * rate;
        const double cold_bytes = costs.dY * (1.0 - h) * rate;
        const double eff =
            cpu.gemmEfficiency.at(std::max(rows, 1.0)) *
            kSparseStreamEfficiency;
        cpu_time += cpu.kernelOverhead +
                    cold_bytes / (cpu.memoryBandwidth *
                                  kSparseStreamEfficiency) +
                    cold_flops / (cpu.peakMatmulThroughput * eff);

        // Intra-layer round trip: the hidden state ships to the CPU
        // and the cold partial outputs return, every FFN sublayer.
        xfer_time += link.transferTime(costs.dX) +
                     link.transferTime(costs.dOut * (1.0 - h) * rate);
    }

    // Hot/cold halves execute concurrently; the PCIe round trips
    // serialise with the slower half.
    return std::max(gpu_time, cpu_time) + xfer_time;
}

core::InferenceEstimate
PowerInferModel::estimate(const core::Scenario &scenario) const
{
    core::InferenceEstimate est;

    // GPU memory demand: attention weights of every layer, the hot FFN
    // fraction, the KV cache, and activations all live in HBM.
    const double layer_params = model_.decoderLayerParamBytes();
    Workload probe{Stage::Prefill, scenario.batch, scenario.lIn};
    const double ffn_params =
        model::sublayerCosts(model_, probe, Sublayer::Fc1).dY +
        model::sublayerCosts(model_, probe, Sublayer::Fc2).dY;
    const double attn_params = layer_params - ffn_params;
    const double layers = static_cast<double>(model_.numLayers);

    const double kv = model::kvCacheBytes(model_, scenario.batch,
                                          scenario.lIn + scenario.lOut);
    const double act =
        model::activationBytes(model_, scenario.batch, scenario.lIn);
    const double fixed = attn_params * layers + kv + act;
    const double spare = system_.gpu.memoryCapacity - fixed;
    if (spare <= 0) {
        est.feasible = false;
        est.note = "GPU memory capacity exceeded (CUDA OOM)";
    }
    const double hot_fraction = std::clamp(
        std::min(config_.hotFractionTarget,
                 spare / (ffn_params * layers)),
        0.0, 1.0);

    Workload prefill{Stage::Prefill, scenario.batch, scenario.lIn};
    est.prefillTime = layers * layerTime(prefill, hot_fraction);
    for (std::int64_t t = 0; t < scenario.lOut; ++t) {
        Workload decode{Stage::Decode, scenario.batch, scenario.lIn + t};
        est.decodeTime += layers * layerTime(decode, hot_fraction);
    }
    est.prefillPolicy = core::Policy::fullGpu();
    est.decodePolicy = core::Policy::fullGpu();
    return est;
}

} // namespace baselines
} // namespace lia
