#include "baselines/presets.hh"

#include "base/logging.hh"
#include "model/footprint.hh"

namespace lia {
namespace baselines {

using core::EngineConfig;
using core::EngineModel;
using core::Policy;

EngineModel
liaEngine(const hw::SystemConfig &system, const model::ModelConfig &model)
{
    EngineConfig cfg;
    cfg.optimizePolicies = true;
    cfg.enableResidency = true;
    cfg.cacheGranularity = core::CacheGranularity::WholeLayer;
    cfg.costOptions.overlap = true;
    // Arbitrate the Eq.-(1) winner under execution semantics so the
    // deployed policy never loses to a fixed baseline policy (the
    // bench ext_objective_ablation quantifies this extension).
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = system.cxl.present();
    return EngineModel(system, model, cfg);
}

EngineModel
liaEngineAblated(const hw::SystemConfig &system,
                 const model::ModelConfig &model, bool optimization1,
                 bool optimization2, bool lia_policy)
{
    EngineConfig cfg;
    cfg.enableResidency = optimization1;
    cfg.costOptions.overlap = optimization2;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = system.cxl.present();
    if (!lia_policy) {
        // FlexGen's fixed policy choice, everything else unchanged.
        cfg.optimizePolicies = false;
        cfg.forcedPrefillPolicy = Policy::fullGpu();
        cfg.forcedDecodePolicy = Policy::attentionOnCpu();
    }
    return EngineModel(system, model, cfg);
}

EngineModel
ipexEngine(const hw::SystemConfig &system, const model::ModelConfig &model)
{
    EngineConfig cfg;
    cfg.cpuOnly = true;
    cfg.enableResidency = false;
    // No transfers exist, so overlap is immaterial; keep it off to make
    // reported component times add up exactly.
    cfg.costOptions.overlap = false;
    return EngineModel(system, model, cfg);
}

FlexGenModel::FlexGenModel(const hw::SystemConfig &system,
                           const model::ModelConfig &model)
    : system_(system), model_(model)
{
    model_.validate();
}

bool
FlexGenModel::kvFitsGpu(const core::Scenario &scenario) const
{
    const double kv = model::kvCacheBytes(model_, scenario.batch,
                                          scenario.lIn + scenario.lOut);
    const double act =
        model::activationBytes(model_, scenario.batch, scenario.lIn);
    // Room for double-buffered streaming weights must remain.
    const double reserve = 2.0 * model_.decoderLayerParamBytes();
    return kv + act + reserve <= system_.gpu.memoryCapacity;
}

core::InferenceEstimate
FlexGenModel::estimate(const core::Scenario &scenario) const
{
    EngineConfig cfg;
    cfg.optimizePolicies = false;
    cfg.forcedPrefillPolicy = Policy::fullGpu();
    cfg.enableResidency = true;
    cfg.cacheGranularity = core::CacheGranularity::SublayerAcrossLayers;
    cfg.costOptions.overlap = true;
    // FlexGen pipelines mini-batches through both stages (§5.2).
    cfg.costOptions.decodeMiniBatchOverlap = true;

    if (kvFitsGpu(scenario)) {
        // Small-batch mode: KV and activations stay in HBM, so the
        // attention sublayers run on the GPU too.
        cfg.costOptions.kvOnGpu = true;
        cfg.forcedDecodePolicy = Policy::fullGpu();
    } else {
        // Large-batch mode: KV host-side, attention compute-offloaded
        // to the CPU (FlexGen's fixed choice).
        cfg.forcedDecodePolicy = Policy::attentionOnCpu();
    }
    return EngineModel(system_, model_, cfg).estimate(scenario);
}

EngineModel
naiveOffloadEngine(const hw::SystemConfig &system,
                   const model::ModelConfig &model, bool kv_on_gpu)
{
    EngineConfig cfg;
    cfg.optimizePolicies = false;
    cfg.forcedPrefillPolicy = Policy::fullGpu();
    cfg.forcedDecodePolicy = Policy::fullGpu();
    cfg.enableResidency = false;
    cfg.costOptions.overlap = true;
    cfg.costOptions.kvOnGpu = kv_on_gpu;
    cfg.costOptions.decodeMiniBatchOverlap = true;
    return EngineModel(system, model, cfg);
}

} // namespace baselines
} // namespace lia
