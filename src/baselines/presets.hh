/**
 * @file
 * Engine presets for LIA and the offloading baselines it is compared
 * against (§7: IPEX, FlexGen, naive data offloading).
 *
 * All presets share the same substrate (CostModel/EngineModel); only
 * policy selection, overlap style, GPU caching granularity, and data
 * placement differ — mirroring how the paper isolates its contribution.
 */

#ifndef LIA_BASELINES_PRESETS_HH
#define LIA_BASELINES_PRESETS_HH

#include "core/engine.hh"

namespace lia {
namespace baselines {

/**
 * LIA: optimized policies per stage, whole-layer GPU residency,
 * full-batch decode overlap, automatic §6 CXL placement when a pool is
 * configured.
 */
core::EngineModel liaEngine(const hw::SystemConfig &system,
                            const model::ModelConfig &model);

/** LIA with selected optimizations disabled (Table 4 ablations). */
core::EngineModel liaEngineAblated(const hw::SystemConfig &system,
                                   const model::ModelConfig &model,
                                   bool optimization1,
                                   bool optimization2,
                                   bool lia_policy);

/** IPEX: CPU-only AMX execution. */
core::EngineModel ipexEngine(const hw::SystemConfig &system,
                             const model::ModelConfig &model);

/**
 * FlexGen: all-GPU prefill, attention-scoring compute-offload in
 * decode (KV host-side) or all-GPU with HBM-resident KV when the whole
 * run fits GPU memory, sublayer-granular weight caching, mini-batched
 * overlap in both stages.
 */
class FlexGenModel
{
  public:
    FlexGenModel(const hw::SystemConfig &system,
                 const model::ModelConfig &model);

    core::InferenceEstimate estimate(const core::Scenario &scenario) const;

    /** Whether the run keeps KV + activations in GPU memory. */
    bool kvFitsGpu(const core::Scenario &scenario) const;

  private:
    hw::SystemConfig system_;
    model::ModelConfig model_;
};

/**
 * Naive data offloading: every sublayer on the GPU, all data streamed
 * from host memory each layer (the §3.1 bottleneck study subject).
 */
core::EngineModel naiveOffloadEngine(const hw::SystemConfig &system,
                                     const model::ModelConfig &model,
                                     bool kv_on_gpu);

} // namespace baselines
} // namespace lia

#endif // LIA_BASELINES_PRESETS_HH
