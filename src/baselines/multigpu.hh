/**
 * @file
 * Multi-GPU tensor-parallel inference model (§7.8's DGX-A100 and §8's
 * cheap 3xV100 alternative).
 *
 * Weights, KV cache, and compute shard across the GPUs; every decoder
 * layer performs two all-reduces of the hidden state over the GPU
 * fabric (after the attention output projection and after FC2), the
 * standard Megatron-style TP communication pattern.
 */

#ifndef LIA_BASELINES_MULTIGPU_HH
#define LIA_BASELINES_MULTIGPU_HH

#include "core/engine.hh"

namespace lia {
namespace baselines {

/** Analytical tensor-parallel inference model. */
class TensorParallelModel
{
  public:
    /** @p system must have gpuCount > 1 and a gpuFabric link. */
    TensorParallelModel(const hw::SystemConfig &system,
                        const model::ModelConfig &model);

    core::InferenceEstimate estimate(const core::Scenario &scenario) const;

    /** Throughput divided by GPU count (Fig. 14's metric). */
    double perGpuThroughput(const core::Scenario &scenario) const;

  private:
    double layerTime(const model::Workload &workload) const;

    /** Ring all-reduce time for @p bytes of payload across the fabric. */
    double allReduceTime(double bytes) const;

    hw::SystemConfig system_;
    model::ModelConfig model_;
};

} // namespace baselines
} // namespace lia

#endif // LIA_BASELINES_MULTIGPU_HH
