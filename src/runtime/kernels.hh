/**
 * @file
 * Numeric kernels of the functional back-end.
 *
 * Plain portable implementations of the operations a decoder layer
 * needs. Every kernel optionally rounds its output through BF16 so the
 * runtime reproduces half-precision numerics. Kernels are device
 * agnostic — the executor charges their cost to whichever SimDevice the
 * policy selected, so results are bit-identical regardless of policy
 * (a key invariant the integration tests check).
 */

#ifndef LIA_RUNTIME_KERNELS_HH
#define LIA_RUNTIME_KERNELS_HH

#include "runtime/tensor.hh"

namespace lia {
namespace runtime {

/** Kernel numeric options. */
struct KernelOptions
{
    bool bf16Rounding = true;  //!< round outputs through BF16
};

/**
 * C = A x B (+ bias broadcast over rows).
 *
 * @param a      (m, k)
 * @param b      (k, n)
 * @param bias   optional (n); pass empty tensor to skip
 */
Tensor matmul(const Tensor &a, const Tensor &b, const Tensor &bias,
              const KernelOptions &opts = {});

/** C = A x B^T, with A (m, k) and B (n, k). */
Tensor matmulTransposed(const Tensor &a, const Tensor &b,
                        const KernelOptions &opts = {});

/** Row-wise softmax over the last axis of a 2-D tensor. */
void softmaxRows(Tensor &t, const KernelOptions &opts = {});

/**
 * Row-wise softmax with a causal mask: row i may attend to columns
 * 0..(offset + i); later columns receive zero probability.
 */
void causalSoftmaxRows(Tensor &t, std::int64_t offset,
                       const KernelOptions &opts = {});

/** LayerNorm over the last axis with learned gain/bias (both (n)). */
Tensor layerNorm(const Tensor &x, const Tensor &gain, const Tensor &bias,
                 const KernelOptions &opts = {});

/** Elementwise ReLU (OPT's FFN activation). */
void reluInPlace(Tensor &t, const KernelOptions &opts = {});

/** Elementwise SiLU x*sigmoid(x) (Llama's gated-FFN activation). */
void siluInPlace(Tensor &t, const KernelOptions &opts = {});

/** Elementwise product a *= b (gating). */
void mulInPlace(Tensor &a, const Tensor &b,
                const KernelOptions &opts = {});

/** Elementwise sum of two same-shape tensors. */
Tensor add(const Tensor &a, const Tensor &b,
           const KernelOptions &opts = {});

/** Row-wise argmax of a 2-D tensor (greedy sampling). */
std::vector<std::int64_t> argmaxRows(const Tensor &t);

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_KERNELS_HH
