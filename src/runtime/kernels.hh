/**
 * @file
 * Numeric kernels of the functional back-end.
 *
 * Cache-blocked, optionally multi-threaded implementations of the
 * operations a decoder layer needs, plus retained single-thread scalar
 * references. Every kernel optionally rounds its output through BF16 so
 * the runtime reproduces half-precision numerics. Kernels are device
 * agnostic — the executor charges their cost to whichever SimDevice the
 * policy selected, so results are bit-identical regardless of policy
 * (a key invariant the integration tests check).
 *
 * Determinism policy (DESIGN.md §7): parallel kernels partition work
 * into self-contained units — whole output rows, fixed column tiles,
 * disjoint element ranges — whose internal floating-point operation
 * order matches the scalar reference exactly. Results are therefore
 * bit-identical to the references at any thread count, which keeps the
 * golden greedy-decode and differential suites valid oracles.
 */

#ifndef LIA_RUNTIME_KERNELS_HH
#define LIA_RUNTIME_KERNELS_HH

#include "base/thread_pool.hh"
#include "runtime/tensor.hh"

namespace lia {

namespace obs {
class KernelProfiler;
} // namespace obs

namespace runtime {

/** Kernel numeric and execution options. */
struct KernelOptions
{
    bool bf16Rounding = true;  //!< round outputs through BF16
    /**
     * Pool running the kernel's data-parallel loops; nullptr executes
     * serially inline. Thread count never changes results.
     */
    base::ThreadPool *pool = nullptr;
    /**
     * Wall-clock profiler receiving one scoped timing per kernel
     * invocation; nullptr — the default — skips even the clock reads,
     * leaving the hot path untouched (ExecutorConfig::profileKernels
     * is the switch). Profiling never changes results.
     */
    obs::KernelProfiler *profiler = nullptr;
};

/**
 * A weight matrix repacked for the blocked matmul inner kernel: the
 * logical (k, n) operand is reordered into column tiles of
 * kPackTileWidth — layout [tile][k][tileWidth], zero-padded in the
 * final tile — so the microkernel streams one contiguous, cache-
 * resident buffer per tile. Packing is layout-only: matmulPacked
 * accumulates in exactly the scalar reference's k-order, so results
 * are bit-identical to the unpacked kernels.
 */
struct PackedMatrix
{
    std::int64_t k = 0;     //!< inner (reduction) extent
    std::int64_t n = 0;     //!< output columns
    std::vector<float> data;

    bool empty() const { return data.empty(); }
    std::int64_t tiles() const;
    double fp32Bytes() const
    {
        return 4.0 * static_cast<double>(data.size());
    }
};

/** Column-tile width of PackedMatrix (8 floats = two SSE vectors). */
inline constexpr std::int64_t kPackTileWidth = 8;

/** Pack a (k, n) operand of matmul. */
PackedMatrix packColumns(const Tensor &b);

/** Pack a (n, k) operand of matmulTransposed (logical B^T). */
PackedMatrix packTransposed(const Tensor &b);

/**
 * A weight matrix repacked into the int8 VNNI-style tile format (the
 * ik_llama.cpp AMX lesson: quantize + reorder once at load, then every
 * matmul streams the compact form). Layout: per 8-column tile, k is
 * walked in pairs and each pair's two bytes for one column sit
 * adjacent — data[tile][kPair][column][parity] — which is exactly the
 * operand order of pmaddwd-style multiply-accumulate (and of AMX tile
 * rows). Odd k and partial final tiles are zero-padded; padding
 * contributes exact integer zeros, never changing results.
 *
 * Quantization is symmetric absmax with one fp32 scale per column
 * tile: q = round(w / scale), scale = absmax / 127 (scale 0 and q = 0
 * for an all-zero tile). Activations are quantized per row at matmul
 * time with the same rule, products accumulate in int32 — exact, so
 * any blocking/threading order yields identical sums — and one shared
 * dequant expression maps each sum back to fp32. That is the whole
 * determinism argument: the int8 kernels are bit-identical to
 * scalarMatmulInt8 at any thread count by construction (DESIGN.md
 * §12).
 */
struct PackedInt8Matrix
{
    std::int64_t k = 0;     //!< inner (reduction) extent
    std::int64_t n = 0;     //!< output columns
    std::vector<std::int8_t> data;  //!< [tile][kPair][8 cols][2]
    std::vector<float> scales;      //!< one per column tile

    bool empty() const { return data.empty(); }
    std::int64_t tiles() const;
    /** k rounded up to pairs (the padded reduction extent). */
    std::int64_t kPairs() const { return (k + 1) / 2; }
    /** Stored bytes: int8 payload plus fp32 tile scales. */
    double int8Bytes() const
    {
        return static_cast<double>(data.size()) +
               4.0 * static_cast<double>(scales.size());
    }
};

/**
 * True when an (k, n) operand can take the int8 path: the int32
 * accumulator holds k pairwise products of magnitude <= 2*127*127, so
 * the reduction extent is bounded (~133k — far above any real model's
 * hidden dimension). Placement decisions consult this; a tensor that
 * fails stays on the fp32 packed path.
 */
bool int8PackViable(std::int64_t k);

/** Quantize + pack a (k, n) operand of matmul into int8 tiles. */
PackedInt8Matrix packColumnsInt8(const Tensor &b);

/** Quantize + pack a (n, k) operand (logical B^T) into int8 tiles. */
PackedInt8Matrix packTransposedInt8(const Tensor &b);

/**
 * C = A x B (+ bias broadcast over rows).
 *
 * @param a      (m, k)
 * @param b      (k, n)
 * @param bias   optional (n); pass empty tensor to skip
 */
Tensor matmul(const Tensor &a, const Tensor &b, const Tensor &bias,
              const KernelOptions &opts = {});

/** C = A x B^T, with A (m, k) and B (n, k). */
Tensor matmulTransposed(const Tensor &a, const Tensor &b,
                        const KernelOptions &opts = {});

/**
 * C = A x B (+ bias) against a pre-packed operand: the register-
 * blocked tile microkernel behind the executor's weight matmuls.
 * Bit-identical to matmul(a, unpacked, bias) at any thread count.
 */
Tensor matmulPacked(const Tensor &a, const PackedMatrix &b,
                    const Tensor &bias, const KernelOptions &opts = {});

/**
 * Retained single-thread scalar references (the pre-blocking kernels).
 * The parallel/blocked paths must match them bit for bit; the property
 * suite and the kernel-throughput benchmark both compare against them.
 */
Tensor scalarMatmul(const Tensor &a, const Tensor &b, const Tensor &bias,
                    const KernelOptions &opts = {});
Tensor scalarMatmulTransposed(const Tensor &a, const Tensor &b,
                              const KernelOptions &opts = {});

/**
 * C = quant(A) x B8 (+ bias) against an int8-packed operand: dynamic
 * per-row activation quantization, int32 accumulation, fused dequant
 * into the fp32 output. Dispatches a register-blocked tile microkernel
 * for GEMM shapes and a wide fused dequant-GEMV for m < 4 decode rows,
 * the latter on the pool's low-latency path so a decode stream stops
 * paying the worker wake/park round trip per matmul. Quantized
 * numerics differ from fp32 by design; against scalarMatmulInt8 the
 * result is bit-identical at any thread count.
 */
Tensor matmulInt8(const Tensor &a, const PackedInt8Matrix &b,
                  const Tensor &bias, const KernelOptions &opts = {});

/**
 * Retained single-thread scalar reference of the int8 path: same
 * quantizer, same int32 accumulation order, same dequant expression,
 * no SIMD, no pool. The property suite memcmps every int8 kernel
 * against it.
 */
Tensor scalarMatmulInt8(const Tensor &a, const PackedInt8Matrix &b,
                        const Tensor &bias,
                        const KernelOptions &opts = {});

/** Row-wise softmax over the last axis of a 2-D tensor. */
void softmaxRows(Tensor &t, const KernelOptions &opts = {});

/**
 * Row-wise softmax with a causal mask: row i may attend to columns
 * 0..(offset + i); later columns receive zero probability.
 */
void causalSoftmaxRows(Tensor &t, std::int64_t offset,
                       const KernelOptions &opts = {});

/** LayerNorm over the last axis with learned gain/bias (both (n)). */
Tensor layerNorm(const Tensor &x, const Tensor &gain, const Tensor &bias,
                 const KernelOptions &opts = {});

/** Elementwise ReLU (OPT's FFN activation). */
void reluInPlace(Tensor &t, const KernelOptions &opts = {});

/** Elementwise SiLU x*sigmoid(x) (Llama's gated-FFN activation). */
void siluInPlace(Tensor &t, const KernelOptions &opts = {});

/** Elementwise product a *= b (gating). */
void mulInPlace(Tensor &a, const Tensor &b,
                const KernelOptions &opts = {});

/** Elementwise sum of two same-shape tensors. */
Tensor add(const Tensor &a, const Tensor &b,
           const KernelOptions &opts = {});

/**
 * Row-wise argmax of a 2-D tensor (greedy sampling). Ties resolve to
 * the first (lowest) index — greedy-decode determinism depends on
 * that. NaN logits never win: they are skipped, and a row whose
 * logits are all NaN yields index 0, so one sequence's numeric
 * blow-up degrades to a garbage-but-deterministic token instead of
 * killing the serving process.
 */
std::vector<std::int64_t> argmaxRows(const Tensor &t);

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_KERNELS_HH
