#include "runtime/draft.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace lia {
namespace runtime {

DraftModel::DraftModel(const hw::SystemConfig &system,
                       TransformerWeights weights,
                       ExecutorConfig config)
    : config_(weights.config),
      executor_(system, std::move(weights), std::move(config))
{
}

std::unique_ptr<KvCache>
DraftModel::makeCache(std::int64_t max_len) const
{
    return std::make_unique<KvCache>(config_, 1, max_len);
}

std::vector<std::int64_t>
DraftModel::propose(KvCache &cache,
                    const std::vector<std::int64_t> &stream,
                    std::int64_t k)
{
    LIA_ASSERT(k >= 1, "propose wants at least one draft token");
    const auto n = static_cast<std::int64_t>(stream.size());
    LIA_ASSERT(cache.length() < n,
               "draft cache (", cache.length(),
               " tokens) must trail the stream (", n, ")");

    // Catch up: feed every stream token the cache has not seen. After
    // an accepted verify this is one token (the correction/bonus); on
    // a fresh or rebuilt cache it is the whole stream. The chunk's
    // final sample is the first draft.
    std::vector<std::int64_t> drafts;
    drafts.reserve(static_cast<std::size_t>(k));
    drafts.push_back(executor_.prefillChunk(
        cache, {stream.begin() + cache.length(), stream.end()}));
    while (static_cast<std::int64_t>(drafts.size()) < k)
        drafts.push_back(executor_.decodeOne(cache, drafts.back()));
    LIA_ASSERT(cache.length() == n + k - 1,
               "draft cache length drifted");
    return drafts;
}

void
DraftModel::truncateAfterVerify(KvCache &cache,
                                std::int64_t stream_len,
                                std::int64_t accepted,
                                std::int64_t k)
{
    // propose() left the cache at stream_len + k - 1 tokens: the
    // stream prefix plus drafts d1..d(k-1). The first `accepted`
    // drafts are now real stream tokens; everything after them is
    // speculation the target rejected.
    const std::int64_t keep =
        stream_len + std::min(accepted, k - 1);
    LIA_ASSERT(cache.length() == stream_len + k - 1,
               "verify rollback against an unexpected draft cache");
    cache.truncate(keep);
}

} // namespace runtime
} // namespace lia
