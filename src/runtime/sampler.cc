#include "runtime/sampler.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.hh"

namespace lia {
namespace runtime {

Sampler::Sampler(SamplingConfig config)
    : config_(config), rng_(config.seed)
{
    LIA_ASSERT(config_.topK >= 1, "topK must be >= 1");
    LIA_ASSERT(config_.temperature > 0, "temperature must be > 0");
}

std::int64_t
Sampler::sample(const float *logits, std::int64_t n)
{
    LIA_ASSERT(n >= 1, "empty logits");
    if (config_.mode == SamplingMode::Greedy) {
        std::int64_t best = 0;
        for (std::int64_t i = 1; i < n; ++i) {
            if (logits[i] > logits[best])
                best = i;
        }
        return best;
    }

    // Top-k with temperature: keep the k largest logits, softmax,
    // draw from the categorical distribution.
    const auto k =
        std::min<std::int64_t>(config_.topK, n);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](std::int64_t a, std::int64_t b) {
                          return logits[a] > logits[b];
                      });

    const double inv_t = 1.0 / config_.temperature;
    const double max_logit = logits[idx[0]];
    std::vector<double> probs(static_cast<std::size_t>(k));
    double sum = 0;
    for (std::int64_t i = 0; i < k; ++i) {
        probs[static_cast<std::size_t>(i)] = std::exp(
            (static_cast<double>(logits[idx[static_cast<std::size_t>(
                 i)]]) -
             max_logit) *
            inv_t);
        sum += probs[static_cast<std::size_t>(i)];
    }
    double draw = rng_.uniform() * sum;
    for (std::int64_t i = 0; i < k; ++i) {
        draw -= probs[static_cast<std::size_t>(i)];
        if (draw <= 0)
            return idx[static_cast<std::size_t>(i)];
    }
    return idx[static_cast<std::size_t>(k - 1)];
}

std::vector<std::int64_t>
Sampler::sampleRows(const Tensor &logits)
{
    LIA_ASSERT(logits.ndim() == 2, "sampler wants 2-D logits");
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(logits.dim(0)));
    for (std::int64_t i = 0; i < logits.dim(0); ++i)
        out.push_back(
            sample(logits.data() + i * logits.dim(1), logits.dim(1)));
    return out;
}

} // namespace runtime
} // namespace lia
