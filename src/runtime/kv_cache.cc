#include "runtime/kv_cache.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace lia {
namespace runtime {

namespace {

/** BF16 footprint of K+V spans of this geometry. */
double
spanBf16Bytes(std::int64_t batch, std::int64_t length, std::int64_t kv,
              std::int64_t layers)
{
    return 2.0 * 2.0 * static_cast<double>(batch) *
           static_cast<double>(length) * static_cast<double>(kv) *
           static_cast<double>(layers);
}

} // namespace

bool
KvSnapshot::compact() const
{
    if (empty())
        return length == 0;
    return keys.front().ndim() == 3 && keys.front().dim(1) == length;
}

KvSnapshot
KvSnapshot::splitHead(std::int64_t tokens)
{
    LIA_ASSERT(compact(), "splitHead needs a compact snapshot");
    LIA_ASSERT(tokens > 0 && tokens < length,
               "splitHead tokens ", tokens, " out of (0, ", length, ")");
    const std::int64_t batch = keys.front().dim(0);
    const std::int64_t kv = keys.front().dim(2);
    const std::int64_t layers =
        static_cast<std::int64_t>(keys.size());

    KvSnapshot head;
    head.length = tokens;
    head.bytes = spanBf16Bytes(batch, tokens, kv, layers);
    head.keys.reserve(keys.size());
    head.values.reserve(values.size());

    const std::int64_t tail = length - tokens;
    std::vector<Tensor> tailKeys;
    std::vector<Tensor> tailValues;
    tailKeys.reserve(keys.size());
    tailValues.reserve(values.size());
    for (std::size_t l = 0; l < keys.size(); ++l) {
        Tensor hk({batch, tokens, kv});
        Tensor hv({batch, tokens, kv});
        Tensor tk({batch, tail, kv});
        Tensor tv({batch, tail, kv});
        for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t i = 0; i < length; ++i) {
                for (std::int64_t c = 0; c < kv; ++c) {
                    const float kx = keys[l].at(b, i, c);
                    const float vx = values[l].at(b, i, c);
                    if (i < tokens) {
                        hk.at(b, i, c) = kx;
                        hv.at(b, i, c) = vx;
                    } else {
                        tk.at(b, i - tokens, c) = kx;
                        tv.at(b, i - tokens, c) = vx;
                    }
                }
            }
        }
        head.keys.push_back(std::move(hk));
        head.values.push_back(std::move(hv));
        tailKeys.push_back(std::move(tk));
        tailValues.push_back(std::move(tv));
    }

    keys = std::move(tailKeys);
    values = std::move(tailValues);
    length = tail;
    bytes = spanBf16Bytes(batch, tail, kv, layers);
    return head;
}

KvSnapshot
KvSnapshot::headCopy(std::int64_t tokens) const
{
    LIA_ASSERT(compact(), "headCopy needs a compact snapshot");
    LIA_ASSERT(tokens > 0 && tokens <= length,
               "headCopy tokens ", tokens, " out of (0, ", length, "]");
    const std::int64_t batch = keys.front().dim(0);
    const std::int64_t kv = keys.front().dim(2);
    const std::int64_t layers =
        static_cast<std::int64_t>(keys.size());

    KvSnapshot head;
    head.length = tokens;
    head.bytes = spanBf16Bytes(batch, tokens, kv, layers);
    head.keys.reserve(keys.size());
    head.values.reserve(values.size());
    for (std::size_t l = 0; l < keys.size(); ++l) {
        Tensor hk({batch, tokens, kv});
        Tensor hv({batch, tokens, kv});
        for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t i = 0; i < tokens; ++i) {
                for (std::int64_t c = 0; c < kv; ++c) {
                    hk.at(b, i, c) = keys[l].at(b, i, c);
                    hv.at(b, i, c) = values[l].at(b, i, c);
                }
            }
        }
        head.keys.push_back(std::move(hk));
        head.values.push_back(std::move(hv));
    }
    return head;
}

KvCache::KvCache(const model::ModelConfig &config, std::int64_t batch,
                 std::int64_t max_len)
    : config_(config), batch_(batch), maxLen_(max_len)
{
    LIA_ASSERT(batch > 0 && max_len > 0, "bad KV cache dimensions");
    keys_.reserve(static_cast<std::size_t>(config.numLayers));
    values_.reserve(static_cast<std::size_t>(config.numLayers));
    for (std::int64_t l = 0; l < config.numLayers; ++l) {
        keys_.emplace_back(
            std::vector<std::int64_t>{batch, max_len, config.kvDim()});
        values_.emplace_back(
            std::vector<std::int64_t>{batch, max_len, config.kvDim()});
    }
}

void
KvCache::append(std::int64_t layer, const Tensor &k, const Tensor &v)
{
    LIA_ASSERT(layer == nextLayer_,
               "layers must append in order; expected ", nextLayer_,
               " got ", layer);
    LIA_ASSERT(k.ndim() == 3 && v.ndim() == 3, "KV must be 3-D");
    LIA_ASSERT(k.dim(0) == batch_ && v.dim(0) == batch_,
               "KV batch mismatch");
    LIA_ASSERT(k.dim(2) == config_.kvDim() &&
               v.dim(2) == config_.kvDim(), "KV width mismatch");
    const std::int64_t t = k.dim(1);
    LIA_ASSERT(v.dim(1) == t, "K/V token count mismatch");
    LIA_ASSERT(length_ + t <= maxLen_, "KV cache overflow");
    if (layer == 0)
        pendingTokens_ = t;
    LIA_ASSERT(t == pendingTokens_,
               "inconsistent token count across layers");

    Tensor &kd = keys_[static_cast<std::size_t>(layer)];
    Tensor &vd = values_[static_cast<std::size_t>(layer)];
    for (std::int64_t b = 0; b < batch_; ++b) {
        for (std::int64_t i = 0; i < t; ++i) {
            for (std::int64_t c = 0; c < config_.kvDim(); ++c) {
                kd.at(b, length_ + i, c) = k.at(b, i, c);
                vd.at(b, length_ + i, c) = v.at(b, i, c);
            }
        }
    }

    ++nextLayer_;
    if (nextLayer_ == config_.numLayers) {
        nextLayer_ = 0;
        length_ += pendingTokens_;
        pendingTokens_ = 0;
    }
}

Tensor
KvCache::sliceCurrent(const Tensor &full) const
{
    // Include tokens appended mid-step so earlier layers' reads during
    // the same step see their freshly appended KV.
    const std::int64_t len =
        length_ + (nextLayer_ > 0 ? pendingTokens_ : 0);
    Tensor out({batch_, len, config_.kvDim()});
    for (std::int64_t b = 0; b < batch_; ++b)
        for (std::int64_t i = 0; i < len; ++i)
            for (std::int64_t c = 0; c < config_.kvDim(); ++c)
                out.at(b, i, c) = full.at(b, i, c);
    return out;
}

Tensor
KvCache::keys(std::int64_t layer) const
{
    LIA_ASSERT(layer >= 0 && layer < config_.numLayers, "bad layer");
    return sliceCurrent(keys_[static_cast<std::size_t>(layer)]);
}

Tensor
KvCache::values(std::int64_t layer) const
{
    LIA_ASSERT(layer >= 0 && layer < config_.numLayers, "bad layer");
    return sliceCurrent(values_[static_cast<std::size_t>(layer)]);
}

KvSnapshot
KvCache::evict()
{
    LIA_ASSERT(nextLayer_ == 0 && pendingTokens_ == 0,
               "evicting a cache mid-step (", nextLayer_,
               " layers appended)");
    KvSnapshot snapshot;
    snapshot.length = length_;
    snapshot.bytes = bf16Bytes();
    snapshot.keys = std::move(keys_);
    snapshot.values = std::move(values_);

    keys_.clear();
    values_.clear();
    keys_.reserve(static_cast<std::size_t>(config_.numLayers));
    values_.reserve(static_cast<std::size_t>(config_.numLayers));
    for (std::int64_t l = 0; l < config_.numLayers; ++l) {
        keys_.emplace_back(std::vector<std::int64_t>{
            batch_, maxLen_, config_.kvDim()});
        values_.emplace_back(std::vector<std::int64_t>{
            batch_, maxLen_, config_.kvDim()});
    }
    length_ = 0;
    return snapshot;
}

void
KvCache::truncate(std::int64_t new_length)
{
    LIA_ASSERT(nextLayer_ == 0 && pendingTokens_ == 0,
               "truncating a cache mid-step (", nextLayer_,
               " layers appended)");
    LIA_ASSERT(new_length >= 0 && new_length <= length_,
               "truncate to ", new_length, " of ", length_, " tokens");
    // Appends always overwrite slots past length_, so the rejected
    // positions' stale bytes are unreachable through keys()/values()/
    // fingerprint()/snapshotRange() — dropping the cursor suffices.
    length_ = new_length;
}

KvSnapshot
KvCache::snapshotRange(std::int64_t start, std::int64_t end) const
{
    LIA_ASSERT(nextLayer_ == 0 && pendingTokens_ == 0,
               "snapshotting a cache mid-step");
    LIA_ASSERT(start >= 0 && start < end && end <= length_,
               "bad snapshot range [", start, ", ", end, ") of ",
               length_);
    const std::int64_t kv = config_.kvDim();
    const std::int64_t t = end - start;
    KvSnapshot span;
    span.length = t;
    span.bytes = spanBf16Bytes(batch_, t, kv, config_.numLayers);
    span.keys.reserve(keys_.size());
    span.values.reserve(values_.size());
    for (std::size_t l = 0; l < keys_.size(); ++l) {
        Tensor k({batch_, t, kv});
        Tensor v({batch_, t, kv});
        for (std::int64_t b = 0; b < batch_; ++b) {
            for (std::int64_t i = 0; i < t; ++i) {
                for (std::int64_t c = 0; c < kv; ++c) {
                    k.at(b, i, c) = keys_[l].at(b, start + i, c);
                    v.at(b, i, c) = values_[l].at(b, start + i, c);
                }
            }
        }
        span.keys.push_back(std::move(k));
        span.values.push_back(std::move(v));
    }
    return span;
}

bool
KvCache::preload(const KvSnapshot &span)
{
    if (nextLayer_ > 0 || pendingTokens_ > 0)
        return false;  // never splice into a half-appended step
    if (span.empty() || !span.compact() ||
        span.keys.size() !=
            static_cast<std::size_t>(config_.numLayers) ||
        span.values.size() != span.keys.size())
        return false;
    if (length_ + span.length > maxLen_)
        return false;
    for (const Tensor &k : span.keys) {
        if (k.ndim() != 3 || k.dim(0) != batch_ ||
            k.dim(2) != config_.kvDim())
            return false;
    }

    for (std::size_t l = 0; l < keys_.size(); ++l) {
        for (std::int64_t b = 0; b < batch_; ++b) {
            for (std::int64_t i = 0; i < span.length; ++i) {
                for (std::int64_t c = 0; c < config_.kvDim(); ++c) {
                    keys_[l].at(b, length_ + i, c) =
                        span.keys[l].at(b, i, c);
                    values_[l].at(b, length_ + i, c) =
                        span.values[l].at(b, i, c);
                }
            }
        }
    }
    length_ += span.length;
    return true;
}

bool
KvCache::restore(KvSnapshot &snapshot)
{
    if (length_ > 0 || nextLayer_ > 0 || pendingTokens_ > 0)
        return false;  // occupied caches refuse a restore
    if (snapshot.empty() ||
        snapshot.keys.size() !=
            static_cast<std::size_t>(config_.numLayers) ||
        snapshot.values.size() != snapshot.keys.size())
        return false;
    if (snapshot.length > maxLen_)
        return false;
    for (const Tensor &k : snapshot.keys) {
        if (k.ndim() != 3 || k.dim(0) != batch_ ||
            k.dim(1) != maxLen_ || k.dim(2) != config_.kvDim())
            return false;
    }

    keys_ = std::move(snapshot.keys);
    values_ = std::move(snapshot.values);
    length_ = snapshot.length;
    snapshot = KvSnapshot{};
    return true;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** FNV-1a over one FP32 bit pattern. */
std::uint64_t
mixFloat(std::uint64_t hash, float value)
{
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
        hash ^= (bits >> shift) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

} // namespace

std::uint64_t
KvCache::fingerprint(std::int64_t tokens, base::ThreadPool *pool) const
{
    const std::int64_t len =
        tokens < 0 ? length_ : std::min(tokens, length_);
    const std::int64_t kv = config_.kvDim();
    if (pool == nullptr)
        pool = &base::ThreadPool::shared();

    // Per-token FNV-1a digests computed in parallel, then folded in
    // position order: the combination is a pure function of the
    // stored bits, so two caches holding bit-identical KV for the
    // prefix fingerprint identically at any thread count.
    std::vector<std::uint64_t> perToken(static_cast<std::size_t>(len));
    pool->parallelFor(
        len, 2, [&](std::int64_t t0, std::int64_t t1) {
            for (std::int64_t i = t0; i < t1; ++i) {
                std::uint64_t hash = kFnvOffset;
                for (std::int64_t l = 0; l < config_.numLayers; ++l) {
                    const Tensor &kd =
                        keys_[static_cast<std::size_t>(l)];
                    const Tensor &vd =
                        values_[static_cast<std::size_t>(l)];
                    for (std::int64_t b = 0; b < batch_; ++b) {
                        const std::int64_t base =
                            (b * maxLen_ + i) * kv;
                        const float *kr = kd.data() + base;
                        const float *vr = vd.data() + base;
                        for (std::int64_t c = 0; c < kv; ++c) {
                            hash = mixFloat(hash, kr[c]);
                            hash = mixFloat(hash, vr[c]);
                        }
                    }
                }
                perToken[static_cast<std::size_t>(i)] = hash;
            }
        });

    std::uint64_t hash = kFnvOffset;
    for (std::int64_t i = 0; i < len; ++i) {
        std::uint64_t digest = perToken[static_cast<std::size_t>(i)];
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (digest >> shift) & 0xffu;
            hash *= kFnvPrime;
        }
    }
    return hash;
}

double
KvCache::bf16Bytes() const
{
    return 2.0 * 2.0 * static_cast<double>(batch_) *
           static_cast<double>(length_) *
           static_cast<double>(config_.kvDim()) *
           static_cast<double>(config_.numLayers);
}

} // namespace runtime
} // namespace lia
