#include "runtime/tensor.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "runtime/bf16.hh"

namespace lia {
namespace runtime {

namespace {

std::int64_t
shapeNumel(const std::vector<std::int64_t> &shape)
{
    std::int64_t n = 1;
    for (auto d : shape) {
        LIA_ASSERT(d > 0, "tensor dimensions must be positive");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shapeNumel(shape_)), 0.0f)
{
}

Tensor
Tensor::randomNormal(std::vector<std::int64_t> shape, Rng &rng,
                     double stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

std::int64_t
Tensor::dim(std::size_t axis) const
{
    LIA_ASSERT(axis < shape_.size(), "axis out of range");
    return shape_[axis];
}

float &
Tensor::at(std::int64_t i)
{
    LIA_ASSERT(ndim() == 1 && i >= 0 && i < shape_[0], "bad index");
    return data_[static_cast<std::size_t>(i)];
}

float
Tensor::at(std::int64_t i) const
{
    return const_cast<Tensor *>(this)->at(i);
}

float &
Tensor::at(std::int64_t i, std::int64_t j)
{
    LIA_ASSERT(ndim() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
               j < shape_[1], "bad index");
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float
Tensor::at(std::int64_t i, std::int64_t j) const
{
    return const_cast<Tensor *>(this)->at(i, j);
}

float &
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k)
{
    LIA_ASSERT(ndim() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
               j < shape_[1] && k >= 0 && k < shape_[2], "bad index");
    return data_[static_cast<std::size_t>(
        (i * shape_[1] + j) * shape_[2] + k)];
}

float
Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const
{
    return const_cast<Tensor *>(this)->at(i, j, k);
}

Tensor
Tensor::clone() const
{
    Tensor t;
    t.shape_ = shape_;
    t.data_ = data_;
    return t;
}

Tensor
Tensor::reshaped(std::vector<std::int64_t> shape) const
{
    LIA_ASSERT(shapeNumel(shape) == numel(),
               "reshape must preserve element count");
    Tensor t = clone();
    t.shape_ = std::move(shape);
    return t;
}

void
Tensor::roundBf16()
{
    for (auto &v : data_)
        v = roundToBf16(v);
}

double
Tensor::maxAbsDiff(const Tensor &other) const
{
    LIA_ASSERT(shape_ == other.shape_, "shape mismatch");
    double max_diff = 0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        max_diff = std::max(
            max_diff,
            static_cast<double>(std::fabs(data_[i] - other.data_[i])));
    }
    return max_diff;
}

} // namespace runtime
} // namespace lia
