/**
 * @file
 * Per-layer key/value cache.
 *
 * Stores K and V for every decoder layer, appended once per prefill or
 * decode step. The cache is the GPU-capacity pressure point that
 * motivates the paper's host-side offloading: its byte count feeds the
 * footprint checks and the transfer accounting.
 */

#ifndef LIA_RUNTIME_KV_CACHE_HH
#define LIA_RUNTIME_KV_CACHE_HH

#include <vector>

#include "model/config.hh"
#include "runtime/tensor.hh"

namespace lia {
namespace runtime {

/** Growing K/V storage for all layers of one batch. */
class KvCache
{
  public:
    KvCache(const model::ModelConfig &config, std::int64_t batch,
            std::int64_t max_len);

    /**
     * Append @p k and @p v (each (B, T, kvDim)) for @p layer. All
     * layers must be appended the same number of tokens per step; the
     * context length advances when the last layer is appended.
     */
    void append(std::int64_t layer, const Tensor &k, const Tensor &v);

    /** Context length currently stored. */
    std::int64_t length() const { return length_; }

    std::int64_t batch() const { return batch_; }

    /** Copy of layer @p layer's keys: (B, length, kvDim). */
    Tensor keys(std::int64_t layer) const;

    /** Copy of layer @p layer's values: (B, length, kvDim). */
    Tensor values(std::int64_t layer) const;

    /** BF16 bytes currently held (K and V, all layers). */
    double bf16Bytes() const;

  private:
    Tensor sliceCurrent(const Tensor &full) const;

    model::ModelConfig config_;
    std::int64_t batch_;
    std::int64_t maxLen_;
    std::int64_t length_ = 0;
    std::int64_t pendingTokens_ = 0;  //!< tokens appended this step
    std::int64_t nextLayer_ = 0;      //!< append cursor
    std::vector<Tensor> keys_;    //!< per layer (B, maxLen, kvDim)
    std::vector<Tensor> values_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_KV_CACHE_HH
