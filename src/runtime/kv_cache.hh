/**
 * @file
 * Per-layer key/value cache.
 *
 * Stores K and V for every decoder layer, appended once per prefill or
 * decode step. The cache is the GPU-capacity pressure point that
 * motivates the paper's host-side offloading: its byte count feeds the
 * footprint checks and the transfer accounting.
 *
 * A cache can additionally be evicted — its contents move out as a
 * KvSnapshot (the swap-to-CXL parking operation) or are simply
 * discarded (evict-and-recompute) — and later restored bit-identically
 * from the snapshot. The serving runtime backend drives these entry
 * points from scheduler preemption decisions.
 */

#ifndef LIA_RUNTIME_KV_CACHE_HH
#define LIA_RUNTIME_KV_CACHE_HH

#include <cstdint>
#include <vector>

#include "model/config.hh"
#include "runtime/tensor.hh"

namespace lia {
namespace base {
class ThreadPool;
} // namespace base

namespace runtime {

/**
 * Contents moved out of an evicted KvCache: the parked form a
 * swapped-out cache takes while it lives in the CXL pool. The bytes
 * field records the BF16 footprint at eviction time, so byte
 * accounting can assert freed == restored.
 */
struct KvSnapshot
{
    std::int64_t length = 0;     //!< context tokens parked
    double bytes = 0;            //!< BF16 bytes at eviction
    std::vector<Tensor> keys;    //!< per layer (B, maxLen, kvDim)
    std::vector<Tensor> values;

    bool empty() const { return keys.empty(); }

    /** Whether the tensors hold exactly `length` tokens (no slack) —
     *  the form snapshotRange() produces and preload() consumes. */
    bool compact() const;

    /**
     * Split a compact snapshot: the first @p tokens move out as the
     * returned head, this snapshot keeps the tail. Both stay compact
     * and their bytes fields re-count their BF16 footprints. The
     * prefix cache uses this to split a node's KV span at a radix
     * divergence point without copying the whole span twice.
     */
    KvSnapshot splitHead(std::int64_t tokens);

    /**
     * Copy of the first @p tokens of a compact snapshot, leaving this
     * snapshot untouched. A prefix-cache hit that matches only part of
     * a terminal node attaches a head copy of the node's span.
     */
    KvSnapshot headCopy(std::int64_t tokens) const;
};

/** Growing K/V storage for all layers of one batch. */
class KvCache
{
  public:
    KvCache(const model::ModelConfig &config, std::int64_t batch,
            std::int64_t max_len);

    /**
     * Append @p k and @p v (each (B, T, kvDim)) for @p layer. All
     * layers must be appended the same number of tokens per step; the
     * context length advances when the last layer is appended.
     */
    void append(std::int64_t layer, const Tensor &k, const Tensor &v);

    /** Context length currently stored. */
    std::int64_t length() const { return length_; }

    std::int64_t batch() const { return batch_; }

    /** Copy of layer @p layer's keys: (B, length, kvDim). */
    Tensor keys(std::int64_t layer) const;

    /** Copy of layer @p layer's values: (B, length, kvDim). */
    Tensor values(std::int64_t layer) const;

    /** BF16 bytes currently held (K and V, all layers). */
    double bf16Bytes() const;

    // --- Eviction / restoration entry points -------------------------

    /**
     * Move the stored KV out, leaving this cache empty but reusable.
     * The snapshot's bytes equal bf16Bytes() at the call. Evicting
     * mid-step (layers partially appended) is a bug and panics.
     */
    KvSnapshot evict();

    /**
     * Compact copy of tokens [@p start, @p end) across all layers:
     * per-layer (B, end-start, kvDim) tensors. The source cache is
     * untouched. Shared prefix-cache nodes are built from these spans.
     */
    KvSnapshot snapshotRange(std::int64_t start, std::int64_t end) const;

    /**
     * Append a compact span at the current end of the cache, as if its
     * tokens had been produced by prefill — the shared-prefix attach
     * path. Fails cleanly (returns false, cache untouched) when called
     * mid-step or when the span's geometry does not fit.
     */
    bool preload(const KvSnapshot &span);

    /**
     * Restore an evicted snapshot. Fails cleanly — returns false and
     * leaves both the cache and the snapshot untouched — when the
     * cache is not empty (a "full" cache cannot absorb a restore) or
     * the snapshot's geometry does not match this cache.
     */
    bool restore(KvSnapshot &snapshot);

    /**
     * Roll the context back to @p new_length tokens, discarding the
     * KV of every later position — the speculative-decoding reject
     * path. The surviving prefix is untouched (its fingerprint is
     * preserved); the discarded slots become ordinary append capacity
     * again. Truncating mid-step is a bug and panics.
     */
    void truncate(std::int64_t new_length);

    /**
     * Position-ordered FNV-1a digest over the bit patterns of the
     * first @p tokens of stored K and V (all layers); -1 digests the
     * whole cache. Two caches holding bit-identical KV for a prefix
     * fingerprint identically — the evict/recompute and swap/restore
     * continuity checks rest on this. Per-token digests run on
     * @p pool (null selects the process-wide shared pool), matching
     * the executor's construction-time pool injection; the result is
     * the same at any thread count.
     */
    std::uint64_t fingerprint(std::int64_t tokens = -1,
                              base::ThreadPool *pool = nullptr) const;

  private:
    Tensor sliceCurrent(const Tensor &full) const;

    model::ModelConfig config_;
    std::int64_t batch_;
    std::int64_t maxLen_;
    std::int64_t length_ = 0;
    std::int64_t pendingTokens_ = 0;  //!< tokens appended this step
    std::int64_t nextLayer_ = 0;      //!< append cursor
    std::vector<Tensor> keys_;    //!< per layer (B, maxLen, kvDim)
    std::vector<Tensor> values_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_KV_CACHE_HH
