/**
 * @file
 * Token sampling strategies for the generation loop.
 *
 * Greedy argmax is the default (and what the performance study uses —
 * sampling choice does not affect timing); top-k with temperature is
 * provided so the runtime is usable for actual text generation.
 */

#ifndef LIA_RUNTIME_SAMPLER_HH
#define LIA_RUNTIME_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "runtime/tensor.hh"

namespace lia {
namespace runtime {

/** Sampling strategy selection. */
enum class SamplingMode { Greedy, TopK };

/** Sampling configuration. */
struct SamplingConfig
{
    SamplingMode mode = SamplingMode::Greedy;
    int topK = 40;             //!< candidates kept in TopK mode
    double temperature = 1.0;  //!< logit divisor in TopK mode
    std::uint64_t seed = 1;    //!< RNG seed for stochastic modes
};

/** Stateful sampler drawing one token per logits row. */
class Sampler
{
  public:
    explicit Sampler(SamplingConfig config = {});

    /** Sample one token id from @p n logits. */
    std::int64_t sample(const float *logits, std::int64_t n);

    /** Sample one token per row of a (rows, vocab) tensor. */
    std::vector<std::int64_t> sampleRows(const Tensor &logits);

    const SamplingConfig &config() const { return config_; }

  private:
    SamplingConfig config_;
    Rng rng_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_SAMPLER_HH
