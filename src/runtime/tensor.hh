/**
 * @file
 * Dense row-major FP32 tensor for the functional execution back-end.
 *
 * Deliberately minimal: contiguous storage, up to four dimensions, and
 * the operations the transformer runtime needs. BF16 numerics are
 * emulated by rounding storage through BF16 (see bf16.hh).
 */

#ifndef LIA_RUNTIME_TENSOR_HH
#define LIA_RUNTIME_TENSOR_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"

namespace lia {
namespace runtime {

/** Dense row-major FP32 tensor. */
class Tensor
{
  public:
    /** An empty tensor. */
    Tensor() = default;

    /** A zero-initialised tensor of the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);

    /** A tensor filled with normal(0, stddev) values. */
    static Tensor randomNormal(std::vector<std::int64_t> shape, Rng &rng,
                               double stddev);

    const std::vector<std::int64_t> &shape() const { return shape_; }
    std::int64_t dim(std::size_t axis) const;
    std::size_t ndim() const { return shape_.size(); }
    std::int64_t numel() const
    {
        return static_cast<std::int64_t>(data_.size());
    }
    bool empty() const { return data_.empty(); }

    /** Bytes this tensor would occupy at BF16 precision. */
    double bf16Bytes() const { return 2.0 * numel(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &at(std::int64_t i);
    float at(std::int64_t i) const;
    float &at(std::int64_t i, std::int64_t j);
    float at(std::int64_t i, std::int64_t j) const;
    float &at(std::int64_t i, std::int64_t j, std::int64_t k);
    float at(std::int64_t i, std::int64_t j, std::int64_t k) const;

    /** Deep copy. */
    Tensor clone() const;

    /** Reinterpret as a new shape with identical element count. */
    Tensor reshaped(std::vector<std::int64_t> shape) const;

    /** Round every element through BF16. */
    void roundBf16();

    /** Largest absolute difference against @p other (same shape). */
    double maxAbsDiff(const Tensor &other) const;

  private:
    std::vector<std::int64_t> shape_;
    std::vector<float> data_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_TENSOR_HH
