/**
 * @file
 * Cooperative CPU-GPU execution back-end (§5's C2 component).
 *
 * Runs real transformer inference while honouring a compute-offloading
 * plan: every sublayer executes "on" the device the policy assigns,
 * parameters stream to the GPU unless the layer is resident, the KV
 * cache lives host-side, and every cross-device byte is recorded in the
 * transfer ledger. Numeric results are identical for every plan (the
 * kernels are device-agnostic) — the plan only changes where time and
 * traffic are accounted, exactly like the paper's back-end only changes
 * where work executes.
 *
 * Integration tests cross-check the ledger's byte counts and the
 * modeled busy times against the analytical CostModel.
 */

#ifndef LIA_RUNTIME_EXECUTOR_HH
#define LIA_RUNTIME_EXECUTOR_HH

#include <memory>
#include <vector>

#include "base/statistics.hh"
#include "core/policy.hh"
#include "obs/profiler.hh"
#include "hw/system.hh"
#include "runtime/device.hh"
#include "runtime/kernels.hh"
#include "runtime/kv_cache.hh"
#include "runtime/sampler.hh"
#include "runtime/weights.hh"

namespace lia {
namespace runtime {

/** Execution plan handed to the back-end. */
struct ExecutorConfig
{
    core::Policy prefillPolicy = core::Policy::fullCpu();
    core::Policy decodePolicy = core::Policy::fullCpu();
    int residentLayers = 0;     //!< Optimization-1 resident prefix
    bool bf16Rounding = true;   //!< emulate BF16 numerics
    SamplingConfig sampling;    //!< token selection (greedy default)
    /**
     * Weight storage/execution precision. At Int8 the executor packs
     * the projection matrices into the int8 VNNI-style tile format
     * and runs them through matmulInt8 (per-tensor placement with the
     * fp32 pack as fallback; the tied LM head always stays fp32), and
     * the weights' config must already be int8-priced
     * (weightBytesPerElement == 1.0, e.g. via model::quantized) so
     * the transfer ledger and the analytic cost model move the same
     * parameter bytes. Int4 shrinks accounting only — there is no
     * int4 kernel, so execution stays fp32.
     */
    model::WeightPrecision weightPrecision =
        model::WeightPrecision::Bf16;
    /**
     * Pool the kernels run on; injected at construction so every
     * prefill/decode call — including the serving backend's
     * batch-of-one decodeOne stream — reuses one set of persistent
     * workers. Null selects the process-wide shared pool. Thread
     * count never changes results (DESIGN.md §7).
     */
    std::shared_ptr<base::ThreadPool> pool;
    /**
     * Wall-clock kernel profiling: the executor owns an
     * obs::KernelProfiler, threads it through KernelOptions, and
     * installs it as the pool's ParallelObserver. Off — the default —
     * keeps the hot path bit-for-bit untouched (no clock reads, no
     * observer); on, results are still identical, only wall timings
     * are collected. One profiling executor per pool at a time (the
     * observer slot is singular).
     */
    bool profileKernels = false;
};

/**
 * Outcome of one speculative verify pass (DESIGN.md §11): the number
 * of draft tokens the target model accepted and the tokens actually
 * emitted — the accepted prefix plus the target's own next token
 * (the "correction", or the bonus token when every draft matched).
 */
struct SpeculativeVerify
{
    std::int64_t accepted = 0;           //!< drafts kept, in [0, k]
    std::vector<std::int64_t> emitted;   //!< accepted+1 tokens
};

/** The cooperative inference executor. */
class CooperativeExecutor
{
  public:
    CooperativeExecutor(const hw::SystemConfig &system,
                        TransformerWeights weights,
                        ExecutorConfig config);
    ~CooperativeExecutor();

    /**
     * Run the prefill stage over same-length prompts; returns the
     * greedy next token of each sequence.
     */
    std::vector<std::int64_t>
    prefill(const std::vector<std::vector<std::int64_t>> &prompts);

    /**
     * Run one decode step feeding back @p tokens (one per sequence);
     * returns the next tokens.
     */
    std::vector<std::int64_t>
    decodeStep(const std::vector<std::int64_t> &tokens);

    /**
     * Full generation: prefill then decode until each sequence has
     * @p l_out generated tokens. Returns (B, l_out) token ids.
     */
    std::vector<std::vector<std::int64_t>>
    generate(const std::vector<std::vector<std::int64_t>> &prompts,
             std::int64_t l_out);

    // --- Per-sequence serving entry points ---------------------------
    //
    // The serving runtime backend interleaves many variable-length
    // sequences, each with its own caller-owned KvCache, as the
    // scheduler's iteration plans dictate. These run the same layer
    // stack as the batch API against an explicit cache, so chunked
    // prefill, decode, and recompute-after-eviction all produce
    // bit-identical numerics to an uninterrupted run.

    /**
     * Run @p tokens of one sequence's prompt on top of @p cache's
     * materialised history (empty cache = monolithic prefill; the
     * token positions start at the current cache length). Returns the
     * sampled next token of the chunk's final position — meaningful
     * once the chunk completes the prompt.
     */
    std::int64_t prefillChunk(KvCache &cache,
                              const std::vector<std::int64_t> &tokens);

    /** One decode step of one sequence: feed @p token, sample the next. */
    std::int64_t decodeOne(KvCache &cache, std::int64_t token);

    /**
     * Score @p drafts (k proposed tokens) in one batched decode pass
     * feeding [@p last_token, d1..dk-1] — k+1 positions — and sample
     * every position. Greedy accept: the longest prefix where draft i
     * equals the target's sample at position i-1 is kept, plus the
     * target's sample one past it. The cache is rolled back to the
     * accepted length, so after the call
     * `cache.length() == old_length + accepted + 1` — exactly as if
     * the emitted tokens had been produced by sequential decodeOne
     * calls, and bit-identical to them (the kernels are row-count
     * invariant and causal masking is position-exact, DESIGN.md §11).
     */
    SpeculativeVerify
    verifyBatch(KvCache &cache, std::int64_t last_token,
                const std::vector<std::int64_t> &drafts);

    const TransferLedger &ledger() const { return ledger_; }
    const SimDevice &cpuDevice() const { return cpu_; }
    const SimDevice &gpuDevice() const { return gpu_; }
    const KvCache &cache() const;

    /** Modeled serial latency: device busy times plus link time. */
    double modeledSerialLatency() const;

    /**
     * Register live statistics (gem5-style) over this executor's
     * counters: transfer bytes per traffic class, transfer count,
     * device busy times, and memory occupancy. Formulas read the
     * executor's state at dump time, so one registration covers the
     * whole run. The executor must outlive the group.
     */
    void registerStats(stats::Group &group) const;

    /** Clear ledger and device busy times (keeps allocations). */
    void resetStats();

    /**
     * The wall-clock kernel profile, or nullptr when
     * ExecutorConfig::profileKernels is off.
     */
    const obs::KernelProfiler *kernelProfiler() const
    {
        return profiler_.get();
    }

  private:
    /** Run all decoder layers over (B*T, d) hidden states against
     *  @p cache (appending this step's KV). */
    Tensor forwardLayers(KvCache &cache, Tensor hidden,
                         model::Stage stage, std::int64_t batch,
                         std::int64_t tokens);

    /** Gather embeddings for one step. */
    Tensor embed(const std::vector<std::int64_t> &flat_tokens,
                 std::int64_t batch, std::int64_t tokens,
                 std::int64_t position);

    /** Project hidden states to logits and sample the next tokens. */
    std::vector<std::int64_t> sample(const Tensor &hidden,
                                     std::int64_t batch,
                                     std::int64_t tokens);

    /** Project and sample every position of a batch-1 multi-token
     *  step: one sampled token per row (the verify pass scores all
     *  k+1 positions at once). */
    std::vector<std::int64_t> sampleAll(const Tensor &hidden,
                                        std::int64_t tokens);

    /** Account one sublayer's transfers and compute time. */
    void chargeSublayer(int index, model::Stage stage,
                        std::int64_t batch, std::int64_t context,
                        bool resident, const core::Policy &policy);

    /** Multi-head attention against the cache. */
    Tensor attention(const Tensor &q, const Tensor &keys,
                     const Tensor &values, std::int64_t batch,
                     std::int64_t tokens);

    hw::SystemConfig system_;
    TransformerWeights weights_;
    ExecutorConfig config_;
    KernelOptions kernelOpts_;

    SimDevice cpu_;
    SimDevice gpu_;
    TransferLedger ledger_;
    Sampler sampler_;

    std::unique_ptr<KvCache> cache_;
    double cacheAllocation_ = 0;  //!< host bytes reserved for the cache

    /** Owned when config_.profileKernels; also the pool observer. */
    std::unique_ptr<obs::KernelProfiler> profiler_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_EXECUTOR_HH
