#include "runtime/kernels.hh"

#include "obs/profiler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__SSE2__) || defined(_M_X64)
#define LIA_KERNEL_SSE2 1
#include <emmintrin.h>
#endif

#include "base/logging.hh"
#include "runtime/bf16.hh"

namespace lia {
namespace runtime {

namespace {

/** Run @p body over [0, n) on the options' pool (or inline). */
template <typename Body>
void
parallelRun(const KernelOptions &opts, std::int64_t n,
            std::int64_t grain, const Body &body)
{
    if (opts.pool != nullptr) {
        opts.pool->parallelFor(n, grain, body);
    } else {
        body(static_cast<std::int64_t>(0), n);
    }
}

/**
 * Same, but on the pool's low-latency (spin-before-sleep) path: for
 * the small decode-shaped loops where the worker wake/park round trip
 * rivals the loop body itself. Chunking — and therefore results — is
 * identical to parallelRun.
 */
template <typename Body>
void
parallelRunLowLatency(const KernelOptions &opts, std::int64_t n,
                      std::int64_t grain, const Body &body)
{
    if (opts.pool != nullptr) {
        opts.pool->parallelForLowLatency(n, grain, body);
    } else {
        body(static_cast<std::int64_t>(0), n);
    }
}

void
maybeRound(Tensor &t, const KernelOptions &opts)
{
    if (!opts.bf16Rounding)
        return;
    float *p = t.data();
    // Elementwise, so any chunking rounds identically.
    parallelRun(opts, t.numel(), 8192,
                [p](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        p[i] = roundToBf16(p[i]);
                });
}

/**
 * The blocked inner kernel: accumulate @p MR rows of A against one
 * packed column tile, k ascending — exactly the scalar reference's
 * per-element operation order. MR is a compile-time constant so the
 * accumulators live in registers.
 *
 * On x86-64 the kernel is written with explicit SSE2 intrinsics: the
 * lane-wise mulps/addps are the IEEE operations the scalar reference
 * performs per element (SSE2 has no FMA, so there is no contraction
 * asymmetry either), keeping results bit-identical while sidestepping
 * GCC's SLP vectoriser, which otherwise shuffles the accumulator tile
 * across rows and spills it to the stack every iteration.
 */
template <int MR>
void
packedBlock(const float *pa, std::int64_t lda, const float *tile,
            std::int64_t k, const float *pbias, std::int64_t j0,
            std::int64_t jw, float *pc, std::int64_t n)
{
#if LIA_KERNEL_SSE2
    __m128 acc[MR][2];  // two 4-lane vectors span the 8-wide tile
    if (pbias != nullptr) {
        float init[kPackTileWidth];
        for (std::int64_t jj = 0; jj < kPackTileWidth; ++jj)
            init[jj] = jj < jw ? pbias[j0 + jj] : 0.0f;
        for (int r = 0; r < MR; ++r) {
            acc[r][0] = _mm_loadu_ps(init);
            acc[r][1] = _mm_loadu_ps(init + 4);
        }
    } else {
        for (int r = 0; r < MR; ++r)
            acc[r][0] = acc[r][1] = _mm_setzero_ps();
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
        const float *bk = tile + kk * kPackTileWidth;
        const __m128 b0 = _mm_loadu_ps(bk);
        const __m128 b1 = _mm_loadu_ps(bk + 4);
        for (int r = 0; r < MR; ++r) {
            const __m128 av = _mm_set1_ps(pa[r * lda + kk]);
            acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(av, b0));
            acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(av, b1));
        }
    }
    if (jw == kPackTileWidth) {
        for (int r = 0; r < MR; ++r) {
            _mm_storeu_ps(pc + r * n + j0, acc[r][0]);
            _mm_storeu_ps(pc + r * n + j0 + 4, acc[r][1]);
        }
    } else {
        for (int r = 0; r < MR; ++r) {
            float tmp[kPackTileWidth];
            _mm_storeu_ps(tmp, acc[r][0]);
            _mm_storeu_ps(tmp + 4, acc[r][1]);
            for (std::int64_t jj = 0; jj < jw; ++jj)
                pc[r * n + j0 + jj] = tmp[jj];
        }
    }
#else
    float acc[MR][kPackTileWidth];
    for (int r = 0; r < MR; ++r) {
        for (std::int64_t jj = 0; jj < kPackTileWidth; ++jj)
            acc[r][jj] =
                (pbias != nullptr && jj < jw) ? pbias[j0 + jj] : 0.0f;
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
        const float *bk = tile + kk * kPackTileWidth;
        for (int r = 0; r < MR; ++r) {
            const float av = pa[r * lda + kk];
            for (std::int64_t jj = 0; jj < kPackTileWidth; ++jj)
                acc[r][jj] += av * bk[jj];
        }
    }
    for (int r = 0; r < MR; ++r)
        for (std::int64_t jj = 0; jj < jw; ++jj)
            pc[r * n + j0 + jj] = acc[r][jj];
#endif
}

// --- Int8 path -------------------------------------------------------
//
// Every int8 kernel is built from three shared pieces: one activation
// quantizer, one exact int32 accumulation (order-free), and one
// dequant expression. Sharing them is the whole §12 determinism
// argument — the SIMD paths can reorder the integer sums freely and
// still match scalarMatmulInt8 bit for bit.

/**
 * Quantize one activation row: symmetric absmax, q = round(v * 127 /
 * absmax) clamped to [-127, 127]; an all-zero row gets scale 0 and
 * all-zero codes. @p out must span 2 * kPairs entries and arrive
 * zeroed — the k-odd padding byte stays 0, contributing exact integer
 * zeros. Returns the row scale (absmax / 127).
 */
float
quantizeRowInt8(const float *row, std::int64_t k, std::int8_t *out)
{
    float absmax = 0.0f;
    for (std::int64_t i = 0; i < k; ++i)
        absmax = std::max(absmax, std::fabs(row[i]));
    if (absmax == 0.0f)
        return 0.0f;
    const float inv = 127.0f / absmax;
    for (std::int64_t i = 0; i < k; ++i) {
        const long q = std::lrintf(row[i] * inv);
        out[i] = static_cast<std::int8_t>(
            std::clamp(q, -127l, 127l));
    }
    return absmax / 127.0f;
}

/**
 * The shared dequant expression: every int8 path maps an int32 sum to
 * fp32 through exactly these operations (cvtepi32_ps and
 * static_cast<float> both round to nearest even, so the SIMD variant
 * is the same function).
 */
inline float
dequantInt8(std::int32_t acc, float combined_scale, const float *pbias,
            std::int64_t j)
{
    float v = static_cast<float>(acc) * combined_scale;
    if (pbias != nullptr)
        v += pbias[j];
    return v;
}

/**
 * One quantized row against one int8 tile, scalar: the canonical
 * accumulation the SIMD blocks reproduce (exactly — integer sums are
 * order-free), and the fallback for partial tiles and non-SSE2
 * builds. @p aq spans 2 * kPairs codes (zero-padded).
 */
void
int8TileRowScalar(const std::int8_t *aq, float sa,
                  const PackedInt8Matrix &b, std::int64_t jt,
                  const float *pbias, float *crow)
{
    const std::int64_t kp = b.kPairs();
    const std::int8_t *tile =
        b.data.data() + jt * kp * 2 * kPackTileWidth;
    const std::int64_t j0 = jt * kPackTileWidth;
    const std::int64_t jw = std::min(kPackTileWidth, b.n - j0);
    const float combined =
        sa * b.scales[static_cast<std::size_t>(jt)];
    for (std::int64_t jj = 0; jj < jw; ++jj) {
        std::int32_t acc = 0;
        for (std::int64_t kk2 = 0; kk2 < kp; ++kk2) {
            const std::int8_t *pair =
                tile + kk2 * 2 * kPackTileWidth + jj * 2;
            acc += static_cast<std::int32_t>(aq[2 * kk2]) * pair[0] +
                   static_cast<std::int32_t>(aq[2 * kk2 + 1]) * pair[1];
        }
        crow[j0 + jj] = dequantInt8(acc, combined, pbias, j0 + jj);
    }
}

#if LIA_KERNEL_SSE2

/** Broadcast one activation k-pair into all four 16-bit lane pairs. */
inline __m128i
int8PairBroadcast(const std::int8_t *aq, std::int64_t kk2)
{
    const auto a0 = static_cast<std::uint16_t>(
        static_cast<std::int16_t>(aq[2 * kk2]));
    const auto a1 = static_cast<std::uint16_t>(
        static_cast<std::int16_t>(aq[2 * kk2 + 1]));
    return _mm_set1_epi32(static_cast<int>(
        (static_cast<std::uint32_t>(a1) << 16) | a0));
}

/**
 * MR quantized rows x one *full* int8 tile: 16 weight bytes per
 * k-pair, sign-extended to 16 bits, pmaddwd against the broadcast
 * activation pair — the SSE2 spelling of the VNNI dot-product step.
 * Accumulation is exact int32, dequant is the shared expression.
 */
template <int MR>
void
int8Block(const std::int8_t *aq, std::int64_t lda, const float *sa,
          const std::int8_t *tile, std::int64_t kp, float sw,
          const float *pbias, std::int64_t j0, float *pc,
          std::int64_t n)
{
    const __m128i zero = _mm_setzero_si128();
    __m128i acc[MR][2];
    for (int r = 0; r < MR; ++r)
        acc[r][0] = acc[r][1] = zero;
    for (std::int64_t kk2 = 0; kk2 < kp; ++kk2) {
        const __m128i w8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tile + kk2 * 16));
        const __m128i sign = _mm_cmpgt_epi8(zero, w8);
        const __m128i lo = _mm_unpacklo_epi8(w8, sign);
        const __m128i hi = _mm_unpackhi_epi8(w8, sign);
        for (int r = 0; r < MR; ++r) {
            const __m128i av = int8PairBroadcast(aq + r * lda, kk2);
            acc[r][0] =
                _mm_add_epi32(acc[r][0], _mm_madd_epi16(lo, av));
            acc[r][1] =
                _mm_add_epi32(acc[r][1], _mm_madd_epi16(hi, av));
        }
    }
    for (int r = 0; r < MR; ++r) {
        const __m128 scale = _mm_set1_ps(sa[r] * sw);
        __m128 v0 = _mm_mul_ps(_mm_cvtepi32_ps(acc[r][0]), scale);
        __m128 v1 = _mm_mul_ps(_mm_cvtepi32_ps(acc[r][1]), scale);
        if (pbias != nullptr) {
            v0 = _mm_add_ps(v0, _mm_loadu_ps(pbias + j0));
            v1 = _mm_add_ps(v1, _mm_loadu_ps(pbias + j0 + 4));
        }
        _mm_storeu_ps(pc + r * n + j0, v0);
        _mm_storeu_ps(pc + r * n + j0 + 4, v1);
    }
}

/**
 * The wide fused dequant-GEMV inner kernel: one quantized row against
 * four consecutive *full* tiles (32 output columns) in one k-sweep —
 * eight int32 accumulators stay in registers and each activation
 * broadcast is amortized over all four tiles. This is the m = 1
 * decode kernel; its per-tile integer math is the same as
 * int8Block<1>'s, so results are identical either way.
 */
void
int8GemvWide4(const std::int8_t *aq, float sa,
              const PackedInt8Matrix &b, std::int64_t jt0,
              const float *pbias, float *crow)
{
    const std::int64_t kp = b.kPairs();
    const std::int8_t *tiles[4];
    for (int t = 0; t < 4; ++t)
        tiles[t] = b.data.data() + (jt0 + t) * kp * 2 * kPackTileWidth;
    const __m128i zero = _mm_setzero_si128();
    __m128i acc[4][2];
    for (int t = 0; t < 4; ++t)
        acc[t][0] = acc[t][1] = zero;
    for (std::int64_t kk2 = 0; kk2 < kp; ++kk2) {
        const __m128i av = int8PairBroadcast(aq, kk2);
        for (int t = 0; t < 4; ++t) {
            const __m128i w8 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tiles[t] + kk2 * 16));
            const __m128i sign = _mm_cmpgt_epi8(zero, w8);
            const __m128i lo = _mm_unpacklo_epi8(w8, sign);
            const __m128i hi = _mm_unpackhi_epi8(w8, sign);
            acc[t][0] =
                _mm_add_epi32(acc[t][0], _mm_madd_epi16(lo, av));
            acc[t][1] =
                _mm_add_epi32(acc[t][1], _mm_madd_epi16(hi, av));
        }
    }
    for (int t = 0; t < 4; ++t) {
        const std::int64_t j0 = (jt0 + t) * kPackTileWidth;
        const __m128 scale = _mm_set1_ps(
            sa * b.scales[static_cast<std::size_t>(jt0 + t)]);
        __m128 v0 = _mm_mul_ps(_mm_cvtepi32_ps(acc[t][0]), scale);
        __m128 v1 = _mm_mul_ps(_mm_cvtepi32_ps(acc[t][1]), scale);
        if (pbias != nullptr) {
            v0 = _mm_add_ps(v0, _mm_loadu_ps(pbias + j0));
            v1 = _mm_add_ps(v1, _mm_loadu_ps(pbias + j0 + 4));
        }
        _mm_storeu_ps(crow + j0, v0);
        _mm_storeu_ps(crow + j0 + 4, v1);
    }
}

#endif // LIA_KERNEL_SSE2

/** One quantized row over the tile range [t0, t1): the fused
 *  dequant-GEMV body (wide kernel for full-tile groups of four,
 *  per-tile for the remainder and the ragged final tile). */
void
int8GemvRow(const std::int8_t *aq, float sa, const PackedInt8Matrix &b,
            std::int64_t t0, std::int64_t t1, const float *pbias,
            float *crow)
{
#if LIA_KERNEL_SSE2
    const std::int64_t kp = b.kPairs();
    std::int64_t jt = t0;
    for (; jt + 4 <= t1 && (jt + 4) * kPackTileWidth <= b.n; jt += 4)
        int8GemvWide4(aq, sa, b, jt, pbias, crow);
    for (; jt < t1; ++jt) {
        if ((jt + 1) * kPackTileWidth <= b.n) {
            int8Block<1>(aq, 0, &sa,
                         b.data.data() + jt * kp * 2 * kPackTileWidth,
                         kp, b.scales[static_cast<std::size_t>(jt)],
                         pbias, jt * kPackTileWidth, crow, b.n);
        } else {
            int8TileRowScalar(aq, sa, b, jt, pbias, crow);
        }
    }
#else
    for (std::int64_t jt = t0; jt < t1; ++jt)
        int8TileRowScalar(aq, sa, b, jt, pbias, crow);
#endif
}

} // namespace

std::int64_t
PackedMatrix::tiles() const
{
    return (n + kPackTileWidth - 1) / kPackTileWidth;
}

PackedMatrix
packColumns(const Tensor &b)
{
    LIA_ASSERT(b.ndim() == 2, "packColumns wants 2-D");
    PackedMatrix p;
    p.k = b.dim(0);
    p.n = b.dim(1);
    p.data.assign(
        static_cast<std::size_t>(p.tiles() * p.k * kPackTileWidth),
        0.0f);
    const float *pb = b.data();
    for (std::int64_t jt = 0; jt < p.tiles(); ++jt) {
        float *tile = p.data.data() + jt * p.k * kPackTileWidth;
        const std::int64_t j0 = jt * kPackTileWidth;
        const std::int64_t jw = std::min(kPackTileWidth, p.n - j0);
        for (std::int64_t kk = 0; kk < p.k; ++kk)
            for (std::int64_t jj = 0; jj < jw; ++jj)
                tile[kk * kPackTileWidth + jj] = pb[kk * p.n + j0 + jj];
    }
    return p;
}

PackedMatrix
packTransposed(const Tensor &b)
{
    LIA_ASSERT(b.ndim() == 2, "packTransposed wants 2-D");
    PackedMatrix p;
    p.k = b.dim(1);
    p.n = b.dim(0);
    p.data.assign(
        static_cast<std::size_t>(p.tiles() * p.k * kPackTileWidth),
        0.0f);
    const float *pb = b.data();
    for (std::int64_t jt = 0; jt < p.tiles(); ++jt) {
        float *tile = p.data.data() + jt * p.k * kPackTileWidth;
        const std::int64_t j0 = jt * kPackTileWidth;
        const std::int64_t jw = std::min(kPackTileWidth, p.n - j0);
        for (std::int64_t jj = 0; jj < jw; ++jj)
            for (std::int64_t kk = 0; kk < p.k; ++kk)
                tile[kk * kPackTileWidth + jj] = pb[(j0 + jj) * p.k + kk];
    }
    return p;
}

Tensor
scalarMatmul(const Tensor &a, const Tensor &b, const Tensor &bias,
             const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "scalar_matmul");
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(1);
    LIA_ASSERT(b.dim(0) == k, "matmul inner dimension mismatch: ",
               k, " vs ", b.dim(0));
    const bool has_bias = !bias.empty();
    if (has_bias) {
        LIA_ASSERT(bias.ndim() == 1 && bias.dim(0) == n,
                   "bias shape mismatch");
    }

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    const float *pbias = has_bias ? bias.data() : nullptr;
    float *pc = c.data();
    // i-k-j loop order streams B row-wise for cache friendliness.
    for (std::int64_t i = 0; i < m; ++i) {
        float *crow = pc + i * n;
        if (has_bias) {
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] = pbias[j];
        }
        const float *arow = pa + i * k;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float *brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    maybeRound(c, KernelOptions{opts.bf16Rounding, nullptr});
    return c;
}

Tensor
matmul(const Tensor &a, const Tensor &b, const Tensor &bias,
       const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "matmul");
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(1);
    LIA_ASSERT(b.dim(0) == k, "matmul inner dimension mismatch: ",
               k, " vs ", b.dim(0));
    const bool has_bias = !bias.empty();
    if (has_bias) {
        LIA_ASSERT(bias.ndim() == 1 && bias.dim(0) == n,
                   "bias shape mismatch");
    }

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    const float *pbias = has_bias ? bias.data() : nullptr;
    float *pc = c.data();
    if (m >= 4) {
        // Whole-output-row partition: every element of a row is
        // produced by one chunk in the reference's i-k-j order.
        parallelRun(opts, m, 1, [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                float *crow = pc + i * n;
                if (has_bias) {
                    for (std::int64_t j = 0; j < n; ++j)
                        crow[j] = pbias[j];
                }
                const float *arow = pa + i * k;
                for (std::int64_t kk = 0; kk < k; ++kk) {
                    const float av = arow[kk];
                    const float *brow = pb + kk * n;
                    for (std::int64_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        });
    } else {
        // Skinny (decode) shapes: partition output columns instead;
        // each element still accumulates k-ascending.
        parallelRun(opts, n, 64, [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t i = 0; i < m; ++i) {
                float *crow = pc + i * n;
                if (has_bias) {
                    for (std::int64_t j = j0; j < j1; ++j)
                        crow[j] = pbias[j];
                }
                const float *arow = pa + i * k;
                for (std::int64_t kk = 0; kk < k; ++kk) {
                    const float av = arow[kk];
                    const float *brow = pb + kk * n;
                    for (std::int64_t j = j0; j < j1; ++j)
                        crow[j] += av * brow[j];
                }
            }
        });
    }
    maybeRound(c, opts);
    return c;
}

Tensor
matmulPacked(const Tensor &a, const PackedMatrix &b, const Tensor &bias,
             const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "matmul_packed");
    LIA_ASSERT(a.ndim() == 2, "matmulPacked wants 2-D A");
    LIA_ASSERT(!b.empty(), "matmulPacked against an unpacked operand");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.n;
    LIA_ASSERT(b.k == k, "matmulPacked inner dimension mismatch: ",
               k, " vs ", b.k);
    const bool has_bias = !bias.empty();
    if (has_bias) {
        LIA_ASSERT(bias.ndim() == 1 && bias.dim(0) == n,
                   "bias shape mismatch");
    }

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pbias = has_bias ? bias.data() : nullptr;
    float *pc = c.data();
    // Column-tile partition: good for m = 1 decode (tiles spread over
    // threads) and for prefill (the tile stays L1/L2-resident across
    // the row sweep). Every output element is produced inside exactly
    // one tile in k-ascending order — bit-identical at any count.
    const auto tileSweep = [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t jt = t0; jt < t1; ++jt) {
            const float *tile =
                b.data.data() + jt * k * kPackTileWidth;
            const std::int64_t j0 = jt * kPackTileWidth;
            const std::int64_t jw = std::min(kPackTileWidth, n - j0);
            std::int64_t i = 0;
            for (; i + 4 <= m; i += 4)
                packedBlock<4>(pa + i * k, k, tile, k, pbias, j0, jw,
                               pc + i * n, n);
            for (; i < m; ++i)
                packedBlock<1>(pa + i * k, k, tile, k, pbias, j0, jw,
                               pc + i * n, n);
        }
    };
    // Decode shapes take the pool's low-latency dispatch (same
    // chunking, same results — only the waiting strategy differs).
    if (m < 4)
        parallelRunLowLatency(opts, b.tiles(), 1, tileSweep);
    else
        parallelRun(opts, b.tiles(), 1, tileSweep);
    maybeRound(c, opts);
    return c;
}

std::int64_t
PackedInt8Matrix::tiles() const
{
    return (n + kPackTileWidth - 1) / kPackTileWidth;
}

bool
int8PackViable(std::int64_t k)
{
    // Each k-pair contributes at most 2 * 127 * 127 to the int32
    // accumulator; bound the pair count so the sum can never wrap.
    constexpr std::int64_t pair_max = 2 * 127 * 127;
    constexpr std::int64_t int32_max = 2147483647;
    return k > 0 && (k + 1) / 2 <= int32_max / pair_max;
}

namespace {

/** Shared body of the two int8 pack flavours: @p at(kk, jj) reads the
 *  logical (k, n) element with jj already offset into the tile. */
template <typename At>
PackedInt8Matrix
packInt8Impl(std::int64_t k, std::int64_t n, const At &at)
{
    LIA_ASSERT(int8PackViable(k),
               "reduction extent ", k, " too deep for int8 int32 "
               "accumulation — keep this tensor on the fp32 path");
    PackedInt8Matrix p;
    p.k = k;
    p.n = n;
    const std::int64_t kp = p.kPairs();
    p.data.assign(static_cast<std::size_t>(p.tiles() * kp * 2 *
                                           kPackTileWidth),
                  0);
    p.scales.assign(static_cast<std::size_t>(p.tiles()), 0.0f);
    for (std::int64_t jt = 0; jt < p.tiles(); ++jt) {
        const std::int64_t j0 = jt * kPackTileWidth;
        const std::int64_t jw = std::min(kPackTileWidth, n - j0);
        float absmax = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk)
            for (std::int64_t jj = 0; jj < jw; ++jj)
                absmax = std::max(absmax, std::fabs(at(kk, j0 + jj)));
        if (absmax == 0.0f)
            continue;  // scale 0, all-zero codes
        const float inv = 127.0f / absmax;
        p.scales[static_cast<std::size_t>(jt)] = absmax / 127.0f;
        std::int8_t *tile =
            p.data.data() + jt * kp * 2 * kPackTileWidth;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            for (std::int64_t jj = 0; jj < jw; ++jj) {
                const long q =
                    std::lrintf(at(kk, j0 + jj) * inv);
                tile[(kk / 2) * 2 * kPackTileWidth + jj * 2 +
                     (kk & 1)] = static_cast<std::int8_t>(
                    std::clamp(q, -127l, 127l));
            }
        }
    }
    return p;
}

} // namespace

PackedInt8Matrix
packColumnsInt8(const Tensor &b)
{
    LIA_ASSERT(b.ndim() == 2, "packColumnsInt8 wants 2-D");
    const std::int64_t k = b.dim(0);
    const std::int64_t n = b.dim(1);
    const float *pb = b.data();
    return packInt8Impl(k, n, [&](std::int64_t kk, std::int64_t j) {
        return pb[kk * n + j];
    });
}

PackedInt8Matrix
packTransposedInt8(const Tensor &b)
{
    LIA_ASSERT(b.ndim() == 2, "packTransposedInt8 wants 2-D");
    const std::int64_t k = b.dim(1);
    const std::int64_t n = b.dim(0);
    const float *pb = b.data();
    return packInt8Impl(k, n, [&](std::int64_t kk, std::int64_t j) {
        return pb[j * k + kk];
    });
}

namespace {

/** Shared argument checking of the int8 matmuls. */
void
checkInt8Operands(const Tensor &a, const PackedInt8Matrix &b,
                  const Tensor &bias)
{
    LIA_ASSERT(a.ndim() == 2, "matmulInt8 wants 2-D A");
    LIA_ASSERT(!b.empty(), "matmulInt8 against an unpacked operand");
    LIA_ASSERT(b.k == a.dim(1),
               "matmulInt8 inner dimension mismatch: ", a.dim(1),
               " vs ", b.k);
    if (!bias.empty()) {
        LIA_ASSERT(bias.ndim() == 1 && bias.dim(0) == b.n,
                   "bias shape mismatch");
    }
}

} // namespace

Tensor
scalarMatmulInt8(const Tensor &a, const PackedInt8Matrix &b,
                 const Tensor &bias, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler,
                                       "scalar_matmul_int8");
    checkInt8Operands(a, b, bias);
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.n;

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pbias = bias.empty() ? nullptr : bias.data();
    float *pc = c.data();
    std::vector<std::int8_t> aq(
        static_cast<std::size_t>(2 * b.kPairs()), 0);
    for (std::int64_t i = 0; i < m; ++i) {
        const float sa = quantizeRowInt8(pa + i * k, k, aq.data());
        for (std::int64_t jt = 0; jt < b.tiles(); ++jt)
            int8TileRowScalar(aq.data(), sa, b, jt, pbias, pc + i * n);
    }
    maybeRound(c, KernelOptions{opts.bf16Rounding, nullptr});
    return c;
}

Tensor
matmulInt8(const Tensor &a, const PackedInt8Matrix &b,
           const Tensor &bias, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "matmul_int8");
    checkInt8Operands(a, b, bias);
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.n;
    const std::int64_t lda = 2 * b.kPairs();  // quantized row stride

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pbias = bias.empty() ? nullptr : bias.data();
    float *pc = c.data();
    // Quantized activations, zero-padded to whole k-pairs. Rows are
    // quantized by the shared scalar quantizer whichever path runs, so
    // the codes are identical to the scalar reference's.
    std::vector<std::int8_t> aq(static_cast<std::size_t>(m * lda), 0);
    std::vector<float> sa(static_cast<std::size_t>(m), 0.0f);

    if (m < 4) {
        // Decode shapes: quantize the few rows inline, then run the
        // fused dequant-GEMV tile sweep on the low-latency dispatch
        // path — these loops are short enough that the worker
        // wake/park round trip would otherwise dominate.
        for (std::int64_t i = 0; i < m; ++i)
            sa[static_cast<std::size_t>(i)] =
                quantizeRowInt8(pa + i * k, k, aq.data() + i * lda);
        parallelRunLowLatency(
            opts, b.tiles(), 1, [&](std::int64_t t0, std::int64_t t1) {
                for (std::int64_t i = 0; i < m; ++i)
                    int8GemvRow(aq.data() + i * lda,
                                sa[static_cast<std::size_t>(i)], b, t0,
                                t1, pbias, pc + i * n);
            });
    } else {
        // GEMM shapes: row-partitioned quantization (each row's codes
        // are produced by exactly one chunk), then the register-
        // blocked tile microkernel over column tiles.
        parallelRun(opts, m, 8, [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                sa[static_cast<std::size_t>(i)] = quantizeRowInt8(
                    pa + i * k, k, aq.data() + i * lda);
        });
        const std::int64_t kp = b.kPairs();
        parallelRun(
            opts, b.tiles(), 1, [&](std::int64_t t0, std::int64_t t1) {
                for (std::int64_t jt = t0; jt < t1; ++jt) {
                    const std::int64_t j0 = jt * kPackTileWidth;
#if LIA_KERNEL_SSE2
                    if (j0 + kPackTileWidth <= n) {
                        const std::int8_t *tile =
                            b.data.data() +
                            jt * kp * 2 * kPackTileWidth;
                        const float sw = b.scales
                            [static_cast<std::size_t>(jt)];
                        std::int64_t i = 0;
                        for (; i + 4 <= m; i += 4)
                            int8Block<4>(aq.data() + i * lda, lda,
                                         sa.data() + i, tile, kp, sw,
                                         pbias, j0, pc + i * n, n);
                        for (; i < m; ++i)
                            int8Block<1>(aq.data() + i * lda, lda,
                                         sa.data() + i, tile, kp, sw,
                                         pbias, j0, pc + i * n, n);
                        continue;
                    }
#endif
                    for (std::int64_t i = 0; i < m; ++i)
                        int8TileRowScalar(
                            aq.data() + i * lda,
                            sa[static_cast<std::size_t>(i)], b, jt,
                            pbias, pc + i * n);
                }
            });
    }
    maybeRound(c, opts);
    return c;
}

Tensor
scalarMatmulTransposed(const Tensor &a, const Tensor &b,
                       const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "scalar_matmul_transposed");
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2,
               "matmulTransposed wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(0);
    LIA_ASSERT(b.dim(1) == k, "inner dimension mismatch");

    Tensor c({m, n});
    for (std::int64_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    maybeRound(c, KernelOptions{opts.bf16Rounding, nullptr});
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b,
                 const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "matmul_transposed");
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2,
               "matmulTransposed wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(0);
    LIA_ASSERT(b.dim(1) == k, "inner dimension mismatch");

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // Each output element is one dot product accumulated k-ascending;
    // partition rows when there are enough, columns otherwise.
    const auto dotRange = [&](std::int64_t i0, std::int64_t i1,
                              std::int64_t j0, std::int64_t j1) {
        for (std::int64_t i = i0; i < i1; ++i) {
            const float *arow = pa + i * k;
            float *crow = pc + i * n;
            for (std::int64_t j = j0; j < j1; ++j) {
                const float *brow = pb + j * k;
                float acc = 0.0f;
                for (std::int64_t kk = 0; kk < k; ++kk)
                    acc += arow[kk] * brow[kk];
                crow[j] = acc;
            }
        }
    };
    if (m >= 4) {
        parallelRun(opts, m, 1, [&](std::int64_t i0, std::int64_t i1) {
            dotRange(i0, i1, 0, n);
        });
    } else {
        parallelRun(opts, n, 16, [&](std::int64_t j0, std::int64_t j1) {
            dotRange(0, m, j0, j1);
        });
    }
    maybeRound(c, opts);
    return c;
}

void
softmaxRows(Tensor &t, const KernelOptions &opts)
{
    // An offset past the final column disables the causal mask.
    causalSoftmaxRows(t, t.dim(1), opts);
}

void
causalSoftmaxRows(Tensor &t, std::int64_t offset,
                  const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "softmax_rows");
    LIA_ASSERT(t.ndim() == 2, "softmax wants 2-D");
    const std::int64_t rows = t.dim(0);
    const std::int64_t cols = t.dim(1);
    float *pt = t.data();
    parallelRun(opts, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
            float *row = pt + i * cols;
            const std::int64_t limit = std::min(cols, offset + i + 1);
            LIA_ASSERT(limit > 0, "softmax row fully masked");
            float max_val = row[0];
            for (std::int64_t j = 1; j < limit; ++j)
                max_val = std::max(max_val, row[j]);
            float sum = 0.0f;
            for (std::int64_t j = 0; j < limit; ++j) {
                row[j] = std::exp(row[j] - max_val);
                sum += row[j];
            }
            for (std::int64_t j = 0; j < limit; ++j)
                row[j] /= sum;
            for (std::int64_t j = limit; j < cols; ++j)
                row[j] = 0.0f;
        }
    });
    maybeRound(t, opts);
}

Tensor
layerNorm(const Tensor &x, const Tensor &gain, const Tensor &bias,
          const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "layer_norm");
    LIA_ASSERT(x.ndim() == 2, "layerNorm wants 2-D");
    const std::int64_t rows = x.dim(0);
    const std::int64_t n = x.dim(1);
    LIA_ASSERT(gain.ndim() == 1 && gain.dim(0) == n &&
               bias.ndim() == 1 && bias.dim(0) == n,
               "layerNorm parameter shapes");

    Tensor out({rows, n});
    constexpr float eps = 1e-5f;
    const float *px = x.data();
    const float *pg = gain.data();
    const float *pb = bias.data();
    float *po = out.data();
    parallelRun(opts, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
            const float *row = px + i * n;
            float *orow = po + i * n;
            float mean = 0.0f;
            for (std::int64_t j = 0; j < n; ++j)
                mean += row[j];
            mean /= static_cast<float>(n);
            float var = 0.0f;
            for (std::int64_t j = 0; j < n; ++j) {
                const float d = row[j] - mean;
                var += d * d;
            }
            var /= static_cast<float>(n);
            const float inv = 1.0f / std::sqrt(var + eps);
            for (std::int64_t j = 0; j < n; ++j)
                orow[j] = (row[j] - mean) * inv * pg[j] + pb[j];
        }
    });
    maybeRound(out, opts);
    return out;
}

void
reluInPlace(Tensor &t, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "relu");
    float *p = t.data();
    parallelRun(opts, t.numel(), 8192,
                [p](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        p[i] = std::max(p[i], 0.0f);
                });
    maybeRound(t, opts);
}

void
siluInPlace(Tensor &t, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "silu");
    float *p = t.data();
    parallelRun(opts, t.numel(), 2048,
                [p](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                        const float x = p[i];
                        p[i] = x / (1.0f + std::exp(-x));
                    }
                });
    maybeRound(t, opts);
}

void
mulInPlace(Tensor &a, const Tensor &b, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "mul");
    LIA_ASSERT(a.shape() == b.shape(), "mul shape mismatch");
    float *pa = a.data();
    const float *pb = b.data();
    parallelRun(opts, a.numel(), 8192,
                [pa, pb](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        pa[i] *= pb[i];
                });
    maybeRound(a, opts);
}

Tensor
add(const Tensor &a, const Tensor &b, const KernelOptions &opts)
{
    obs::KernelProfiler::Scope profile(opts.profiler, "add");
    LIA_ASSERT(a.shape() == b.shape(), "add shape mismatch");
    Tensor c = a.clone();
    float *pc = c.data();
    const float *pb = b.data();
    parallelRun(opts, c.numel(), 8192,
                [pc, pb](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i)
                        pc[i] += pb[i];
                });
    maybeRound(c, opts);
    return c;
}

std::vector<std::int64_t>
argmaxRows(const Tensor &t)
{
    LIA_ASSERT(t.ndim() == 2, "argmax wants 2-D");
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(t.dim(0)));
    for (std::int64_t i = 0; i < t.dim(0); ++i) {
        const float *row = t.data() + i * t.dim(1);
        // NaN logits are defined to never win: a single sequence's
        // numeric blow-up must not take down the whole serving
        // process, so the row still yields a deterministic token
        // (index 0 when every logit is NaN) instead of aborting.
        std::int64_t best = -1;
        for (std::int64_t j = 0; j < t.dim(1); ++j) {
            if (std::isnan(row[j]))
                continue;
            // Strict > keeps the first index on ties: greedy decode
            // determinism pins this ordering.
            if (best < 0 || row[j] > row[best])
                best = j;
        }
        out.push_back(best < 0 ? 0 : best);
    }
    return out;
}

} // namespace runtime
} // namespace lia
