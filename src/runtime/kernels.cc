#include "runtime/kernels.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "runtime/bf16.hh"

namespace lia {
namespace runtime {

namespace {

void
maybeRound(Tensor &t, const KernelOptions &opts)
{
    if (opts.bf16Rounding)
        t.roundBf16();
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b, const Tensor &bias,
       const KernelOptions &opts)
{
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(1);
    LIA_ASSERT(b.dim(0) == k, "matmul inner dimension mismatch: ",
               k, " vs ", b.dim(0));
    const bool has_bias = !bias.empty();
    if (has_bias) {
        LIA_ASSERT(bias.ndim() == 1 && bias.dim(0) == n,
                   "bias shape mismatch");
    }

    Tensor c({m, n});
    const float *pa = a.data();
    const float *pb = b.data();
    float *pc = c.data();
    // i-k-j loop order streams B row-wise for cache friendliness.
    for (std::int64_t i = 0; i < m; ++i) {
        float *crow = pc + i * n;
        if (has_bias) {
            const float *pbias = bias.data();
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] = pbias[j];
        }
        const float *arow = pa + i * k;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    maybeRound(c, opts);
    return c;
}

Tensor
matmulTransposed(const Tensor &a, const Tensor &b,
                 const KernelOptions &opts)
{
    LIA_ASSERT(a.ndim() == 2 && b.ndim() == 2,
               "matmulTransposed wants 2-D");
    const std::int64_t m = a.dim(0);
    const std::int64_t k = a.dim(1);
    const std::int64_t n = b.dim(0);
    LIA_ASSERT(b.dim(1) == k, "inner dimension mismatch");

    Tensor c({m, n});
    for (std::int64_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    maybeRound(c, opts);
    return c;
}

void
softmaxRows(Tensor &t, const KernelOptions &opts)
{
    // An offset past the final column disables the causal mask.
    causalSoftmaxRows(t, t.dim(1), opts);
}

void
causalSoftmaxRows(Tensor &t, std::int64_t offset,
                  const KernelOptions &opts)
{
    LIA_ASSERT(t.ndim() == 2, "softmax wants 2-D");
    const std::int64_t rows = t.dim(0);
    const std::int64_t cols = t.dim(1);
    for (std::int64_t i = 0; i < rows; ++i) {
        float *row = t.data() + i * cols;
        const std::int64_t limit = std::min(cols, offset + i + 1);
        LIA_ASSERT(limit > 0, "softmax row fully masked");
        float max_val = row[0];
        for (std::int64_t j = 1; j < limit; ++j)
            max_val = std::max(max_val, row[j]);
        float sum = 0.0f;
        for (std::int64_t j = 0; j < limit; ++j) {
            row[j] = std::exp(row[j] - max_val);
            sum += row[j];
        }
        for (std::int64_t j = 0; j < limit; ++j)
            row[j] /= sum;
        for (std::int64_t j = limit; j < cols; ++j)
            row[j] = 0.0f;
    }
    maybeRound(t, opts);
}

Tensor
layerNorm(const Tensor &x, const Tensor &gain, const Tensor &bias,
          const KernelOptions &opts)
{
    LIA_ASSERT(x.ndim() == 2, "layerNorm wants 2-D");
    const std::int64_t rows = x.dim(0);
    const std::int64_t n = x.dim(1);
    LIA_ASSERT(gain.ndim() == 1 && gain.dim(0) == n &&
               bias.ndim() == 1 && bias.dim(0) == n,
               "layerNorm parameter shapes");

    Tensor out({rows, n});
    constexpr float eps = 1e-5f;
    for (std::int64_t i = 0; i < rows; ++i) {
        const float *row = x.data() + i * n;
        float *orow = out.data() + i * n;
        float mean = 0.0f;
        for (std::int64_t j = 0; j < n; ++j)
            mean += row[j];
        mean /= static_cast<float>(n);
        float var = 0.0f;
        for (std::int64_t j = 0; j < n; ++j) {
            const float d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<float>(n);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (std::int64_t j = 0; j < n; ++j) {
            orow[j] = (row[j] - mean) * inv * gain.at(j) + bias.at(j);
        }
    }
    maybeRound(out, opts);
    return out;
}

void
reluInPlace(Tensor &t, const KernelOptions &opts)
{
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = std::max(t.data()[i], 0.0f);
    maybeRound(t, opts);
}

void
siluInPlace(Tensor &t, const KernelOptions &opts)
{
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const float x = t.data()[i];
        t.data()[i] = x / (1.0f + std::exp(-x));
    }
    maybeRound(t, opts);
}

void
mulInPlace(Tensor &a, const Tensor &b, const KernelOptions &opts)
{
    LIA_ASSERT(a.shape() == b.shape(), "mul shape mismatch");
    for (std::int64_t i = 0; i < a.numel(); ++i)
        a.data()[i] *= b.data()[i];
    maybeRound(a, opts);
}

Tensor
add(const Tensor &a, const Tensor &b, const KernelOptions &opts)
{
    LIA_ASSERT(a.shape() == b.shape(), "add shape mismatch");
    Tensor c = a.clone();
    for (std::int64_t i = 0; i < c.numel(); ++i)
        c.data()[i] += b.data()[i];
    maybeRound(c, opts);
    return c;
}

std::vector<std::int64_t>
argmaxRows(const Tensor &t)
{
    LIA_ASSERT(t.ndim() == 2, "argmax wants 2-D");
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(t.dim(0)));
    for (std::int64_t i = 0; i < t.dim(0); ++i) {
        const float *row = t.data() + i * t.dim(1);
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < t.dim(1); ++j) {
            if (row[j] > row[best])
                best = j;
        }
        out.push_back(best);
    }
    return out;
}

} // namespace runtime
} // namespace lia
