#include "runtime/executor.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/units.hh"
#include "model/sublayer.hh"

namespace lia {
namespace runtime {

using core::Device;
using core::Policy;
using model::Stage;
using model::Sublayer;

CooperativeExecutor::CooperativeExecutor(const hw::SystemConfig &system,
                                         TransformerWeights weights,
                                         ExecutorConfig config)
    : system_(system), weights_(std::move(weights)),
      config_(std::move(config)),
      kernelOpts_{config_.bf16Rounding},
      cpu_(system.cpu), gpu_(system.gpu), ledger_(system.hostLink),
      sampler_(config_.sampling)
{
    weights_.config.validate();
    LIA_ASSERT(config_.residentLayers >= 0 &&
               config_.residentLayers <= weights_.config.numLayers,
               "bad resident layer count");

    // Construction-time pool injection: every kernel this executor
    // runs — batch prefill/decode and the serving backend's per-call
    // decodeOne stream alike — shares one set of persistent workers.
    kernelOpts_.pool = config_.pool != nullptr
                           ? config_.pool.get()
                           : &base::ThreadPool::shared();
    if (config_.profileKernels) {
        profiler_ = std::make_unique<obs::KernelProfiler>();
        kernelOpts_.profiler = profiler_.get();
        kernelOpts_.pool->setObserver(profiler_.get());
    }
    // Quantized execution must agree with quantized pricing: the
    // ledger charges parameter bytes via the config's
    // weightBytesPerElement, so an int8 executor requires an
    // int8-priced config (model::quantized) and vice versa.
    if (config_.weightPrecision == model::WeightPrecision::Int8) {
        LIA_ASSERT(weights_.config.weightBytesPerElement == 1.0,
                   "int8 execution wants an int8-priced model config "
                   "(weightBytesPerElement 1.0, see model::quantized)");
    }
    // One-time tile packing of the projection weights and LM head. At
    // Bf16 this is layout only; at Int8 it also quantizes the
    // projections onto the per-tile int8 grid (numerics change by
    // design, but stay bit-identical across thread counts and
    // policies).
    weights_.pack(config_.weightPrecision);

    // The framework keeps every parameter host-side (§5); resident
    // layers additionally occupy GPU memory (Optimization-1). Stored
    // bytes follow the weight precision (identical to bf16Bytes for
    // unquantized configs).
    const bool cpu_ok = cpu_.tryAllocate(weights_.storedBytes());
    LIA_ASSERT(cpu_ok, "model does not fit host memory");
    double resident_bytes = 0;
    for (int l = 0; l < config_.residentLayers; ++l)
        resident_bytes += weights_.layers[l].storedBytes(
            weights_.config.weightBytesPerElement);
    const bool gpu_ok = gpu_.tryAllocate(resident_bytes);
    LIA_ASSERT(gpu_ok, "resident layers exceed GPU memory");
}

CooperativeExecutor::~CooperativeExecutor()
{
    // Detach the pool observer before the profiler dies; another
    // executor may have installed its own in the meantime, so only
    // clear the slot if it is still ours.
    if (profiler_ != nullptr &&
        kernelOpts_.pool->observer() == profiler_.get()) {
        kernelOpts_.pool->setObserver(nullptr);
    }
}

const KvCache &
CooperativeExecutor::cache() const
{
    LIA_ASSERT(cache_ != nullptr, "no active generation");
    return *cache_;
}

double
CooperativeExecutor::modeledSerialLatency() const
{
    return cpu_.busyTime() + gpu_.busyTime() + ledger_.totalTime();
}

void
CooperativeExecutor::registerStats(stats::Group &group) const
{
    group.formula("xfer.param_bytes",
                  "parameter bytes moved over the host link",
                  [this] { return ledger_.bytes(Traffic::Param); });
    group.formula("xfer.kv_bytes",
                  "KV-cache bytes moved over the host link",
                  [this] { return ledger_.bytes(Traffic::Kv); });
    group.formula("xfer.activation_bytes",
                  "activation bytes moved over the host link",
                  [this] { return ledger_.bytes(Traffic::Activation); });
    group.formula("xfer.count", "host-link transfers issued",
                  [this] {
                      return static_cast<double>(
                          ledger_.transferCount());
                  });
    group.formula("xfer.seconds", "modeled host-link busy seconds",
                  [this] { return ledger_.totalTime(); });
    group.formula("cpu.busy_seconds", "modeled CPU busy seconds",
                  [this] { return cpu_.busyTime(); });
    group.formula("gpu.busy_seconds", "modeled GPU busy seconds",
                  [this] { return gpu_.busyTime(); });
    group.formula("cpu.allocated_bytes", "host memory allocated",
                  [this] { return cpu_.allocatedBytes(); });
    group.formula("gpu.allocated_bytes", "GPU memory allocated",
                  [this] { return gpu_.allocatedBytes(); });
    group.formula("kv.context_tokens", "tokens held in the KV cache",
                  [this] {
                      return cache_ ? static_cast<double>(
                                          cache_->length())
                                    : 0.0;
                  });
}

void
CooperativeExecutor::resetStats()
{
    ledger_.reset();
    cpu_.resetTime();
    gpu_.resetTime();
}

Tensor
CooperativeExecutor::embed(const std::vector<std::int64_t> &flat_tokens,
                           std::int64_t batch, std::int64_t tokens,
                           std::int64_t position)
{
    const auto &cfg = weights_.config;
    Tensor hidden({batch * tokens, cfg.dModel});
    const std::int64_t d = cfg.dModel;
    const float *emb = weights_.embedding.data();
    const float *pos_emb = weights_.posEmbedding.data();
    float *out = hidden.data();
    // Row-partitioned gather: each (b, t) row is written by exactly
    // one chunk, so the result is thread-count invariant.
    kernelOpts_.pool->parallelFor(
        batch * tokens, 4, [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t t = r % tokens;
                const std::int64_t tok =
                    flat_tokens[static_cast<std::size_t>(r)];
                LIA_ASSERT(tok >= 0 && tok < cfg.vocabSize,
                           "token id out of range: ", tok);
                const std::int64_t pos = position + t;
                LIA_ASSERT(pos < cfg.maxSeqLen, "position overflow");
                const float *erow = emb + tok * d;
                const float *prow = pos_emb + pos * d;
                float *orow = out + r * d;
                for (std::int64_t c = 0; c < d; ++c)
                    orow[c] = erow[c] + prow[c];
            }
        });
    if (kernelOpts_.bf16Rounding)
        hidden.roundBf16();
    return hidden;
}

Tensor
CooperativeExecutor::attention(const Tensor &q, const Tensor &keys,
                               const Tensor &values, std::int64_t batch,
                               std::int64_t tokens)
{
    const auto &cfg = weights_.config;
    const std::int64_t dh = cfg.headDim;
    const std::int64_t nh = cfg.numHeads;
    const std::int64_t group = nh / cfg.kvHeads;
    const std::int64_t len = keys.dim(1);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor out({batch * tokens, cfg.dModel});
    // Head-partitioned: each (batch, head) pair is self-contained and
    // writes a disjoint column slice of the output, so any schedule
    // produces identical bits. Kernels invoked inside run inline on
    // the worker (nested parallelFor), keeping their serial order.
    kernelOpts_.pool->parallelFor(
        batch * nh, 1, [&](std::int64_t bh0, std::int64_t bh1) {
        for (std::int64_t bh = bh0; bh < bh1; ++bh) {
            const std::int64_t b = bh / nh;
            const std::int64_t h = bh % nh;
            const std::int64_t kvh = h / group;
            // Slice this head's Q / K / V.
            Tensor qh({tokens, dh});
            for (std::int64_t t = 0; t < tokens; ++t)
                for (std::int64_t c = 0; c < dh; ++c)
                    qh.at(t, c) = q.at(b * tokens + t, h * dh + c);
            Tensor kh({len, dh});
            Tensor vh({len, dh});
            for (std::int64_t i = 0; i < len; ++i) {
                for (std::int64_t c = 0; c < dh; ++c) {
                    kh.at(i, c) = keys.at(b, i, kvh * dh + c);
                    vh.at(i, c) = values.at(b, i, kvh * dh + c);
                }
            }
            // Sublayer 2: S = Q x K^T (scaled).
            Tensor scores = matmulTransposed(qh, kh, kernelOpts_);
            for (std::int64_t i = 0; i < scores.numel(); ++i)
                scores.data()[i] *= scale;
            causalSoftmaxRows(scores, len - tokens, kernelOpts_);
            // Sublayer 3: softmax(S) x V.
            Tensor ctx = matmul(scores, vh, Tensor(), kernelOpts_);
            for (std::int64_t t = 0; t < tokens; ++t)
                for (std::int64_t c = 0; c < dh; ++c)
                    out.at(b * tokens + t, h * dh + c) = ctx.at(t, c);
        }
    });
    return out;
}

void
CooperativeExecutor::chargeSublayer(int index, Stage stage,
                                    std::int64_t batch,
                                    std::int64_t context, bool resident,
                                    const Policy &policy)
{
    const auto sublayer = model::allSublayers()[index];
    const model::Workload workload{stage, batch, context};
    const auto costs =
        model::sublayerCosts(weights_.config, workload, sublayer);
    const Device dev = policy.device(index);
    const Device prev_dev = index == 0
                                ? policy.device(model::kNumSublayers - 1)
                                : policy.device(index - 1);

    if (dev != prev_dev)
        ledger_.record(Traffic::Activation, costs.dX);

    if (model::isParamSublayer(sublayer)) {
        if (dev == Device::Gpu && !resident)
            ledger_.record(Traffic::Param, costs.dY);
    } else if (stage == Stage::Prefill) {
        if (dev != policy.device(0))
            ledger_.record(Traffic::Kv, costs.dY);
    } else if (dev == Device::Gpu) {
        ledger_.record(Traffic::Kv, costs.dY);
    }

    const double residual_bytes =
        units::bytesPerElement * static_cast<double>(batch) *
        static_cast<double>(workload.tokens()) *
        static_cast<double>(weights_.config.dModel);
    if (sublayer == Sublayer::OutProjection &&
        dev != policy.device(0)) {
        ledger_.record(Traffic::Activation, residual_bytes);
    }
    if (sublayer == Sublayer::Fc2 &&
        dev != policy.device(static_cast<int>(Sublayer::OutProjection))) {
        ledger_.record(Traffic::Activation, residual_bytes);
    }

    if (sublayer == Sublayer::QkvMapping && dev == Device::Gpu)
        ledger_.record(Traffic::Kv, costs.dKv);

    const double rows = static_cast<double>(batch) *
                        static_cast<double>(workload.tokens());
    SimDevice &device = dev == Device::Cpu ? cpu_ : gpu_;
    device.accrueCompute(costs.flops, costs.dX + costs.dY + costs.dOut,
                         rows);
}

Tensor
CooperativeExecutor::forwardLayers(KvCache &cache, Tensor hidden,
                                   Stage stage, std::int64_t batch,
                                   std::int64_t tokens)
{
    const auto &cfg = weights_.config;
    const Policy &policy = stage == Stage::Prefill
                               ? config_.prefillPolicy
                               : config_.decodePolicy;
    // Context length the attention sublayers operate on, including the
    // tokens this step appends (decode — and a chunked prefill
    // extending existing history — read the grown cache).
    const std::int64_t context = cache.length() + tokens;

    // Per-tensor dispatch over the placement pack() decided: the int8
    // tile kernel where an int8 pack exists, the fp32 packed kernel
    // everywhere else (excluded tensors, unquantized runs).
    const auto project = [this](const Tensor &x, const PackedMatrix &fp,
                                const PackedInt8Matrix &q8,
                                const Tensor &bias) {
        return q8.empty() ? matmulPacked(x, fp, bias, kernelOpts_)
                          : matmulInt8(x, q8, bias, kernelOpts_);
    };

    for (std::int64_t l = 0; l < cfg.numLayers; ++l) {
        const auto &w = weights_.layers[static_cast<std::size_t>(l)];
        const bool resident = l < config_.residentLayers;

        // Sublayer 1: QKV mapping (pre-LN). Weight matmuls run the
        // packed-tile kernel against the forms cached at pack() time.
        Tensor normed =
            layerNorm(hidden, w.lnAttnGain, w.lnAttnBias, kernelOpts_);
        Tensor q = project(normed, w.packedWq, w.int8Wq, w.bq);
        Tensor k = project(normed, w.packedWk, w.int8Wk, w.bk);
        Tensor v = project(normed, w.packedWv, w.int8Wv, w.bv);
        cache.append(l, k.reshaped({batch, tokens, cfg.kvDim()}),
                     v.reshaped({batch, tokens, cfg.kvDim()}));
        chargeSublayer(0, stage, batch, context, resident, policy);

        // Sublayers 2+3: attention scoring against the cache.
        Tensor keys = cache.keys(l);
        Tensor values = cache.values(l);
        Tensor attn = attention(q, keys, values, batch, tokens);
        chargeSublayer(1, stage, batch, context, resident, policy);
        chargeSublayer(2, stage, batch, context, resident, policy);

        // Sublayer 4: output projection + residual.
        Tensor proj = project(attn, w.packedWo, w.int8Wo, w.bo);
        hidden = add(hidden, proj, kernelOpts_);
        chargeSublayer(3, stage, batch, context, resident, policy);

        // Sublayers 5+6: FFN + residual. OPT uses ReLU; Llama-style
        // models gate the up projection with SiLU (SwiGLU).
        Tensor ffn_in =
            layerNorm(hidden, w.lnFfnGain, w.lnFfnBias, kernelOpts_);
        Tensor h1 = project(ffn_in, w.packedW1, w.int8W1, w.b1);
        if (cfg.gatedFfn) {
            Tensor gate = project(ffn_in, w.packedWg, w.int8Wg, w.bg);
            siluInPlace(gate, kernelOpts_);
            mulInPlace(h1, gate, kernelOpts_);
        } else {
            reluInPlace(h1, kernelOpts_);
        }
        chargeSublayer(4, stage, batch, context, resident, policy);
        Tensor h2 = project(h1, w.packedW2, w.int8W2, w.b2);
        hidden = add(hidden, h2, kernelOpts_);
        chargeSublayer(5, stage, batch, context, resident, policy);
    }
    return hidden;
}

std::vector<std::int64_t>
CooperativeExecutor::sample(const Tensor &hidden, std::int64_t batch,
                            std::int64_t tokens)
{
    const auto &cfg = weights_.config;
    // Only the final position of each sequence feeds the LM head.
    Tensor last({batch, cfg.dModel});
    for (std::int64_t b = 0; b < batch; ++b)
        for (std::int64_t c = 0; c < cfg.dModel; ++c)
            last.at(b, c) = hidden.at(b * tokens + (tokens - 1), c);
    Tensor normed =
        layerNorm(last, weights_.lnFinalGain, weights_.lnFinalBias,
                  kernelOpts_);
    // Tied LM head: the packed transpose of the embedding. The vocab
    // axis is the column-tile partition, so decode's m = 1 projection
    // — the widest matmul per step — spreads across the pool.
    Tensor logits = matmulPacked(normed, weights_.packedLmHead,
                                 Tensor(), kernelOpts_);
    return sampler_.sampleRows(logits);
}

std::vector<std::int64_t>
CooperativeExecutor::prefill(
    const std::vector<std::vector<std::int64_t>> &prompts)
{
    LIA_ASSERT(!prompts.empty(), "empty batch");
    const auto batch = static_cast<std::int64_t>(prompts.size());
    const auto tokens = static_cast<std::int64_t>(prompts[0].size());
    LIA_ASSERT(tokens > 0, "empty prompt");
    for (const auto &p : prompts)
        LIA_ASSERT(static_cast<std::int64_t>(p.size()) == tokens,
                   "prompts must share one length");

    // (Re)create the cache; it is host-resident (§5's assumption).
    if (cacheAllocation_ > 0)
        cpu_.release(cacheAllocation_);
    cache_ = std::make_unique<KvCache>(weights_.config, batch,
                                       weights_.config.maxSeqLen);
    cacheAllocation_ =
        units::bytesPerElement * 2.0 * static_cast<double>(batch) *
        static_cast<double>(weights_.config.maxSeqLen) *
        static_cast<double>(weights_.config.kvDim()) *
        static_cast<double>(weights_.config.numLayers);
    const bool ok = cpu_.tryAllocate(cacheAllocation_);
    LIA_ASSERT(ok, "KV cache does not fit host memory");

    std::vector<std::int64_t> flat;
    flat.reserve(static_cast<std::size_t>(batch * tokens));
    for (const auto &p : prompts)
        flat.insert(flat.end(), p.begin(), p.end());

    Tensor hidden = embed(flat, batch, tokens, 0);
    hidden = forwardLayers(*cache_, std::move(hidden), Stage::Prefill,
                           batch, tokens);
    return sample(hidden, batch, tokens);
}

std::vector<std::int64_t>
CooperativeExecutor::decodeStep(const std::vector<std::int64_t> &tokens)
{
    LIA_ASSERT(cache_ != nullptr, "prefill must run first");
    const auto batch = static_cast<std::int64_t>(tokens.size());
    LIA_ASSERT(batch == cache_->batch(), "batch mismatch");

    Tensor hidden = embed(tokens, batch, 1, cache_->length());
    hidden = forwardLayers(*cache_, std::move(hidden), Stage::Decode,
                           batch, 1);
    return sample(hidden, batch, 1);
}

std::int64_t
CooperativeExecutor::prefillChunk(
    KvCache &cache, const std::vector<std::int64_t> &tokens)
{
    LIA_ASSERT(cache.batch() == 1,
               "per-sequence prefill wants a batch-1 cache");
    LIA_ASSERT(!tokens.empty(), "empty prefill chunk");
    const auto count = static_cast<std::int64_t>(tokens.size());
    Tensor hidden = embed(tokens, 1, count, cache.length());
    hidden = forwardLayers(cache, std::move(hidden), Stage::Prefill,
                           1, count);
    return sample(hidden, 1, count).front();
}

std::int64_t
CooperativeExecutor::decodeOne(KvCache &cache, std::int64_t token)
{
    LIA_ASSERT(cache.batch() == 1,
               "per-sequence decode wants a batch-1 cache");
    LIA_ASSERT(cache.length() > 0, "decode against an empty cache");
    Tensor hidden = embed({token}, 1, 1, cache.length());
    hidden = forwardLayers(cache, std::move(hidden), Stage::Decode,
                           1, 1);
    return sample(hidden, 1, 1).front();
}

std::vector<std::int64_t>
CooperativeExecutor::sampleAll(const Tensor &hidden,
                               std::int64_t tokens)
{
    LIA_ASSERT(hidden.dim(0) == tokens, "hidden rows != tokens");
    // Every row feeds the LM head. layerNorm, the packed projection,
    // and greedy row sampling are all row-independent and row-count
    // invariant (DESIGN.md §7), so row i here is bit-identical to the
    // single-row sample() of a sequential decode at that position.
    Tensor normed =
        layerNorm(hidden, weights_.lnFinalGain, weights_.lnFinalBias,
                  kernelOpts_);
    Tensor logits = matmulPacked(normed, weights_.packedLmHead,
                                 Tensor(), kernelOpts_);
    return sampler_.sampleRows(logits);
}

SpeculativeVerify
CooperativeExecutor::verifyBatch(KvCache &cache,
                                 std::int64_t last_token,
                                 const std::vector<std::int64_t> &drafts)
{
    LIA_ASSERT(cache.batch() == 1,
               "per-sequence verify wants a batch-1 cache");
    LIA_ASSERT(cache.length() > 0, "verify against an empty cache");
    LIA_ASSERT(!drafts.empty(), "verify needs at least one draft");
    const auto k = static_cast<std::int64_t>(drafts.size());
    const std::int64_t base = cache.length();

    // One decode pass over k+1 positions: the last emitted token plus
    // the k drafts shifted right by one. Position i's sample depends
    // only on inputs up to i (causal masking), which equal the true
    // greedy stream while the draft prefix holds.
    std::vector<std::int64_t> feed;
    feed.reserve(static_cast<std::size_t>(k + 1));
    feed.push_back(last_token);
    feed.insert(feed.end(), drafts.begin(), drafts.end());

    Tensor hidden = embed(feed, 1, k + 1, base);
    hidden = forwardLayers(cache, std::move(hidden), Stage::Decode,
                           1, k + 1);
    const std::vector<std::int64_t> samples = sampleAll(hidden, k + 1);

    SpeculativeVerify out;
    while (out.accepted < k &&
           samples[static_cast<std::size_t>(out.accepted)] ==
               drafts[static_cast<std::size_t>(out.accepted)]) {
        ++out.accepted;
    }
    out.emitted.assign(samples.begin(),
                       samples.begin() + out.accepted + 1);

    // Roll the rejected suffix out of the cache: keep the accepted
    // drafts plus the slot the correction/bonus token just filled.
    cache.truncate(base + out.accepted + 1);
    return out;
}

std::vector<std::vector<std::int64_t>>
CooperativeExecutor::generate(
    const std::vector<std::vector<std::int64_t>> &prompts,
    std::int64_t l_out)
{
    LIA_ASSERT(l_out >= 1, "need at least one output token");
    std::vector<std::vector<std::int64_t>> out(prompts.size());

    std::vector<std::int64_t> next = prefill(prompts);
    for (std::size_t b = 0; b < prompts.size(); ++b)
        out[b].push_back(next[b]);
    for (std::int64_t t = 1; t < l_out; ++t) {
        next = decodeStep(next);
        for (std::size_t b = 0; b < prompts.size(); ++b)
            out[b].push_back(next[b]);
    }
    return out;
}

} // namespace runtime
} // namespace lia
