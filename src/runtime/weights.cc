#include "runtime/weights.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lia {
namespace runtime {

double
LayerWeights::bf16Bytes() const
{
    double total = 0;
    for (const Tensor *t :
         {&wq, &wk, &wv, &wo, &bq, &bk, &bv, &bo, &w1, &b1, &w2, &b2,
          &wg, &bg, &lnAttnGain, &lnAttnBias, &lnFfnGain,
          &lnFfnBias}) {
        total += t->bf16Bytes();
    }
    return total;
}

double
LayerWeights::sublayerBf16Bytes(int sublayer) const
{
    switch (sublayer) {
      case 0:  // QKV mapping
        return wq.bf16Bytes() + wk.bf16Bytes() + wv.bf16Bytes() +
               bq.bf16Bytes() + bk.bf16Bytes() + bv.bf16Bytes();
      case 1:  // Q x K^T: operand is the KV cache, not parameters
      case 2:  // S x V
        return 0.0;
      case 3:  // output projection
        return wo.bf16Bytes() + bo.bf16Bytes();
      case 4:  // FC1 (gate included for gated FFNs)
        return w1.bf16Bytes() + b1.bf16Bytes() + wg.bf16Bytes() +
               bg.bf16Bytes();
      case 5:  // FC2
        return w2.bf16Bytes() + b2.bf16Bytes();
      default:
        LIA_PANIC("bad sublayer index ", sublayer);
    }
}

TransformerWeights
TransformerWeights::random(const model::ModelConfig &config, Rng &rng)
{
    config.validate();
    const std::int64_t d = config.dModel;
    const std::int64_t kv = config.kvDim();
    const std::int64_t f = config.ffnDim;
    // Variance-preserving initialisation keeps activations O(1).
    const double sd = 1.0 / std::sqrt(static_cast<double>(d));
    const double sf = 1.0 / std::sqrt(static_cast<double>(f));

    TransformerWeights w;
    w.config = config;
    w.embedding =
        Tensor::randomNormal({config.vocabSize, d}, rng, 0.05);
    w.posEmbedding =
        Tensor::randomNormal({config.maxSeqLen, d}, rng, 0.02);
    w.lnFinalGain = Tensor({d});
    w.lnFinalBias = Tensor({d});
    for (std::int64_t i = 0; i < d; ++i)
        w.lnFinalGain.at(i) = 1.0f;

    w.layers.reserve(static_cast<std::size_t>(config.numLayers));
    for (std::int64_t l = 0; l < config.numLayers; ++l) {
        LayerWeights lw;
        lw.wq = Tensor::randomNormal({d, d}, rng, sd);
        lw.wk = Tensor::randomNormal({d, kv}, rng, sd);
        lw.wv = Tensor::randomNormal({d, kv}, rng, sd);
        lw.wo = Tensor::randomNormal({d, d}, rng, sd);
        lw.bq = Tensor({d});
        lw.bk = Tensor({kv});
        lw.bv = Tensor({kv});
        lw.bo = Tensor({d});
        lw.w1 = Tensor::randomNormal({d, f}, rng, sd);
        lw.b1 = Tensor({f});
        lw.w2 = Tensor::randomNormal({f, d}, rng, sf);
        lw.b2 = Tensor({d});
        if (config.gatedFfn) {
            lw.wg = Tensor::randomNormal({d, f}, rng, sd);
            lw.bg = Tensor({f});
        }
        lw.lnAttnGain = Tensor({d});
        lw.lnAttnBias = Tensor({d});
        lw.lnFfnGain = Tensor({d});
        lw.lnFfnBias = Tensor({d});
        for (std::int64_t i = 0; i < d; ++i) {
            lw.lnAttnGain.at(i) = 1.0f;
            lw.lnFfnGain.at(i) = 1.0f;
        }
        w.layers.push_back(std::move(lw));
    }
    return w;
}

void
TransformerWeights::pack(model::WeightPrecision precision)
{
    packedPrecision = precision;
    const bool int8 = precision == model::WeightPrecision::Int8;
    // Per-tensor placement (the ik_llama.cpp packed-buffer strategy):
    // a projection takes the int8 tile pack when the microkernel can
    // serve its reduction extent, the fp32 pack otherwise, and only
    // the chosen form is materialised.
    const auto place = [int8](const Tensor &t, PackedMatrix &fp,
                              PackedInt8Matrix &q8) {
        if (t.empty()) {
            fp = PackedMatrix{};
            q8 = PackedInt8Matrix{};
            return;
        }
        if (int8 && int8PackViable(t.dim(0))) {
            q8 = packColumnsInt8(t);
            fp = PackedMatrix{};
        } else {
            fp = packColumns(t);
            q8 = PackedInt8Matrix{};
        }
    };
    for (LayerWeights &layer : layers) {
        place(layer.wq, layer.packedWq, layer.int8Wq);
        place(layer.wk, layer.packedWk, layer.int8Wk);
        place(layer.wv, layer.packedWv, layer.int8Wv);
        place(layer.wo, layer.packedWo, layer.int8Wo);
        place(layer.w1, layer.packedW1, layer.int8W1);
        place(layer.w2, layer.packedW2, layer.int8W2);
        place(layer.wg, layer.packedWg, layer.int8Wg);
    }
    // Exclusion: the LM head is the tied embedding applied transposed;
    // the embedding also feeds the fp32 token gather, so the head
    // stays on the fp32 packed path at every precision.
    packedLmHead = packTransposed(embedding);
}

double
LayerWeights::matrixElements() const
{
    double total = 0;
    for (const Tensor *t :
         {&wq, &wk, &wv, &wo, &w1, &w2, &wg}) {
        total += static_cast<double>(t->numel());
    }
    return total;
}

double
LayerWeights::storedBytes(double weight_bytes_per_element) const
{
    return bf16Bytes() +
           (weight_bytes_per_element - 2.0) * matrixElements();
}

double
LayerWeights::int8PackedBytes() const
{
    double total = 0;
    for (const PackedInt8Matrix *p :
         {&int8Wq, &int8Wk, &int8Wv, &int8Wo, &int8W1, &int8W2,
          &int8Wg}) {
        total += p->int8Bytes();
    }
    return total;
}

double
TransformerWeights::storedBytes() const
{
    double total = bf16Bytes();
    const double delta = config.weightBytesPerElement - 2.0;
    if (delta != 0.0)
        for (const auto &layer : layers)
            total += delta * layer.matrixElements();
    return total;
}

double
TransformerWeights::int8PackedBytes() const
{
    double total = 0;
    for (const auto &layer : layers)
        total += layer.int8PackedBytes();
    return total;
}

namespace {

/** Symmetric per-tensor fake-quantization onto a 2^bits grid. */
void
fakeQuantize(Tensor &t, int bits)
{
    if (t.empty())
        return;
    float absmax = 0;
    for (std::int64_t i = 0; i < t.numel(); ++i)
        absmax = std::max(absmax, std::fabs(t.data()[i]));
    if (absmax == 0)
        return;
    const float levels =
        static_cast<float>((1 << (bits - 1)) - 1);  // e.g. 127
    const float scale = absmax / levels;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const float q = std::round(t.data()[i] / scale);
        t.data()[i] = std::clamp(q, -levels, levels) * scale;
    }
}

} // namespace

void
quantizeWeights(TransformerWeights &weights,
                model::WeightPrecision precision)
{
    if (precision == model::WeightPrecision::Bf16)
        return;
    const int bits =
        precision == model::WeightPrecision::Int8 ? 8 : 4;
    for (auto &layer : weights.layers) {
        for (Tensor *t : {&layer.wq, &layer.wk, &layer.wv, &layer.wo,
                          &layer.w1, &layer.w2, &layer.wg}) {
            fakeQuantize(*t, bits);
        }
    }
    weights.config = model::quantized(weights.config, precision);
    // Any packed forms now describe pre-quantization values; rebuild
    // at whatever precision the packs were last built.
    if (!weights.packedLmHead.empty())
        weights.pack(weights.packedPrecision);
}

double
TransformerWeights::bf16Bytes() const
{
    double total = embedding.bf16Bytes() + posEmbedding.bf16Bytes() +
                   lnFinalGain.bf16Bytes() + lnFinalBias.bf16Bytes();
    for (const auto &layer : layers)
        total += layer.bf16Bytes();
    return total;
}

} // namespace runtime
} // namespace lia
