/**
 * @file
 * Simulated execution devices and the transfer ledger.
 *
 * The functional back-end runs every kernel on the host, but models the
 * paper's two-device system: each SimDevice tracks its own memory
 * allocation against the real capacity limits, and every CPU<->GPU data
 * movement is recorded in a TransferLedger with the paper's three
 * traffic categories (parameters, KV cache, activations — Fig. 3).
 * Devices also accrue *modeled* busy time from the calibrated hw
 * descriptors, making the executor an execution-driven timing model.
 */

#ifndef LIA_RUNTIME_DEVICE_HH
#define LIA_RUNTIME_DEVICE_HH

#include <string>

#include "hw/device.hh"

namespace lia {
namespace runtime {

/** Traffic classes tracked on the CPU-GPU link (Fig. 3). */
enum class Traffic { Param = 0, Kv = 1, Activation = 2 };

inline constexpr int kTrafficClasses = 3;

const char *toString(Traffic traffic);

/** Byte and time accounting for the CPU-GPU link. */
class TransferLedger
{
  public:
    explicit TransferLedger(hw::Link link);

    /** Record a transfer of @p bytes of @p traffic, accrue its time. */
    void record(Traffic traffic, double bytes);

    double bytes(Traffic traffic) const;
    double totalBytes() const;
    double totalTime() const { return time_; }
    std::int64_t transferCount() const { return transfers_; }

    void reset();

  private:
    hw::Link link_;
    double bytes_[kTrafficClasses] = {0, 0, 0};
    double time_ = 0;
    std::int64_t transfers_ = 0;
};

/** One execution device with capacity tracking and modeled time. */
class SimDevice
{
  public:
    /** Wrap a calibrated hardware descriptor. */
    explicit SimDevice(hw::ComputeDevice descriptor);

    const std::string &name() const { return descriptor_.name; }
    hw::ComputeKind kind() const { return descriptor_.kind; }
    const hw::ComputeDevice &descriptor() const { return descriptor_; }

    /** Reserve @p bytes; false when capacity would be exceeded. */
    bool tryAllocate(double bytes);

    /** Release @p bytes. */
    void release(double bytes);

    double allocatedBytes() const { return allocated_; }
    double capacityBytes() const { return descriptor_.memoryCapacity; }

    /**
     * Accrue modeled time for a matmul-like kernel.
     *
     * @param flops  floating point operations executed
     * @param bytes  operand/result bytes at BF16
     * @param rows   problem-size metric for the efficiency curve
     */
    void accrueCompute(double flops, double bytes, double rows);

    /** Modeled busy seconds so far. */
    double busyTime() const { return busyTime_; }

    void resetTime() { busyTime_ = 0; }

  private:
    hw::ComputeDevice descriptor_;
    double allocated_ = 0;
    double busyTime_ = 0;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_DEVICE_HH
