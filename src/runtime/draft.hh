/**
 * @file
 * Speculative draft proposer (DESIGN.md §11).
 *
 * A DraftModel wraps a second, scaled-down CooperativeExecutor — the
 * AMX-modeled CPU companion of the served target model
 * (model::draftModelConfig) — and proposes k greedy tokens per
 * speculation step against a caller-owned draft KvCache. The draft
 * cache trails the target's emitted stream: propose() first feeds the
 * stream suffix the cache has not seen (one token after an accepted
 * verify, the whole prompt on the first step or after a preemption
 * discarded the cache), then rolls k tokens forward. The caller
 * truncates the cache after verification so rejected drafts never
 * contaminate later proposals.
 *
 * The draft model shares the target's vocabulary and context window
 * by construction, so its proposals feed verifyBatch directly.
 */

#ifndef LIA_RUNTIME_DRAFT_HH
#define LIA_RUNTIME_DRAFT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/system.hh"
#include "runtime/executor.hh"
#include "runtime/kv_cache.hh"
#include "runtime/weights.hh"

namespace lia {
namespace runtime {

/** CPU-side draft proposer for speculative decoding. */
class DraftModel
{
  public:
    /**
     * @param system  hardware the draft work is charged to (the draft
     *                runs CPU-side; the executor's ledger records it)
     * @param weights draft-geometry weights (model::draftModelConfig
     *                of the served target)
     * @param config  executor configuration — inject the same pool as
     *                the target executor so draft kernels reuse the
     *                persistent workers
     */
    DraftModel(const hw::SystemConfig &system,
               TransformerWeights weights, ExecutorConfig config);

    /** The draft model's geometry (for sizing draft caches). */
    const model::ModelConfig &config() const { return config_; }

    /** A draft-geometry cache for one sequence of @p max_len. */
    std::unique_ptr<KvCache> makeCache(std::int64_t max_len) const;

    /**
     * Propose @p k greedy draft tokens continuing @p stream (the
     * target's full token stream so far: prompt plus emitted outputs).
     * @p cache must hold the draft KV of a strict prefix of @p stream;
     * the catch-up suffix stream[cache.length()..) is fed first, then
     * the proposal rolls forward. On return the cache holds
     * stream.size() + k - 1 tokens: the full stream (minus the final
     * unfed position) plus the first k-1 drafts.
     *
     * After the target verifies and accepts `a` drafts, roll the
     * cache back with truncateAfterVerify() before the next propose.
     */
    std::vector<std::int64_t>
    propose(KvCache &cache, const std::vector<std::int64_t> &stream,
            std::int64_t k);

    /**
     * Roll @p cache back to the last position consistent with the
     * target's accepted stream: @p stream_len tokens were in the
     * stream at propose() time, the verify pass accepted @p accepted
     * of @p k drafts. Keeps the accepted drafts' KV (they are now
     * real stream tokens) and discards the rejected suffix.
     */
    static void truncateAfterVerify(KvCache &cache,
                                    std::int64_t stream_len,
                                    std::int64_t accepted,
                                    std::int64_t k);

    const CooperativeExecutor &executor() const { return executor_; }

  private:
    model::ModelConfig config_;
    CooperativeExecutor executor_;
};

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_DRAFT_HH
