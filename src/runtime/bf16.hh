/**
 * @file
 * BF16 emulation helpers.
 *
 * AMX and recent tensor cores compute in BF16; the runtime stores FP32
 * but can round values through BF16 after each kernel to reproduce the
 * numeric behaviour (round-to-nearest-even on the top 16 bits).
 */

#ifndef LIA_RUNTIME_BF16_HH
#define LIA_RUNTIME_BF16_HH

#include <cstdint>
#include <cstring>

namespace lia {
namespace runtime {

/** Round an FP32 value to the nearest BF16-representable value. */
inline float
roundToBf16(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    // Round to nearest even on the truncated 16 mantissa bits.
    const std::uint32_t lsb = (bits >> 16) & 1u;
    bits += 0x7FFFu + lsb;
    bits &= 0xFFFF0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

/** Pack an FP32 value into its BF16 bit pattern. */
inline std::uint16_t
packBf16(float value)
{
    const float rounded = roundToBf16(value);
    std::uint32_t bits;
    std::memcpy(&bits, &rounded, sizeof(bits));
    return static_cast<std::uint16_t>(bits >> 16);
}

/** Expand a BF16 bit pattern back to FP32. */
inline float
unpackBf16(std::uint16_t half)
{
    const std::uint32_t bits = static_cast<std::uint32_t>(half) << 16;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_BF16_HH
