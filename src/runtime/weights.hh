/**
 * @file
 * Transformer weight containers.
 *
 * The paper's artifact evaluates with synthetic ("dummy") weights since
 * performance is independent of weight values; TransformerWeights::
 * random produces deterministic synthetic parameters from a seed, with
 * variance scaling that keeps activations bounded so tiny models decode
 * sensibly.
 */

#ifndef LIA_RUNTIME_WEIGHTS_HH
#define LIA_RUNTIME_WEIGHTS_HH

#include <vector>

#include "base/rng.hh"
#include "model/config.hh"
#include "runtime/kernels.hh"
#include "runtime/tensor.hh"

namespace lia {
namespace runtime {

/** Parameters of one decoder layer (pre-LN OPT style). */
struct LayerWeights
{
    Tensor wq, wk, wv, wo;      //!< (d,d) (d,kv) (d,kv) (d,d)
    Tensor bq, bk, bv, bo;      //!< biases
    Tensor w1, b1, w2, b2;      //!< FFN up/down
    Tensor wg, bg;              //!< gate projection (gated FFNs only)
    Tensor lnAttnGain, lnAttnBias;  //!< pre-attention LayerNorm
    Tensor lnFfnGain, lnFfnBias;    //!< pre-FFN LayerNorm

    /**
     * One-time tile-packed forms of the projection matrices (the
     * AMX-style packed-buffer strategy): built by
     * TransformerWeights::pack(), consumed by the executor's
     * matmulPacked calls. A layout cache only — packing changes no
     * numerics and the packs never count toward model bytes.
     *
     * Placement is per tensor (the ik_llama.cpp exclusion lesson):
     * under Int8 packing each projection gets *either* an int8 tile
     * pack (when int8PackViable accepts its reduction extent) *or*
     * the fp32 pack — never both — and the executor dispatches on
     * whichever is populated.
     */
    PackedMatrix packedWq, packedWk, packedWv, packedWo;
    PackedMatrix packedW1, packedWg, packedW2;

    /** Int8 VNNI-style packs (empty unless pack() ran at Int8). */
    PackedInt8Matrix int8Wq, int8Wk, int8Wv, int8Wo;
    PackedInt8Matrix int8W1, int8Wg, int8W2;

    /** BF16 bytes of all tensors in this layer. */
    double bf16Bytes() const;

    /** BF16 bytes of the weights used by one sublayer (0-5). */
    double sublayerBf16Bytes(int sublayer) const;

    /** Elements across the seven projection matrices (the tensors
     *  weight-only quantization compresses). */
    double matrixElements() const;

    /**
     * Stored bytes at @p weight_bytes_per_element for the projection
     * matrices plus BF16 for everything else (biases, norms) — the
     * runtime's counterpart of the analytic per-element pricing.
     * Exactly bf16Bytes() at 2.0.
     */
    double storedBytes(double weight_bytes_per_element) const;

    /** Real bytes of the int8 packed buffers (codes + tile scales). */
    double int8PackedBytes() const;
};

/** Full model parameters. */
struct TransformerWeights
{
    model::ModelConfig config;
    Tensor embedding;      //!< (vocab, d); LM head is tied
    Tensor posEmbedding;   //!< (maxSeq, d)
    Tensor lnFinalGain, lnFinalBias;
    std::vector<LayerWeights> layers;

    /** Tied LM head (embedding^T), tile-packed; see pack(). */
    PackedMatrix packedLmHead;

    /** Precision the packs were last built at (see pack()). */
    model::WeightPrecision packedPrecision =
        model::WeightPrecision::Bf16;

    /** Deterministic synthetic weights. */
    static TransformerWeights random(const model::ModelConfig &config,
                                     Rng &rng);

    /**
     * (Re)build the packed forms of every projection matrix and the
     * tied LM head. Idempotent; call after any weight mutation (the
     * executor packs at construction). The gate pack stays empty for
     * ungated configs.
     *
     * At Int8, each projection matrix is quantized and repacked into
     * the VNNI-style int8 tile format instead of the fp32 pack —
     * per-tensor, with explicit exclusions (DESIGN.md §12): a tensor
     * whose reduction extent the int8 microkernel cannot serve keeps
     * its fp32 pack, and the tied LM head always stays fp32 (it is
     * the embedding applied transposed — quantizing the shared tensor
     * would corrupt the gather — exactly the snippet's "exclude ops
     * the packed buffer can't serve" lesson). Int4 has no integer
     * kernel, so it packs like Bf16 and executes fp32.
     */
    void pack(model::WeightPrecision precision =
                  model::WeightPrecision::Bf16);

    /** BF16 bytes of all parameters. */
    double bf16Bytes() const;

    /**
     * Stored bytes at the config's weightBytesPerElement: projection
     * matrices at the quantized width, everything else (embeddings,
     * biases, norms) BF16 — what the executor reserves host-side.
     * Exactly bf16Bytes() for unquantized configs.
     */
    double storedBytes() const;

    /** Real bytes of all int8 packed buffers (codes + tile scales). */
    double int8PackedBytes() const;
};

/**
 * Apply simulated weight-only quantization in place: every weight
 * matrix is rounded onto a symmetric per-tensor INT8/INT4 grid (and
 * dequantized back to FP32 storage), and the config's
 * weightBytesPerElement is updated so all transfer accounting sees
 * the compressed size. Embeddings, biases, and norms stay BF16, as in
 * standard weight-only schemes.
 */
void quantizeWeights(TransformerWeights &weights,
                     model::WeightPrecision precision);

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_WEIGHTS_HH
