/**
 * @file
 * Transformer weight containers.
 *
 * The paper's artifact evaluates with synthetic ("dummy") weights since
 * performance is independent of weight values; TransformerWeights::
 * random produces deterministic synthetic parameters from a seed, with
 * variance scaling that keeps activations bounded so tiny models decode
 * sensibly.
 */

#ifndef LIA_RUNTIME_WEIGHTS_HH
#define LIA_RUNTIME_WEIGHTS_HH

#include <vector>

#include "base/rng.hh"
#include "model/config.hh"
#include "runtime/kernels.hh"
#include "runtime/tensor.hh"

namespace lia {
namespace runtime {

/** Parameters of one decoder layer (pre-LN OPT style). */
struct LayerWeights
{
    Tensor wq, wk, wv, wo;      //!< (d,d) (d,kv) (d,kv) (d,d)
    Tensor bq, bk, bv, bo;      //!< biases
    Tensor w1, b1, w2, b2;      //!< FFN up/down
    Tensor wg, bg;              //!< gate projection (gated FFNs only)
    Tensor lnAttnGain, lnAttnBias;  //!< pre-attention LayerNorm
    Tensor lnFfnGain, lnFfnBias;    //!< pre-FFN LayerNorm

    /**
     * One-time tile-packed forms of the projection matrices (the
     * AMX-style packed-buffer strategy): built by
     * TransformerWeights::pack(), consumed by the executor's
     * matmulPacked calls. A layout cache only — packing changes no
     * numerics and the packs never count toward model bytes.
     */
    PackedMatrix packedWq, packedWk, packedWv, packedWo;
    PackedMatrix packedW1, packedWg, packedW2;

    /** BF16 bytes of all tensors in this layer. */
    double bf16Bytes() const;

    /** BF16 bytes of the weights used by one sublayer (0-5). */
    double sublayerBf16Bytes(int sublayer) const;
};

/** Full model parameters. */
struct TransformerWeights
{
    model::ModelConfig config;
    Tensor embedding;      //!< (vocab, d); LM head is tied
    Tensor posEmbedding;   //!< (maxSeq, d)
    Tensor lnFinalGain, lnFinalBias;
    std::vector<LayerWeights> layers;

    /** Tied LM head (embedding^T), tile-packed; see pack(). */
    PackedMatrix packedLmHead;

    /** Deterministic synthetic weights. */
    static TransformerWeights random(const model::ModelConfig &config,
                                     Rng &rng);

    /**
     * (Re)build the packed forms of every projection matrix and the
     * tied LM head. Idempotent; call after any weight mutation (the
     * executor packs at construction). The gate pack stays empty for
     * ungated configs.
     */
    void pack();

    /** BF16 bytes of all parameters. */
    double bf16Bytes() const;
};

/**
 * Apply simulated weight-only quantization in place: every weight
 * matrix is rounded onto a symmetric per-tensor INT8/INT4 grid (and
 * dequantized back to FP32 storage), and the config's
 * weightBytesPerElement is updated so all transfer accounting sees
 * the compressed size. Embeddings, biases, and norms stay BF16, as in
 * standard weight-only schemes.
 */
void quantizeWeights(TransformerWeights &weights,
                     model::WeightPrecision precision);

} // namespace runtime
} // namespace lia

#endif // LIA_RUNTIME_WEIGHTS_HH
