#include "runtime/device.hh"

#include "base/logging.hh"

namespace lia {
namespace runtime {

const char *
toString(Traffic traffic)
{
    switch (traffic) {
      case Traffic::Param:
        return "params";
      case Traffic::Kv:
        return "kv-cache";
      case Traffic::Activation:
        return "activation";
    }
    LIA_PANIC("unknown traffic class");
}

TransferLedger::TransferLedger(hw::Link link) : link_(std::move(link))
{
}

void
TransferLedger::record(Traffic traffic, double bytes)
{
    LIA_ASSERT(bytes >= 0, "negative transfer");
    if (bytes == 0)
        return;
    bytes_[static_cast<int>(traffic)] += bytes;
    time_ += link_.transferTime(bytes);
    ++transfers_;
}

double
TransferLedger::bytes(Traffic traffic) const
{
    return bytes_[static_cast<int>(traffic)];
}

double
TransferLedger::totalBytes() const
{
    double total = 0;
    for (double b : bytes_)
        total += b;
    return total;
}

void
TransferLedger::reset()
{
    for (double &b : bytes_)
        b = 0;
    time_ = 0;
    transfers_ = 0;
}

SimDevice::SimDevice(hw::ComputeDevice descriptor)
    : descriptor_(std::move(descriptor))
{
}

bool
SimDevice::tryAllocate(double bytes)
{
    LIA_ASSERT(bytes >= 0, "negative allocation");
    if (allocated_ + bytes > descriptor_.memoryCapacity)
        return false;
    allocated_ += bytes;
    return true;
}

void
SimDevice::release(double bytes)
{
    LIA_ASSERT(bytes >= 0 && bytes <= allocated_ + 1e-6,
               name(), ": releasing more than allocated");
    allocated_ -= bytes;
}

void
SimDevice::accrueCompute(double flops, double bytes, double rows)
{
    busyTime_ += descriptor_.matmulTime(flops, bytes, rows);
}

} // namespace runtime
} // namespace lia
