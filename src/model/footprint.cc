#include "model/footprint.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace model {

double
kvCacheBytes(const ModelConfig &config, std::int64_t batch,
             std::int64_t context_len)
{
    LIA_ASSERT(batch > 0 && context_len >= 0, "bad KV cache request");
    return static_cast<double>(batch) *
           static_cast<double>(context_len) * config.kvBytesPerToken();
}

double
activationBytes(const ModelConfig &config, std::int64_t batch,
                std::int64_t tokens)
{
    const double widest =
        static_cast<double>(std::max(config.dModel, config.ffnDim));
    // Two live buffers: the sublayer input and its output.
    return 2.0 * units::bytesPerElement * static_cast<double>(batch) *
           static_cast<double>(tokens) * widest;
}

MemoryFootprint
inferenceFootprint(const ModelConfig &config, std::int64_t batch,
                   std::int64_t l_in, std::int64_t l_out)
{
    LIA_ASSERT(l_in > 0 && l_out > 0, "bad sequence lengths");
    MemoryFootprint f;
    f.paramBytes = config.totalParamBytes();
    f.kvCacheBytes = kvCacheBytes(config, batch, l_in + l_out);
    // The prefill stage holds the whole prompt's activations.
    f.activationBytes = activationBytes(config, batch, l_in);
    return f;
}

std::int64_t
maxBatchForCapacity(const ModelConfig &config, std::int64_t l_in,
                    std::int64_t l_out, double capacity_bytes,
                    bool params_included)
{
    const double params =
        params_included ? config.totalParamBytes() : 0.0;
    if (capacity_bytes <= params)
        return 0;
    // Footprint grows linearly in B; solve directly then verify.
    const double per_batch =
        kvCacheBytes(config, 1, l_in + l_out) +
        activationBytes(config, 1, l_in);
    auto fits = [&](std::int64_t b) {
        return params + static_cast<double>(b) * per_batch <=
               capacity_bytes;
    };
    std::int64_t b = static_cast<std::int64_t>(
        (capacity_bytes - params) / per_batch);
    while (b > 0 && !fits(b))
        --b;
    return b;
}

} // namespace model
} // namespace lia
