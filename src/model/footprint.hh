/**
 * @file
 * Inference memory footprint accounting.
 *
 * Computes the parameter, KV-cache, and activation storage an inference
 * run needs (§1's OPT-175B examples; §6's capacity motivation) and the
 * largest batch that fits a given capacity — the quantity behind the
 * paper's CXL-enabled batch-size increases (Table 3, 900 -> 1.6K).
 */

#ifndef LIA_MODEL_FOOTPRINT_HH
#define LIA_MODEL_FOOTPRINT_HH

#include <cstdint>

#include "model/config.hh"

namespace lia {
namespace model {

/** Bytes of storage demanded by one inference run. */
struct MemoryFootprint
{
    double paramBytes = 0;       //!< all model parameters (BF16)
    double kvCacheBytes = 0;     //!< KV cache at the final context length
    double activationBytes = 0;  //!< peak hidden-state working set

    double total() const
    {
        return paramBytes + kvCacheBytes + activationBytes;
    }
};

/** KV cache bytes for @p batch sequences of @p context_len tokens. */
double kvCacheBytes(const ModelConfig &config, std::int64_t batch,
                    std::int64_t context_len);

/**
 * Peak activation working set: double-buffered hidden states for the
 * widest sublayer boundary (the FC1 output) across the batch.
 */
double activationBytes(const ModelConfig &config, std::int64_t batch,
                       std::int64_t tokens);

/** Footprint of a full run generating @p l_out tokens from @p l_in. */
MemoryFootprint inferenceFootprint(const ModelConfig &config,
                                   std::int64_t batch, std::int64_t l_in,
                                   std::int64_t l_out);

/**
 * Largest batch whose footprint fits @p capacity_bytes, optionally
 * excluding parameters (they live in CXL under the §6 policy).
 */
std::int64_t maxBatchForCapacity(const ModelConfig &config,
                                 std::int64_t l_in, std::int64_t l_out,
                                 double capacity_bytes,
                                 bool params_included = true);

} // namespace model
} // namespace lia

#endif // LIA_MODEL_FOOTPRINT_HH
