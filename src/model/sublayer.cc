#include "model/sublayer.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace model {

namespace {

constexpr double be = units::bytesPerElement;

/**
 * Number of distinct experts whose weights must be touched for a batch
 * of B*T tokens routed top-k. With many tokens every expert is hot, so
 * the effective parameter traffic saturates at numExperts — this is the
 * §7.1 observation that MoE FFN sublayers lose arithmetic intensity.
 */
double
activeExperts(const ModelConfig &config, double tokens)
{
    const double routed = tokens * static_cast<double>(config.expertTopK);
    return std::min(static_cast<double>(config.numExperts),
                    std::max(routed, 1.0));
}

} // namespace

const char *
toString(Stage stage)
{
    return stage == Stage::Prefill ? "prefill" : "decode";
}

const char *
toString(Sublayer sublayer)
{
    switch (sublayer) {
      case Sublayer::QkvMapping:
        return "QKV";
      case Sublayer::AttnScoreQK:
        return "QxK^T";
      case Sublayer::AttnScoreSV:
        return "SxV";
      case Sublayer::OutProjection:
        return "OutProj";
      case Sublayer::Fc1:
        return "FC1";
      case Sublayer::Fc2:
        return "FC2";
    }
    LIA_PANIC("unknown sublayer");
}

bool
isParamSublayer(Sublayer sublayer)
{
    return sublayer == Sublayer::QkvMapping ||
           sublayer == Sublayer::OutProjection ||
           sublayer == Sublayer::Fc1 || sublayer == Sublayer::Fc2;
}

bool
isKvSublayer(Sublayer sublayer)
{
    return sublayer == Sublayer::AttnScoreQK ||
           sublayer == Sublayer::AttnScoreSV;
}

SublayerCosts
sublayerCosts(const ModelConfig &config, const Workload &workload,
              Sublayer sublayer)
{
    LIA_ASSERT(workload.batch > 0, "batch must be positive");
    LIA_ASSERT(workload.contextLen > 0, "context must be positive");

    const double b = static_cast<double>(workload.batch);
    const double l = static_cast<double>(workload.contextLen);
    const double t = static_cast<double>(workload.tokens());
    const double d = static_cast<double>(config.dModel);
    const double kv = static_cast<double>(config.kvDim());
    const double nh = static_cast<double>(config.numHeads);
    const double f = static_cast<double>(config.ffnDim);
    const double up_mats = config.gatedFfn ? 2.0 : 1.0;
    // Weight operands may be quantized; activations and KV stay BF16.
    const double wbe = config.weightBytesPerElement;

    SublayerCosts c;
    switch (sublayer) {
      case Sublayer::QkvMapping:
        c.dX = be * b * t * d;
        c.dY = wbe * (d * d + 2.0 * d * kv);
        c.flops = 2.0 * b * t * d * (d + 2.0 * kv);
        c.dOut = be * b * t * d;          // the Q activation
        c.dKv = be * 2.0 * b * t * kv;    // K and V written to the cache
        break;
      case Sublayer::AttnScoreQK:
        c.dX = be * b * t * d;            // Q
        c.dY = be * b * l * kv;           // K cache over the full context
        c.flops = 2.0 * b * t * d * l;
        c.dOut = be * b * nh * t * l;     // score matrix S
        break;
      case Sublayer::AttnScoreSV:
        c.dX = be * b * nh * t * l;       // S
        c.dY = be * b * l * kv;           // V cache
        c.flops = 2.0 * b * t * d * l;
        c.dOut = be * b * t * d;
        break;
      case Sublayer::OutProjection:
        c.dX = be * b * t * d;
        c.dY = wbe * d * d;
        c.flops = 2.0 * b * t * d * d;
        c.dOut = be * b * t * d;
        break;
      case Sublayer::Fc1:
        c.dX = be * b * t * d;
        c.dY = wbe * up_mats * d * f * activeExperts(config, b * t);
        c.flops = 2.0 * b * t * d * f * up_mats *
                  static_cast<double>(config.expertTopK);
        c.dOut = be * b * t * f;
        break;
      case Sublayer::Fc2:
        c.dX = be * b * t * f;
        c.dY = wbe * f * d * activeExperts(config, b * t);
        c.flops = 2.0 * b * t * d * f *
                  static_cast<double>(config.expertTopK);
        c.dOut = be * b * t * d;
        break;
    }
    return c;
}

double
layerFlops(const ModelConfig &config, const Workload &workload)
{
    double total = 0;
    for (auto sub : allSublayers())
        total += sublayerCosts(config, workload, sub).flops;
    return total;
}

double
layerBytesRead(const ModelConfig &config, const Workload &workload)
{
    double total = 0;
    for (auto sub : allSublayers())
        total += sublayerCosts(config, workload, sub).dY;
    return total;
}

} // namespace model
} // namespace lia
