#include "model/config.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/units.hh"

namespace lia {
namespace model {

double
ModelConfig::decoderLayerParams() const
{
    const double d = static_cast<double>(dModel);
    const double kv = static_cast<double>(kvDim());
    const double f = static_cast<double>(ffnDim);

    // Attention: Q (d x d), K and V (d x kvDim each), output (d x d).
    const double attn = d * d + 2.0 * d * kv + d * d;
    // FFN: up (d x f) and down (f x d); gated models add a gate matrix.
    double ffn = (gatedFfn ? 3.0 : 2.0) * d * f;
    // MoE replicates the FFN per expert (all experts are stored).
    ffn *= static_cast<double>(numExperts);
    return attn + ffn;
}

double
ModelConfig::totalParams() const
{
    const double d = static_cast<double>(dModel);
    const double embed = static_cast<double>(vocabSize) * d +
                         static_cast<double>(maxSeqLen) * d;
    // Tied LM head; final layer norm and biases are negligible.
    return static_cast<double>(numLayers) * decoderLayerParams() + embed;
}

double
ModelConfig::decoderLayerParamBytes() const
{
    return weightBytesPerElement * decoderLayerParams();
}

double
ModelConfig::totalParamBytes() const
{
    return weightBytesPerElement * totalParams();
}

double
ModelConfig::kvBytesPerToken() const
{
    // K and V, kvDim elements each, per layer.
    return units::bytesPerElement * 2.0 *
           static_cast<double>(kvDim()) *
           static_cast<double>(numLayers);
}

void
ModelConfig::validate() const
{
    LIA_ASSERT(dModel > 0 && numLayers > 0 && numHeads > 0,
               name, ": incomplete config");
    LIA_ASSERT(headDim * numHeads == dModel,
               name, ": heads * headDim != dModel");
    LIA_ASSERT(kvHeads > 0 && numHeads % kvHeads == 0,
               name, ": query heads must be a multiple of kv heads");
    LIA_ASSERT(ffnDim > 0 && maxSeqLen > 0 && vocabSize > 0,
               name, ": incomplete config");
    LIA_ASSERT(numExperts >= 1 && expertTopK >= 1 &&
               expertTopK <= numExperts,
               name, ": bad MoE parameters");
    LIA_ASSERT(weightBytesPerElement > 0 &&
               weightBytesPerElement <= units::bytesPerElement,
               name, ": bad weight precision");
}

const char *
toString(WeightPrecision precision)
{
    switch (precision) {
      case WeightPrecision::Bf16:
        return "BF16";
      case WeightPrecision::Int8:
        return "INT8";
      case WeightPrecision::Int4:
        return "INT4";
    }
    LIA_PANIC("unknown precision");
}

ModelConfig
quantized(ModelConfig config, WeightPrecision precision)
{
    switch (precision) {
      case WeightPrecision::Bf16:
        config.weightBytesPerElement = 2.0;
        break;
      case WeightPrecision::Int8:
        config.weightBytesPerElement = 1.0;
        config.name += "-int8";
        break;
      case WeightPrecision::Int4:
        config.weightBytesPerElement = 0.5;
        config.name += "-int4";
        break;
    }
    return config;
}

namespace {

ModelConfig
makeOpt(std::string name, std::int64_t d, std::int64_t layers,
        std::int64_t heads)
{
    ModelConfig m;
    m.name = std::move(name);
    m.dModel = d;
    m.numLayers = layers;
    m.numHeads = heads;
    m.kvHeads = heads;
    m.headDim = d / heads;
    m.ffnDim = 4 * d;
    m.maxSeqLen = 2048;
    m.vocabSize = 50272;
    m.validate();
    return m;
}

} // namespace

ModelConfig
opt13b()
{
    return makeOpt("OPT-13B", 5120, 40, 40);
}

ModelConfig
opt30b()
{
    return makeOpt("OPT-30B", 7168, 48, 56);
}

ModelConfig
opt66b()
{
    return makeOpt("OPT-66B", 9216, 64, 72);
}

ModelConfig
opt175b()
{
    return makeOpt("OPT-175B", 12288, 96, 96);
}

ModelConfig
llama2_70b()
{
    ModelConfig m;
    m.name = "Llama2-70B";
    m.dModel = 8192;
    m.numLayers = 80;
    m.numHeads = 64;
    m.kvHeads = 8;  // grouped-query attention
    m.headDim = 128;
    m.ffnDim = 28672;
    m.gatedFfn = true;
    m.maxSeqLen = 4096;
    m.vocabSize = 32000;
    m.validate();
    return m;
}

ModelConfig
chinchilla70b()
{
    ModelConfig m;
    m.name = "Chinchilla-70B";
    m.dModel = 8192;
    m.numLayers = 80;
    m.numHeads = 64;
    m.kvHeads = 64;
    m.headDim = 128;
    m.ffnDim = 4 * 8192;
    m.maxSeqLen = 2048;
    m.vocabSize = 32000;
    m.validate();
    return m;
}

ModelConfig
bloom176b()
{
    ModelConfig m;
    m.name = "Bloom-176B";
    m.dModel = 14336;
    m.numLayers = 70;
    m.numHeads = 112;
    m.kvHeads = 112;
    m.headDim = 128;
    m.ffnDim = 4 * 14336;
    m.maxSeqLen = 2048;
    m.vocabSize = 250880;
    m.validate();
    return m;
}

ModelConfig
moeMixtral8x7b()
{
    ModelConfig m;
    m.name = "MoE-8x7B";
    m.dModel = 4096;
    m.numLayers = 32;
    m.numHeads = 32;
    m.kvHeads = 8;
    m.headDim = 128;
    m.ffnDim = 14336;
    m.gatedFfn = true;
    m.numExperts = 8;
    m.expertTopK = 2;
    m.maxSeqLen = 4096;
    m.vocabSize = 32000;
    m.validate();
    return m;
}

ModelConfig
modelByName(const std::string &name)
{
    WeightPrecision precision = WeightPrecision::Bf16;
    std::string base = name;
    auto strip = [&](const std::string &suffix, WeightPrecision p) {
        if (base.size() > suffix.size() &&
            base.substr(base.size() - suffix.size()) == suffix) {
            base = base.substr(0, base.size() - suffix.size());
            precision = p;
        }
    };
    strip("-int8", WeightPrecision::Int8);
    strip("-int4", WeightPrecision::Int4);

    ModelConfig m;
    if (base == "OPT-13B")
        m = opt13b();
    else if (base == "OPT-30B")
        m = opt30b();
    else if (base == "OPT-66B")
        m = opt66b();
    else if (base == "OPT-175B")
        m = opt175b();
    else if (base == "Llama2-70B")
        m = llama2_70b();
    else if (base == "Chinchilla-70B")
        m = chinchilla70b();
    else if (base == "Bloom-176B")
        m = bloom176b();
    else if (base == "MoE-8x7B")
        m = moeMixtral8x7b();
    else if (base == "tiny-opt")
        m = tinyOpt();
    else if (base == "tiny-llama")
        m = tinyLlama();
    else
        LIA_FATAL("unknown model '", name, "'");
    return quantized(m, precision);
}

std::vector<std::string>
knownModelNames()
{
    return {"OPT-13B",    "OPT-30B",        "OPT-66B",
            "OPT-175B",   "Llama2-70B",     "Chinchilla-70B",
            "Bloom-176B", "MoE-8x7B",       "tiny-opt",
            "tiny-llama"};
}

ModelConfig
tinyOpt(std::int64_t d_model, std::int64_t layers, std::int64_t heads,
        std::int64_t max_seq, std::int64_t vocab)
{
    ModelConfig m;
    m.name = "tiny-opt";
    m.dModel = d_model;
    m.numLayers = layers;
    m.numHeads = heads;
    m.kvHeads = heads;
    m.headDim = d_model / heads;
    m.ffnDim = 4 * d_model;
    m.maxSeqLen = max_seq;
    m.vocabSize = vocab;
    m.validate();
    return m;
}

ModelConfig
tinyLlama(std::int64_t d_model, std::int64_t layers,
          std::int64_t heads, std::int64_t kv_heads,
          std::int64_t max_seq, std::int64_t vocab)
{
    ModelConfig m;
    m.name = "tiny-llama";
    m.dModel = d_model;
    m.numLayers = layers;
    m.numHeads = heads;
    m.kvHeads = kv_heads;
    m.headDim = d_model / heads;
    // Llama uses ~8/3 * d, rounded; keep a clean multiple here.
    m.ffnDim = 3 * d_model;
    m.gatedFfn = true;
    m.maxSeqLen = max_seq;
    m.vocabSize = vocab;
    m.validate();
    return m;
}

ModelConfig
draftModelConfig(const ModelConfig &target)
{
    ModelConfig draft = target;
    draft.name = target.name + "-draft";
    // Half the heads and half the depth, keeping the per-head width:
    // the draft shrinks in both the d_model^2 and the layer-count
    // factors (a ~8x parameter cut) while every dimension relation
    // validate() enforces is preserved by construction.
    draft.numHeads = std::max<std::int64_t>(1, target.numHeads / 2);
    draft.dModel = draft.numHeads * target.headDim;
    // GQA grouping survives when it divides the new head count;
    // otherwise collapse to MHA at the reduced width.
    draft.kvHeads = target.kvHeads < draft.numHeads &&
                            draft.numHeads % target.kvHeads == 0
                        ? target.kvHeads
                        : draft.numHeads;
    draft.numLayers = std::max<std::int64_t>(1, target.numLayers / 2);
    // Same FFN expansion ratio at the reduced width.
    draft.ffnDim = std::max<std::int64_t>(
        1, target.ffnDim * draft.dModel / target.dModel);
    // Drafting a sparse mixture with a dense proposer is the usual
    // deployment; one expert keeps the draft cheap and simple.
    draft.numExperts = 1;
    draft.expertTopK = 1;
    draft.validate();
    return draft;
}

} // namespace model
} // namespace lia
