/**
 * @file
 * LLM architecture descriptors.
 *
 * Covers the decoder-only transformer family the paper evaluates (OPT
 * models) and generalises to Llama2/Chinchilla/Bloom (§7.7) and MoE
 * variants (§7.1 "Adaptability to other models"): grouped-query
 * attention, gated FFNs, and expert-parallel FFNs all change the Table-1
 * data-size/compute entries, which model/sublayer.hh derives from this
 * structure.
 */

#ifndef LIA_MODEL_CONFIG_HH
#define LIA_MODEL_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lia {
namespace model {

/** Architecture of a decoder-only transformer LLM. */
struct ModelConfig
{
    std::string name;

    std::int64_t dModel = 0;      //!< hidden size d_m
    std::int64_t numLayers = 0;   //!< decoder layer count N
    std::int64_t numHeads = 0;    //!< query heads n_h
    std::int64_t kvHeads = 0;     //!< key/value heads (== numHeads for MHA)
    std::int64_t headDim = 0;     //!< per-head dimension d_h
    std::int64_t ffnDim = 0;      //!< FFN inner dimension (4*d_m for OPT)
    std::int64_t maxSeqLen = 0;   //!< model-defined maximum context
    std::int64_t vocabSize = 0;

    bool gatedFfn = false;        //!< Llama-style SwiGLU (3 FFN matrices)
    std::int64_t numExperts = 1;  //!< MoE expert count (1 == dense)
    std::int64_t expertTopK = 1;  //!< experts activated per token

    /**
     * Bytes per *weight* element: 2.0 for BF16 (the paper's setting),
     * 1.0 for INT8, 0.5 for INT4 weight-only quantization (§1
     * discusses the compression alternative; activations and KV stay
     * BF16 as in standard weight-only schemes).
     */
    double weightBytesPerElement = 2.0;

    /** KV projection width in elements (kvHeads * headDim). */
    std::int64_t kvDim() const { return kvHeads * headDim; }

    /** Parameter count of one decoder layer (elements). */
    double decoderLayerParams() const;

    /** Total parameter count including embeddings and LM head. */
    double totalParams() const;

    /** Bytes of one decoder layer's parameters at BF16. */
    double decoderLayerParamBytes() const;

    /** Bytes of all parameters at BF16. */
    double totalParamBytes() const;

    /** Bytes of KV cache per token of context across all layers. */
    double kvBytesPerToken() const;

    /** Validate internal consistency; panics on malformed configs. */
    void validate() const;
};

/** Weight storage precision for quantized variants. */
enum class WeightPrecision { Bf16, Int8, Int4 };

const char *toString(WeightPrecision precision);

/** A copy of @p config with weight-only quantization applied. */
ModelConfig quantized(ModelConfig config, WeightPrecision precision);

/**
 * Look up a model preset by name (e.g. "OPT-30B", "Llama2-70B",
 * optionally suffixed "-int8"/"-int4"); fatal on unknown names.
 */
ModelConfig modelByName(const std::string &name);

/** Names accepted by modelByName (without precision suffixes). */
std::vector<std::string> knownModelNames();

// --- Model presets ---------------------------------------------------------

ModelConfig opt13b();
ModelConfig opt30b();
ModelConfig opt66b();
ModelConfig opt175b();
ModelConfig llama2_70b();
ModelConfig chinchilla70b();
ModelConfig bloom176b();

/** Mixtral-style sparse MoE used in the §7.1 adaptability discussion. */
ModelConfig moeMixtral8x7b();

/**
 * A miniature OPT-style model for functional tests and the runtime
 * examples: real inference completes in milliseconds.
 */
ModelConfig tinyOpt(std::int64_t d_model = 64, std::int64_t layers = 4,
                    std::int64_t heads = 4, std::int64_t max_seq = 128,
                    std::int64_t vocab = 256);

/**
 * A miniature Llama-style model (grouped-query attention + gated
 * SwiGLU FFN) exercising the runtime's non-OPT code paths.
 */
ModelConfig tinyLlama(std::int64_t d_model = 64,
                      std::int64_t layers = 4, std::int64_t heads = 4,
                      std::int64_t kv_heads = 2,
                      std::int64_t max_seq = 128,
                      std::int64_t vocab = 256);

/**
 * The speculative draft companion of @p target: half the width, heads,
 * and depth (floored at one), the same head geometry rules, and —
 * critically — the same vocabulary and context window, so its token
 * proposals are directly verifiable by the target (DESIGN.md §11).
 */
ModelConfig draftModelConfig(const ModelConfig &target);

} // namespace model
} // namespace lia

#endif // LIA_MODEL_CONFIG_HH
