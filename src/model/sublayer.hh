/**
 * @file
 * The six-sublayer decoder decomposition and its data/compute costs.
 *
 * Implements the paper's Table 1: per-sublayer operand sizes (D_X, D_Y),
 * FLOP counts (C), and the KV bytes produced by the QKV mapping, for
 * both the prefill and decode stages. The formulas are generalised over
 * grouped-query attention, gated FFNs, and MoE FFNs so the §7.7 model
 * sweep uses the same code path.
 *
 * One deliberate refinement over the printed table: the attention score
 * matrix S transferred between sublayers 2 and 3 is sized exactly
 * (B * n_h * T * L elements) instead of the paper's 2*B*L*d_m
 * approximation; a unit test checks the OPT entries still match Table 1
 * where the paper's approximation is exact.
 */

#ifndef LIA_MODEL_SUBLAYER_HH
#define LIA_MODEL_SUBLAYER_HH

#include <array>
#include <cstdint>

#include "model/config.hh"

namespace lia {
namespace model {

/** Inference stage: prompt processing vs. token generation. */
enum class Stage { Prefill, Decode };

/** The six GEMM/GEMV sublayers of a decoder layer (Fig. 6). */
enum class Sublayer
{
    QkvMapping = 0,     //!< hidden -> Q, K, V projections
    AttnScoreQK = 1,    //!< Q x K^T
    AttnScoreSV = 2,    //!< softmax(S) x V
    OutProjection = 3,  //!< attention output projection
    Fc1 = 4,            //!< FFN up (and gate) projection
    Fc2 = 5,            //!< FFN down projection
};

inline constexpr int kNumSublayers = 6;

/** All sublayers in execution order. */
constexpr std::array<Sublayer, kNumSublayers>
allSublayers()
{
    return {Sublayer::QkvMapping, Sublayer::AttnScoreQK,
            Sublayer::AttnScoreSV, Sublayer::OutProjection,
            Sublayer::Fc1, Sublayer::Fc2};
}

const char *toString(Stage stage);
const char *toString(Sublayer sublayer);

/** Whether the sublayer's second operand is model parameters. */
bool isParamSublayer(Sublayer sublayer);

/** Whether the sublayer's second operand is the KV cache. */
bool isKvSublayer(Sublayer sublayer);

/**
 * One (stage, batch, context) operating point of a decoder layer.
 *
 * For prefill, contextLen is the input token length L and every
 * sequence contributes contextLen tokens of work. For decode,
 * one new token per sequence is processed against a KV history of
 * contextLen tokens.
 */
struct Workload
{
    Stage stage = Stage::Prefill;
    std::int64_t batch = 1;       //!< B
    std::int64_t contextLen = 1;  //!< L

    /** Tokens processed per sequence this step (L or 1). */
    std::int64_t tokens() const
    {
        return stage == Stage::Prefill ? contextLen : 1;
    }
};

/** Data movement and compute of one sublayer (Table 1). */
struct SublayerCosts
{
    double dX = 0;     //!< bytes of the first (activation) operand
    double dY = 0;     //!< bytes of the second operand (params or KV)
    double dOut = 0;   //!< bytes of the produced activation
    double flops = 0;  //!< floating point operations C
    double dKv = 0;    //!< KV bytes produced (QkvMapping only)

    /** Arithmetic intensity used in Fig. 1's heat map. */
    double opsPerByte() const { return flops / (dX + dY); }
};

/** Costs of @p sublayer for @p workload on @p config. */
SublayerCosts sublayerCosts(const ModelConfig &config,
                            const Workload &workload, Sublayer sublayer);

/** Total FLOPs of one decoder layer at the operating point. */
double layerFlops(const ModelConfig &config, const Workload &workload);

/** Total bytes of parameters + KV read by one decoder layer. */
double layerBytesRead(const ModelConfig &config,
                      const Workload &workload);

} // namespace model
} // namespace lia

#endif // LIA_MODEL_SUBLAYER_HH
