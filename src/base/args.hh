/**
 * @file
 * Minimal command-line argument parsing for the examples and tools.
 *
 * Supports `--flag`, `--key value`, and `--key=value` forms plus
 * positional arguments, with typed accessors and defaults. Small by
 * design — just enough for reproducible tool invocations.
 */

#ifndef LIA_BASE_ARGS_HH
#define LIA_BASE_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lia {

/** Parsed command line. */
class ArgParser
{
  public:
    ArgParser(int argc, const char *const *argv);

    /** Whether `--name` appeared (with or without a value). */
    bool has(const std::string &name) const;

    /** String option value or @p fallback. */
    std::string getString(const std::string &name,
                          const std::string &fallback = "") const;

    /** Integer option value or @p fallback. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Floating-point option value or @p fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** The program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace lia

#endif // LIA_BASE_ARGS_HH
