/**
 * @file
 * Summary statistics over sample sets.
 *
 * Used by the serving-queue simulation and the examples to report
 * latency distributions (mean / percentiles / extremes) the way the
 * paper's latency-driven scenarios are judged.
 */

#ifndef LIA_BASE_STATS_HH
#define LIA_BASE_STATS_HH

#include <cstddef>
#include <vector>

namespace lia {

/** Accumulates samples and reports distribution summaries. */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Add many samples. */
    void add(const std::vector<double> &values);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /**
     * Percentile in [0, 100] via linear interpolation between order
     * statistics.
     */
    double percentile(double pct) const;

    /** Convenience accessors for the common service percentiles. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

  private:
    /** Sort samples lazily before order-statistic queries. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace lia

#endif // LIA_BASE_STATS_HH
