/**
 * @file
 * Summary statistics over sample sets.
 *
 * Used by the serving-queue simulation and the examples to report
 * latency distributions (mean / percentiles / extremes) the way the
 * paper's latency-driven scenarios are judged.
 *
 * Division of labour with base/statistics.hh (the two are deliberately
 * separate, not redundant): SampleStats here is an anonymous
 * *distribution* accumulator — it keeps every sample so it can answer
 * order-statistic queries (p50/p95/p99), and is the value type used by
 * serve::Metrics and obs::KernelProfiler. stats::Scalar/Formula/Vector
 * over there are *named, registered* counters in the gem5 stats.txt
 * idiom — O(1) state, no samples retained, no percentiles — dumped as
 * a labelled report via stats::Group. Percentile math lives only here;
 * anything needing a distribution should hold a SampleStats (and may
 * register derived values as a stats::Formula for the dump).
 */

#ifndef LIA_BASE_STATS_HH
#define LIA_BASE_STATS_HH

#include <cstddef>
#include <vector>

namespace lia {

/** Accumulates samples and reports distribution summaries. */
class SampleStats
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Add many samples. */
    void add(const std::vector<double> &values);

    /**
     * Absorb every sample of @p other, so percentiles afterwards are
     * order statistics of the union — how per-replica latency
     * distributions aggregate into fleet distributions
     * (serve::Metrics::merge). Merging an empty set is a no-op.
     */
    void merge(const SampleStats &other);

    /** The raw samples, insertion-ordered until a percentile query
     *  sorts them in place. */
    const std::vector<double> &samples() const { return samples_; }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /**
     * Percentile in [0, 100] via linear interpolation between order
     * statistics.
     */
    double percentile(double pct) const;

    /** Convenience accessors for the common service percentiles. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

  private:
    /** Sort samples lazily before order-statistic queries. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace lia

#endif // LIA_BASE_STATS_HH
