#include "base/statistics.hh"

#include <algorithm>
#include <iomanip>

#include "base/logging.hh"

namespace lia {
namespace stats {

namespace {

void
printLine(std::ostream &os, const std::string &name, double value,
          const std::string &desc, std::size_t name_width)
{
    os << std::left << std::setw(static_cast<int>(name_width + 2))
       << name << std::right << std::setw(16) << std::setprecision(6)
       << value;
    if (!desc.empty())
        os << "  # " << desc;
    os << '\n';
}

} // namespace

Stat::Stat(std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    LIA_ASSERT(!name_.empty(), "statistics need names");
}

Scalar &
Scalar::operator+=(double delta)
{
    value_ += delta;
    return *this;
}

Scalar &
Scalar::operator++()
{
    value_ += 1.0;
    return *this;
}

void
Scalar::print(std::ostream &os, std::size_t name_width) const
{
    printLine(os, name(), value_, desc(), name_width);
}

Formula::Formula(std::string name, std::string desc,
                 std::function<double()> fn)
    : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
{
    LIA_ASSERT(fn_ != nullptr, name, ": formula needs a function");
}

void
Formula::print(std::ostream &os, std::size_t name_width) const
{
    printLine(os, name(), fn_(), desc(), name_width);
}

Vector::Vector(std::string name, std::string desc,
               std::vector<std::string> labels)
    : Stat(std::move(name), std::move(desc)),
      labels_(std::move(labels)), values_(labels_.size(), 0.0)
{
    LIA_ASSERT(!labels_.empty(), "vector stats need buckets");
}

void
Vector::add(std::size_t index, double delta)
{
    LIA_ASSERT(index < values_.size(), name(), ": bucket ", index,
               " out of range");
    values_[index] += delta;
}

double
Vector::value(std::size_t index) const
{
    LIA_ASSERT(index < values_.size(), name(), ": bucket ", index,
               " out of range");
    return values_[index];
}

double
Vector::total() const
{
    double sum = 0;
    for (double v : values_)
        sum += v;
    return sum;
}

void
Vector::print(std::ostream &os, std::size_t name_width) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        printLine(os, name() + "::" + labels_[i], values_[i], desc(),
                  name_width);
    }
    printLine(os, name() + "::total", total(), desc(), name_width);
}

Group::Group(std::string name) : name_(std::move(name))
{
}

std::string
Group::qualify(const std::string &name) const
{
    LIA_ASSERT(!name.empty(), "statistics need names");
    return name_.empty() ? name : name_ + "." + name;
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(qualify(name), desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    auto stat =
        std::make_unique<Formula>(qualify(name), desc, std::move(fn));
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Vector &
Group::vector(const std::string &name, const std::string &desc,
              std::vector<std::string> labels)
{
    auto stat = std::make_unique<Vector>(qualify(name), desc,
                                         std::move(labels));
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

const Stat *
Group::find(const std::string &name) const
{
    for (const auto &stat : stats_) {
        if (stat->name() == name)
            return stat.get();
    }
    return nullptr;
}

void
Group::dump(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &stat : stats_)
        width = std::max(width, stat->name().size() + 8);
    for (const auto &stat : stats_)
        stat->print(os, width);
}

} // namespace stats
} // namespace lia
