#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace lia {

void
SampleStats::add(double value)
{
    samples_.push_back(value);
    sorted_ = samples_.size() <= 1;
}

void
SampleStats::add(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

void
SampleStats::merge(const SampleStats &other)
{
    if (other.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = samples_.size() <= 1;
}

double
SampleStats::mean() const
{
    LIA_ASSERT(!empty(), "no samples");
    double sum = 0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
SampleStats::min() const
{
    LIA_ASSERT(!empty(), "no samples");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    LIA_ASSERT(!empty(), "no samples");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStats::stddev() const
{
    LIA_ASSERT(!empty(), "no samples");
    const double m = mean();
    double sq = 0;
    for (double v : samples_)
        sq += (v - m) * (v - m);
    return std::sqrt(sq / static_cast<double>(samples_.size()));
}

void
SampleStats::ensureSorted() const
{
    if (!sorted_) {
        auto &mutable_samples =
            const_cast<std::vector<double> &>(samples_);
        std::sort(mutable_samples.begin(), mutable_samples.end());
        sorted_ = true;
    }
}

double
SampleStats::percentile(double pct) const
{
    LIA_ASSERT(!empty(), "no samples");
    LIA_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile out of range");
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double rank =
        pct / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

} // namespace lia
