/**
 * @file
 * gem5-style statistics: named scalar counters, derived formulas, and
 * labelled vectors registered in a group and dumped as an aligned
 * name / value / description listing (the `stats.txt` idiom).
 *
 * Components expose a `registerStats(stats::Group &)` hook; harnesses
 * call `dump()` after a run to produce a machine-greppable report.
 *
 * Division of labour with base/stats.hh: this module is for *named,
 * registered* O(1) counters and dump-time formulas — it never retains
 * samples and has no percentile support. For latency distributions
 * (mean/p50/p95/p99 over retained samples) use lia::SampleStats from
 * base/stats.hh instead; that is the single home of the percentile
 * implementation. A component can use both: SampleStats for the
 * distribution, a Formula here to surface a summary in the dump.
 */

#ifndef LIA_BASE_STATISTICS_HH
#define LIA_BASE_STATISTICS_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace lia {
namespace stats {

/** Base class of every named statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc);
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render one or more "name value # desc" lines. */
    virtual void print(std::ostream &os, std::size_t name_width)
        const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A mutable scalar counter/accumulator. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double delta);
    Scalar &operator++();
    void set(double value) { value_ = value; }
    double value() const { return value_; }

    void print(std::ostream &os, std::size_t name_width)
        const override;

  private:
    double value_ = 0;
};

/** A derived statistic evaluated at dump time. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void print(std::ostream &os, std::size_t name_width)
        const override;

  private:
    std::function<double()> fn_;
};

/** A fixed set of labelled scalar buckets. */
class Vector : public Stat
{
  public:
    Vector(std::string name, std::string desc,
           std::vector<std::string> labels);

    /** Accumulate into bucket @p index. */
    void add(std::size_t index, double delta);

    double value(std::size_t index) const;
    double total() const;
    std::size_t size() const { return values_.size(); }

    void print(std::ostream &os, std::size_t name_width)
        const override;

  private:
    std::vector<std::string> labels_;
    std::vector<double> values_;
};

/** A named registry of statistics. */
class Group
{
  public:
    explicit Group(std::string name = "");

    /** Create and register a scalar. */
    Scalar &scalar(const std::string &name, const std::string &desc);

    /** Create and register a formula. */
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);

    /** Create and register a vector. */
    Vector &vector(const std::string &name, const std::string &desc,
                   std::vector<std::string> labels);

    /** Number of registered statistics. */
    std::size_t size() const { return stats_.size(); }

    /** Look up a statistic by fully qualified name; null if absent. */
    const Stat *find(const std::string &name) const;

    /** Dump all statistics, aligned, in registration order. */
    void dump(std::ostream &os) const;

  private:
    std::string qualify(const std::string &name) const;

    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
};

} // namespace stats
} // namespace lia

#endif // LIA_BASE_STATISTICS_HH
