/**
 * @file
 * Deterministic parallel-for thread pool.
 *
 * A small persistent-worker pool for data-parallel kernels. The design
 * contract (see DESIGN.md §7) is that callers partition work into
 * *self-contained* units — whole output rows, column tiles, disjoint
 * element ranges — whose internal floating-point operation order never
 * depends on the thread count. Under that contract every result is
 * bit-identical at 1, 2, or N threads, which keeps the golden decode
 * and differential suites valid oracles over the parallel kernels.
 *
 * Sizing: an explicit constructor argument wins; zero means "use the
 * process default", which honours the LIA_THREADS environment variable
 * and falls back to std::thread::hardware_concurrency(). A shared
 * process-wide pool (ThreadPool::shared()) exists so batch-of-one
 * decode calls all reuse one set of workers instead of spawning per
 * call.
 *
 * Nested parallelFor calls (a parallel kernel invoked from inside a
 * worker) execute inline on the calling worker — no deadlock, no
 * oversubscription, and the inner loop's sequential order is exactly
 * the serial one.
 *
 * Concurrency: the pool holds a single in-flight job, so concurrent
 * parallelFor calls from different non-worker threads serialize on an
 * internal dispatch mutex — safe, but the second caller blocks until
 * the first loop drains. Callers wanting genuine loop-level overlap
 * should use separate pools.
 */

#ifndef LIA_BASE_THREAD_POOL_HH
#define LIA_BASE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lia {
namespace base {

/**
 * Observer of drained parallelFor loops, for wall-clock profiling
 * (obs::KernelProfiler implements it; base cannot depend on obs, so
 * the interface lives here). Called on the thread that invoked
 * parallelFor, after the loop drains, with the loop's wall duration.
 * Nested (inlined) calls are not reported separately — their time is
 * part of the enclosing loop.
 */
class ParallelObserver
{
  public:
    virtual ~ParallelObserver() = default;

    virtual void onParallelFor(double seconds) = 0;
};

/** Persistent-worker pool running chunked parallel-for loops. */
class ThreadPool
{
  public:
    /** Range body: process [begin, end). */
    using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

    /**
     * @param threads worker count including the calling thread;
     *                0 selects defaultThreadCount(). A pool of 1 runs
     *                everything inline and spawns no workers.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Threads that execute work (workers plus the caller). */
    int threadCount() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run @p body over [0, n), split into contiguous chunks of at
     * least @p grain items. The caller participates and the call
     * returns once every chunk completed. Chunk boundaries depend only
     * on (n, grain, threadCount) — never on scheduling — and each
     * index lands in exactly one chunk, so bodies whose units are
     * independent produce thread-count-invariant results. The first
     * exception a chunk throws is rethrown on the calling thread after
     * the loop drains. Thread-safe: concurrent calls from different
     * threads serialize (see the class comment).
     */
    void parallelFor(std::int64_t n, std::int64_t grain,
                     const RangeFn &body);

    /**
     * parallelFor for latency-critical small loops (decode-GEMV tile
     * sweeps): identical chunking, identical results, different
     * waiting strategy. The caller spins a bounded budget on the
     * drain counter before parking on the condition variable, and
     * workers that just drained a low-latency job spin a bounded
     * budget for the next one before sleeping — so a stream of
     * back-to-back small loops (one per decode matmul) stops paying
     * the futex wake/park round trip on every dispatch. Falls back to
     * the exact blocking protocol when a budget expires, so nothing
     * ever busy-waits unboundedly. Observers see these loops through
     * the same onParallelFor hook.
     */
    void parallelForLowLatency(std::int64_t n, std::int64_t grain,
                               const RangeFn &body);

    /**
     * Process default: LIA_THREADS when set to a positive integer,
     * else std::thread::hardware_concurrency(), clamped to [1, 256].
     */
    static int defaultThreadCount();

    /** Process-wide pool sized by defaultThreadCount(). */
    static ThreadPool &shared();

    /** True on a thread currently executing pool work. */
    static bool insideWorker();

    /**
     * Install (or, with nullptr, remove) a wall-clock observer. The
     * observer must outlive its installation. When no observer is set
     * — the default — parallelFor never reads the clock, keeping the
     * unprofiled hot path untouched.
     */
    void setObserver(ParallelObserver *observer)
    {
        observer_.store(observer, std::memory_order_release);
    }

    ParallelObserver *observer() const
    {
        return observer_.load(std::memory_order_acquire);
    }

  private:
    /** One parallelFor invocation shared with the workers. */
    struct Job
    {
        const RangeFn *body = nullptr;
        std::int64_t n = 0;
        std::int64_t chunk = 0;        //!< items per chunk
        std::int64_t chunks = 0;
        std::atomic<std::int64_t> next{0};   //!< chunk claim cursor
        std::atomic<std::int64_t> done{0};   //!< chunks finished
        std::exception_ptr error;            //!< first failure
        std::mutex errorMutex;
    };

    void workerLoop();
    void runChunks(Job &job);

    /** Shared front half of both parallelFor flavours. */
    void parallelForImpl(std::int64_t n, std::int64_t grain,
                         const RangeFn &body, bool low_latency);

    /** The out-of-line dispatch path of parallelFor (workers woken). */
    void parallelForDispatch(std::int64_t n, std::int64_t grain,
                             const RangeFn &body, bool low_latency);

    std::vector<std::thread> workers_;
    std::atomic<ParallelObserver *> observer_{nullptr};
    std::mutex dispatchMutex_;         //!< serializes external callers
    std::mutex mutex_;
    std::condition_variable wake_;     //!< workers: new job / stop
    std::condition_variable finished_; //!< caller: job drained
    std::shared_ptr<Job> job_;         //!< active job (guarded)
    std::uint64_t generation_ = 0;     //!< bumps per job
    /**
     * Lock-free mirror of generation_, published after the job under
     * mutex_: what spinning workers poll instead of taking the lock.
     */
    std::atomic<std::uint64_t> generationHint_{0};
    /**
     * True while the most recent job was dispatched low-latency:
     * workers finishing such a job spin briefly for the next one
     * (decode streams issue many small loops back to back) instead of
     * parking immediately.
     */
    std::atomic<bool> spinHint_{false};
    bool stop_ = false;
};

} // namespace base
} // namespace lia

#endif // LIA_BASE_THREAD_POOL_HH
