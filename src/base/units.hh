/**
 * @file
 * Unit constants and conversion helpers.
 *
 * The library works in SI base units throughout: seconds for time, bytes
 * for data, FLOP for compute work, bytes/second for bandwidth, FLOP/second
 * for throughput, and watts for power. These helpers exist to make the
 * magnitudes readable at construction sites, e.g. `64 * units::GB_s`.
 */

#ifndef LIA_BASE_UNITS_HH
#define LIA_BASE_UNITS_HH

#include <cstdint>

namespace lia {
namespace units {

// --- Data sizes (decimal, matching vendor bandwidth/capacity specs) ---
inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;
inline constexpr double TB = 1e12;

// --- Data sizes (binary, for memory capacities) ---
inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * 1024.0;
inline constexpr double GiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double TiB = 1024.0 * GiB;

// --- Bandwidth ---
inline constexpr double GB_s = 1e9;
inline constexpr double TB_s = 1e12;

// --- Compute throughput ---
inline constexpr double GFLOPS = 1e9;
inline constexpr double TFLOPS = 1e12;

// --- Time ---
inline constexpr double ns = 1e-9;
inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

// --- BF16/FP16 element size used across the paper's Table 1 ---
inline constexpr double bytesPerElement = 2.0;

} // namespace units
} // namespace lia

#endif // LIA_BASE_UNITS_HH
