/**
 * @file
 * Deterministic random number generation.
 *
 * A small xoshiro256** implementation seeded through splitmix64. All
 * stochastic behaviour in the library (workload generation, synthetic
 * weights, property-test sampling) flows through this class so runs are
 * reproducible given a seed.
 */

#ifndef LIA_BASE_RNG_HH
#define LIA_BASE_RNG_HH

#include <cstdint>

namespace lia {

/** Deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x11A5EEDULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability @p p of returning true. */
    bool bernoulli(double p);

  private:
    std::uint64_t s_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace lia

#endif // LIA_BASE_RNG_HH
