/**
 * @file
 * Status and error reporting utilities in the gem5 style.
 *
 * panic()  - an internal invariant was violated (a library bug); aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   - something is questionable but the run can continue.
 * inform() - purely informational status output.
 */

#ifndef LIA_BASE_LOGGING_HH
#define LIA_BASE_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lia {

namespace detail {

/** Stream the message parts into a string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Make panic()/fatal() throw std::logic_error/std::runtime_error instead
 * of terminating the process. Intended for unit tests only.
 */
void setThrowOnError(bool enable);

} // namespace detail

/** Abort with a message; use for violated internal invariants. */
#define LIA_PANIC(...) \
    ::lia::detail::panicImpl(__FILE__, __LINE__, \
                             ::lia::detail::concatMessage(__VA_ARGS__))

/** Exit with a message; use for unusable user-provided configuration. */
#define LIA_FATAL(...) \
    ::lia::detail::fatalImpl(__FILE__, __LINE__, \
                             ::lia::detail::concatMessage(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define LIA_WARN(...) \
    ::lia::detail::warnImpl(::lia::detail::concatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define LIA_INFORM(...) \
    ::lia::detail::informImpl(::lia::detail::concatMessage(__VA_ARGS__))

/** Panic when @p cond does not hold. */
#define LIA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            LIA_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace lia

#endif // LIA_BASE_LOGGING_HH
