/**
 * @file
 * Status and error reporting utilities in the gem5 style.
 *
 * panic()   - an internal invariant was violated (a library bug); aborts.
 * fatal()   - the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); exits with code 1.
 * warn()    - something is questionable but the run can continue.
 * inform()  - purely informational status output.
 * verbose() - detail output, shown only at LogLevel::Verbose.
 *
 * Output volume is controlled by the LIA_LOG environment variable, a
 * comma-separated token list parsed on first use:
 *
 *   quiet | normal | verbose   select the level (default: normal);
 *   wall                       prefix messages with wall seconds since
 *                              process start ("[wall 1.234s]");
 *   sim                        prefix messages with the current
 *                              simulated time ("[sim 0.125s]") when a
 *                              provider is installed (the serving
 *                              engine installs one while it runs).
 *
 * Quiet silences inform()/verbose() chatter — benches use it to keep
 * stdout machine-readable — but never warnings or errors. Programmatic
 * overrides (setLogLevel() etc.) win over the environment and exist
 * mainly so tests can exercise the filtering deterministically.
 */

#ifndef LIA_BASE_LOGGING_HH
#define LIA_BASE_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace lia {

/** Logging verbosity; see the file comment for LIA_LOG semantics. */
enum class LogLevel
{
    Quiet,    //!< warnings and errors only
    Normal,   //!< + inform()
    Verbose,  //!< + verbose()
};

/** Current level (LIA_LOG on first call unless overridden). */
LogLevel logLevel();

/** Override the level, winning over LIA_LOG. */
void setLogLevel(LogLevel level);

/**
 * Redirect inform()/verbose()/warn() output to @p out (tests capture
 * into a stringstream this way); nullptr restores cout/cerr.
 */
void setLogStream(std::ostream *out);

/** Toggle the wall-clock prefix (LIA_LOG token "wall"). */
void setWallTimePrefix(bool enable);

/** Toggle the simulated-time prefix (LIA_LOG token "sim"). */
void setSimTimePrefix(bool enable);

/**
 * Install the simulated-clock source used by the "sim" prefix; an
 * empty function removes it. The serving engine installs its event
 * queue's now() for the duration of a run.
 */
void setSimTimeProvider(std::function<double()> provider);

namespace detail {

/** Stream the message parts into a string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

/**
 * Make panic()/fatal() throw std::logic_error/std::runtime_error instead
 * of terminating the process. Intended for unit tests only.
 */
void setThrowOnError(bool enable);

} // namespace detail

/** Abort with a message; use for violated internal invariants. */
#define LIA_PANIC(...) \
    ::lia::detail::panicImpl(__FILE__, __LINE__, \
                             ::lia::detail::concatMessage(__VA_ARGS__))

/** Exit with a message; use for unusable user-provided configuration. */
#define LIA_FATAL(...) \
    ::lia::detail::fatalImpl(__FILE__, __LINE__, \
                             ::lia::detail::concatMessage(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define LIA_WARN(...) \
    ::lia::detail::warnImpl(::lia::detail::concatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define LIA_INFORM(...) \
    ::lia::detail::informImpl(::lia::detail::concatMessage(__VA_ARGS__))

/**
 * Report detail status, shown only at LogLevel::Verbose. The level
 * check guards message formatting, so a non-verbose run pays only the
 * comparison.
 */
#define LIA_VERBOSE(...) \
    do { \
        if (::lia::logLevel() == ::lia::LogLevel::Verbose) { \
            ::lia::detail::verboseImpl( \
                ::lia::detail::concatMessage(__VA_ARGS__)); \
        } \
    } while (0)

/** Panic when @p cond does not hold. */
#define LIA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            LIA_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace lia

#endif // LIA_BASE_LOGGING_HH
