#include "base/args.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace lia {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    LIA_ASSERT(argc >= 1, "argv must contain the program name");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--key value` when the next token is not another option;
        // otherwise a bare flag.
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = argv[++i];
        } else {
            options_[body] = "";
        }
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
ArgParser::getString(const std::string &name,
                     const std::string &fallback) const
{
    const auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 10);
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    const auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

} // namespace lia
