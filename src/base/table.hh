/**
 * @file
 * Plain-text table formatting used by the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of the paper table or figure
 * it regenerates; TextTable keeps that output aligned and diffable.
 */

#ifndef LIA_BASE_TABLE_HH
#define LIA_BASE_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace lia {

/** Column-aligned plain text table. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a fully formatted row; size must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

    /** Number of rows added so far (separators included). */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fraction digits. */
std::string fmtDouble(double value, int decimals = 2);

/** Format seconds adaptively (s / ms / us). */
std::string fmtSeconds(double seconds);

/** Format a byte count adaptively (B / KB / MB / GB / TB, decimal). */
std::string fmtBytes(double bytes);

/** Format FLOP/s adaptively (GFLOPS / TFLOPS). */
std::string fmtThroughput(double flops);

/** Format a ratio as "N.NNx". */
std::string fmtRatio(double ratio);

/** Format a fraction as a percentage "NN.N%". */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace lia

#endif // LIA_BASE_TABLE_HH
