#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace lia {

namespace {

/** splitmix64 step used to expand the seed into full generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    LIA_ASSERT(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    LIA_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace lia
