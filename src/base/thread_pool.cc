#include "base/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/logging.hh"

namespace lia {
namespace base {

namespace {

/** Set while a thread is executing chunks of some pool's job. */
thread_local bool tlsInsideWorker = false;

/**
 * Spin budgets (iterations of cpuRelax, roughly a nanosecond each).
 * Workers wait up to ~20-50us for the next low-latency job — several
 * decode-GEMV dispatch periods — before parking; the caller waits a
 * smaller budget for stragglers of the loop it just helped drain.
 * Both are bounded: an expired budget falls back to the blocking
 * protocol, so an idle pool always ends up parked on the condition
 * variable exactly as before. On a single-core host both budgets are
 * zero — spinning only helps when the spinner and the thread it waits
 * for occupy different cores; on one core it steals the very core the
 * other side needs and degrades straight to the blocking protocol
 * anyway, just later.
 */
inline int
workerSpinBudget()
{
    static const int budget =
        std::thread::hardware_concurrency() > 1 ? 1 << 15 : 0;
    return budget;
}

inline int
callerSpinBudget()
{
    static const int budget =
        std::thread::hardware_concurrency() > 1 ? 1 << 14 : 0;
    return budget;
}

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

} // namespace

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("LIA_THREADS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<int>(std::min(parsed, 256l));
        LIA_WARN("ignoring unparsable LIA_THREADS value \"", env, "\"");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hw, 1u, 256u));
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunks(Job &job)
{
    const bool outer = !tlsInsideWorker;
    tlsInsideWorker = true;
    while (true) {
        const std::int64_t c =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.chunks)
            break;
        const std::int64_t begin = c * job.chunk;
        const std::int64_t end = std::min(job.n, begin + job.chunk);
        try {
            (*job.body)(begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        job.done.fetch_add(1, std::memory_order_acq_rel);
    }
    if (outer)
        tlsInsideWorker = false;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        // Hold a shared_ptr while working: a straggler that dequeues
        // the job as the caller retires it must not touch freed state.
        std::shared_ptr<Job> job;
        // Low-latency phase: after a low-latency job, poll the
        // generation mirror briefly before taking the lock — if the
        // next dispatch lands inside the budget, the CV wait below
        // finds its predicate already true and never parks (no futex
        // round trip). Expiry, stop, and spurious wake all degrade to
        // the plain blocking wait.
        if (spinHint_.load(std::memory_order_relaxed)) {
            for (int i = 0, budget = workerSpinBudget(); i < budget;
                 ++i) {
                if (generationHint_.load(std::memory_order_acquire) !=
                    seen) {
                    break;
                }
                cpuRelax();
            }
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        runChunks(*job);
        // Wake the caller in case this worker retired the final chunk.
        // The empty critical section is the classic lost-wakeup fence:
        // job.done is incremented outside mutex_, so without it the
        // final increment + notify could land between the caller's
        // predicate check (made under the lock) and its block, and the
        // caller would sleep forever. Taking the mutex here forces the
        // worker to wait until the caller either re-reads done under
        // the lock or is parked where notify_all can reach it.
        {
            std::lock_guard<std::mutex> lock(mutex_);
        }
        finished_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::int64_t n, std::int64_t grain,
                        const RangeFn &body)
{
    parallelForImpl(n, grain, body, false);
}

void
ThreadPool::parallelForLowLatency(std::int64_t n, std::int64_t grain,
                                  const RangeFn &body)
{
    parallelForImpl(n, grain, body, true);
}

void
ThreadPool::parallelForImpl(std::int64_t n, std::int64_t grain,
                            const RangeFn &body, bool low_latency)
{
    if (n <= 0)
        return;
    grain = std::max<std::int64_t>(grain, 1);
    // Inline when serial, nested, or too small to amortise a dispatch.
    // All three conditions are independent of scheduling, and chunk
    // bodies are self-contained, so the inline path is bit-identical.
    if (workers_.empty() || tlsInsideWorker || n <= grain) {
        body(0, n);
        return;
    }

    // Nested calls never reach here (inline path above), so an
    // observed loop is always a top-level one and never double-counts.
    ParallelObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs) {
        const auto start = std::chrono::steady_clock::now();
        parallelForDispatch(n, grain, body, low_latency);
        const auto end = std::chrono::steady_clock::now();
        obs->onParallelFor(
            std::chrono::duration<double>(end - start).count());
        return;
    }
    parallelForDispatch(n, grain, body, low_latency);
}

void
ThreadPool::parallelForDispatch(std::int64_t n, std::int64_t grain,
                                const RangeFn &body, bool low_latency)
{

    // The pool has a single job slot, so concurrent external callers
    // take turns: the second blocks here until the first drains. A
    // body that re-enters parallelFor never reaches this lock — the
    // caller thread is marked tlsInsideWorker while running chunks,
    // so nested calls take the inline path above.
    std::lock_guard<std::mutex> dispatch(dispatchMutex_);

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->n = n;
    // A few chunks per thread for load balance; boundaries depend only
    // on (n, grain, threadCount), keeping the partition deterministic.
    const std::int64_t target =
        static_cast<std::int64_t>(threadCount()) * 4;
    job->chunk = std::max(grain, (n + target - 1) / target);
    job->chunks = (n + job->chunk - 1) / job->chunk;

    // Publish the spin policy before the job becomes visible: a worker
    // draining this job reads it when deciding how to wait for the
    // next one.
    spinHint_.store(low_latency, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
        generationHint_.store(generation_, std::memory_order_release);
    }
    wake_.notify_all();
    runChunks(*job);
    if (low_latency) {
        // Straggler wait: the caller just drained its own share, so
        // the remaining chunks are already in flight on the workers.
        // Spin a bounded budget on the drain counter; on success the
        // wait below finds its predicate true and never parks.
        for (int i = 0, budget = callerSpinBudget();
             i < budget && job->done.load(std::memory_order_acquire) !=
                               job->chunks;
             ++i) {
            cpuRelax();
        }
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        finished_.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) ==
                   job->chunks;
        });
        if (job_ == job)
            job_.reset();
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

} // namespace base
} // namespace lia
