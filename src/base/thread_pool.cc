#include "base/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/logging.hh"

namespace lia {
namespace base {

namespace {

/** Set while a thread is executing chunks of some pool's job. */
thread_local bool tlsInsideWorker = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("LIA_THREADS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<int>(std::min(parsed, 256l));
        LIA_WARN("ignoring unparsable LIA_THREADS value \"", env, "\"");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hw, 1u, 256u));
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreadCount();
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunks(Job &job)
{
    const bool outer = !tlsInsideWorker;
    tlsInsideWorker = true;
    while (true) {
        const std::int64_t c =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.chunks)
            break;
        const std::int64_t begin = c * job.chunk;
        const std::int64_t end = std::min(job.n, begin + job.chunk);
        try {
            (*job.body)(begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errorMutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        job.done.fetch_add(1, std::memory_order_acq_rel);
    }
    if (outer)
        tlsInsideWorker = false;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        // Hold a shared_ptr while working: a straggler that dequeues
        // the job as the caller retires it must not touch freed state.
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        runChunks(*job);
        // Wake the caller in case this worker retired the final chunk.
        // The empty critical section is the classic lost-wakeup fence:
        // job.done is incremented outside mutex_, so without it the
        // final increment + notify could land between the caller's
        // predicate check (made under the lock) and its block, and the
        // caller would sleep forever. Taking the mutex here forces the
        // worker to wait until the caller either re-reads done under
        // the lock or is parked where notify_all can reach it.
        {
            std::lock_guard<std::mutex> lock(mutex_);
        }
        finished_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::int64_t n, std::int64_t grain,
                        const RangeFn &body)
{
    if (n <= 0)
        return;
    grain = std::max<std::int64_t>(grain, 1);
    // Inline when serial, nested, or too small to amortise a dispatch.
    // All three conditions are independent of scheduling, and chunk
    // bodies are self-contained, so the inline path is bit-identical.
    if (workers_.empty() || tlsInsideWorker || n <= grain) {
        body(0, n);
        return;
    }

    // Nested calls never reach here (inline path above), so an
    // observed loop is always a top-level one and never double-counts.
    ParallelObserver *obs = observer_.load(std::memory_order_acquire);
    if (obs) {
        const auto start = std::chrono::steady_clock::now();
        parallelForDispatch(n, grain, body);
        const auto end = std::chrono::steady_clock::now();
        obs->onParallelFor(
            std::chrono::duration<double>(end - start).count());
        return;
    }
    parallelForDispatch(n, grain, body);
}

void
ThreadPool::parallelForDispatch(std::int64_t n, std::int64_t grain,
                                const RangeFn &body)
{

    // The pool has a single job slot, so concurrent external callers
    // take turns: the second blocks here until the first drains. A
    // body that re-enters parallelFor never reaches this lock — the
    // caller thread is marked tlsInsideWorker while running chunks,
    // so nested calls take the inline path above.
    std::lock_guard<std::mutex> dispatch(dispatchMutex_);

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->n = n;
    // A few chunks per thread for load balance; boundaries depend only
    // on (n, grain, threadCount), keeping the partition deterministic.
    const std::int64_t target =
        static_cast<std::int64_t>(threadCount()) * 4;
    job->chunk = std::max(grain, (n + target - 1) / target);
    job->chunks = (n + job->chunk - 1) / job->chunk;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
    }
    wake_.notify_all();
    runChunks(*job);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        finished_.wait(lock, [&] {
            return job->done.load(std::memory_order_acquire) ==
                   job->chunks;
        });
        if (job_ == job)
            job_.reset();
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

} // namespace base
} // namespace lia
