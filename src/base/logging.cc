#include "base/logging.hh"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace lia {

namespace {

struct LogConfig
{
    LogLevel level = LogLevel::Normal;
    bool wallPrefix = false;
    bool simPrefix = false;
    std::ostream *stream = nullptr;           //!< nullptr = cout/cerr
    std::function<double()> simTime;
};

/** Parse one lowercase LIA_LOG token into @p cfg; false if unknown. */
bool
applyToken(LogConfig &cfg, const std::string &token)
{
    if (token.empty())
        return true;
    if (token == "quiet")
        cfg.level = LogLevel::Quiet;
    else if (token == "normal")
        cfg.level = LogLevel::Normal;
    else if (token == "verbose")
        cfg.level = LogLevel::Verbose;
    else if (token == "wall")
        cfg.wallPrefix = true;
    else if (token == "sim")
        cfg.simPrefix = true;
    else
        return false;
    return true;
}

LogConfig
parseEnv()
{
    LogConfig cfg;
    const char *env = std::getenv("LIA_LOG");
    if (!env)
        return cfg;
    std::string token;
    for (const char *p = env;; ++p) {
        if (*p != '\0' && *p != ',') {
            if (*p != ' ')
                token += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(*p)));
            continue;
        }
        if (!applyToken(cfg, token)) {
            std::cerr << "warn: ignoring unknown LIA_LOG token \""
                      << token << "\"" << std::endl;
        }
        token.clear();
        if (*p == '\0')
            break;
    }
    return cfg;
}

LogConfig &
config()
{
    static LogConfig cfg = parseEnv();
    return cfg;
}

/** Wall seconds since the first message (or config touch). */
double
wallSeconds()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
prefix()
{
    const LogConfig &cfg = config();
    std::string out;
    char buf[48];
    if (cfg.wallPrefix) {
        std::snprintf(buf, sizeof(buf), "[wall %.3fs] ", wallSeconds());
        out += buf;
    }
    if (cfg.simPrefix && cfg.simTime) {
        std::snprintf(buf, sizeof(buf), "[sim %.6fs] ", cfg.simTime());
        out += buf;
    }
    return out;
}

std::ostream &
outStream()
{
    return config().stream ? *config().stream : std::cout;
}

std::ostream &
errStream()
{
    return config().stream ? *config().stream : std::cerr;
}

} // namespace

LogLevel
logLevel()
{
    return config().level;
}

void
setLogLevel(LogLevel level)
{
    config().level = level;
}

void
setLogStream(std::ostream *out)
{
    config().stream = out;
}

void
setWallTimePrefix(bool enable)
{
    config().wallPrefix = enable;
    if (enable)
        wallSeconds();  // pin the epoch
}

void
setSimTimePrefix(bool enable)
{
    config().simPrefix = enable;
}

void
setSimTimeProvider(std::function<double()> provider)
{
    config().simTime = std::move(provider);
}

namespace detail {

namespace {

/**
 * When set (used by unit tests), panic/fatal throw instead of
 * terminating the process so death paths can be exercised in-process.
 */
bool throwOnError = false;

} // namespace

void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " @ " << file << ":" << line;
    if (throwOnError)
        throw std::logic_error(oss.str());
    std::cerr << oss.str() << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " @ " << file << ":" << line;
    if (throwOnError)
        throw std::runtime_error(oss.str());
    std::cerr << oss.str() << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    errStream() << prefix() << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    outStream() << prefix() << "info: " << msg << std::endl;
}

void
verboseImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    outStream() << prefix() << "verbose: " << msg << std::endl;
}

} // namespace detail
} // namespace lia
