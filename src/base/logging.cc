#include "base/logging.hh"

#include <stdexcept>

namespace lia {
namespace detail {

namespace {

/**
 * When set (used by unit tests), panic/fatal throw instead of
 * terminating the process so death paths can be exercised in-process.
 */
bool throwOnError = false;

} // namespace

void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " @ " << file << ":" << line;
    if (throwOnError)
        throw std::logic_error(oss.str());
    std::cerr << oss.str() << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " @ " << file << ":" << line;
    if (throwOnError)
        throw std::runtime_error(oss.str());
    std::cerr << oss.str() << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace lia
