#include "base/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace lia {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LIA_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LIA_ASSERT(cells.size() == headers_.size(),
               "row width ", cells.size(), " != header width ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    // An empty row vector marks a separator when printing.
    rows_.emplace_back();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
fmtDouble(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

std::string
fmtSeconds(double seconds)
{
    if (std::abs(seconds) >= 1.0)
        return fmtDouble(seconds, 2) + " s";
    if (std::abs(seconds) >= 1e-3)
        return fmtDouble(seconds * 1e3, 2) + " ms";
    return fmtDouble(seconds * 1e6, 2) + " us";
}

std::string
fmtBytes(double bytes)
{
    const char *suffixes[] = {"B", "KB", "MB", "GB", "TB"};
    int idx = 0;
    while (std::abs(bytes) >= 1000.0 && idx < 4) {
        bytes /= 1000.0;
        ++idx;
    }
    return fmtDouble(bytes, idx == 0 ? 0 : 2) + " " + suffixes[idx];
}

std::string
fmtThroughput(double flops)
{
    if (std::abs(flops) >= 1e12)
        return fmtDouble(flops / 1e12, 2) + " TFLOPS";
    return fmtDouble(flops / 1e9, 2) + " GFLOPS";
}

std::string
fmtRatio(double ratio)
{
    return fmtDouble(ratio, 2) + "x";
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmtDouble(fraction * 100.0, decimals) + "%";
}

} // namespace lia
