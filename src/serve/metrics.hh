/**
 * @file
 * Serving-metrics layer.
 *
 * Aggregates the quantities an online LLM service is judged by:
 * per-request time-to-first-token, time-between-tokens, end-to-end
 * latency, queue depth over time, engine utilisation, and goodput
 * (completions that met their SLOs) — all as SampleStats so the
 * benches report percentiles, not just means.
 */

#ifndef LIA_SERVE_METRICS_HH
#define LIA_SERVE_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/table.hh"
#include "obs/histogram.hh"
#include "serve/config.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/** Aggregated outcome of one serving run. */
struct Metrics
{
    SampleStats ttft;           //!< time-to-first-token, seconds
    SampleStats tbt;            //!< per-request mean time between tokens
    SampleStats tokenGap;       //!< every inter-token interval (tail TBT)
    SampleStats responseTime;   //!< end-to-end seconds
    SampleStats queueWait;      //!< seconds queued before admission
    SampleStats queueDepth;     //!< waiting requests at iteration starts
    SampleStats batchOccupancy; //!< running batch size at iteration starts
    SampleStats kvOccupancy;    //!< reserved/budget at iteration starts

    // --- Streaming histograms (DESIGN.md §13) ------------------------
    //
    // The latency signals again, as log-bucketed obs::Histogram: exact
    // counts, O(buckets) state, and loss-free merge() — the form the
    // blame reports, Prometheus exposition, and cluster aggregation
    // consume. SampleStats above stays the source of exact order
    // statistics for the existing tables and JSON summaries.

    obs::Histogram ttftHist;     //!< time-to-first-token, seconds
    obs::Histogram tokenGapHist; //!< every inter-token interval
    obs::Histogram responseHist; //!< end-to-end seconds

    std::size_t completed = 0;      //!< requests fully served
    std::size_t rejectedCapacity = 0;  //!< never fit the KV budget
    std::size_t shedSlo = 0;        //!< dropped by SLO admission control

    std::uint64_t iterations = 0;   //!< engine iterations executed
    std::int64_t tokensGenerated = 0;
    double makespan = 0;            //!< simulated span, seconds
    double busyTime = 0;            //!< engine-occupied seconds

    // --- Preemption / chunked-prefill accounting ---------------------

    std::size_t preemptions = 0;    //!< victims evicted or swapped out
    std::size_t swapOuts = 0;       //!< preemptions served by CXL swap
    std::size_t swapIns = 0;        //!< swapped caches restored
    std::size_t recomputes = 0;     //!< evictions repaid by re-prefill
    std::size_t prefillChunks = 0;  //!< chunked-prefill work items run
    double swapOutBytes = 0;        //!< KV bytes moved DDR -> CXL
    double swapInBytes = 0;         //!< KV bytes moved CXL -> DDR
    double swapBusyTime = 0;        //!< swap-channel occupied seconds
    double kvReservedPeakBytes = 0; //!< high-water KV reservation

    // --- Prefix-cache accounting -------------------------------------

    std::size_t prefixLookups = 0;  //!< admissions that probed the cache
    std::size_t prefixHits = 0;     //!< admissions that matched a prefix
    std::int64_t prefixHitTokens = 0;       //!< prefill tokens skipped
    std::int64_t prefixInsertedTokens = 0;  //!< tokens newly cached
    std::int64_t prefixEvictedTokens = 0;   //!< cached tokens dropped
    std::int64_t prefixDemotedTokens = 0;   //!< cached tokens moved to CXL
    double prefixCxlReadBytes = 0;  //!< demoted bytes read back on hits
    double prefixCachePeakBytes = 0;  //!< high-water resident cache

    // --- Speculative-decoding accounting (DESIGN.md §11) -------------

    std::size_t specSteps = 0;          //!< draft+verify iterations
    std::int64_t specDraftedTokens = 0; //!< draft tokens proposed
    std::int64_t specAcceptedTokens = 0; //!< drafts verified correct

    /** All requests turned away, for any reason. */
    std::size_t rejected() const { return rejectedCapacity + shedSlo; }

    /** Fraction of cache probes that matched a shared prefix. */
    double prefixHitRate() const
    {
        return prefixLookups > 0
                   ? static_cast<double>(prefixHits) /
                         static_cast<double>(prefixLookups)
                   : 0.0;
    }

    /** Fraction of proposed draft tokens the target accepted. */
    double specAcceptanceRate() const
    {
        return specDraftedTokens > 0
                   ? static_cast<double>(specAcceptedTokens) /
                         static_cast<double>(specDraftedTokens)
                   : 0.0;
    }

    /** Preemptions per completed request. */
    double preemptionRate() const
    {
        return completed > 0 ? static_cast<double>(preemptions) /
                                   static_cast<double>(completed)
                             : 0.0;
    }

    /** Engine busy fraction. */
    double utilisation() const;

    /** Completed requests per second of simulated time. */
    double completedPerSecond() const;

    /** Generated tokens per second of simulated time. */
    double tokensPerSecond() const;

    /** Whether the offered load kept the system stable. */
    bool saturated() const { return utilisation() > 0.999; }

    /**
     * Fold @p other into this record, turning per-replica metrics into
     * fleet metrics: every SampleStats absorbs the other's samples (so
     * percentiles are over the union), counters and byte totals sum,
     * busyTime and swapBusyTime sum (fleet utilisation over a shared
     * clock can therefore exceed 1 per replica-count), makespan takes
     * the max (replicas share one simulated clock), and
     * kvReservedPeakBytes sums — the fleet-wide upper bound, since
     * per-replica peaks need not coincide. Merging a
     * default-constructed Metrics is a no-op.
     */
    void merge(const Metrics &other);

    /**
     * The full metrics record as a JSON object: every SampleStats as
     * {"count", "mean", "p50", "p95", "p99", "p999", "min", "max"}
     * (zeros when empty), the streaming histograms under "hist", plus
     * the scalar counters and derived rates. Deterministic number
     * formatting (obs::jsonNumber), so benches embed it in their
     * artifacts instead of hand-rolling fields.
     */
    std::string toJson() const;
};

/**
 * The standard latency table: @p first_col then mean / p50 / p95 /
 * p99 / p99.9 (seconds) and a mean-vs-baseline ratio column. Fill it
 * with addLatencyRow so every example and bench prints distributions
 * the same way.
 */
TextTable latencyTable(const std::string &first_col);

/**
 * Append @p stats as a latencyTable() row labelled @p label. The
 * ratio cell compares means against @p baseline_mean; pass <= 0 (or
 * an empty @p stats) to print "-" instead.
 */
void addLatencyRow(TextTable &table, const std::string &label,
                   const SampleStats &stats, double baseline_mean = 0);

/** Whether a finished request met every enabled SLO target. */
bool meetsSlo(const Request &request, const SloTargets &slo);

/**
 * Goodput: completed requests that met every enabled SLO target, per
 * second of simulated time (all completions when no target is set).
 */
double goodputPerSecond(const std::vector<Request> &requests,
                        const SloTargets &slo, double makespan);

/** Fraction of completed requests meeting every enabled SLO target. */
double sloAttainment(const std::vector<Request> &requests,
                     const SloTargets &slo);

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_METRICS_HH
