#include "serve/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "obs/sink.hh"
#include "serve/tracks.hh"

namespace lia {
namespace serve {

using model::Stage;

Scheduler::Scheduler(const Config &config,
                     const IterationCostCache &costs,
                     AdmissionController &admission)
    : config_(config), costs_(costs), admission_(admission)
{
}

void
Scheduler::setPlannerCap(std::int64_t cap)
{
    LIA_ASSERT(cap >= 0, "bad planner cap");
    plannerCap_ = cap;
}

std::int64_t
Scheduler::decodeBatchCap(std::int64_t context) const
{
    if (config_.slo.tbt <= 0)
        return config_.maxBatch;
    const std::int64_t key = costs_.bucketContext(context);
    auto it = tbtCapByContext_.find(key);
    if (it != tbtCapByContext_.end())
        return it->second;

    // Step time grows with batch, so binary-search the largest batch
    // still within the TBT budget; a lone request is always allowed
    // even when it violates (the alternative is starvation).
    std::int64_t lo = 1, hi = config_.maxBatch;
    if (costs_.time(Stage::Decode, hi, key) <= config_.slo.tbt) {
        lo = hi;
    } else {
        while (lo < hi) {
            const std::int64_t mid = (lo + hi + 1) / 2;
            if (costs_.time(Stage::Decode, mid, key) <= config_.slo.tbt)
                lo = mid;
            else
                hi = mid - 1;
        }
    }
    tbtCapByContext_.emplace(key, lo);
    return lo;
}

std::int64_t
Scheduler::specDraftTokensFor(const Request &request) const
{
    if (!config_.spec.enabled || request.inPrefill())
        return 0;
    return std::max<std::int64_t>(
        0, std::min(config_.spec.draftTokens,
                    request.lOut - request.generated - 1));
}

double
Scheduler::swapCost(const Request &request) const
{
    if (!admission_.canSwapOut(request))
        return std::numeric_limits<double>::infinity();
    // The cache crosses the DDR<->CXL channel twice: out now, back in
    // once pressure clears.
    return 2.0 *
           admission_.swapTransferSeconds(request.kvReservedBytes);
}

double
Scheduler::recomputeCost(const Request &request) const
{
    // Rebuilding the cache replays prompt + generated tokens as a
    // single-sequence prefill.
    return costs_.time(Stage::Prefill, 1,
                       std::max<std::int64_t>(request.context(), 1));
}

void
Scheduler::addChunk(IterationPlan &plan, std::size_t index,
                    const Request &request) const
{
    std::int64_t remaining = request.prefillTarget - request.prefilled;
    LIA_ASSERT(remaining > 0, "chunk for a completed prefill");
    if (config_.prefillChunkTokens > 0 &&
        config_.policy != SchedulerPolicy::StaticFifo)
        remaining = std::min(remaining, config_.prefillChunkTokens);
    // History counts every KV token materialised before the chunk —
    // including a prefix-cache hit's attached tokens — so attention
    // pricing and the backend's cache-length lockstep both see the
    // true context.
    plan.chunks.push_back(
        {index, remaining, request.prefixHitTokens + request.prefilled});
}

PrefixMatch
Scheduler::probeCache(IterationPlan &plan, const Request &request) const
{
    PrefixMatch match;
    if (cache_ == nullptr)
        return match;
    ++plan.prefixLookups;
    // Cap at lIn - 1: the prefill pass must process at least one
    // token, because its final position samples the first output.
    return cache_->lookup(cache_->promptOf(request), request.lIn - 1);
}

void
Scheduler::commitMatch(IterationPlan &plan, const PrefixMatch &match,
                       std::size_t index, Request &request)
{
    request.prefixHitTokens = 0;
    request.prefixNode = 0;
    if (!match.hit())
        return;
    plan.prefixHits.push_back(cache_->commitHit(match, index));
    request.prefixHitTokens = match.tokens;
    request.prefixNode = match.path.back();
    request.prefillTarget = request.lIn - match.tokens;
    LIA_ASSERT(request.prefillTarget >= 1,
               "prefix hit left nothing to prefill");
}

bool
Scheduler::reclaimCache(IterationPlan &plan, double deficit)
{
    if (cache_ == nullptr || deficit <= 0)
        return false;
    auto ops = cache_->makeRoom(deficit);
    if (ops.empty())
        return false;
    plan.prefixOps.insert(plan.prefixOps.end(), ops.begin(), ops.end());
    return true;
}

bool
Scheduler::admitWithReclaim(IterationPlan &plan, const Request &request)
{
    if (admission_.canAdmit(request))
        return true;
    const double deficit = admission_.reservedBytes() +
                           admission_.cacheDdrBytes() +
                           admission_.requestKvBytes(request) -
                           admission_.kvBudgetBytes();
    if (!reclaimCache(plan, deficit))
        return false;
    return admission_.canAdmit(request);
}

bool
Scheduler::fitsWithReclaim(IterationPlan &plan, double bytes,
                           double watermark)
{
    if (admission_.fitsBytes(bytes, watermark))
        return true;
    const double deficit =
        admission_.reservedBytes() + admission_.cacheDdrBytes() +
        bytes - admission_.kvBudgetBytes() * (1.0 - watermark);
    if (!reclaimCache(plan, deficit))
        return false;
    return admission_.fitsBytes(bytes, watermark);
}

IterationPlan
Scheduler::next(double now, const std::vector<std::size_t> &queue,
                const std::vector<std::size_t> &active,
                std::vector<Request> &requests)
{
    SchedulerState state;
    state.queue = queue;
    state.active = active;
    return next(now, state, requests);
}

IterationPlan
Scheduler::next(double now, const SchedulerState &state,
                std::vector<Request> &requests)
{
    if (config_.policy == SchedulerPolicy::Preemptive)
        return nextPreemptive(now, state, requests);

    IterationPlan plan;
    const std::vector<std::size_t> &queue = state.queue;
    const std::vector<std::size_t> &active = state.active;

    if (config_.policy == SchedulerPolicy::StaticFifo) {
        if (!active.empty()) {
            // Cohort in flight: decode everyone still running, priced
            // at the cohort's *initial* size — finished requests do
            // not give their slot back until the whole cohort drains.
            plan.decode = active;
            plan.decodePriceBatch = staticCohort_;
            plan.batchCap = config_.maxBatch;
            if (config_.spec.enabled)
                for (std::size_t index : plan.decode)
                    plan.specDrafts.push_back(
                        specDraftTokensFor(requests[index]));
            return plan;
        }
        for (std::size_t index : queue) {
            if (static_cast<std::int64_t>(plan.admit.size()) >=
                config_.maxBatch)
                break;
            Request &request = requests[index];
            if (!admitWithReclaim(plan, request))
                break;  // FIFO: the head of the line blocks
            const PrefixMatch match = probeCache(plan, request);
            admission_.reserve(request);
            request.prefillTarget = request.lIn;
            commitMatch(plan, match, index, request);
            plan.admit.push_back(index);
            addChunk(plan, index, request);
        }
        staticCohort_ = static_cast<std::int64_t>(plan.admit.size());
        plan.batchCap = config_.maxBatch;
        return plan;
    }

    // Continuous batching: every decoding request takes one token per
    // iteration, in-flight prefills continue their chunks, and the
    // batch is topped up from the queue.
    const bool slo = config_.policy == SchedulerPolicy::SloAware;
    for (std::size_t index : active) {
        if (requests[index].inPrefill())
            addChunk(plan, index, requests[index]);
        else
            plan.decode.push_back(index);
    }
    plan.decodePriceBatch =
        static_cast<std::int64_t>(plan.decode.size());
    if (config_.spec.enabled)
        for (std::size_t index : plan.decode)
            plan.specDrafts.push_back(
                specDraftTokensFor(requests[index]));

    std::int64_t cap = config_.maxBatch;
    if (slo && plannerCap_ > 0)
        cap = std::min(cap, plannerCap_);
    if (slo && config_.slo.tbt > 0) {
        // Cap growth where the *next* decode step would overshoot the
        // time-between-tokens budget.
        std::int64_t context = 1;
        for (std::size_t index : plan.decode)
            context =
                std::max(context, requests[index].context() + 1);
        cap = std::min(cap, decodeBatchCap(context));
    }
    plan.batchCap = cap;

    std::int64_t widest_prompt = 1;
    for (std::size_t index : queue) {
        const auto occupancy = static_cast<std::int64_t>(
            active.size() + plan.admit.size());
        if (occupancy >= cap)
            break;
        Request &request = requests[index];
        if (!admitWithReclaim(plan, request))
            break;  // FIFO: no skip-ahead past a blocked head
        // Probe before SLO shedding: a hit shrinks the prefill to the
        // suffix, which can rescue a request the cold estimate would
        // shed — hits reprice TTFT.
        const PrefixMatch match = probeCache(plan, request);
        const std::int64_t effective_prompt =
            std::max<std::int64_t>(request.lIn - match.tokens, 1);
        if (slo && config_.slo.ttft > 0) {
            // Shed requests that can no longer make their TTFT target
            // even if prefilled right now with the group so far. The
            // iteration also carries the decode step, bounded by the
            // TBT budget when one is in force.
            const std::int64_t prompt =
                std::max(widest_prompt, effective_prompt);
            const double prefill_estimate = costs_.time(
                Stage::Prefill,
                static_cast<std::int64_t>(plan.admit.size()) + 1,
                prompt);
            const double decode_share =
                config_.slo.tbt > 0 ? config_.slo.tbt : 0;
            if ((now - request.arrival) + prefill_estimate +
                    decode_share >
                config_.slo.ttft) {
                if (config_.sink) {
                    config_.sink->instant(
                        tracks::kScheduler, "shed.slo", now,
                        {obs::arg("request", static_cast<std::int64_t>(
                                                 request.id)),
                         obs::arg("queued_s", now - request.arrival),
                         obs::arg("prefill_estimate_s",
                                  prefill_estimate)});
                }
                plan.shed.push_back(index);
                continue;
            }
        }
        admission_.reserve(request);
        request.prefillTarget = request.lIn;
        commitMatch(plan, match, index, request);
        widest_prompt = std::max(widest_prompt, effective_prompt);
        plan.admit.push_back(index);
        addChunk(plan, index, request);
    }
    return plan;
}

IterationPlan
Scheduler::nextPreemptive(double now, const SchedulerState &state,
                          std::vector<Request> &requests)
{
    IterationPlan plan;
    plan.batchCap = config_.maxBatch;

    // Split the running batch into decode candidates and in-flight
    // prefills (whose KV is already reserved and does not grow).
    std::vector<std::size_t> decode;
    std::vector<std::size_t> prefilling;
    for (std::size_t index : state.active) {
        if (requests[index].inPrefill())
            prefilling.push_back(index);
        else
            decode.push_back(index);
    }

    // --- Preemption: make this iteration's KV growth fit -------------
    // Each decode step appends one token of KV per sequence. Victims
    // leave last-admitted-first (active order is admission order), and
    // each picks the cheaper exit per the analytical model: swap both
    // ways across the CXL pool vs a single-sequence recompute prefill.
    const double per_token = admission_.kvBytesPerToken();
    // A speculative decode can append up to k_eff + 1 tokens (full
    // acceptance plus the bonus), so the reservation grows by the
    // worst case up front; the engine shrinks it back to the verified
    // count once acceptance resolves. Spec off makes this exactly one
    // token per decode entry — bit-identical to the legacy plan.
    auto growthTokens = [&]() {
        std::int64_t tokens = 0;
        for (std::size_t index : decode)
            tokens += specDraftTokensFor(requests[index]) + 1;
        return tokens;
    };
    auto growthDeficit = [&]() {
        return admission_.reservedBytes() + admission_.cacheDdrBytes() +
               static_cast<double>(growthTokens()) * per_token -
               admission_.kvBudgetBytes();
    };
    // Live KV wins over cached prefixes: reclaim cold cache nodes
    // before preempting anyone.
    if (growthDeficit() > 0)
        reclaimCache(plan, growthDeficit());
    while (!decode.empty() && growthDeficit() > 0) {
        const std::size_t victim = decode.back();
        decode.pop_back();
        Request &request = requests[victim];
        const double swap = swapCost(request);
        const double recompute = recomputeCost(request);
        const bool swaps = swap <= recompute;
        if (config_.sink) {
            config_.sink->instant(
                tracks::kScheduler,
                swaps ? "preempt.swap_out" : "preempt.evict", now,
                {obs::arg("request",
                          static_cast<std::int64_t>(request.id)),
                 // An unswappable victim prices at infinity; JSON has
                 // no literal for it, so mark it as -1.
                 obs::arg("swap_cost_s",
                          std::isfinite(swap) ? swap : -1.0),
                 obs::arg("recompute_cost_s", recompute),
                 obs::arg("kv_bytes", request.kvReservedBytes)});
        }
        if (swaps) {
            admission_.swapOut(request);
            plan.swapOut.push_back(victim);
        } else {
            admission_.release(request);
            plan.evict.push_back(victim);
        }
    }
    for (std::size_t index : decode)
        admission_.grow(requests[index],
                        specDraftTokensFor(requests[index]) + 1);
    plan.decode = std::move(decode);
    plan.decodePriceBatch =
        static_cast<std::int64_t>(plan.decode.size());
    if (config_.spec.enabled)
        for (std::size_t index : plan.decode)
            plan.specDrafts.push_back(
                specDraftTokensFor(requests[index]));

    for (std::size_t index : prefilling)
        addChunk(plan, index, requests[index]);

    auto occupancy = [&]() {
        return static_cast<std::int64_t>(
            plan.decode.size() + plan.chunks.size() +
            plan.swapIn.size());
    };

    // --- Victim re-entry: swapped caches first, then recomputes ------
    // Only when this round preempted nobody (otherwise the freed bytes
    // would bounce straight back) and always against the full budget —
    // the watermark gates new work, not returning work.
    const bool stable = plan.swapOut.empty() && plan.evict.empty();
    if (stable) {
        for (std::size_t index : state.swappable) {
            if (occupancy() >= config_.maxBatch)
                break;
            Request &request = requests[index];
            if (!fitsWithReclaim(plan, request.kvSwappedBytes))
                break;  // FIFO: oldest swap-out returns first
            admission_.swapIn(request);
            plan.swapIn.push_back(index);
        }
        for (std::size_t index : state.preempted) {
            if (occupancy() >= config_.maxBatch)
                break;
            Request &request = requests[index];
            if (!fitsWithReclaim(plan,
                                 admission_.promptKvBytes(request)))
                break;
            admission_.reservePrompt(request);
            plan.resume.push_back(index);
            addChunk(plan, index, request);
        }
    }

    // --- Optimistic admission ----------------------------------------
    // New requests join against their prompt footprint plus the
    // watermark, and only while no victim is waiting to return —
    // otherwise fresh arrivals would starve preempted work forever.
    if (stable && state.preempted.empty() && state.swappedTotal == 0) {
        for (std::size_t index : state.queue) {
            if (occupancy() >= config_.maxBatch)
                break;
            Request &request = requests[index];
            request.prefillTarget = request.lIn;
            // promptKvBytes charges the full prompt whether or not the
            // cache will cover a prefix — hits save prefill time, not
            // reservation bytes (the attached prefix is a copy).
            request.prefixHitTokens = 0;
            request.prefixNode = 0;
            // Starvation guard: an empty engine admits its queue head
            // unconditionally (fitsAlone held at arrival) — otherwise
            // a prompt wider than (1 - watermark) of the budget would
            // block the queue forever.
            const double watermark =
                occupancy() == 0 && admission_.reservedBytes() == 0
                    ? 0.0
                    : config_.admissionWatermark;
            if (!fitsWithReclaim(plan,
                                 admission_.promptKvBytes(request),
                                 watermark))
                break;  // FIFO: no skip-ahead past a blocked head
            const PrefixMatch match = probeCache(plan, request);
            admission_.reservePrompt(request);
            commitMatch(plan, match, index, request);
            plan.admit.push_back(index);
            addChunk(plan, index, request);
        }
    }
    return plan;
}

} // namespace serve
} // namespace lia
