#include "serve/scheduler.hh"

#include <algorithm>

#include "base/logging.hh"

namespace lia {
namespace serve {

using model::Stage;

Scheduler::Scheduler(const Config &config,
                     const IterationCostCache &costs,
                     AdmissionController &admission)
    : config_(config), costs_(costs), admission_(admission)
{
}

void
Scheduler::setPlannerCap(std::int64_t cap)
{
    LIA_ASSERT(cap >= 0, "bad planner cap");
    plannerCap_ = cap;
}

std::int64_t
Scheduler::decodeBatchCap(std::int64_t context) const
{
    if (config_.slo.tbt <= 0)
        return config_.maxBatch;
    const std::int64_t key = costs_.bucketContext(context);
    auto it = tbtCapByContext_.find(key);
    if (it != tbtCapByContext_.end())
        return it->second;

    // Step time grows with batch, so binary-search the largest batch
    // still within the TBT budget; a lone request is always allowed
    // even when it violates (the alternative is starvation).
    std::int64_t lo = 1, hi = config_.maxBatch;
    if (costs_.time(Stage::Decode, hi, key) <= config_.slo.tbt) {
        lo = hi;
    } else {
        while (lo < hi) {
            const std::int64_t mid = (lo + hi + 1) / 2;
            if (costs_.time(Stage::Decode, mid, key) <= config_.slo.tbt)
                lo = mid;
            else
                hi = mid - 1;
        }
    }
    tbtCapByContext_.emplace(key, lo);
    return lo;
}

IterationPlan
Scheduler::next(double now, const std::vector<std::size_t> &queue,
                const std::vector<std::size_t> &active,
                std::vector<Request> &requests)
{
    IterationPlan plan;

    if (config_.policy == SchedulerPolicy::StaticFifo) {
        if (!active.empty()) {
            // Cohort in flight: decode everyone still running, priced
            // at the cohort's *initial* size — finished requests do
            // not give their slot back until the whole cohort drains.
            plan.decode = active;
            plan.decodePriceBatch = staticCohort_;
            plan.batchCap = config_.maxBatch;
            return plan;
        }
        for (std::size_t index : queue) {
            if (static_cast<std::int64_t>(plan.admit.size()) >=
                config_.maxBatch)
                break;
            Request &request = requests[index];
            if (!admission_.canAdmit(request))
                break;  // FIFO: the head of the line blocks
            admission_.reserve(request);
            plan.admit.push_back(index);
        }
        staticCohort_ = static_cast<std::int64_t>(plan.admit.size());
        plan.batchCap = config_.maxBatch;
        return plan;
    }

    // Continuous batching: every unfinished admitted request decodes
    // one token per iteration; the batch is topped up from the queue.
    const bool slo = config_.policy == SchedulerPolicy::SloAware;
    plan.decode = active;
    plan.decodePriceBatch = static_cast<std::int64_t>(active.size());

    std::int64_t cap = config_.maxBatch;
    if (slo && plannerCap_ > 0)
        cap = std::min(cap, plannerCap_);
    if (slo && config_.slo.tbt > 0) {
        // Cap growth where the *next* decode step would overshoot the
        // time-between-tokens budget.
        std::int64_t context = 1;
        for (std::size_t index : active)
            context =
                std::max(context, requests[index].context() + 1);
        cap = std::min(cap, decodeBatchCap(context));
    }
    plan.batchCap = cap;

    std::int64_t widest_prompt = 1;
    for (std::size_t index : queue) {
        const auto occupancy = static_cast<std::int64_t>(
            active.size() + plan.admit.size());
        if (occupancy >= cap)
            break;
        Request &request = requests[index];
        if (!admission_.canAdmit(request))
            break;  // FIFO: no skip-ahead past a blocked head
        if (slo && config_.slo.ttft > 0) {
            // Shed requests that can no longer make their TTFT target
            // even if prefilled right now with the group so far. The
            // iteration also carries the decode step, bounded by the
            // TBT budget when one is in force.
            const std::int64_t prompt =
                std::max(widest_prompt, request.lIn);
            const double prefill_estimate = costs_.time(
                Stage::Prefill,
                static_cast<std::int64_t>(plan.admit.size()) + 1,
                prompt);
            const double decode_share =
                config_.slo.tbt > 0 ? config_.slo.tbt : 0;
            if ((now - request.arrival) + prefill_estimate +
                    decode_share >
                config_.slo.ttft) {
                plan.shed.push_back(index);
                continue;
            }
        }
        admission_.reserve(request);
        widest_prompt = std::max(widest_prompt, request.lIn);
        plan.admit.push_back(index);
    }
    return plan;
}

} // namespace serve
} // namespace lia
