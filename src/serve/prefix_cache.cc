#include "serve/prefix_cache.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "base/logging.hh"

namespace lia {
namespace serve {

std::vector<std::int64_t>
synthesizePrompt(std::uint64_t seed, const Request &request,
                 std::int64_t vocab)
{
    LIA_ASSERT(vocab > 0, "bad vocab size");
    const auto draw = [vocab](std::uint64_t &state) {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return static_cast<std::int64_t>(
            z % static_cast<std::uint64_t>(vocab));
    };

    std::vector<std::int64_t> tokens;
    tokens.reserve(static_cast<std::size_t>(request.lIn));
    if (request.poolId >= 0 && request.sharedLen > 0) {
        // The shared prefix comes from a pool-salted stream, so every
        // member of one pool opens with bit-identical tokens no matter
        // which request synthesizes them.
        std::uint64_t pool_state =
            seed * 0x94d049bb133111ebULL +
            static_cast<std::uint64_t>(request.poolId + 1) *
                0xda942042e4dd58b5ULL;
        const std::int64_t shared =
            std::min(request.sharedLen, request.lIn);
        for (std::int64_t i = 0; i < shared; ++i)
            tokens.push_back(draw(pool_state));
    }
    std::uint64_t state =
        seed * 0xbf58476d1ce4e5b9ULL + request.id + 1;
    while (static_cast<std::int64_t>(tokens.size()) < request.lIn)
        tokens.push_back(draw(state));
    return tokens;
}

PrefixCache::PrefixCache(const model::ModelConfig &model,
                         const Config &config,
                         AdmissionController &admission,
                         Pricing pricing)
    : model_(model), seed_(config.seed),
      blockTokens_(config.prefix.blockTokens), admission_(admission),
      pricing_(std::move(pricing))
{
    LIA_ASSERT(blockTokens_ >= 1, "bad prefix block size");
    LIA_ASSERT(static_cast<bool>(pricing_.recomputeSeconds),
               "prefix cache needs a recompute price");
}

std::vector<std::int64_t>
PrefixCache::promptOf(const Request &request) const
{
    return synthesizePrompt(seed_, request, model_.vocabSize);
}

PrefixCache::Node &
PrefixCache::node(std::uint64_t id)
{
    auto it = nodes_.find(id);
    LIA_ASSERT(it != nodes_.end(), "unknown prefix node ", id);
    return it->second;
}

const PrefixCache::Node &
PrefixCache::node(std::uint64_t id) const
{
    auto it = nodes_.find(id);
    LIA_ASSERT(it != nodes_.end(), "unknown prefix node ", id);
    return it->second;
}

double
PrefixCache::nodeBytes(const Node &n) const
{
    return model_.kvBytesPerToken() *
           static_cast<double>(n.tokens(blockTokens_));
}

std::map<std::vector<std::int64_t>, std::uint64_t> &
PrefixCache::siblingsOf(const Node &n)
{
    return n.parent == 0 ? rootChildren_ : node(n.parent).children;
}

namespace {

/** Copy of @p prompt's @p index-th whole block. */
std::vector<std::int64_t>
promptBlock(const std::vector<std::int64_t> &prompt, std::int64_t index,
            std::int64_t block_tokens)
{
    const auto first = prompt.begin() + index * block_tokens;
    return {first, first + block_tokens};
}

} // namespace

PrefixMatch
PrefixCache::lookup(const std::vector<std::int64_t> &prompt,
                    std::int64_t cap) const
{
    PrefixMatch match;
    const std::int64_t limit =
        std::min<std::int64_t>(
            cap, static_cast<std::int64_t>(prompt.size())) /
        blockTokens_;
    if (limit <= 0)
        return match;

    const auto *children = &rootChildren_;
    std::int64_t offset = 0;  // blocks matched so far
    while (offset < limit) {
        const auto it = children->find(
            promptBlock(prompt, offset, blockTokens_));
        if (it == children->end())
            break;
        const Node &child = node(it->second);
        std::int64_t m = 0;  // blocks matched inside this node
        while (m < static_cast<std::int64_t>(child.blocks.size()) &&
               offset + m < limit &&
               child.blocks[static_cast<std::size_t>(m)] ==
                   promptBlock(prompt, offset + m, blockTokens_))
            ++m;
        LIA_ASSERT(m >= 1, "child key matched but its span did not");
        match.path.push_back(child.id);
        match.terminalTokens = m * blockTokens_;
        if (child.demoted)
            match.cxlBytes += model_.kvBytesPerToken() *
                              static_cast<double>(m * blockTokens_);
        offset += m;
        if (m < static_cast<std::int64_t>(child.blocks.size()))
            break;  // partial use of this node ends the walk
        children = &child.children;
    }
    match.tokens = offset * blockTokens_;
    return match;
}

PrefixHit
PrefixCache::commitHit(const PrefixMatch &match, std::size_t index)
{
    LIA_ASSERT(match.hit() && !match.path.empty(),
               "committing an empty prefix match");
    for (std::uint64_t id : match.path)
        node(id).lastUse = ++clock_;
    Node &terminal = node(match.path.back());
    ++terminal.refs;

    PrefixHit hit;
    hit.index = index;
    hit.node = terminal.id;
    hit.tokens = match.tokens;
    hit.terminalTokens = match.terminalTokens;
    hit.cxlBytes = match.cxlBytes;
    hit.path = match.path;
    return hit;
}

void
PrefixCache::unpin(std::uint64_t id)
{
    Node &n = node(id);
    LIA_ASSERT(n.refs > 0, "unpin of an unpinned prefix node ", id);
    --n.refs;
}

std::uint64_t
PrefixCache::split(Node &child, std::int64_t keep,
                   std::vector<PrefixOp> &ops)
{
    LIA_ASSERT(keep >= 1 &&
                   keep < static_cast<std::int64_t>(child.blocks.size()),
               "bad split point ", keep, " of ", child.blocks.size(),
               " blocks");
    const std::uint64_t head_id = nextId_++;
    Node head;
    head.id = head_id;
    head.parent = child.parent;
    head.blocks.assign(child.blocks.begin(),
                       child.blocks.begin() + keep);
    head.startToken = child.startToken;
    head.lastUse = child.lastUse;
    head.demoted = child.demoted;

    // Re-key the parent edge onto the head (same first block), then
    // hang the tail — the original node, refs and all — under it.
    auto &siblings = siblingsOf(child);
    const auto edge = siblings.find(child.blocks.front());
    LIA_ASSERT(edge != siblings.end() && edge->second == child.id,
               "parent edge lost for node ", child.id);
    siblings.erase(edge);
    siblings.emplace(head.blocks.front(), head_id);

    child.blocks.erase(child.blocks.begin(),
                       child.blocks.begin() + keep);
    child.parent = head_id;
    child.startToken += keep * blockTokens_;
    head.children.emplace(child.blocks.front(), child.id);

    PrefixOp op;
    op.kind = PrefixOp::Kind::Split;
    op.node = head_id;
    op.tail = child.id;
    op.tokens = keep * blockTokens_;
    ops.push_back(op);
    nodes_.emplace(head_id, std::move(head));
    return head_id;
}

std::vector<PrefixOp>
PrefixCache::insert(const std::vector<std::int64_t> &prompt,
                    std::uint64_t request_id)
{
    std::vector<PrefixOp> ops;
    const std::int64_t total =
        static_cast<std::int64_t>(prompt.size()) / blockTokens_;
    if (total <= 0)
        return ops;

    std::uint64_t parent_id = 0;
    auto *children = &rootChildren_;
    // Nodes the walk stands on: reclaim for headroom must not evict
    // the very ancestors the new node will hang beneath.
    std::set<std::uint64_t> path;
    std::int64_t offset = 0;
    while (offset < total) {
        const auto it = children->find(
            promptBlock(prompt, offset, blockTokens_));
        if (it == children->end()) {
            // Nothing shares this continuation: cache the remainder as
            // one new node, but only out of DDR headroom — reclaim
            // colder cache first, never live KV, and give up (leaving
            // the prefix uncached) when headroom still cannot cover it.
            const std::int64_t remaining = total - offset;
            const double bytes =
                model_.kvBytesPerToken() *
                static_cast<double>(remaining * blockTokens_);
            if (bytes > admission_.ddrHeadroom()) {
                auto reclaimed =
                    makeRoom(bytes - admission_.ddrHeadroom(), &path);
                ops.insert(ops.end(), reclaimed.begin(),
                           reclaimed.end());
            }
            if (bytes > admission_.ddrHeadroom())
                return ops;

            const std::uint64_t id = nextId_++;
            Node fresh;
            fresh.id = id;
            fresh.parent = parent_id;
            fresh.blocks.reserve(static_cast<std::size_t>(remaining));
            for (std::int64_t b = 0; b < remaining; ++b)
                fresh.blocks.push_back(promptBlock(
                    prompt, offset + b, blockTokens_));
            fresh.startToken = offset * blockTokens_;
            fresh.lastUse = ++clock_;
            children->emplace(fresh.blocks.front(), id);
            nodes_.emplace(id, std::move(fresh));
            admission_.cacheReserve(bytes);
            ddrBytes_ += bytes;

            PrefixOp op;
            op.kind = PrefixOp::Kind::Insert;
            op.node = id;
            op.source = request_id;
            op.startToken = offset * blockTokens_;
            op.tokens = remaining * blockTokens_;
            ops.push_back(op);
            return ops;
        }

        Node &child = node(it->second);
        std::int64_t m = 0;
        while (m < static_cast<std::int64_t>(child.blocks.size()) &&
               offset + m < total &&
               child.blocks[static_cast<std::size_t>(m)] ==
                   promptBlock(prompt, offset + m, blockTokens_))
            ++m;
        LIA_ASSERT(m >= 1, "child key matched but its span did not");
        if (m == static_cast<std::int64_t>(child.blocks.size())) {
            child.lastUse = ++clock_;
            offset += m;
            parent_id = child.id;
            path.insert(child.id);
            children = &child.children;
            continue;
        }
        // The prompt leaves this node mid-span: split at the boundary.
        // If the prompt is exhausted the split head IS the insertion;
        // otherwise the next round finds no edge for the diverging
        // block and caches the remainder under the head.
        const std::uint64_t head_id = split(child, m, ops);
        node(head_id).lastUse = ++clock_;
        offset += m;
        parent_id = head_id;
        path.insert(head_id);
        children = &node(head_id).children;
    }
    return ops;
}

std::vector<PrefixOp>
PrefixCache::makeRoom(double bytes, const std::set<std::uint64_t> *keep)
{
    std::vector<PrefixOp> ops;
    std::set<std::uint64_t> unmovable;
    double freed = 0;
    while (freed < bytes) {
        // LRU victim: the oldest unpinned resident node. Pinned nodes
        // are protected by their refcount. Interior nodes stay
        // matchable for their subtree, so they can only *demote* —
        // eviction would orphan the children — and ones that cannot
        // demote (pricing or a full pool) are skipped, not dropped.
        Node *victim = nullptr;
        for (auto &entry : nodes_) {
            Node &n = entry.second;
            if (n.demoted || n.refs > 0 || unmovable.count(n.id) ||
                (keep != nullptr && keep->count(n.id)))
                continue;
            if (victim == nullptr ||
                n.lastUse < victim->lastUse ||
                (n.lastUse == victim->lastUse && n.id < victim->id))
                victim = &n;
        }
        if (victim == nullptr)
            break;
        const double victim_bytes = nodeBytes(*victim);
        const std::int64_t prefix_end =
            victim->startToken + victim->tokens(blockTokens_);

        // §5 pricing: demote to CXL when one read-back of the span
        // costs less than re-prefilling its whole prefix (that is
        // what a future hit saves); otherwise the node is not worth
        // pool space and is dropped.
        bool demote =
            static_cast<bool>(pricing_.transferSeconds) &&
            pricing_.transferSeconds(victim_bytes) <=
                pricing_.recomputeSeconds(prefix_end);
        if (demote) {
            // Make pool room by dropping the coldest demoted leaves.
            while (!admission_.cacheCxlFits(victim_bytes)) {
                Node *cold = nullptr;
                for (auto &entry : nodes_) {
                    Node &n = entry.second;
                    if (!n.demoted || n.refs > 0 ||
                        !n.children.empty() ||
                        (keep != nullptr && keep->count(n.id)))
                        continue;
                    if (cold == nullptr ||
                        n.lastUse < cold->lastUse ||
                        (n.lastUse == cold->lastUse &&
                         n.id < cold->id))
                        cold = &n;
                }
                if (cold == nullptr)
                    break;
                const double cold_bytes = nodeBytes(*cold);
                admission_.cacheDropCxl(cold_bytes);
                cxlBytes_ -= cold_bytes;
                PrefixOp drop;
                drop.kind = PrefixOp::Kind::DropCxl;
                drop.node = cold->id;
                drop.tokens = cold->tokens(blockTokens_);
                ops.push_back(drop);
                siblingsOf(*cold).erase(cold->blocks.front());
                nodes_.erase(cold->id);
            }
            demote = admission_.cacheCxlFits(victim_bytes);
        }
        if (!demote && !victim->children.empty()) {
            // An interior node the pricing (or pool) refuses to
            // demote stays resident: evicting it would strand its
            // subtree. Look for the next-oldest victim instead.
            unmovable.insert(victim->id);
            continue;
        }

        PrefixOp op;
        op.node = victim->id;
        op.tokens = victim->tokens(blockTokens_);
        if (demote) {
            victim->demoted = true;
            admission_.cacheDemote(victim_bytes);
            ddrBytes_ -= victim_bytes;
            cxlBytes_ += victim_bytes;
            op.kind = PrefixOp::Kind::Demote;
        } else {
            admission_.cacheRelease(victim_bytes);
            ddrBytes_ -= victim_bytes;
            op.kind = PrefixOp::Kind::Evict;
            siblingsOf(*victim).erase(victim->blocks.front());
            nodes_.erase(victim->id);
        }
        ops.push_back(op);
        freed += victim_bytes;
    }
    return ops;
}

void
PrefixCache::checkInvariants() const
{
    double resident = 0, demoted = 0;
    for (const auto &entry : nodes_) {
        const Node &n = entry.second;
        LIA_ASSERT(n.refs >= 0, "negative refcount on node ", n.id);
        LIA_ASSERT(!n.blocks.empty(), "empty prefix node ", n.id);
        for (const auto &block : n.blocks)
            LIA_ASSERT(static_cast<std::int64_t>(block.size()) ==
                           blockTokens_,
                       "ragged block in node ", n.id);
        if (n.parent == 0) {
            const auto it = rootChildren_.find(n.blocks.front());
            LIA_ASSERT(it != rootChildren_.end() &&
                           it->second == n.id,
                       "root edge lost for node ", n.id);
            LIA_ASSERT(n.startToken == 0, "root child node ", n.id,
                       " starts at token ", n.startToken);
        } else {
            const Node &parent = node(n.parent);
            const auto it = parent.children.find(n.blocks.front());
            LIA_ASSERT(it != parent.children.end() &&
                           it->second == n.id,
                       "parent edge lost for node ", n.id);
            LIA_ASSERT(n.startToken ==
                           parent.startToken +
                               parent.tokens(blockTokens_),
                       "node ", n.id, " start drifted");
        }
        (n.demoted ? demoted : resident) += nodeBytes(n);
    }
    LIA_ASSERT(std::abs(resident - ddrBytes_) < 0.5,
               "resident cache ledger drifted: nodes hold ", resident,
               " bytes, ledger says ", ddrBytes_);
    LIA_ASSERT(std::abs(demoted - cxlBytes_) < 0.5,
               "demoted cache ledger drifted");
    LIA_ASSERT(std::abs(admission_.cacheDdrBytes() - ddrBytes_) < 0.5,
               "admission cache account drifted from the tree");
    LIA_ASSERT(std::abs(admission_.cacheCxlBytes() - cxlBytes_) < 0.5,
               "admission CXL cache account drifted from the tree");
}

std::vector<PrefixCache::NodeView>
PrefixCache::nodes() const
{
    std::vector<NodeView> views;
    views.reserve(nodes_.size());
    for (const auto &entry : nodes_) {
        const Node &n = entry.second;
        NodeView view;
        view.id = n.id;
        view.parent = n.parent;
        view.tokens = n.tokens(blockTokens_);
        view.startToken = n.startToken;
        view.refs = n.refs;
        view.lastUse = n.lastUse;
        view.demoted = n.demoted;
        view.children = n.children.size();
        views.push_back(view);
    }
    return views;
}

} // namespace serve
} // namespace lia
