#include "serve/admission.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/memory_policy.hh"
#include "core/policy.hh"
#include "model/footprint.hh"

namespace lia {
namespace serve {

AdmissionController::AdmissionController(
    const hw::SystemConfig &system, const model::ModelConfig &model,
    const Config &config)
    : model_(model)
{
    // Reuse the §6 planner to decide where parameters live. The spill
    // is only legal when the decode-stage policy keeps the
    // parameter-dependent sublayers on the GPU, which is what the
    // planner checks; probe it with the full-GPU policy at a
    // representative single-sequence shape.
    double param_ddr = model.totalParamBytes();
    double param_cxl = 0;
    if (config.cxlSpill && system.cxl.present()) {
        const auto placement = core::planMemoryPlacement(
            system, model, 1, 512, 1, core::Policy::fullGpu());
        if (placement.paramTier == core::HostTier::Cxl) {
            paramsInCxl_ = true;
            param_cxl =
                model.totalParamBytes() * placement.paramCxlFraction;
            param_ddr = model.totalParamBytes() - param_cxl;
        }
    }

    // Reserve headroom for the activation working set of the largest
    // iteration the scheduler can launch (a full-batch prefill at the
    // context ceiling), and keep a 5% safety margin for the rest of
    // the host.
    const double activations = model::activationBytes(
        model, config.maxBatch,
        std::min(config.maxContext, model.maxSeqLen));
    kvBudget_ = std::max(0.0, 0.95 * system.cpuMemory.capacity -
                                  param_ddr - activations);
    if (config.kvBudgetCapBytes > 0)
        kvBudget_ = std::min(kvBudget_, config.kvBudgetCapBytes);

    // CXL capacity left after spilled parameters is the swap pool the
    // preemptive scheduler parks evicted KV caches in; the pool's
    // interleaved bandwidth prices each swap direction.
    if (system.cxl.present()) {
        swapPool_ = std::max(
            0.0, 0.95 * system.cxl.totalCapacity() - param_cxl);
        swapBandwidth_ = system.cxl.interleavedBandwidth();
        swapLatency_ = system.cxl.latency;
    }
}

double
AdmissionController::kvBytesPerToken() const
{
    return model_.kvBytesPerToken();
}

double
AdmissionController::requestKvBytes(const Request &request) const
{
    return model_.kvBytesPerToken() *
           static_cast<double>(request.lIn + request.lOut);
}

double
AdmissionController::promptKvBytes(const Request &request) const
{
    // A prefix-cache hit still materialises the matched tokens (they
    // are attached, not recomputed), so the pass's KV footprint is the
    // hit plus the remaining prefill target — numerically the same
    // context the request would build cold.
    const std::int64_t target =
        request.prefillTarget > 0
            ? request.prefillTarget + request.prefixHitTokens
            : request.lIn;
    return model_.kvBytesPerToken() * static_cast<double>(target);
}

bool
AdmissionController::fitsAlone(const Request &request) const
{
    return requestKvBytes(request) <= kvBudget_;
}

bool
AdmissionController::canAdmit(const Request &request) const
{
    return reserved_ + cacheDdr_ + requestKvBytes(request) <= kvBudget_;
}

bool
AdmissionController::fitsBytes(double bytes, double watermark) const
{
    return reserved_ + cacheDdr_ + bytes <=
           kvBudget_ * (1.0 - watermark);
}

void
AdmissionController::reserve(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes == 0, "double reservation");
    request.kvReservedBytes = requestKvBytes(request);
    reserved_ += request.kvReservedBytes;
    LIA_ASSERT(reserved_ + cacheDdr_ <= kvBudget_ * (1 + 1e-9),
               "KV reservation exceeds the budget");
}

void
AdmissionController::reservePrompt(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes == 0, "double reservation");
    request.kvReservedBytes = promptKvBytes(request);
    reserved_ += request.kvReservedBytes;
    LIA_ASSERT(reserved_ + cacheDdr_ <= kvBudget_ * (1 + 1e-9),
               "KV reservation exceeds the budget");
}

void
AdmissionController::grow(Request &request, std::int64_t tokens)
{
    LIA_ASSERT(tokens >= 1, "bad reservation growth");
    LIA_ASSERT(request.kvReservedBytes > 0, "grow without reserve");
    const double bytes =
        model_.kvBytesPerToken() * static_cast<double>(tokens);
    request.kvReservedBytes += bytes;
    reserved_ += bytes;
    LIA_ASSERT(reserved_ + cacheDdr_ <= kvBudget_ * (1 + 1e-9),
               "KV growth exceeds the budget");
}

void
AdmissionController::shrink(Request &request, std::int64_t tokens)
{
    LIA_ASSERT(tokens >= 0, "bad reservation shrink");
    if (tokens == 0)
        return;
    LIA_ASSERT(request.kvReservedBytes > 0, "shrink without reserve");
    const double bytes =
        model_.kvBytesPerToken() * static_cast<double>(tokens);
    LIA_ASSERT(request.kvReservedBytes > bytes - 0.5,
               "shrink below the materialised cache");
    request.kvReservedBytes -= bytes;
    reserved_ -= bytes;
    reserved_ = std::max(reserved_, 0.0);
}

void
AdmissionController::release(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes > 0, "release without reserve");
    reserved_ -= request.kvReservedBytes;
    request.kvReservedBytes = 0;
    reserved_ = std::max(reserved_, 0.0);
}

bool
AdmissionController::canSwapOut(const Request &request) const
{
    return swapBandwidth_ > 0 &&
           swapped_ + cacheCxl_ + request.kvReservedBytes <= swapPool_;
}

void
AdmissionController::swapOut(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes > 0, "swap-out without reserve");
    LIA_ASSERT(request.kvSwappedBytes == 0, "double swap-out");
    LIA_ASSERT(swapped_ + cacheCxl_ + request.kvReservedBytes <=
                   swapPool_ * (1 + 1e-9),
               "swap pool exceeded");
    request.kvSwappedBytes = request.kvReservedBytes;
    swapped_ += request.kvSwappedBytes;
    reserved_ -= request.kvReservedBytes;
    request.kvReservedBytes = 0;
    reserved_ = std::max(reserved_, 0.0);
}

void
AdmissionController::swapIn(Request &request)
{
    LIA_ASSERT(request.kvSwappedBytes > 0, "swap-in without swap-out");
    LIA_ASSERT(request.kvReservedBytes == 0,
               "swap-in of a DDR-resident request");
    request.kvReservedBytes = request.kvSwappedBytes;
    reserved_ += request.kvReservedBytes;
    swapped_ -= request.kvSwappedBytes;
    request.kvSwappedBytes = 0;
    swapped_ = std::max(swapped_, 0.0);
    LIA_ASSERT(reserved_ + cacheDdr_ <= kvBudget_ * (1 + 1e-9),
               "swap-in exceeds the budget");
}

void
AdmissionController::cacheReserve(double bytes)
{
    LIA_ASSERT(bytes > 0, "empty cache reservation");
    cacheDdr_ += bytes;
    LIA_ASSERT(reserved_ + cacheDdr_ <= kvBudget_ * (1 + 1e-9),
               "cached prefix exceeds the budget");
}

void
AdmissionController::cacheRelease(double bytes)
{
    LIA_ASSERT(bytes > 0 && bytes <= cacheDdr_ * (1 + 1e-9),
               "cache release of ", bytes, " bytes exceeds the ",
               cacheDdr_, " held");
    cacheDdr_ = std::max(cacheDdr_ - bytes, 0.0);
}

void
AdmissionController::cacheDemote(double bytes)
{
    LIA_ASSERT(bytes > 0 && bytes <= cacheDdr_ * (1 + 1e-9),
               "demotion exceeds the resident cache");
    cacheDdr_ = std::max(cacheDdr_ - bytes, 0.0);
    cacheCxl_ += bytes;
    LIA_ASSERT(swapped_ + cacheCxl_ <= swapPool_ * (1 + 1e-9),
               "demoted prefix exceeds the CXL pool");
}

void
AdmissionController::cacheDropCxl(double bytes)
{
    LIA_ASSERT(bytes > 0 && bytes <= cacheCxl_ * (1 + 1e-9),
               "CXL drop exceeds the demoted cache");
    cacheCxl_ = std::max(cacheCxl_ - bytes, 0.0);
}

bool
AdmissionController::cacheCxlFits(double bytes) const
{
    return swapBandwidth_ > 0 &&
           swapped_ + cacheCxl_ + bytes <= swapPool_;
}

double
AdmissionController::ddrHeadroom(double watermark) const
{
    return kvBudget_ * (1.0 - watermark) - reserved_ - cacheDdr_;
}

double
AdmissionController::swapTransferSeconds(double bytes) const
{
    LIA_ASSERT(swapBandwidth_ > 0, "swap on a system without CXL");
    return swapLatency_ + bytes / swapBandwidth_;
}

} // namespace serve
} // namespace lia
