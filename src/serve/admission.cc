#include "serve/admission.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/memory_policy.hh"
#include "core/policy.hh"
#include "model/footprint.hh"

namespace lia {
namespace serve {

AdmissionController::AdmissionController(
    const hw::SystemConfig &system, const model::ModelConfig &model,
    const Config &config)
    : model_(model)
{
    // Reuse the §6 planner to decide where parameters live. The spill
    // is only legal when the decode-stage policy keeps the
    // parameter-dependent sublayers on the GPU, which is what the
    // planner checks; probe it with the full-GPU policy at a
    // representative single-sequence shape.
    double param_ddr = model.totalParamBytes();
    if (config.cxlSpill && system.cxl.present()) {
        const auto placement = core::planMemoryPlacement(
            system, model, 1, 512, 1, core::Policy::fullGpu());
        if (placement.paramTier == core::HostTier::Cxl) {
            paramsInCxl_ = true;
            param_ddr = model.totalParamBytes() *
                        (1.0 - placement.paramCxlFraction);
        }
    }

    // Reserve headroom for the activation working set of the largest
    // iteration the scheduler can launch (a full-batch prefill at the
    // context ceiling), and keep a 5% safety margin for the rest of
    // the host.
    const double activations = model::activationBytes(
        model, config.maxBatch,
        std::min(config.maxContext, model.maxSeqLen));
    kvBudget_ = std::max(0.0, 0.95 * system.cpuMemory.capacity -
                                  param_ddr - activations);
}

double
AdmissionController::requestKvBytes(const Request &request) const
{
    return model_.kvBytesPerToken() *
           static_cast<double>(request.lIn + request.lOut);
}

bool
AdmissionController::fitsAlone(const Request &request) const
{
    return requestKvBytes(request) <= kvBudget_;
}

bool
AdmissionController::canAdmit(const Request &request) const
{
    return reserved_ + requestKvBytes(request) <= kvBudget_;
}

void
AdmissionController::reserve(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes == 0, "double reservation");
    request.kvReservedBytes = requestKvBytes(request);
    reserved_ += request.kvReservedBytes;
    LIA_ASSERT(reserved_ <= kvBudget_ * (1 + 1e-9),
               "KV reservation exceeds the budget");
}

void
AdmissionController::release(Request &request)
{
    LIA_ASSERT(request.kvReservedBytes > 0, "release without reserve");
    reserved_ -= request.kvReservedBytes;
    request.kvReservedBytes = 0;
    reserved_ = std::max(reserved_, 0.0);
}

} // namespace serve
} // namespace lia
