#include "serve/instance.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "obs/sink.hh"
#include "serve/backend.hh"
#include "serve/slo_monitor.hh"

namespace lia {
namespace serve {

using model::Stage;

namespace {

/** SplitMix64 — the deterministic per-draft acceptance hash. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Analytic acceptance draw: each draft survives independently with
 * probability @p accept_rate, and the accepted count is the leading
 * run of survivors — the same per-draft Bernoulli chain
 * core::expectedSpeculativeTokens() prices. Keyed on (seed, request,
 * step, draft) so runs are deterministic at any thread count and two
 * identically-seeded runs take bit-identical scheduling decisions.
 */
std::int64_t
oracleAccepted(std::uint64_t seed, std::uint64_t request_id,
               std::uint64_t spec_step, std::int64_t k,
               double accept_rate)
{
    std::int64_t accepted = 0;
    while (accepted < k) {
        const std::uint64_t h = splitmix64(
            splitmix64(splitmix64(seed ^ 0x5bec0de5ULL) ^
                       request_id) ^
            (spec_step * 0x10001ULL +
             static_cast<std::uint64_t>(accepted)));
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        if (u >= accept_rate)
            break;
        ++accepted;
    }
    return accepted;
}

} // namespace

core::EngineConfig
pricingEngineConfig(const hw::SystemConfig &system,
                    const model::ModelConfig &model,
                    const Config &config)
{
    core::EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = config.cxlSpill && system.cxl.present();
    // Always wire the draft companion: a shared cost cache serves
    // spec-on and spec-off runs alike, and the draft engine only
    // prices when a scenario actually carries draft tokens.
    cfg.specDraftModel = model::draftModelConfig(model);
    return cfg;
}

EngineInstance::EngineInstance(const hw::SystemConfig &system,
                               const model::ModelConfig &model,
                               Config config,
                               const IterationCostCache &costs,
                               sim::EventQueue &events,
                               tracks::Namespace ns)
    : config_(std::move(config)), costs_(costs), events_(events),
      ns_(std::move(ns)), admission_(system, model, config_),
      scheduler_(config_, costs_, admission_),
      swapChannel_(events_, "ddr-cxl-swap",
                   admission_.swapBandwidth(),
                   admission_.swapLatency()),
      sink_(config_.sink), monitor_(config_.sloMonitor)
{
    if (config_.prefix.enabled) {
        PrefixCache::Pricing pricing;
        pricing.recomputeSeconds = [this](std::int64_t tokens) {
            return costs_.time(Stage::Prefill, 1,
                               std::max<std::int64_t>(tokens, 1));
        };
        if (admission_.swapBandwidth() > 0) {
            pricing.transferSeconds = [this](double bytes) {
                return admission_.swapTransferSeconds(bytes);
            };
        }
        prefixCache_ = std::make_unique<PrefixCache>(
            model, config_, admission_, std::move(pricing));
        scheduler_.setPrefixCache(prefixCache_.get());
    }
    if (sink_) {
        sink_->setTrackName(ns_.iterations(), ns_.engineProcess,
                            "iterations");
        sink_->setTrackName(ns_.scheduler(), ns_.engineProcess,
                            "scheduler");
        sink_->setTrackName(ns_.swapChannel(), ns_.engineProcess,
                            "swap-channel");
        swapChannel_.instrument(sink_, ns_.swapChannel());
    }
}

void
EngineInstance::setPlannerCap(std::int64_t cap)
{
    scheduler_.setPlannerCap(cap);
}

std::size_t
EngineInstance::submit(std::int64_t l_in, std::int64_t l_out,
                       std::int64_t pool_id, std::int64_t shared_tokens)
{
    const std::size_t index = requests_.size();
    Request request;
    request.id = index;
    request.lIn = l_in;
    request.lOut = l_out;
    request.poolId = pool_id;
    request.sharedLen = shared_tokens;
    request.arrival = events_.now();
    requests_.push_back(request);
    arrival(index);
    return index;
}

std::size_t
EngineInstance::outstanding() const
{
    return requests_.size() -
           (metrics_.completed + metrics_.rejected());
}

double
EngineInstance::kvLoad() const
{
    double demand = admission_.reservedBytes();
    for (std::size_t index : waiting_)
        demand += admission_.requestKvBytes(requests_[index]);
    const double budget = admission_.kvBudgetBytes();
    return budget > 0 ? demand / budget : 0.0;
}

double
EngineInstance::estimatedQueueDelay() const
{
    double delay = 0;
    for (std::size_t index : waiting_) {
        const Request &request = requests_[index];
        delay += costs_.chunkTime(
            1, 0, std::max<std::int64_t>(request.lIn, 1));
    }
    if (!active_.empty()) {
        std::int64_t context = 1;
        for (std::size_t index : active_)
            context = std::max(context, requests_[index].context());
        delay += costs_.time(Stage::Decode,
                             static_cast<std::int64_t>(active_.size()),
                             context);
    }
    // Admission stalls when the byte account is nearly full: stretch
    // the estimate by the remaining headroom (capped at 10x so one
    // saturated replica never reads as infinitely slow).
    const double budget = admission_.kvBudgetBytes();
    if (budget > 0) {
        const double occupancy = admission_.reservedBytes() / budget;
        delay *= 1.0 / std::max(0.1, 1.0 - occupancy);
    }
    return delay;
}

/**
 * Close the open lifecycle span of @p request and open the next
 * one — request tracks carry exactly one state span at a time.
 */
void
EngineInstance::spanTransition(const Request &request, const char *next,
                               double now)
{
    sink_->endSpan(ns_.request(request.id), now);
    sink_->beginSpan(ns_.request(request.id), next, now);
}

void
EngineInstance::arrival(std::size_t index)
{
    Request &request = requests_[index];
    if (sink_) {
        const obs::Track track = ns_.request(request.id);
        sink_->setTrackName(track, ns_.requestProcess,
                            "req " + std::to_string(request.id));
        sink_->instant(track, "arrive", events_.now(),
                       {obs::arg("l_in", request.lIn),
                        obs::arg("l_out", request.lOut)});
    }
    if (!admission_.fitsAlone(request)) {
        // Can never fit the KV budget, not even alone.
        request.state = RequestState::Rejected;
        ++metrics_.rejectedCapacity;
        if (sink_)
            sink_->instant(ns_.request(request.id),
                           "reject.capacity", events_.now());
        return;
    }
    if (sink_)
        sink_->beginSpan(ns_.request(request.id), "queued",
                         events_.now());
    waiting_.push_back(index);
    if (!inFlight_)
        startIteration();
}

/** A request emitted one token: record the inter-token gap. */
void
EngineInstance::tokenEmitted(Request &request, double now)
{
    ++metrics_.tokensGenerated;
    if (request.lastTokenTime >= 0) {
        const double gap = now - request.lastTokenTime;
        metrics_.tokenGap.add(gap);
        metrics_.tokenGapHist.add(gap);
        if (monitor_)
            monitor_->onTokenGap(now, gap);
    }
    request.lastTokenTime = now;
}

/** The running pools must stay pairwise disjoint per request. */
void
EngineInstance::checkStateExclusivity() const
{
    for (std::size_t index : active_) {
        const RequestState s = requests_[index].state;
        LIA_ASSERT(s == RequestState::Prefilling ||
                       s == RequestState::Decoding,
                   "active request in state ", toString(s));
    }
    for (std::size_t index : preempted_)
        LIA_ASSERT(requests_[index].state == RequestState::Preempted,
                   "preempted pool holds a ",
                   toString(requests_[index].state), " request");
    for (std::size_t index : swapped_)
        LIA_ASSERT(requests_[index].state == RequestState::Swapped,
                   "swap pool holds a ",
                   toString(requests_[index].state), " request");
}

void
EngineInstance::startIteration()
{
    const double now = events_.now();
    const std::size_t depth = waiting_.size();
    checkStateExclusivity();

    SchedulerState state;
    state.queue = waiting_;
    state.active = active_;
    state.preempted = preempted_;
    state.swappedTotal = swapped_.size();
    for (std::size_t index : swapped_)
        if (requests_[index].swapReady)
            state.swappable.push_back(index);

    // Flush completed passes into the prefix tree *before* the
    // scheduler probes it: this iteration's lookups then match the
    // post-split tree, so the backend can mirror all structural ops
    // first and attach all hits after.
    std::vector<PrefixOp> insertOps;
    if (prefixCache_) {
        for (std::size_t index : pendingInserts_) {
            const Request &request = requests_[index];
            auto ops = prefixCache_->insert(
                prefixCache_->promptOf(request), request.id);
            insertOps.insert(insertOps.end(), ops.begin(), ops.end());
        }
        pendingInserts_.clear();
    }

    IterationPlan plan = scheduler_.next(now, state, requests_);
    plan.prefixOps.insert(plan.prefixOps.begin(), insertOps.begin(),
                          insertOps.end());

    // Resolve speculation before any pool transition: decode entries
    // are disjoint from this plan's admit/resume/chunk/preemption
    // sets, so the backend's verify runs against exactly the cache
    // state the previous iteration left behind.
    if (!plan.specDrafts.empty())
        resolveSpeculation(plan);

    for (std::size_t index : plan.shed) {
        requests_[index].state = RequestState::Rejected;
        ++metrics_.shedSlo;
        if (sink_) {
            const obs::Track track =
                ns_.request(requests_[index].id);
            sink_->endSpan(track, now);  // close "queued"
            sink_->instant(track, "shed.slo", now);
        }
    }
    for (std::size_t index : plan.admit) {
        Request &request = requests_[index];
        request.state = RequestState::Prefilling;
        request.admitTime = now;
        active_.push_back(index);
        if (sink_)
            spanTransition(request, "prefill", now);
    }
    if (!plan.shed.empty() || !plan.admit.empty()) {
        waiting_.erase(
            std::remove_if(waiting_.begin(), waiting_.end(),
                           [this](std::size_t index) {
                               return requests_[index].state !=
                                      RequestState::Queued;
                           }),
            waiting_.end());
    }

    // --- Preemption traffic ---------------------------------------
    for (std::size_t index : plan.evict) {
        Request &request = requests_[index];
        request.state = RequestState::Preempted;
        request.prefillTarget = request.context();
        request.prefilled = 0;
        // The recompute prefill rebuilds every token itself — any
        // prefix attached at first admission is gone with the KV.
        request.prefixHitTokens = 0;
        ++request.preemptions;
        ++request.recomputes;
        ++metrics_.preemptions;
        ++metrics_.recomputes;
        preempted_.push_back(index);
        if (sink_)
            spanTransition(request, "preempted", now);
    }
    for (std::size_t index : plan.swapOut) {
        Request &request = requests_[index];
        request.state = RequestState::Swapped;
        request.swapReady = false;
        ++request.preemptions;
        ++request.swapOuts;
        ++metrics_.preemptions;
        ++metrics_.swapOuts;
        metrics_.swapOutBytes += request.kvSwappedBytes;
        swapped_.push_back(index);
        if (sink_)
            spanTransition(request, "swapped", now);
        swapChannel_.transfer(
            request.kvSwappedBytes,
            [this, index](sim::Tick) {
                requests_[index].swapReady = true;
                // A drained swap-out may be the only thing the
                // idle engine was waiting on.
                if (!inFlight_)
                    startIteration();
            });
    }
    if (!plan.evict.empty() || !plan.swapOut.empty()) {
        active_.erase(
            std::remove_if(active_.begin(), active_.end(),
                           [this](std::size_t index) {
                               const RequestState s =
                                   requests_[index].state;
                               return s ==
                                          RequestState::Preempted ||
                                      s == RequestState::Swapped;
                           }),
            active_.end());
    }
    for (std::size_t index : plan.resume) {
        requests_[index].state = RequestState::Prefilling;
        active_.push_back(index);
        if (sink_)
            spanTransition(requests_[index], "recompute", now);
    }
    if (!plan.resume.empty()) {
        preempted_.erase(
            std::remove_if(preempted_.begin(), preempted_.end(),
                           [this](std::size_t index) {
                               return requests_[index].state !=
                                      RequestState::Preempted;
                           }),
            preempted_.end());
    }
    for (std::size_t index : plan.swapIn) {
        // The cache streams back while this iteration computes; the
        // request rejoins the batch when its transfer drains.
        Request &request = requests_[index];
        ++metrics_.swapIns;
        metrics_.swapInBytes += request.kvReservedBytes;
        if (sink_) {
            sink_->instant(
                ns_.request(request.id), "swap_in.start", now,
                {obs::arg("bytes", request.kvReservedBytes)});
        }
        swapChannel_.transfer(
            request.kvReservedBytes,
            [this, index](sim::Tick) { swapInArrived(index); });
    }
    if (!plan.swapIn.empty()) {
        swapped_.erase(
            std::remove_if(swapped_.begin(), swapped_.end(),
                           [&plan](std::size_t index) {
                               return std::find(
                                          plan.swapIn.begin(),
                                          plan.swapIn.end(),
                                          index) !=
                                      plan.swapIn.end();
                           }),
            swapped_.end());
    }

    if (prefixCache_)
        applyPrefixPlan(plan);

    // Execute the committed plan: all request pools and the
    // admission byte account reflect it at this point, but no
    // engine-side progress counters have advanced yet.
    if (backend_ && !plan.idle())
        backend_->onPlan(plan, requests_, admission_);

    if (plan.computeIdle()) {
        inFlight_ = false;
        // A bookkeeping-only round (victims out, nothing to run)
        // replans immediately: the freed budget lets preempted
        // work resume in the same instant. Terminates because
        // each replan either schedules compute, goes fully idle
        // (swap completions re-kick later), or shrinks the active
        // set further. Fully idle rounds just wait.
        if (!plan.idle())
            startIteration();
        return;
    }
    inFlight_ = true;

    double duration = 0;
    std::int64_t chunkTokens = 1, chunkHistory = 0;
    std::int64_t decodeContext = 1;
    if (!plan.chunks.empty()) {
        for (const PrefillChunk &chunk : plan.chunks) {
            chunkTokens = std::max(chunkTokens, chunk.tokens);
            chunkHistory = std::max(chunkHistory, chunk.history);
        }
        duration += costs_.chunkTime(
            static_cast<std::int64_t>(plan.chunks.size()),
            chunkHistory, chunkTokens);
        metrics_.prefillChunks += plan.chunks.size();
    }
    if (!plan.decode.empty()) {
        for (std::size_t index : plan.decode)
            decodeContext = std::max(decodeContext,
                                     requests_[index].context());
        // A speculative iteration prices draft + verify at the widest
        // draft length in the batch (entries near their lOut may
        // carry fewer); a batch with no drafts is a plain decode.
        std::int64_t spec_k = 0;
        for (std::int64_t k : plan.specDrafts)
            spec_k = std::max(spec_k, k);
        duration += spec_k > 0
                        ? costs_.specTime(plan.decodePriceBatch,
                                          decodeContext, spec_k)
                        : costs_.time(Stage::Decode,
                                      plan.decodePriceBatch,
                                      decodeContext);
    }
    LIA_ASSERT(duration > 0, "iteration priced at zero time");

    metrics_.queueDepth.add(static_cast<double>(depth));
    metrics_.batchOccupancy.add(static_cast<double>(active_.size()));
    if (admission_.kvBudgetBytes() > 0)
        metrics_.kvOccupancy.add(admission_.reservedBytes() /
                                 admission_.kvBudgetBytes());
    metrics_.kvReservedPeakBytes =
        std::max(metrics_.kvReservedPeakBytes,
                 admission_.reservedBytes());
    ++metrics_.iterations;
    metrics_.busyTime += duration;

    if (sink_)
        emitIteration(plan, now, duration, depth, chunkTokens,
                      chunkHistory, decodeContext);

    events_.schedule(now + duration,
                     [this, plan = std::move(plan)]() {
                         completeIteration(plan);
                     });
}

/**
 * One iteration span with the analytical cost attribution, plus
 * the per-iteration counter samples. Duration is known when the
 * iteration is scheduled and iterations run serially, so begin
 * and end can be emitted together and stay per-track monotone.
 * The breakdown lookups hit cache entries the pricing above just
 * created — an instrumented run evaluates no extra points.
 */
void
EngineInstance::emitIteration(const IterationPlan &plan, double now,
                              double duration, std::size_t depth,
                              std::int64_t chunk_tokens,
                              std::int64_t chunk_history,
                              std::int64_t decode_context)
{
    core::Breakdown breakdown;
    double pcie_bytes = 0;
    auto accumulate = [&](const core::IterationEstimate &est) {
        breakdown.cpuTime += est.breakdown.cpuTime;
        breakdown.gpuTime += est.breakdown.gpuTime;
        breakdown.comTime += est.breakdown.comTime;
        pcie_bytes += est.pcieBytes;
    };
    if (!plan.chunks.empty())
        accumulate(costs_.chunkEstimate(
            static_cast<std::int64_t>(plan.chunks.size()),
            chunk_history, chunk_tokens));
    std::int64_t spec_k = 0, spec_drafted = 0, spec_accepted = 0;
    for (std::size_t i = 0; i < plan.specDrafts.size(); ++i) {
        spec_k = std::max(spec_k, plan.specDrafts[i]);
        spec_drafted += plan.specDrafts[i];
        spec_accepted += plan.specAccepted[i];
    }
    if (!plan.decode.empty()) {
        if (spec_k > 0)
            accumulate(costs_.specEstimate(plan.decodePriceBatch,
                                           decode_context, spec_k));
        else
            accumulate(costs_.estimate(Stage::Decode,
                                       plan.decodePriceBatch,
                                       decode_context));
    }

    // Counters first (they sample `now`): the iteration span ends
    // at now + duration, so this order keeps the whole track's
    // event stream monotone in emission order — the schema test
    // checks exactly that.
    sink_->counter(ns_.iterations(), "queue_depth", now,
                   static_cast<double>(depth));
    sink_->counter(ns_.iterations(), "batch_occupancy", now,
                   static_cast<double>(active_.size()));
    sink_->counter(ns_.iterations(), "kv_reserved_bytes", now,
                   admission_.reservedBytes());
    if (admission_.kvBudgetBytes() > 0)
        sink_->counter(ns_.iterations(), "kv_occupancy", now,
                       admission_.reservedBytes() /
                           admission_.kvBudgetBytes());

    obs::Args args{
        obs::arg("iteration", static_cast<std::int64_t>(
                                  metrics_.iterations)),
        obs::arg("duration_s", duration),
        obs::arg("decode", static_cast<std::int64_t>(
                               plan.decode.size())),
        obs::arg("decode_price_batch", plan.decodePriceBatch),
        obs::arg("chunks", static_cast<std::int64_t>(
                               plan.chunks.size())),
        obs::arg("admit", static_cast<std::int64_t>(
                              plan.admit.size())),
        obs::arg("preempt", static_cast<std::int64_t>(
                                plan.evict.size() +
                                plan.swapOut.size())),
        obs::arg("cpu_s", breakdown.cpuTime),
        obs::arg("gpu_s", breakdown.gpuTime),
        obs::arg("com_s", breakdown.comTime),
        obs::arg("pcie_bytes", pcie_bytes)};
    // Spec args only when the feature is on: spec-off traces stay
    // byte-identical to the pre-speculation schema.
    if (config_.spec.enabled) {
        args.push_back(obs::arg("spec_drafted", spec_drafted));
        args.push_back(obs::arg("spec_accepted", spec_accepted));
        sink_->counter(ns_.iterations(), "spec_accepted_tokens", now,
                       static_cast<double>(
                           metrics_.specAcceptedTokens));
    }
    // Gated on the monitor, not just the sink, so monitor-less traces
    // keep their schema.
    if (monitor_)
        sink_->counter(ns_.iterations(), "slo_pressure", now,
                       monitor_->pressure(now));
    sink_->beginSpan(ns_.iterations(), "iteration", now,
                     std::move(args));
    sink_->endSpan(ns_.iterations(), now + duration);
}

void
EngineInstance::resolveSpeculation(IterationPlan &plan)
{
    LIA_ASSERT(plan.specDrafts.size() == plan.decode.size(),
               "spec drafts out of step with the decode list");
    plan.specAccepted.reserve(plan.decode.size());
    for (std::size_t i = 0; i < plan.decode.size(); ++i) {
        Request &request = requests_[plan.decode[i]];
        const std::int64_t k = plan.specDrafts[i];
        if (k == 0) {
            // Plain decode step (one token would finish the request).
            plan.specAccepted.push_back(0);
            continue;
        }
        std::int64_t accepted =
            backend_ ? backend_->speculate(request, k) : -1;
        if (accepted < 0) {
            // Analytic path: the replay oracle when the harness
            // installed one, the modeled acceptance draw otherwise.
            accepted =
                config_.spec.oracle
                    ? config_.spec.oracle(
                          request.id, k,
                          static_cast<std::uint64_t>(
                              request.specSteps))
                    : oracleAccepted(
                          config_.seed, request.id,
                          static_cast<std::uint64_t>(
                              request.specSteps),
                          k, config_.spec.acceptRate);
        }
        LIA_ASSERT(accepted >= 0 && accepted <= k,
                   "verify accepted ", accepted, " of ", k,
                   " drafts");
        plan.specAccepted.push_back(accepted);

        ++request.specSteps;
        request.specDrafted += k;
        request.specAccepted += accepted;
        ++metrics_.specSteps;
        metrics_.specDraftedTokens += k;
        metrics_.specAcceptedTokens += accepted;

        // Settle the worst-case KV reservation down to the verified
        // token count (the scheduler grew by k + 1; the step really
        // appended accepted + 1).
        if (config_.policy == SchedulerPolicy::Preemptive)
            admission_.shrink(request, k - accepted);
    }
}

void
EngineInstance::swapInArrived(std::size_t index)
{
    Request &request = requests_[index];
    LIA_ASSERT(request.state == RequestState::Swapped,
               "swap-in of a ", toString(request.state),
               " request");
    request.state = RequestState::Decoding;
    request.swapReady = false;
    active_.push_back(index);
    if (sink_)
        spanTransition(request, "decode", events_.now());
    if (!inFlight_)
        startIteration();
}

void
EngineInstance::completeIteration(const IterationPlan &plan)
{
    const double now = events_.now();
    for (std::size_t i = 0; i < plan.decode.size(); ++i) {
        Request &request = requests_[plan.decode[i]];
        // A speculative entry emits its accepted drafts plus the
        // correction/bonus token in one step; plain decode emits one.
        const std::int64_t emitted =
            plan.specAccepted.empty() ? 1 : plan.specAccepted[i] + 1;
        for (std::int64_t t = 0; t < emitted; ++t) {
            ++request.generated;
            tokenEmitted(request, now);
        }
        LIA_ASSERT(request.generated <= request.lOut,
                   "speculation overshot the output budget");
        if (request.done())
            finish(request, now);
    }
    for (const PrefillChunk &chunk : plan.chunks) {
        Request &request = requests_[chunk.index];
        request.prefilled += chunk.tokens;
        if (request.inPrefill())
            continue;
        if (prefixCache_) {
            // The pass the pin protected is done; the prompt's KV is
            // now materialised and can seed the tree next iteration.
            if (request.prefixNode != 0) {
                prefixCache_->unpin(request.prefixNode);
                request.prefixNode = 0;
            }
            pendingInserts_.push_back(chunk.index);
        }
        // Pass complete: the pass's final forward emits one token
        // — the first output token of a fresh prefill, or the
        // continuation token of a recompute (the rebuilt cache's
        // last position samples the token that follows the
        // already-generated stream, so the recompute iteration
        // makes the same one-token progress a decode step would).
        ++request.generated;
        if (request.firstTokenTime < 0) {
            request.firstTokenTime = now;
            metrics_.ttft.add(request.ttft());
            metrics_.ttftHist.add(request.ttft());
            metrics_.queueWait.add(request.queueWait());
            if (monitor_)
                monitor_->onTtft(now, request.ttft());
        }
        tokenEmitted(request, now);
        if (request.done()) {
            finish(request, now);
        } else {
            request.state = RequestState::Decoding;
            if (sink_)
                spanTransition(request, "decode", now);
        }
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [this](std::size_t index) {
                                     return requests_[index].state ==
                                            RequestState::Finished;
                                 }),
                  active_.end());
    startIteration();
}

void
EngineInstance::finish(Request &request, double now)
{
    request.state = RequestState::Finished;
    request.finishTime = now;
    admission_.release(request);
    if (backend_)
        backend_->onFinish(request);
    if (sink_) {
        const obs::Track track = ns_.request(request.id);
        sink_->endSpan(track, now);  // close the state span
        obs::Args args{obs::arg("ttft_s", request.ttft()),
                       obs::arg("response_s", request.responseTime()),
                       obs::arg("generated", request.generated)};
        // Feature-gated context for the blame report's consumers;
        // feature-off traces keep the pre-existing schema byte for
        // byte.
        if (config_.prefix.enabled)
            args.push_back(
                obs::arg("prefix_hit_tokens", request.prefixHitTokens));
        if (config_.spec.enabled) {
            args.push_back(obs::arg("spec_steps", request.specSteps));
            args.push_back(
                obs::arg("spec_accepted", request.specAccepted));
        }
        sink_->instant(track, "finish", now, std::move(args));
    }
    ++metrics_.completed;
    metrics_.responseTime.add(request.responseTime());
    metrics_.responseHist.add(request.responseTime());
    if (monitor_)
        monitor_->onComplete(now, request.responseTime());
    if (request.lOut > 1)
        metrics_.tbt.add(request.meanTbt());
}

/**
 * Account one plan's prefix-cache activity: hit/op counters, the
 * swap-channel traffic demotions and demoted-node hits generate, and
 * the structural self-check. Runs after the pools reflect the plan
 * and before the backend mirrors it.
 */
void
EngineInstance::applyPrefixPlan(const IterationPlan &plan)
{
    const double per_token = admission_.kvBytesPerToken();
    metrics_.prefixLookups +=
        static_cast<std::size_t>(plan.prefixLookups);
    for (const PrefixHit &hit : plan.prefixHits) {
        ++metrics_.prefixHits;
        metrics_.prefixHitTokens += hit.tokens;
        if (hit.cxlBytes > 0) {
            // Reading a demoted span back occupies the DDR<->CXL
            // channel; the span itself stays parked in the pool.
            metrics_.prefixCxlReadBytes += hit.cxlBytes;
            swapChannel_.transfer(hit.cxlBytes, [](sim::Tick) {});
        }
    }
    for (const PrefixOp &op : plan.prefixOps) {
        switch (op.kind) {
          case PrefixOp::Kind::Insert:
            metrics_.prefixInsertedTokens += op.tokens;
            break;
          case PrefixOp::Kind::Evict:
          case PrefixOp::Kind::DropCxl:
            metrics_.prefixEvictedTokens += op.tokens;
            break;
          case PrefixOp::Kind::Demote:
            metrics_.prefixDemotedTokens += op.tokens;
            swapChannel_.transfer(
                static_cast<double>(op.tokens) * per_token,
                [](sim::Tick) {});
            break;
          case PrefixOp::Kind::Split:
            break;  // pure bookkeeping, no bytes move
        }
    }
    metrics_.prefixCachePeakBytes =
        std::max(metrics_.prefixCachePeakBytes,
                 admission_.cacheDdrBytes() +
                     admission_.cacheCxlBytes());
    prefixCache_->checkInvariants();
}

Result
EngineInstance::finalize()
{
    Result result;
    result.metrics = std::move(metrics_);
    result.metrics.makespan = events_.now();
    result.metrics.swapBusyTime = swapChannel_.busyTime();
    result.requests = std::move(requests_);
    result.policy = config_.policy;
    result.paramsInCxl = admission_.paramsInCxl();
    result.kvBudgetBytes = admission_.kvBudgetBytes();
    result.plannerCap = scheduler_.plannerCap();
    result.kvReservedAtDrain =
        admission_.reservedBytes() + admission_.swappedBytes();
    result.prefixCacheBytesAtDrain =
        admission_.cacheDdrBytes() + admission_.cacheCxlBytes();
    return result;
}

} // namespace serve
} // namespace lia
