/**
 * @file
 * Iteration-level scheduler (Orca-style continuous batching).
 *
 * Between engine iterations the scheduler decides which queued
 * requests join the running batch (FIFO, KV-admission gated) and which
 * active requests take a decode step. Three disciplines are
 * implemented: the static FIFO baseline (cohorts run to completion,
 * finished slots wasted), plain continuous batching, and an SLO-aware
 * variant that caps decode-batch growth from the engine's latency
 * estimates and sheds requests that can no longer meet their TTFT
 * target.
 *
 * The scheduler is pure decision logic over request indices — no
 * simulated time advances here — so its invariants (FIFO order, batch
 * and KV caps, SLO caps) are unit-testable without the DES.
 */

#ifndef LIA_SERVE_SCHEDULER_HH
#define LIA_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "serve/admission.hh"
#include "serve/config.hh"
#include "serve/cost_cache.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/** One iteration's worth of scheduling decisions. */
struct IterationPlan
{
    /** Queue indices admitted this iteration (prefilled together). */
    std::vector<std::size_t> admit;

    /** Queue indices shed by SLO admission control (rejected). */
    std::vector<std::size_t> shed;

    /** Active indices taking one decode step. */
    std::vector<std::size_t> decode;

    /**
     * Batch size the decode part is priced at. Equals decode.size()
     * for continuous policies; under static batching it stays at the
     * cohort's initial size — finished requests keep occupying slots.
     */
    std::int64_t decodePriceBatch = 0;

    /** Batch cap in force when the plan was made (for reporting). */
    std::int64_t batchCap = 0;

    /** Whether the iteration performs no work. */
    bool idle() const { return admit.empty() && decode.empty(); }
};

/** Batch-composition policy engine. */
class Scheduler
{
  public:
    Scheduler(const Config &config, const IterationCostCache &costs,
              AdmissionController &admission);

    /**
     * Decide the next iteration.
     *
     * @param now       current simulated time (drives SLO shedding)
     * @param queue     waiting request indices, FIFO order
     * @param active    admitted unfinished request indices
     * @param requests  backing store; admitted requests get their KV
     *                  reserved here
     */
    IterationPlan next(double now,
                       const std::vector<std::size_t> &queue,
                       const std::vector<std::size_t> &active,
                       std::vector<Request> &requests);

    /**
     * Largest decode batch whose step time stays within the
     * time-between-tokens target at @p context (>= 1 so a lone
     * request is never starved). maxBatch when no TBT target is set.
     */
    std::int64_t decodeBatchCap(std::int64_t context) const;

    /** Static cap from the capacity planner (0 disables). */
    void setPlannerCap(std::int64_t cap);
    std::int64_t plannerCap() const { return plannerCap_; }

  private:
    const Config &config_;
    const IterationCostCache &costs_;
    AdmissionController &admission_;

    std::int64_t staticCohort_ = 0;  //!< initial size of the running cohort
    std::int64_t plannerCap_ = 0;
    mutable std::map<std::int64_t, std::int64_t> tbtCapByContext_;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_SCHEDULER_HH
