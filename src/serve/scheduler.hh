/**
 * @file
 * Iteration-level scheduler (Orca-style continuous batching).
 *
 * Between engine iterations the scheduler decides which queued
 * requests join the running batch (FIFO, KV-admission gated) and which
 * active requests take a decode step. Four disciplines are
 * implemented: the static FIFO baseline (cohorts run to completion,
 * finished slots wasted), plain continuous batching, an SLO-aware
 * variant that caps decode-batch growth from the engine's latency
 * estimates and sheds requests that can no longer meet their TTFT
 * target, and a preemption-capable variant with vLLM-style optimistic
 * admission that swaps or evicts victims when projected KV growth
 * breaches the budget — choosing swap-to-CXL vs evict-and-recompute
 * by whichever the analytical model prices cheaper.
 *
 * Prefill work is expressed as chunks: a monolithic prefill is one
 * full-prompt chunk, and with Config::prefillChunkTokens set, long
 * prompts split across iterations and interleave with the running
 * batch's decode steps.
 *
 * The scheduler is pure decision logic over request indices — no
 * simulated time advances here — so its invariants (FIFO order, batch
 * and KV caps, SLO caps, preemption accounting) are unit-testable
 * without the DES.
 */

#ifndef LIA_SERVE_SCHEDULER_HH
#define LIA_SERVE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "serve/admission.hh"
#include "serve/config.hh"
#include "serve/cost_cache.hh"
#include "serve/prefix_cache.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/** One chunked-prefill work item of an iteration. */
struct PrefillChunk
{
    std::size_t index = 0;      //!< request being prefilled
    std::int64_t tokens = 0;    //!< prompt tokens processed this chunk
    std::int64_t history = 0;   //!< KV tokens materialised before it
};

/** One iteration's worth of scheduling decisions. */
struct IterationPlan
{
    /** Queue indices admitted this iteration (enter prefill). */
    std::vector<std::size_t> admit;

    /** Queue indices shed by SLO admission control (rejected). */
    std::vector<std::size_t> shed;

    /** Preempted indices resuming their recompute prefill. */
    std::vector<std::size_t> resume;

    /** Prefill work items executed this iteration. */
    std::vector<PrefillChunk> chunks;

    /** Active indices taking one decode step. */
    std::vector<std::size_t> decode;

    /**
     * Speculative draft tokens per decode entry (parallel to decode;
     * empty when speculation is off). Entry i is k_eff for decode[i]:
     * Config::spec.draftTokens clamped so even full acceptance plus
     * the bonus token never overshoots the request's lOut. 0 means
     * that entry takes a plain decode step.
     */
    std::vector<std::int64_t> specDrafts;

    /**
     * Draft tokens accepted per decode entry (parallel to decode;
     * empty when speculation is off). Filled by the engine's
     * speculation resolution — oracle or executed verify — before the
     * plan reaches the backend's onPlan, so the backend can assert
     * post-verify cache state. Entry i emits specAccepted[i] + 1
     * tokens when specDrafts[i] > 0, else exactly 1.
     */
    std::vector<std::int64_t> specAccepted;

    /** Victims whose KV moves to the CXL swap pool this iteration. */
    std::vector<std::size_t> swapOut;

    /** Victims whose KV is discarded for a later recompute. */
    std::vector<std::size_t> evict;

    /** Swapped indices whose KV transfers back to DDR. */
    std::vector<std::size_t> swapIn;

    /**
     * Prefix-cache mutations this iteration, in execution order:
     * insert flushes first (prepended by the engine), then the
     * scheduler's reclaim traffic. The runtime backend replays them
     * verbatim to keep its KV payloads in lockstep with the tree.
     */
    std::vector<PrefixOp> prefixOps;

    /** Admissions that matched a cached prefix this iteration. */
    std::vector<PrefixHit> prefixHits;

    /** Cache probes performed while composing this iteration. */
    std::int64_t prefixLookups = 0;

    /**
     * Batch size the decode part is priced at. Equals decode.size()
     * for continuous policies; under static batching it stays at the
     * cohort's initial size — finished requests keep occupying slots.
     */
    std::int64_t decodePriceBatch = 0;

    /** Batch cap in force when the plan was made (for reporting). */
    std::int64_t batchCap = 0;

    /** Whether the iteration performs no compute work. */
    bool computeIdle() const { return chunks.empty() && decode.empty(); }

    /** Whether the iteration performs no work at all. */
    bool idle() const
    {
        return computeIdle() && swapOut.empty() && evict.empty() &&
               swapIn.empty() && prefixOps.empty();
    }
};

/** Scheduler view of the request pools at an iteration boundary. */
struct SchedulerState
{
    /** Waiting request indices, FIFO order. */
    std::vector<std::size_t> queue;

    /** Admitted unfinished indices (Prefilling or Decoding). */
    std::vector<std::size_t> active;

    /** Evicted indices awaiting a recompute slot, FIFO order. */
    std::vector<std::size_t> preempted;

    /** Swapped indices whose swap-out drained (swap-in eligible). */
    std::vector<std::size_t> swappable;

    /** All swapped-out requests, drained or not. */
    std::size_t swappedTotal = 0;
};

/** Batch-composition policy engine. */
class Scheduler
{
  public:
    Scheduler(const Config &config, const IterationCostCache &costs,
              AdmissionController &admission);

    /**
     * Decide the next iteration.
     *
     * @param now       current simulated time (drives SLO shedding)
     * @param state     queue / active / preempted / swapped pools
     * @param requests  backing store; admitted requests get their KV
     *                  reserved here, victims get theirs released or
     *                  moved to the swap account
     */
    IterationPlan next(double now, const SchedulerState &state,
                       std::vector<Request> &requests);

    /** Convenience overload for queue+active-only call sites. */
    IterationPlan next(double now,
                       const std::vector<std::size_t> &queue,
                       const std::vector<std::size_t> &active,
                       std::vector<Request> &requests);

    /**
     * Largest decode batch whose step time stays within the
     * time-between-tokens target at @p context (>= 1 so a lone
     * request is never starved). maxBatch when no TBT target is set.
     */
    std::int64_t decodeBatchCap(std::int64_t context) const;

    /**
     * Analytical preemption pricing: seconds to swap @p request's
     * live KV out and eventually back in (both directions on the CXL
     * pool bandwidth), vs seconds to recompute its context with a
     * single-sequence prefill. Used to pick each victim's exit.
     */
    double swapCost(const Request &request) const;
    double recomputeCost(const Request &request) const;

    /**
     * Draft tokens a speculative decode step of @p request proposes:
     * Config::spec.draftTokens clamped to the request's remaining
     * output budget minus the guaranteed correction token (so even
     * full acceptance cannot overshoot lOut, and the verify pass
     * never grows the cache past lIn + lOut - 1). 0 when speculation
     * is off, the request is mid-prefill, or one token finishes it.
     */
    std::int64_t specDraftTokensFor(const Request &request) const;

    /** Static cap from the capacity planner (0 disables). */
    void setPlannerCap(std::int64_t cap);
    std::int64_t plannerCap() const { return plannerCap_; }

    /**
     * Attach the engine's prefix cache (null disables). Admissions
     * then probe for shared prefixes (hits prefill only the suffix)
     * and blocked admissions reclaim cold cache bytes before any
     * live request is preempted.
     */
    void setPrefixCache(PrefixCache *cache) { cache_ = cache; }

  private:
    /** Append @p index's next prefill chunk to @p plan. */
    void addChunk(IterationPlan &plan, std::size_t index,
                  const Request &request) const;

    /** Probe the cache for @p request's longest shared prefix. */
    PrefixMatch probeCache(IterationPlan &plan,
                           const Request &request) const;

    /** Commit @p match on the admitted @p request (no-op on miss). */
    void commitMatch(IterationPlan &plan, const PrefixMatch &match,
                     std::size_t index, Request &request);

    /** Reclaim @p deficit cache bytes into @p plan; false if nothing
     *  could be reclaimed (no cache, or no unpinned victims). */
    bool reclaimCache(IterationPlan &plan, double deficit);

    /** canAdmit() with a one-shot cache-reclaim retry. */
    bool admitWithReclaim(IterationPlan &plan, const Request &request);

    /** fitsBytes() with a one-shot cache-reclaim retry. */
    bool fitsWithReclaim(IterationPlan &plan, double bytes,
                         double watermark = 0);

    IterationPlan nextPreemptive(double now,
                                 const SchedulerState &state,
                                 std::vector<Request> &requests);

    const Config &config_;
    const IterationCostCache &costs_;
    AdmissionController &admission_;
    PrefixCache *cache_ = nullptr;

    std::int64_t staticCohort_ = 0;  //!< initial size of the running cohort
    std::int64_t plannerCap_ = 0;
    mutable std::map<std::int64_t, std::int64_t> tbtCapByContext_;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_SCHEDULER_HH
