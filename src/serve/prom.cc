#include "serve/prom.hh"

#include <fstream>

#include "obs/sink.hh"
#include "serve/slo_monitor.hh"

namespace lia {
namespace serve {

namespace {

void
gauge(std::ostream &os, const char *name, const char *help,
      double value)
{
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " gauge\n"
       << name << " " << obs::jsonNumber(value) << "\n";
}

void
counterMetric(std::ostream &os, const char *name, const char *help,
              double value)
{
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << obs::jsonNumber(value) << "\n";
}

} // namespace

void
writePrometheus(std::ostream &os, const Metrics &metrics,
                const SloMonitor *monitor, double now)
{
    metrics.ttftHist.writeProm(os, "lia_ttft_seconds",
                               "Time to first token");
    metrics.tokenGapHist.writeProm(os, "lia_token_gap_seconds",
                                   "Inter-token interval");
    metrics.responseHist.writeProm(os, "lia_response_seconds",
                                   "End-to-end response time");

    counterMetric(os, "lia_requests_completed_total",
                  "Requests fully served",
                  static_cast<double>(metrics.completed));
    counterMetric(os, "lia_requests_rejected_total",
                  "Requests turned away (capacity + SLO shed)",
                  static_cast<double>(metrics.rejected()));
    counterMetric(os, "lia_tokens_generated_total",
                  "Tokens generated",
                  static_cast<double>(metrics.tokensGenerated));
    counterMetric(os, "lia_iterations_total",
                  "Engine iterations executed",
                  static_cast<double>(metrics.iterations));
    counterMetric(os, "lia_preemptions_total",
                  "Requests preempted (swap or evict)",
                  static_cast<double>(metrics.preemptions));
    counterMetric(os, "lia_prefill_chunks_total",
                  "Chunked-prefill work items",
                  static_cast<double>(metrics.prefillChunks));
    counterMetric(os, "lia_swap_out_bytes_total",
                  "KV bytes moved DDR to CXL", metrics.swapOutBytes);
    counterMetric(os, "lia_prefix_hits_total",
                  "Prefix-cache admission hits",
                  static_cast<double>(metrics.prefixHits));
    counterMetric(os, "lia_spec_accepted_tokens_total",
                  "Draft tokens verified correct",
                  static_cast<double>(metrics.specAcceptedTokens));

    gauge(os, "lia_utilisation", "Engine busy fraction",
          metrics.utilisation());
    gauge(os, "lia_tokens_per_second",
          "Generated tokens per simulated second",
          metrics.tokensPerSecond());
    gauge(os, "lia_completed_per_second",
          "Completions per simulated second",
          metrics.completedPerSecond());
    gauge(os, "lia_makespan_seconds", "Simulated span of the run",
          metrics.makespan);

    if (monitor)
        monitor->writeProm(os, now);
}

bool
writePrometheusFile(const std::string &path, const Metrics &metrics,
                    const SloMonitor *monitor, double now)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writePrometheus(os, metrics, monitor, now);
    return static_cast<bool>(os);
}

} // namespace serve
} // namespace lia
