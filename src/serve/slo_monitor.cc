#include "serve/slo_monitor.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "obs/sink.hh"

namespace lia {
namespace serve {

SloMonitor::SloMonitor(SloMonitorConfig config)
    : config_(std::move(config))
{
    LIA_ASSERT(config_.errorBudget > 0 && config_.errorBudget <= 1,
               "SLO error budget must be in (0, 1]");
    LIA_ASSERT(!config_.windows.empty(),
               "SLO monitor needs at least one window");
    for (double window : config_.windows) {
        LIA_ASSERT(window > 0, "SLO window must be positive");
        maxWindow_ = std::max(maxWindow_, window);
    }
    ttft_.name = "ttft";
    ttft_.target = config_.targets.ttft;
    ttft_.enabled = config_.targets.ttft > 0;
    tokenGap_.name = "token_gap";
    tokenGap_.target = config_.targets.tbt;
    tokenGap_.enabled = config_.targets.tbt > 0;
    e2e_.name = "e2e";
    e2e_.target = config_.targets.e2e;
    e2e_.enabled = config_.targets.e2e > 0;
}

void
SloMonitor::prune(Tracked &tracked, double now)
{
    while (!tracked.recent.empty() &&
           tracked.recent.front().first < now - maxWindow_)
        tracked.recent.pop_front();
}

void
SloMonitor::observe(Tracked &tracked, double now, double seconds)
{
    if (!tracked.enabled)
        return;
    const bool violated = seconds > tracked.target;
    tracked.hist.add(seconds);
    ++tracked.samples;
    if (violated)
        ++tracked.violations;
    tracked.recent.emplace_back(now, violated);
    prune(tracked, now);
}

void
SloMonitor::onTtft(double now, double seconds)
{
    observe(ttft_, now, seconds);
}

void
SloMonitor::onTokenGap(double now, double seconds)
{
    observe(tokenGap_, now, seconds);
}

void
SloMonitor::onComplete(double now, double response_seconds)
{
    observe(e2e_, now, response_seconds);
}

const SloMonitor::Tracked &
SloMonitor::tracked(Signal signal) const
{
    switch (signal) {
      case Signal::Ttft:
        return ttft_;
      case Signal::TokenGap:
        return tokenGap_;
      case Signal::E2e:
        return e2e_;
    }
    LIA_PANIC("unknown SLO signal");
}

std::uint64_t
SloMonitor::samples(Signal signal) const
{
    return tracked(signal).samples;
}

std::uint64_t
SloMonitor::violations(Signal signal) const
{
    return tracked(signal).violations;
}

const obs::Histogram &
SloMonitor::histogram(Signal signal) const
{
    return tracked(signal).hist;
}

double
SloMonitor::burnRate(Signal signal, double now, double window) const
{
    const Tracked &t = tracked(signal);
    if (!t.enabled)
        return 0.0;
    std::uint64_t in_window = 0;
    std::uint64_t violated = 0;
    for (auto it = t.recent.rbegin(); it != t.recent.rend(); ++it) {
        if (it->first < now - window)
            break;
        ++in_window;
        if (it->second)
            ++violated;
    }
    if (in_window == 0)
        return 0.0;
    const double fraction = static_cast<double>(violated) /
                            static_cast<double>(in_window);
    return fraction / config_.errorBudget;
}

double
SloMonitor::pressure(double now) const
{
    double worst = 0.0;
    for (const Tracked *t : {&ttft_, &tokenGap_, &e2e_}) {
        if (!t->enabled)
            continue;
        for (double window : config_.windows) {
            const Signal signal = t == &ttft_ ? Signal::Ttft
                                  : t == &tokenGap_
                                      ? Signal::TokenGap
                                      : Signal::E2e;
            worst = std::max(worst, burnRate(signal, now, window));
        }
    }
    return worst;
}

void
SloMonitor::write(std::ostream &os, double now) const
{
    os << "{\"now_s\":" << obs::jsonNumber(now)
       << ",\"error_budget\":" << obs::jsonNumber(config_.errorBudget)
       << ",\"pressure\":" << obs::jsonNumber(pressure(now))
       << ",\"signals\":{";
    bool first_signal = true;
    const struct
    {
        const Tracked *t;
        Signal signal;
    } rows[] = {{&ttft_, Signal::Ttft},
                {&tokenGap_, Signal::TokenGap},
                {&e2e_, Signal::E2e}};
    for (const auto &row : rows) {
        if (!row.t->enabled)
            continue;
        if (!first_signal)
            os << ",";
        first_signal = false;
        os << "\"" << row.t->name
           << "\":{\"target_s\":" << obs::jsonNumber(row.t->target)
           << ",\"samples\":" << row.t->samples
           << ",\"violations\":" << row.t->violations
           << ",\"burn_rates\":{";
        bool first_window = true;
        for (double window : config_.windows) {
            if (!first_window)
                os << ",";
            first_window = false;
            os << "\"" << obs::jsonNumber(window) << "\":"
               << obs::jsonNumber(
                      burnRate(row.signal, now, window));
        }
        os << "},\"hist\":";
        row.t->hist.write(os);
        os << "}";
    }
    os << "}}";
}

std::string
SloMonitor::toJson(double now) const
{
    std::ostringstream os;
    write(os, now);
    return os.str();
}

void
SloMonitor::writeProm(std::ostream &os, double now) const
{
    const Tracked *rows[] = {&ttft_, &tokenGap_, &e2e_};
    for (const Tracked *t : rows) {
        if (!t->enabled)
            continue;
        t->hist.writeProm(os, std::string("lia_slo_") + t->name +
                                  "_seconds",
                          std::string("Observed ") + t->name +
                              " latency distribution",
                          std::string("signal=\"") + t->name + "\"");
    }
    os << "# HELP lia_slo_burn_rate Error-budget burn rate per "
          "signal and window\n"
       << "# TYPE lia_slo_burn_rate gauge\n";
    const struct
    {
        const Tracked *t;
        Signal signal;
    } sigs[] = {{&ttft_, Signal::Ttft},
                {&tokenGap_, Signal::TokenGap},
                {&e2e_, Signal::E2e}};
    for (const auto &sig : sigs) {
        if (!sig.t->enabled)
            continue;
        for (double window : config_.windows) {
            os << "lia_slo_burn_rate{signal=\"" << sig.t->name
               << "\",window_s=\"" << obs::jsonNumber(window)
               << "\"} "
               << obs::jsonNumber(burnRate(sig.signal, now, window))
               << "\n";
        }
    }
    os << "# HELP lia_slo_pressure Max burn rate across signals and "
          "windows\n"
       << "# TYPE lia_slo_pressure gauge\n"
       << "lia_slo_pressure " << obs::jsonNumber(pressure(now))
       << "\n";
}

} // namespace serve
} // namespace lia
