/**
 * @file
 * Continuous-batching online serving engine.
 *
 * Runs the full online-inference scenario of §1/§7.2 on the DES
 * kernel: Poisson arrivals drawn from the Azure-statistics trace, an
 * iteration-level scheduler (static / continuous / SLO-aware /
 * preemptive), KV admission with optional CXL spill, chunked prefill,
 * swap transfers on a DDR<->CXL channel, and every iteration priced
 * by the LIA analytical engine at the batch size it actually ran at.
 * This replaces the single-request M/G/1 view (sim/serving.hh) with
 * the batch-size-dependent serving model the paper's Fig. 9 policy
 * map implies.
 */

#ifndef LIA_SERVE_ENGINE_HH
#define LIA_SERVE_ENGINE_HH

#include <memory>
#include <vector>

#include "core/engine.hh"
#include "serve/config.hh"
#include "serve/cost_cache.hh"
#include "serve/metrics.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

class ExecutionBackend;

/** Outcome of one serving run. */
struct Result
{
    Metrics metrics;

    /** Final lifecycle record of every request (arrival order). */
    std::vector<Request> requests;

    SchedulerPolicy policy = SchedulerPolicy::Continuous;
    bool paramsInCxl = false;     //!< §6 spill active this run
    double kvBudgetBytes = 0;     //!< admission budget used
    std::int64_t plannerCap = 0;  //!< capacity-planner batch cap (0 = none)

    /**
     * KV bytes (DDR + swap pool) still held when the run drained.
     * Zero unless the admission account leaked — regression-tested.
     */
    double kvReservedAtDrain = 0;

    /**
     * Prefix-cache bytes (DDR-resident + CXL-demoted) still held when
     * the run drained. Unlike kvReservedAtDrain this is deliberate
     * retention — cached prefixes outlive their sourcing requests.
     */
    double prefixCacheBytesAtDrain = 0;

    /** Goodput against @p slo (see metrics.hh). */
    double goodputPerSecond(const SloTargets &slo) const
    {
        return serve::goodputPerSecond(requests, slo,
                                       metrics.makespan);
    }

    /** Fraction of completions meeting @p slo. */
    double sloAttainment(const SloTargets &slo) const
    {
        return serve::sloAttainment(requests, slo);
    }
};

/** The serving engine: one (system, model, config) deployment. */
class ServingEngine
{
  public:
    ServingEngine(const hw::SystemConfig &system,
                  const model::ModelConfig &model, Config config);

    /**
     * Like the primary constructor, but pricing iterations through a
     * caller-owned cost cache instead of a private one — deployments
     * (and test harnesses) running many configurations of one
     * (system, model) pair then calibrate the analytical model once.
     * The shared cache must be built over the same system, model, and
     * engine preset this config implies, and must outlive the engine.
     */
    ServingEngine(const hw::SystemConfig &system,
                  const model::ModelConfig &model, Config config,
                  std::shared_ptr<const IterationCostCache> shared);

    /**
     * Simulate the configured request stream to completion. Runs are
     * deterministic: the same Config (seed included) yields
     * bit-identical results, and repeated calls are independent.
     */
    Result run();

    /**
     * Like run(), but additionally executing every committed iteration
     * plan on @p backend (see backend.hh). The backend observes plans,
     * finishes, and the drain; it must not influence scheduling — a
     * backed run returns bit-identical Results to an analytical-only
     * run (nullptr restores plain run() behaviour).
     */
    Result run(ExecutionBackend *backend);

    const core::EngineModel &pricingEngine() const { return engine_; }
    const IterationCostCache &costs() const
    {
        return shared_ ? *shared_ : costs_;
    }
    const Config &config() const { return config_; }

  private:
    hw::SystemConfig system_;
    model::ModelConfig model_;
    Config config_;
    core::EngineModel engine_;
    IterationCostCache costs_;
    std::shared_ptr<const IterationCostCache> shared_;
    std::int64_t plannerCap_ = 0;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_ENGINE_HH
