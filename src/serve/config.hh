/**
 * @file
 * Configuration of the continuous-batching serving engine.
 *
 * The engine generalises the M/G/1 serving queue (sim/serving.hh) to
 * iteration-level scheduling: requests join and leave the running
 * batch between engine iterations, and every iteration is priced by
 * the LIA analytical engine at the *current* dynamic batch size. The
 * scheduler policy selects between the Orca-style continuous batcher,
 * the static FIFO baseline, and an SLO-aware variant with admission
 * control.
 */

#ifndef LIA_SERVE_CONFIG_HH
#define LIA_SERVE_CONFIG_HH

#include <cstdint>
#include <functional>

#include "trace/azure.hh"

namespace lia {

namespace obs {
class EventSink;
} // namespace obs

namespace serve {

class SloMonitor;

/** Iteration-level scheduling discipline. */
enum class SchedulerPolicy
{
    /**
     * Static FIFO batching: collect up to maxBatch queued requests,
     * prefill them together, then decode the cohort until *every*
     * member finishes. No joins mid-flight; finished requests keep
     * occupying (and being priced at) their batch slot — the slot
     * waste continuous batching exists to eliminate.
     */
    StaticFifo,

    /**
     * Continuous (iteration-level) batching: after every iteration,
     * finished requests leave immediately and queued requests join up
     * to maxBatch, KV capacity permitting. Joiners are prefilled
     * piggybacked on the running batch's next iteration.
     */
    Continuous,

    /**
     * Continuous batching plus SLO enforcement: the decode batch is
     * capped so one decode step stays within the time-between-tokens
     * target (derived from the engine's iteration estimates, the
     * capacity planner's latency model), and admission sheds requests
     * whose projected time-to-first-token already exceeds the TTFT
     * target — trading raw completions for goodput.
     */
    SloAware,

    /**
     * Continuous batching with vLLM-style optimistic admission:
     * requests are admitted against their *current* KV footprint
     * (prompt only) plus a free-space watermark instead of the full
     * output horizon. When an iteration's projected KV growth would
     * breach the DDR budget the scheduler preempts victims
     * last-admitted-first, choosing per victim between swapping its
     * cache to the CXL pool (priced at the pool's interleaved
     * bandwidth) and discarding it for a later recompute prefill
     * (priced by the analytical engine), whichever the model says is
     * cheaper. Raises steady-state occupancy at the same DDR budget.
     */
    Preemptive,
};

const char *toString(SchedulerPolicy policy);

/** Service-level objectives enforced by SchedulerPolicy::SloAware. */
struct SloTargets
{
    /** Time-to-first-token target, seconds; 0 disables. */
    double ttft = 0;

    /** Per-token decode budget (time between tokens), seconds. */
    double tbt = 0;

    /** End-to-end response-time target used by goodput accounting. */
    double e2e = 0;

    bool any() const { return ttft > 0 || tbt > 0 || e2e > 0; }
};

/**
 * Cross-request prefix caching (DESIGN.md §10): a radix tree over
 * token-block prefixes whose nodes hold immutable KV spans, shared
 * ref-counted across requests. Hits skip prefill for the matched
 * prefix; cold nodes demote to the CXL pool when the transfer is
 * cheaper than the recompute the cached prefix saves.
 */
struct PrefixCacheConfig
{
    /** Master switch; off keeps the engine bit-identical to PR 6. */
    bool enabled = false;

    /**
     * Radix granularity: node spans and matches are multiples of this
     * many tokens. Coarser blocks mean fewer nodes and fewer splits;
     * finer blocks match more of a diverging prompt.
     */
    std::int64_t blockTokens = 16;

    /**
     * Zipfian prompt-sharing pools (0 = independent prompts). Each
     * request draws a pool with probability proportional to
     * 1/(rank+1)^sharingExponent and shares that pool's prompt prefix.
     */
    std::int64_t sharingPools = 0;

    /** Zipf skew of the pool popularity distribution. */
    double sharingExponent = 1.0;

    /** Upper bound on a pool prefix, as a fraction of maxContext. */
    double sharedFraction = 0.5;
};

/**
 * Speculative decoding (DESIGN.md §11): a CPU-side draft model
 * proposes draftTokens greedy tokens per decode step; the target
 * verifies them in one batched pass and emits the accepted prefix
 * plus one corrected token. Greedy verification is deterministic, so
 * spec-on output streams are bit-identical to spec-off — speculation
 * only changes how many tokens one iteration yields and what it costs.
 */
struct SpecConfig
{
    /** Master switch; off keeps the engine bit-identical to PR 7. */
    bool enabled = false;

    /** Draft tokens proposed per speculative decode step (k). */
    std::int64_t draftTokens = 4;

    /**
     * Modeled per-draft acceptance probability for analytic-only runs
     * (no execution backend): each draft is accepted independently
     * with this probability by a deterministic counter-hashed
     * Bernoulli draw, so analytic runs emit a plausible variable
     * token stream without running a draft model. Runtime-backed runs
     * ignore it — real verification decides.
     */
    double acceptRate = 0.8;

    /**
     * Acceptance oracle override: returns the number of drafts
     * accepted (in [0, k]) for speculation step @p spec_step of
     * request @p request_id proposing @p k drafts. The differential
     * harness records a backed run's real acceptances and replays
     * them through this hook so the analytic twin takes bit-identical
     * scheduling decisions. Null — the default — uses the acceptRate
     * draw above.
     */
    std::function<std::int64_t(std::uint64_t request_id,
                               std::int64_t k,
                               std::uint64_t spec_step)>
        oracle;
};

/** Configuration of one serving-engine run. */
struct Config
{
    double arrivalRatePerSecond = 0.2;  //!< Poisson arrival rate
    std::size_t requests = 200;         //!< requests to simulate
    trace::TraceKind trace = trace::TraceKind::Mixed;
    std::int64_t maxContext = 2048;     //!< trace length ceiling
    std::uint64_t seed = 1;             //!< arrivals + trace shapes

    SchedulerPolicy policy = SchedulerPolicy::Continuous;
    std::int64_t maxBatch = 64;         //!< hard batch ceiling
    SloTargets slo;                     //!< used by SloAware only

    /**
     * Let the §6 memory policy spill parameters to the CXL pool (when
     * the system has one), freeing DDR for KV cache — admission
     * capacity then grows exactly as Table 3's batch increase.
     */
    bool cxlSpill = true;

    /**
     * Token granularity for memoising iteration costs: contexts are
     * rounded up to this bucket before pricing, trading a slightly
     * conservative estimate for far fewer cost-model evaluations.
     */
    std::int64_t contextBucket = 32;

    /**
     * Chunked prefill: largest number of prompt tokens a request may
     * prefill in one iteration (0 = monolithic prefill). Long prompts
     * then split across iterations and interleave with the running
     * batch's decode steps instead of stalling them for the whole
     * prompt. Ignored by StaticFifo (cohorts prefill together).
     */
    std::int64_t prefillChunkTokens = 0;

    /**
     * Preemptive admission watermark: fraction of the KV budget kept
     * free when admitting new work optimistically, absorbing a few
     * iterations of decode growth before preemption triggers.
     */
    double admissionWatermark = 0.1;

    /**
     * Operator-imposed ceiling on the KV budget, bytes (0 = derive
     * the budget from system memory alone). Lets deployments pin the
     * KV pool — and lets tests compare admission policies at one
     * explicit DDR budget.
     */
    double kvBudgetCapBytes = 0;

    /** Cross-request prefix caching + prompt-sharing workload knobs. */
    PrefixCacheConfig prefix;

    /** Speculative decoding (draft + batched verify) knobs. */
    SpecConfig spec;

    /**
     * Optional trace sink receiving request-lifecycle spans, engine
     * iteration spans with the analytical cost breakdown, scheduler
     * decision instants, swap-channel occupancy, and per-iteration
     * counters on the simulated-time axis (tracks per serve/tracks.hh;
     * taxonomy in DESIGN.md §8). Not owned; must outlive the run.
     * Null — the default — emits nothing and costs nothing: runs are
     * bit-identical with or without a sink attached.
     */
    obs::EventSink *sink = nullptr;

    /**
     * Optional SLO burn-rate monitor (serve/slo_monitor.hh) fed the
     * TTFT / inter-token / response-time signals as they happen on
     * the simulated clock. Passive and not owned: like the sink, a
     * run with a monitor attached is bit-identical to one without —
     * it observes scheduling, never steers it. When attached, the
     * engine also emits an "slo_pressure" counter per iteration.
     */
    SloMonitor *sloMonitor = nullptr;

    /** Panics on malformed settings. */
    void validate() const;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_CONFIG_HH
