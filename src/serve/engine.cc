#include "serve/engine.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "core/capacity_planner.hh"
#include "serve/backend.hh"
#include "serve/instance.hh"
#include "sim/event_queue.hh"
#include "sim/serving.hh"
#include "trace/azure.hh"
#include "trace/sharing.hh"

namespace lia {
namespace serve {

ServingEngine::ServingEngine(const hw::SystemConfig &system,
                             const model::ModelConfig &model,
                             Config config)
    : ServingEngine(system, model, std::move(config), nullptr)
{
}

ServingEngine::ServingEngine(
    const hw::SystemConfig &system, const model::ModelConfig &model,
    Config config, std::shared_ptr<const IterationCostCache> shared)
    : system_(system), model_(model), config_(std::move(config)),
      engine_(system, model,
              pricingEngineConfig(system, model, config_)),
      costs_(engine_, config_.contextBucket),
      shared_(std::move(shared))
{
    config_.validate();
    model_.validate();
    config_.maxContext =
        std::min(config_.maxContext, model_.maxSeqLen);

    // SLO-aware scheduling caps batch growth with the capacity
    // planner's latency estimates: the largest batch whose whole-run
    // latency at the trace's typical shape meets the end-to-end SLO.
    if (config_.policy == SchedulerPolicy::SloAware &&
        config_.slo.e2e > 0) {
        const std::int64_t typical_out =
            config_.trace == trace::TraceKind::Code
                ? 32
                : (config_.trace == trace::TraceKind::Conversation
                       ? 256
                       : 144);
        core::PlannerRequest request;
        request.lOut = std::min<std::int64_t>(typical_out,
                                              config_.maxContext / 4);
        request.lIn = (config_.maxContext - request.lOut) / 2;
        request.latencySlo = config_.slo.e2e;
        request.maxBatch = config_.maxBatch;
        const auto planned =
            core::CapacityPlanner(system_, model_).plan(request);
        if (planned.feasible)
            plannerCap_ = planned.best.batch;
    }
}

Result
ServingEngine::run()
{
    return run(nullptr);
}

Result
ServingEngine::run(ExecutionBackend *backend)
{
    // One instance around a private clock: the standalone engine is
    // the one-replica special case of the shared-queue machinery (the
    // cluster router binds many instances to one queue instead).
    sim::EventQueue events;
    EngineInstance instance(system_, model_, config_, costs(), events);
    instance.setBackend(backend);
    instance.setPlannerCap(plannerCap_);

    // Draw the arrival sequence and request shapes up front, sharing
    // the Poisson helper (and its seed convention) with the M/G/1
    // simulators so equal seeds mean equal workloads.
    sim::PoissonProcess arrivals(config_.arrivalRatePerSecond,
                                 config_.seed);
    if (config_.prefix.sharingPools > 0) {
        // Zipfian prompt sharing: same arrival clock and shape stream
        // as the independent path (the pool wrapper draws shapes from
        // the identical generator seed), plus a pool assignment and a
        // shared-prefix length per request.
        trace::ZipfianPromptPools pools(
            config_.trace, config_.maxContext,
            config_.prefix.sharingPools,
            config_.prefix.sharingExponent,
            config_.prefix.sharedFraction,
            config_.prefix.blockTokens, config_.seed + 1);
        for (std::size_t i = 0; i < config_.requests; ++i) {
            const double arrival = arrivals.next();
            const trace::SharedRequest shared = pools.next();
            events.schedule(arrival, [&instance, shared]() {
                instance.submit(shared.shape.lIn, shared.shape.lOut,
                                shared.poolId, shared.sharedTokens);
            });
        }
    } else {
        trace::AzureTraceGenerator gen(config_.trace,
                                       config_.maxContext,
                                       config_.seed + 1);
        for (std::size_t i = 0; i < config_.requests; ++i) {
            const double arrival = arrivals.next();
            const trace::Request shape = gen.next();
            events.schedule(arrival,
                            [&instance, shape]() {
                                instance.submit(shape.lIn, shape.lOut);
                            });
        }
    }
    // While the DES runs, log messages can carry the simulated time
    // (LIA_LOG token "sim"); cleared again once the queue drains.
    setSimTimeProvider([&events] { return events.now(); });
    events.run();
    setSimTimeProvider(nullptr);
    if (backend)
        backend->onDrain();
    return instance.finalize();
}

} // namespace serve
} // namespace lia
