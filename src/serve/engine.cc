#include "serve/engine.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "core/capacity_planner.hh"
#include "obs/sink.hh"
#include "serve/admission.hh"
#include "serve/backend.hh"
#include "serve/scheduler.hh"
#include "serve/tracks.hh"
#include "sim/event_queue.hh"
#include "sim/serving.hh"
#include "sim/transfer.hh"
#include "trace/azure.hh"

namespace lia {
namespace serve {

using model::Stage;

namespace {

core::EngineConfig
pricingConfig(const hw::SystemConfig &system, const Config &config)
{
    core::EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = config.cxlSpill && system.cxl.present();
    return cfg;
}

/** Per-run simulation state driving the event queue. */
struct Run
{
    const Config &config;
    const IterationCostCache &costs;
    sim::EventQueue events;
    AdmissionController admission;
    Scheduler scheduler;
    sim::TransferChannel swapChannel;

    std::vector<Request> requests;
    std::vector<std::size_t> waiting;    //!< FIFO admission queue
    std::vector<std::size_t> active;     //!< admitted, unfinished
    std::vector<std::size_t> preempted;  //!< evicted, awaiting recompute
    std::vector<std::size_t> swapped;    //!< KV parked in the CXL pool
    bool inFlight = false;
    Metrics metrics;

    /** Optional plan executor; never influences scheduling. */
    ExecutionBackend *backend = nullptr;

    /** Optional trace sink (Config::sink); null costs nothing. */
    obs::EventSink *sink = nullptr;

    Run(const hw::SystemConfig &system,
        const model::ModelConfig &model, const Config &cfg,
        const IterationCostCache &cost_cache)
        : config(cfg), costs(cost_cache),
          admission(system, model, cfg),
          scheduler(cfg, cost_cache, admission),
          swapChannel(events, "ddr-cxl-swap",
                      admission.swapBandwidth(),
                      admission.swapLatency()),
          sink(cfg.sink)
    {
        if (sink) {
            sink->setTrackName(tracks::kIterations, "engine",
                               "iterations");
            sink->setTrackName(tracks::kScheduler, "engine",
                               "scheduler");
            sink->setTrackName(tracks::kSwapChannel, "engine",
                               "swap-channel");
            swapChannel.instrument(sink, tracks::kSwapChannel);
        }
    }

    /**
     * Close the open lifecycle span of @p request and open the next
     * one — request tracks carry exactly one state span at a time.
     */
    void
    spanTransition(const Request &request, const char *next, double now)
    {
        sink->endSpan(tracks::request(request.id), now);
        sink->beginSpan(tracks::request(request.id), next, now);
    }

    void
    arrival(std::size_t index)
    {
        Request &request = requests[index];
        if (sink) {
            const obs::Track track = tracks::request(request.id);
            sink->setTrackName(track, "requests",
                               "req " + std::to_string(request.id));
            sink->instant(
                track, "arrive", events.now(),
                {obs::arg("l_in", request.lIn),
                 obs::arg("l_out", request.lOut)});
        }
        if (!admission.fitsAlone(request)) {
            // Can never fit the KV budget, not even alone.
            request.state = RequestState::Rejected;
            ++metrics.rejectedCapacity;
            if (sink)
                sink->instant(tracks::request(request.id),
                              "reject.capacity", events.now());
            return;
        }
        if (sink)
            sink->beginSpan(tracks::request(request.id), "queued",
                            events.now());
        waiting.push_back(index);
        if (!inFlight)
            startIteration();
    }

    /** A request emitted one token: record the inter-token gap. */
    void
    tokenEmitted(Request &request, double now)
    {
        ++metrics.tokensGenerated;
        if (request.lastTokenTime >= 0)
            metrics.tokenGap.add(now - request.lastTokenTime);
        request.lastTokenTime = now;
    }

    /** The running pools must stay pairwise disjoint per request. */
    void
    checkStateExclusivity() const
    {
        for (std::size_t index : active) {
            const RequestState s = requests[index].state;
            LIA_ASSERT(s == RequestState::Prefilling ||
                           s == RequestState::Decoding,
                       "active request in state ", toString(s));
        }
        for (std::size_t index : preempted)
            LIA_ASSERT(requests[index].state == RequestState::Preempted,
                       "preempted pool holds a ",
                       toString(requests[index].state), " request");
        for (std::size_t index : swapped)
            LIA_ASSERT(requests[index].state == RequestState::Swapped,
                       "swap pool holds a ",
                       toString(requests[index].state), " request");
    }

    void
    startIteration()
    {
        const double now = events.now();
        const std::size_t depth = waiting.size();
        checkStateExclusivity();

        SchedulerState state;
        state.queue = waiting;
        state.active = active;
        state.preempted = preempted;
        state.swappedTotal = swapped.size();
        for (std::size_t index : swapped)
            if (requests[index].swapReady)
                state.swappable.push_back(index);

        IterationPlan plan = scheduler.next(now, state, requests);

        for (std::size_t index : plan.shed) {
            requests[index].state = RequestState::Rejected;
            ++metrics.shedSlo;
            if (sink) {
                const obs::Track track =
                    tracks::request(requests[index].id);
                sink->endSpan(track, now);  // close "queued"
                sink->instant(track, "shed.slo", now);
            }
        }
        for (std::size_t index : plan.admit) {
            Request &request = requests[index];
            request.state = RequestState::Prefilling;
            request.admitTime = now;
            active.push_back(index);
            if (sink)
                spanTransition(request, "prefill", now);
        }
        if (!plan.shed.empty() || !plan.admit.empty()) {
            waiting.erase(
                std::remove_if(waiting.begin(), waiting.end(),
                               [this](std::size_t index) {
                                   return requests[index].state !=
                                          RequestState::Queued;
                               }),
                waiting.end());
        }

        // --- Preemption traffic ---------------------------------------
        for (std::size_t index : plan.evict) {
            Request &request = requests[index];
            request.state = RequestState::Preempted;
            request.prefillTarget = request.context();
            request.prefilled = 0;
            ++request.preemptions;
            ++request.recomputes;
            ++metrics.preemptions;
            ++metrics.recomputes;
            preempted.push_back(index);
            if (sink)
                spanTransition(request, "preempted", now);
        }
        for (std::size_t index : plan.swapOut) {
            Request &request = requests[index];
            request.state = RequestState::Swapped;
            request.swapReady = false;
            ++request.preemptions;
            ++request.swapOuts;
            ++metrics.preemptions;
            ++metrics.swapOuts;
            metrics.swapOutBytes += request.kvSwappedBytes;
            swapped.push_back(index);
            if (sink)
                spanTransition(request, "swapped", now);
            swapChannel.transfer(
                request.kvSwappedBytes,
                [this, index](sim::Tick) {
                    requests[index].swapReady = true;
                    // A drained swap-out may be the only thing the
                    // idle engine was waiting on.
                    if (!inFlight)
                        startIteration();
                });
        }
        if (!plan.evict.empty() || !plan.swapOut.empty()) {
            active.erase(
                std::remove_if(active.begin(), active.end(),
                               [this](std::size_t index) {
                                   const RequestState s =
                                       requests[index].state;
                                   return s ==
                                              RequestState::Preempted ||
                                          s == RequestState::Swapped;
                               }),
                active.end());
        }
        for (std::size_t index : plan.resume) {
            requests[index].state = RequestState::Prefilling;
            active.push_back(index);
            if (sink)
                spanTransition(requests[index], "recompute", now);
        }
        if (!plan.resume.empty()) {
            preempted.erase(
                std::remove_if(preempted.begin(), preempted.end(),
                               [this](std::size_t index) {
                                   return requests[index].state !=
                                          RequestState::Preempted;
                               }),
                preempted.end());
        }
        for (std::size_t index : plan.swapIn) {
            // The cache streams back while this iteration computes; the
            // request rejoins the batch when its transfer drains.
            Request &request = requests[index];
            ++metrics.swapIns;
            metrics.swapInBytes += request.kvReservedBytes;
            if (sink) {
                sink->instant(
                    tracks::request(request.id), "swap_in.start", now,
                    {obs::arg("bytes", request.kvReservedBytes)});
            }
            swapChannel.transfer(
                request.kvReservedBytes,
                [this, index](sim::Tick) { swapInArrived(index); });
        }
        if (!plan.swapIn.empty()) {
            swapped.erase(
                std::remove_if(swapped.begin(), swapped.end(),
                               [this, &plan](std::size_t index) {
                                   return std::find(
                                              plan.swapIn.begin(),
                                              plan.swapIn.end(),
                                              index) !=
                                          plan.swapIn.end();
                               }),
                swapped.end());
        }

        // Execute the committed plan: all request pools and the
        // admission byte account reflect it at this point, but no
        // engine-side progress counters have advanced yet.
        if (backend && !plan.idle())
            backend->onPlan(plan, requests, admission);

        if (plan.computeIdle()) {
            inFlight = false;
            // A bookkeeping-only round (victims out, nothing to run)
            // replans immediately: the freed budget lets preempted
            // work resume in the same instant. Terminates because
            // each replan either schedules compute, goes fully idle
            // (swap completions re-kick later), or shrinks the active
            // set further. Fully idle rounds just wait.
            if (!plan.idle())
                startIteration();
            return;
        }
        inFlight = true;

        double duration = 0;
        std::int64_t chunkTokens = 1, chunkHistory = 0;
        std::int64_t decodeContext = 1;
        if (!plan.chunks.empty()) {
            for (const PrefillChunk &chunk : plan.chunks) {
                chunkTokens = std::max(chunkTokens, chunk.tokens);
                chunkHistory = std::max(chunkHistory, chunk.history);
            }
            duration += costs.chunkTime(
                static_cast<std::int64_t>(plan.chunks.size()),
                chunkHistory, chunkTokens);
            metrics.prefillChunks += plan.chunks.size();
        }
        if (!plan.decode.empty()) {
            for (std::size_t index : plan.decode)
                decodeContext = std::max(decodeContext,
                                         requests[index].context());
            duration += costs.time(Stage::Decode,
                                   plan.decodePriceBatch,
                                   decodeContext);
        }
        LIA_ASSERT(duration > 0, "iteration priced at zero time");

        metrics.queueDepth.add(static_cast<double>(depth));
        metrics.batchOccupancy.add(static_cast<double>(active.size()));
        if (admission.kvBudgetBytes() > 0)
            metrics.kvOccupancy.add(admission.reservedBytes() /
                                    admission.kvBudgetBytes());
        metrics.kvReservedPeakBytes =
            std::max(metrics.kvReservedPeakBytes,
                     admission.reservedBytes());
        ++metrics.iterations;
        metrics.busyTime += duration;

        if (sink)
            emitIteration(plan, now, duration, depth, chunkTokens,
                          chunkHistory, decodeContext);

        events.schedule(now + duration,
                        [this, plan = std::move(plan)]() {
                            completeIteration(plan);
                        });
    }

    /**
     * One iteration span with the analytical cost attribution, plus
     * the per-iteration counter samples. Duration is known when the
     * iteration is scheduled and iterations run serially, so begin
     * and end can be emitted together and stay per-track monotone.
     * The breakdown lookups hit cache entries the pricing above just
     * created — an instrumented run evaluates no extra points.
     */
    void
    emitIteration(const IterationPlan &plan, double now,
                  double duration, std::size_t depth,
                  std::int64_t chunk_tokens, std::int64_t chunk_history,
                  std::int64_t decode_context)
    {
        core::Breakdown breakdown;
        double pcie_bytes = 0;
        auto accumulate = [&](const core::IterationEstimate &est) {
            breakdown.cpuTime += est.breakdown.cpuTime;
            breakdown.gpuTime += est.breakdown.gpuTime;
            breakdown.comTime += est.breakdown.comTime;
            pcie_bytes += est.pcieBytes;
        };
        if (!plan.chunks.empty())
            accumulate(costs.chunkEstimate(
                static_cast<std::int64_t>(plan.chunks.size()),
                chunk_history, chunk_tokens));
        if (!plan.decode.empty())
            accumulate(costs.estimate(Stage::Decode,
                                      plan.decodePriceBatch,
                                      decode_context));

        // Counters first (they sample `now`): the iteration span ends
        // at now + duration, so this order keeps the whole track's
        // event stream monotone in emission order — the schema test
        // checks exactly that.
        sink->counter(tracks::kIterations, "queue_depth", now,
                      static_cast<double>(depth));
        sink->counter(tracks::kIterations, "batch_occupancy", now,
                      static_cast<double>(active.size()));
        sink->counter(tracks::kIterations, "kv_reserved_bytes", now,
                      admission.reservedBytes());
        if (admission.kvBudgetBytes() > 0)
            sink->counter(tracks::kIterations, "kv_occupancy", now,
                          admission.reservedBytes() /
                              admission.kvBudgetBytes());

        sink->beginSpan(
            tracks::kIterations, "iteration", now,
            {obs::arg("iteration", static_cast<std::int64_t>(
                                       metrics.iterations)),
             obs::arg("duration_s", duration),
             obs::arg("decode", static_cast<std::int64_t>(
                                    plan.decode.size())),
             obs::arg("decode_price_batch", plan.decodePriceBatch),
             obs::arg("chunks", static_cast<std::int64_t>(
                                    plan.chunks.size())),
             obs::arg("admit", static_cast<std::int64_t>(
                                   plan.admit.size())),
             obs::arg("preempt", static_cast<std::int64_t>(
                                     plan.evict.size() +
                                     plan.swapOut.size())),
             obs::arg("cpu_s", breakdown.cpuTime),
             obs::arg("gpu_s", breakdown.gpuTime),
             obs::arg("com_s", breakdown.comTime),
             obs::arg("pcie_bytes", pcie_bytes)});
        sink->endSpan(tracks::kIterations, now + duration);
    }

    void
    swapInArrived(std::size_t index)
    {
        Request &request = requests[index];
        LIA_ASSERT(request.state == RequestState::Swapped,
                   "swap-in of a ", toString(request.state),
                   " request");
        request.state = RequestState::Decoding;
        request.swapReady = false;
        active.push_back(index);
        if (sink)
            spanTransition(request, "decode", events.now());
        if (!inFlight)
            startIteration();
    }

    void
    completeIteration(const IterationPlan &plan)
    {
        const double now = events.now();
        for (std::size_t index : plan.decode) {
            Request &request = requests[index];
            ++request.generated;
            tokenEmitted(request, now);
            if (request.done())
                finish(request, now);
        }
        for (const PrefillChunk &chunk : plan.chunks) {
            Request &request = requests[chunk.index];
            request.prefilled += chunk.tokens;
            if (request.inPrefill())
                continue;
            // Pass complete: the pass's final forward emits one token
            // — the first output token of a fresh prefill, or the
            // continuation token of a recompute (the rebuilt cache's
            // last position samples the token that follows the
            // already-generated stream, so the recompute iteration
            // makes the same one-token progress a decode step would).
            ++request.generated;
            if (request.firstTokenTime < 0) {
                request.firstTokenTime = now;
                metrics.ttft.add(request.ttft());
                metrics.queueWait.add(request.queueWait());
            }
            tokenEmitted(request, now);
            if (request.done()) {
                finish(request, now);
            } else {
                request.state = RequestState::Decoding;
                if (sink)
                    spanTransition(request, "decode", now);
            }
        }
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [this](std::size_t index) {
                                        return requests[index].state ==
                                               RequestState::Finished;
                                    }),
                     active.end());
        startIteration();
    }

    void
    finish(Request &request, double now)
    {
        request.state = RequestState::Finished;
        request.finishTime = now;
        admission.release(request);
        if (backend)
            backend->onFinish(request);
        if (sink) {
            const obs::Track track = tracks::request(request.id);
            sink->endSpan(track, now);  // close the state span
            sink->instant(
                track, "finish", now,
                {obs::arg("ttft_s", request.ttft()),
                 obs::arg("response_s", request.responseTime()),
                 obs::arg("generated", request.generated)});
        }
        ++metrics.completed;
        metrics.responseTime.add(request.responseTime());
        if (request.lOut > 1)
            metrics.tbt.add(request.meanTbt());
    }
};

} // namespace

ServingEngine::ServingEngine(const hw::SystemConfig &system,
                             const model::ModelConfig &model,
                             Config config)
    : ServingEngine(system, model, std::move(config), nullptr)
{
}

ServingEngine::ServingEngine(
    const hw::SystemConfig &system, const model::ModelConfig &model,
    Config config, std::shared_ptr<const IterationCostCache> shared)
    : system_(system), model_(model), config_(std::move(config)),
      engine_(system, model, pricingConfig(system, config_)),
      costs_(engine_, config_.contextBucket),
      shared_(std::move(shared))
{
    config_.validate();
    model_.validate();
    config_.maxContext =
        std::min(config_.maxContext, model_.maxSeqLen);

    // SLO-aware scheduling caps batch growth with the capacity
    // planner's latency estimates: the largest batch whose whole-run
    // latency at the trace's typical shape meets the end-to-end SLO.
    if (config_.policy == SchedulerPolicy::SloAware &&
        config_.slo.e2e > 0) {
        const std::int64_t typical_out =
            config_.trace == trace::TraceKind::Code
                ? 32
                : (config_.trace == trace::TraceKind::Conversation
                       ? 256
                       : 144);
        core::PlannerRequest request;
        request.lOut = std::min<std::int64_t>(typical_out,
                                              config_.maxContext / 4);
        request.lIn = (config_.maxContext - request.lOut) / 2;
        request.latencySlo = config_.slo.e2e;
        request.maxBatch = config_.maxBatch;
        const auto planned =
            core::CapacityPlanner(system_, model_).plan(request);
        if (planned.feasible)
            plannerCap_ = planned.best.batch;
    }
}

Result
ServingEngine::run()
{
    return run(nullptr);
}

Result
ServingEngine::run(ExecutionBackend *backend)
{
    Run run(system_, model_, config_, costs());
    run.backend = backend;
    run.scheduler.setPlannerCap(plannerCap_);

    // Draw the arrival sequence and request shapes up front, sharing
    // the Poisson helper (and its seed convention) with the M/G/1
    // simulators so equal seeds mean equal workloads.
    sim::PoissonProcess arrivals(config_.arrivalRatePerSecond,
                                 config_.seed);
    trace::AzureTraceGenerator gen(config_.trace, config_.maxContext,
                                   config_.seed + 1);
    run.requests.resize(config_.requests);
    for (std::size_t i = 0; i < config_.requests; ++i) {
        Request &request = run.requests[i];
        request.id = i;
        request.arrival = arrivals.next();
        const trace::Request shape = gen.next();
        request.lIn = shape.lIn;
        request.lOut = shape.lOut;
    }
    for (std::size_t i = 0; i < config_.requests; ++i) {
        run.events.schedule(run.requests[i].arrival,
                            [&run, i]() { run.arrival(i); });
    }
    // While the DES runs, log messages can carry the simulated time
    // (LIA_LOG token "sim"); cleared again once the queue drains.
    setSimTimeProvider([&run] { return run.events.now(); });
    run.events.run();
    setSimTimeProvider(nullptr);
    if (backend)
        backend->onDrain();

    Result result;
    result.metrics = std::move(run.metrics);
    result.metrics.makespan = run.events.now();
    result.metrics.swapBusyTime = run.swapChannel.busyTime();
    result.requests = std::move(run.requests);
    result.policy = config_.policy;
    result.paramsInCxl = run.admission.paramsInCxl();
    result.kvBudgetBytes = run.admission.kvBudgetBytes();
    result.plannerCap = plannerCap_;
    result.kvReservedAtDrain =
        run.admission.reservedBytes() + run.admission.swappedBytes();
    return result;
}

} // namespace serve
} // namespace lia
