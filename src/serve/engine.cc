#include "serve/engine.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "core/capacity_planner.hh"
#include "serve/admission.hh"
#include "serve/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/serving.hh"
#include "trace/azure.hh"

namespace lia {
namespace serve {

using model::Stage;

namespace {

core::EngineConfig
pricingConfig(const hw::SystemConfig &system, const Config &config)
{
    core::EngineConfig cfg;
    cfg.costOptions.executionAwareObjective = true;
    cfg.autoMemoryPolicy = config.cxlSpill && system.cxl.present();
    return cfg;
}

/** Per-run simulation state driving the event queue. */
struct Run
{
    const Config &config;
    IterationCostCache &costs;
    sim::EventQueue events;
    AdmissionController admission;
    Scheduler scheduler;

    std::vector<Request> requests;
    std::vector<std::size_t> waiting;  //!< FIFO admission queue
    std::vector<std::size_t> active;   //!< admitted, unfinished
    bool inFlight = false;
    Metrics metrics;

    Run(const hw::SystemConfig &system,
        const model::ModelConfig &model, const Config &cfg,
        IterationCostCache &cost_cache)
        : config(cfg), costs(cost_cache),
          admission(system, model, cfg),
          scheduler(cfg, cost_cache, admission)
    {
    }

    void
    arrival(std::size_t index)
    {
        Request &request = requests[index];
        if (!admission.fitsAlone(request)) {
            // Can never fit the KV budget, not even alone.
            request.state = RequestState::Rejected;
            ++metrics.rejectedCapacity;
            return;
        }
        waiting.push_back(index);
        if (!inFlight)
            startIteration();
    }

    void
    startIteration()
    {
        const double now = events.now();
        const std::size_t depth = waiting.size();
        IterationPlan plan =
            scheduler.next(now, waiting, active, requests);

        for (std::size_t index : plan.shed) {
            requests[index].state = RequestState::Rejected;
            ++metrics.shedSlo;
        }
        for (std::size_t index : plan.admit) {
            requests[index].state = RequestState::Prefilling;
            requests[index].admitTime = now;
        }
        if (!plan.shed.empty() || !plan.admit.empty()) {
            waiting.erase(
                std::remove_if(waiting.begin(), waiting.end(),
                               [this](std::size_t index) {
                                   return requests[index].state !=
                                          RequestState::Queued;
                               }),
                waiting.end());
        }

        if (plan.idle()) {
            inFlight = false;
            return;
        }
        inFlight = true;

        double duration = 0;
        if (!plan.admit.empty()) {
            std::int64_t prompt = 1;
            for (std::size_t index : plan.admit)
                prompt = std::max(prompt, requests[index].lIn);
            duration += costs.time(
                Stage::Prefill,
                static_cast<std::int64_t>(plan.admit.size()), prompt);
        }
        if (!plan.decode.empty()) {
            std::int64_t context = 1;
            for (std::size_t index : plan.decode)
                context =
                    std::max(context, requests[index].context());
            duration += costs.time(Stage::Decode,
                                   plan.decodePriceBatch, context);
        }
        LIA_ASSERT(duration > 0, "iteration priced at zero time");

        metrics.queueDepth.add(static_cast<double>(depth));
        metrics.batchOccupancy.add(static_cast<double>(
            active.size() + plan.admit.size()));
        ++metrics.iterations;
        metrics.busyTime += duration;

        events.schedule(now + duration,
                        [this, plan = std::move(plan)]() {
                            completeIteration(plan);
                        });
    }

    void
    completeIteration(const IterationPlan &plan)
    {
        const double now = events.now();
        for (std::size_t index : plan.decode) {
            Request &request = requests[index];
            ++request.generated;
            ++metrics.tokensGenerated;
            if (request.done())
                finish(request, now);
        }
        for (std::size_t index : plan.admit) {
            Request &request = requests[index];
            request.generated = 1;  // prefill produces the first token
            ++metrics.tokensGenerated;
            request.firstTokenTime = now;
            metrics.ttft.add(request.ttft());
            metrics.queueWait.add(request.queueWait());
            if (request.done()) {
                finish(request, now);
            } else {
                request.state = RequestState::Decoding;
                active.push_back(index);
            }
        }
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [this](std::size_t index) {
                                        return requests[index].state ==
                                               RequestState::Finished;
                                    }),
                     active.end());
        startIteration();
    }

    void
    finish(Request &request, double now)
    {
        request.state = RequestState::Finished;
        request.finishTime = now;
        admission.release(request);
        ++metrics.completed;
        metrics.responseTime.add(request.responseTime());
        if (request.lOut > 1)
            metrics.tbt.add(request.meanTbt());
    }
};

} // namespace

ServingEngine::ServingEngine(const hw::SystemConfig &system,
                             const model::ModelConfig &model,
                             Config config)
    : system_(system), model_(model), config_(std::move(config)),
      engine_(system, model, pricingConfig(system, config_)),
      costs_(engine_, config_.contextBucket)
{
    config_.validate();
    model_.validate();
    config_.maxContext =
        std::min(config_.maxContext, model_.maxSeqLen);

    // SLO-aware scheduling caps batch growth with the capacity
    // planner's latency estimates: the largest batch whose whole-run
    // latency at the trace's typical shape meets the end-to-end SLO.
    if (config_.policy == SchedulerPolicy::SloAware &&
        config_.slo.e2e > 0) {
        const std::int64_t typical_out =
            config_.trace == trace::TraceKind::Code
                ? 32
                : (config_.trace == trace::TraceKind::Conversation
                       ? 256
                       : 144);
        core::PlannerRequest request;
        request.lOut = std::min<std::int64_t>(typical_out,
                                              config_.maxContext / 4);
        request.lIn = (config_.maxContext - request.lOut) / 2;
        request.latencySlo = config_.slo.e2e;
        request.maxBatch = config_.maxBatch;
        const auto planned =
            core::CapacityPlanner(system_, model_).plan(request);
        if (planned.feasible)
            plannerCap_ = planned.best.batch;
    }
}

Result
ServingEngine::run()
{
    Run run(system_, model_, config_, costs_);
    run.scheduler.setPlannerCap(plannerCap_);

    // Draw the arrival sequence and request shapes up front, sharing
    // the Poisson helper (and its seed convention) with the M/G/1
    // simulators so equal seeds mean equal workloads.
    sim::PoissonProcess arrivals(config_.arrivalRatePerSecond,
                                 config_.seed);
    trace::AzureTraceGenerator gen(config_.trace, config_.maxContext,
                                   config_.seed + 1);
    run.requests.resize(config_.requests);
    for (std::size_t i = 0; i < config_.requests; ++i) {
        Request &request = run.requests[i];
        request.id = i;
        request.arrival = arrivals.next();
        const trace::Request shape = gen.next();
        request.lIn = shape.lIn;
        request.lOut = shape.lOut;
    }
    for (std::size_t i = 0; i < config_.requests; ++i) {
        run.events.schedule(run.requests[i].arrival,
                            [&run, i]() { run.arrival(i); });
    }
    run.events.run();

    Result result;
    result.metrics = std::move(run.metrics);
    result.metrics.makespan = run.events.now();
    result.requests = std::move(run.requests);
    result.policy = config_.policy;
    result.paramsInCxl = run.admission.paramsInCxl();
    result.kvBudgetBytes = run.admission.kvBudgetBytes();
    result.plannerCap = plannerCap_;
    return result;
}

} // namespace serve
} // namespace lia
