#include "serve/config.hh"

#include "base/logging.hh"

namespace lia {
namespace serve {

const char *
toString(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::StaticFifo:
        return "static-fifo";
      case SchedulerPolicy::Continuous:
        return "continuous";
      case SchedulerPolicy::SloAware:
        return "slo-aware";
      case SchedulerPolicy::Preemptive:
        return "preemptive";
    }
    LIA_PANIC("unknown scheduler policy");
}

void
Config::validate() const
{
    LIA_ASSERT(arrivalRatePerSecond > 0, "bad arrival rate");
    LIA_ASSERT(requests > 0, "no requests");
    LIA_ASSERT(maxContext >= 64, "context too small for the trace");
    LIA_ASSERT(maxBatch >= 1, "bad batch ceiling");
    LIA_ASSERT(contextBucket >= 1, "bad context bucket");
    LIA_ASSERT(slo.ttft >= 0 && slo.tbt >= 0 && slo.e2e >= 0,
               "negative SLO target");
    LIA_ASSERT(prefillChunkTokens >= 0, "bad prefill chunk size");
    LIA_ASSERT(admissionWatermark >= 0 && admissionWatermark <= 0.9,
               "admission watermark outside [0, 0.9]");
    LIA_ASSERT(kvBudgetCapBytes >= 0, "negative KV budget cap");
    LIA_ASSERT(prefix.blockTokens >= 1, "bad prefix block size");
    LIA_ASSERT(prefix.sharingPools >= 0, "negative sharing pool count");
    LIA_ASSERT(prefix.sharingExponent > 0, "bad sharing exponent");
    LIA_ASSERT(prefix.sharedFraction > 0 && prefix.sharedFraction <= 1,
               "shared fraction outside (0, 1]");
    LIA_ASSERT(!spec.enabled || spec.draftTokens >= 1,
               "speculative decoding needs at least one draft token");
    LIA_ASSERT(spec.acceptRate >= 0 && spec.acceptRate <= 1,
               "acceptance rate outside [0, 1]");
}

} // namespace serve
} // namespace lia
