/**
 * @file
 * Memoised per-iteration pricing for the serving engine.
 *
 * The scheduler consults the LIA analytical engine
 * (core::EngineModel::estimateIteration) thousands of times per run —
 * once per decode step and prefill group, at whatever dynamic batch
 * size the batch happens to have. The cache quantises (batch, context)
 * onto a coarse grid (contexts rounded up to a bucket, batches rounded
 * up onto a geometric ladder) and memoises the engine estimates, so
 * repeated iterations at nearby operating points are priced once.
 * Rounding *up* keeps the estimates conservative.
 */

#ifndef LIA_SERVE_COST_CACHE_HH
#define LIA_SERVE_COST_CACHE_HH

#include <cstdint>
#include <map>
#include <tuple>

#include "core/engine.hh"

namespace lia {

namespace core {
class MultiGpuLiaModel;
} // namespace core

namespace serve {

/** Memoised iteration-cost lookups against a core::EngineModel. */
class IterationCostCache
{
  public:
    /**
     * @param engine          the analytical pricing engine
     * @param context_bucket  token granularity of the context grid
     * @param tensor_parallel when non-null, every memoised estimate
     *                        additionally pays the §8 per-iteration
     *                        all-reduce surcharge of this W-way
     *                        tensor-parallel deployment (the engine
     *                        must then be built over its pooled
     *                        system). Must outlive the cache. Null —
     *                        the default — prices a single GPU and is
     *                        bit-identical to the pre-TP cache.
     */
    IterationCostCache(
        const core::EngineModel &engine,
        std::int64_t context_bucket = 32,
        const core::MultiGpuLiaModel *tensor_parallel = nullptr);

    /** Seconds for one iteration of @p stage at (batch, context). */
    double time(model::Stage stage, std::int64_t batch,
                std::int64_t context) const;

    /** Full engine estimate at the quantised operating point. */
    const core::IterationEstimate &estimate(model::Stage stage,
                                            std::int64_t batch,
                                            std::int64_t context) const;

    /**
     * Seconds for one chunked-prefill iteration: @p tokens prompt
     * tokens on top of @p history tokens of materialised KV, at
     * @p batch concurrent chunks (core::EngineModel's telescoped
     * partial-prefill price, quantised and memoised like the rest).
     * With no history this is exactly the monolithic prefill price,
     * so chunking-off runs are bit-identical to the legacy path.
     */
    double chunkTime(std::int64_t batch, std::int64_t history,
                     std::int64_t tokens) const;

    /**
     * Full engine estimate behind chunkTime() — same quantised key,
     * same memo — exposing the CPU/GPU/transfer breakdown for trace
     * attribution. chunkTime(b, h, t) == chunkEstimate(b, h, t).time.
     */
    const core::IterationEstimate &chunkEstimate(
        std::int64_t batch, std::int64_t history,
        std::int64_t tokens) const;

    /**
     * Seconds for one speculative decode iteration: @p draft_tokens
     * CPU-side draft proposals plus the target's k+1-token verify
     * pass, at @p batch sequences of @p context history
     * (core::EngineModel's spec pricing, quantised and memoised like
     * the rest). The quantised verify end is clamped inside the model
     * maximum, mirroring chunkEstimate.
     */
    double specTime(std::int64_t batch, std::int64_t context,
                    std::int64_t draft_tokens) const;

    /** Full engine estimate behind specTime() — same key, same memo. */
    const core::IterationEstimate &specEstimate(
        std::int64_t batch, std::int64_t context,
        std::int64_t draft_tokens) const;

    /** Context rounded up to the bucket grid (model-max clamped). */
    std::int64_t bucketContext(std::int64_t context) const;

    /** Batch rounded up onto the geometric pricing ladder. */
    static std::int64_t bucketBatch(std::int64_t batch);

    /** Distinct engine evaluations performed so far. */
    std::size_t evaluations() const
    {
        return cache_.size() + chunkCache_.size() + specCache_.size();
    }

    const core::EngineModel &engine() const { return engine_; }

  private:
    using Key = std::tuple<int, std::int64_t, std::int64_t>;

    /** Add the TP all-reduce surcharge to a fresh estimate (no-op
     *  without a tensor-parallel model). @p tokens is the number of
     *  tokens each sequence processes this iteration. */
    void addTensorParallelComm(core::IterationEstimate &estimate,
                               model::Stage stage, std::int64_t batch,
                               std::int64_t tokens,
                               std::int64_t context) const;

    const core::EngineModel &engine_;
    std::int64_t contextBucket_;
    const core::MultiGpuLiaModel *tensorParallel_;
    mutable std::map<Key, core::IterationEstimate> cache_;
    mutable std::map<Key, core::IterationEstimate> chunkCache_;
    mutable std::map<Key, core::IterationEstimate> specCache_;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_COST_CACHE_HH
