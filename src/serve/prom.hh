/**
 * @file
 * Prometheus text exposition of a serving run (DESIGN.md §13).
 *
 * Renders a serve::Metrics record — and, when one is attached, the
 * SloMonitor's burn-rate gauges — in the Prometheus text format
 * (`# HELP` / `# TYPE` headers, `_bucket{le=...}` cumulative
 * histograms, `_sum`/`_count` pairs, plain gauges). The output is a
 * pure function of the metrics record, so `--metrics-out` artifacts
 * are byte-deterministic like every other exported artifact.
 */

#ifndef LIA_SERVE_PROM_HH
#define LIA_SERVE_PROM_HH

#include <ostream>
#include <string>

#include "serve/metrics.hh"

namespace lia {
namespace serve {

class SloMonitor;

/**
 * Write @p metrics as Prometheus text exposition: the streaming
 * latency histograms (lia_ttft_seconds, lia_token_gap_seconds,
 * lia_response_seconds), throughput/utilisation gauges, and the
 * scheduler counters. When @p monitor is non-null its per-signal
 * histograms and burn-rate gauges (evaluated at @p now) follow.
 */
void writePrometheus(std::ostream &os, const Metrics &metrics,
                     const SloMonitor *monitor = nullptr,
                     double now = 0);

/** writePrometheus to @p path; false when the file cannot open. */
bool writePrometheusFile(const std::string &path,
                         const Metrics &metrics,
                         const SloMonitor *monitor = nullptr,
                         double now = 0);

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_PROM_HH
