/**
 * @file
 * Cross-request prefix caching: a radix tree over token-block
 * prefixes whose nodes reference immutable KV spans (DESIGN.md §10).
 *
 * Prompts are cut into fixed-size token blocks
 * (Config::prefix.blockTokens); tree nodes span one or more whole
 * blocks and children are keyed by their first block, so any two
 * cached prompts share exactly their longest common block-aligned
 * prefix. An admission that matches a cached prefix skips prefill for
 * the matched tokens and chunk-prefills only the suffix; the matched
 * node is pinned (ref-counted) until the hit's prefill pass completes,
 * so eviction can never free KV a live request is attaching.
 *
 * The cache competes with live KV for the DDR budget through the
 * admission controller's separate cache ledger: inserting only spends
 * headroom left by live reservations, and when live work needs bytes
 * back the scheduler reclaims cold cache nodes *before* preempting
 * requests (live KV always wins). Reclaim walks unpinned leaves in
 * LRU order and prices each victim with the §5 analytical rule: a
 * node demotes to the CXL pool when reading it back costs less than
 * recomputing its prefix (transferSeconds(bytes) <=
 * recomputeSeconds(prefixTokens) and the pool has room), else it is
 * dropped. Demoted nodes stay matchable — a hit on one charges the
 * read-back bytes to the swap channel.
 *
 * The tree itself is pure engine-side bookkeeping over token values;
 * every structural mutation is also emitted as a PrefixOp in the
 * iteration plan, in execution order, so the runtime backend can
 * mirror the node payloads (actual KV spans + FNV-1a digests) and
 * verify every hit bit-identically.
 */

#ifndef LIA_SERVE_PREFIX_CACHE_HH
#define LIA_SERVE_PREFIX_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "model/config.hh"
#include "serve/admission.hh"
#include "serve/config.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/**
 * Deterministic synthetic prompt of @p request. Independent prompts
 * (poolId < 0) reproduce the PR 3 splitmix stream from (seed, id)
 * bit-for-bit; pool members draw their first sharedLen tokens from a
 * pool-salted stream instead, so every member of one pool shares a
 * bit-identical prompt prefix (and then diverges on the id stream).
 * Both the engine-side radix tree and the runtime backend synthesize
 * prompts through this one function.
 */
std::vector<std::int64_t> synthesizePrompt(std::uint64_t seed,
                                           const Request &request,
                                           std::int64_t vocab);

/** One mirrored mutation of the radix tree, in execution order. */
struct PrefixOp
{
    enum class Kind
    {
        Insert,   //!< new node copied out of a completed pass's KV
        Split,    //!< node split at a block boundary (new head node)
        Evict,    //!< resident node dropped (DDR freed)
        Demote,   //!< resident node moved to the CXL pool
        DropCxl,  //!< demoted node dropped (CXL freed)
    };

    Kind kind = Kind::Insert;
    std::uint64_t node = 0;  //!< the node created/affected (Split: head)
    std::uint64_t tail = 0;  //!< Split only: original node keeping the tail
    std::uint64_t source = 0;     //!< Insert only: staged source request id
    std::int64_t startToken = 0;  //!< Insert only: offset in the prompt
    std::int64_t tokens = 0;      //!< span length of the affected node
};

/** One admission's cache hit, carried in the iteration plan. */
struct PrefixHit
{
    std::size_t index = 0;         //!< request index in the run's pool
    std::uint64_t node = 0;        //!< pinned terminal node
    std::int64_t tokens = 0;       //!< total prompt tokens matched
    std::int64_t terminalTokens = 0;  //!< tokens matched in the terminal
    double cxlBytes = 0;           //!< demoted bytes the hit reads back
    std::vector<std::uint64_t> path;  //!< root-to-terminal node ids
};

/** Outcome of a longest-block-prefix lookup (pure; commit separately). */
struct PrefixMatch
{
    std::int64_t tokens = 0;       //!< matched tokens (block multiple)
    std::int64_t terminalTokens = 0;  //!< matched within the last node
    double cxlBytes = 0;           //!< demoted bytes on the match path
    std::vector<std::uint64_t> path;  //!< root-to-terminal node ids

    bool hit() const { return tokens > 0; }
};

/** Shared-KV radix tree with ref-counting and priced eviction. */
class PrefixCache
{
  public:
    /** §5 pricing hooks for the demote-vs-drop decision. */
    struct Pricing
    {
        /** Single-sequence prefill seconds over @p tokens of prompt. */
        std::function<double(std::int64_t)> recomputeSeconds;

        /** Seconds to move @p bytes across the DDR<->CXL channel. */
        std::function<double(double)> transferSeconds;
    };

    /** Test/introspection view of one node. */
    struct NodeView
    {
        std::uint64_t id = 0;
        std::uint64_t parent = 0;   //!< 0 = root
        std::int64_t tokens = 0;    //!< span length, block multiple
        std::int64_t startToken = 0;  //!< prefix tokens before this node
        std::int64_t refs = 0;
        std::uint64_t lastUse = 0;
        bool demoted = false;
        std::size_t children = 0;
    };

    PrefixCache(const model::ModelConfig &model, const Config &config,
                AdmissionController &admission, Pricing pricing);

    /** Token prompt of @p request (synthesizePrompt with our seed). */
    std::vector<std::int64_t> promptOf(const Request &request) const;

    /**
     * Longest cached block-prefix of @p prompt, capped at @p cap
     * tokens (callers pass lIn - 1 so a hit always leaves at least
     * one token to prefill — the pass must sample a first token).
     * Pure: no pins, no LRU stamps, no mutation.
     */
    PrefixMatch lookup(const std::vector<std::int64_t> &prompt,
                       std::int64_t cap) const;

    /**
     * Commit @p match for request @p index: pin the terminal node,
     * stamp the path's LRU clocks, and return the plan-carried hit
     * record. Call only when the request is actually admitted.
     */
    PrefixHit commitHit(const PrefixMatch &match, std::size_t index);

    /** Release the pin commitHit() took on @p node. */
    void unpin(std::uint64_t node);

    /**
     * Cache @p prompt's block-aligned prefix, reusing every node the
     * tree already holds. New bytes only spend DDR headroom left by
     * live KV (colder cache nodes are reclaimed to make room, live
     * requests never are); when headroom cannot cover the remainder
     * it simply stays uncached. Returns the emitted mutations —
     * splits, reclaim traffic, and at most one Insert sourcing
     * request @p requestId's staged pass KV.
     */
    std::vector<PrefixOp> insert(const std::vector<std::int64_t> &prompt,
                                 std::uint64_t requestId);

    /**
     * Reclaim at least @p bytes of DDR from unpinned resident nodes
     * in LRU order, demoting to CXL when the §5 rule says the
     * read-back is cheaper than the recompute the node saves,
     * dropping otherwise. Interior nodes can only demote — eviction
     * would orphan their subtree — and nodes in @p keep (an
     * in-progress insert's walk path) are never touched. Stops early
     * when no victim remains; the caller rechecks its headroom.
     */
    std::vector<PrefixOp>
    makeRoom(double bytes,
             const std::set<std::uint64_t> *keep = nullptr);

    /** DDR bytes held by resident nodes (== admission cache ledger). */
    double ddrBytes() const { return ddrBytes_; }

    /** CXL bytes held by demoted nodes (== admission cache ledger). */
    double cxlBytes() const { return cxlBytes_; }

    std::int64_t blockTokens() const { return blockTokens_; }

    /** Live node count (root excluded). */
    std::size_t size() const { return nodes_.size(); }

    /**
     * Structural self-check: byte ledgers equal the per-node sums and
     * the admission accounts, refcounts are never negative, children
     * link back to their parents, and every node spans at least one
     * block. Panics on violation.
     */
    void checkInvariants() const;

    /** All nodes, id-ordered, for the property suite. */
    std::vector<NodeView> nodes() const;

  private:
    struct Node
    {
        std::uint64_t id = 0;
        std::uint64_t parent = 0;  //!< 0 = root
        /** Whole token blocks this node spans, in order. */
        std::vector<std::vector<std::int64_t>> blocks;
        /** Children keyed by their span's first block. */
        std::map<std::vector<std::int64_t>, std::uint64_t> children;
        std::int64_t startToken = 0;  //!< prefix tokens before this node
        std::int64_t refs = 0;
        std::uint64_t lastUse = 0;
        bool demoted = false;

        std::int64_t tokens(std::int64_t block_tokens) const
        {
            return static_cast<std::int64_t>(blocks.size()) *
                   block_tokens;
        }
    };

    Node &node(std::uint64_t id);
    const Node &node(std::uint64_t id) const;
    double nodeBytes(const Node &n) const;

    /** Split @p child keeping its first @p keep blocks in a new head
     *  node; returns the head's id and records the op. */
    std::uint64_t split(Node &child, std::int64_t keep,
                        std::vector<PrefixOp> &ops);

    /** Children map owning @p n (root's or its parent's). */
    std::map<std::vector<std::int64_t>, std::uint64_t> &
    siblingsOf(const Node &n);

    model::ModelConfig model_;
    std::uint64_t seed_ = 0;
    std::int64_t blockTokens_ = 16;
    AdmissionController &admission_;
    Pricing pricing_;

    /** Root's children, keyed like every node's child map. */
    std::map<std::vector<std::int64_t>, std::uint64_t> rootChildren_;
    std::map<std::uint64_t, Node> nodes_;
    std::uint64_t nextId_ = 1;
    std::uint64_t clock_ = 0;  //!< LRU stamp source
    double ddrBytes_ = 0;
    double cxlBytes_ = 0;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_PREFIX_CACHE_HH
