#include "serve/cost_cache.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/multi_gpu.hh"

namespace lia {
namespace serve {

IterationCostCache::IterationCostCache(
    const core::EngineModel &engine, std::int64_t context_bucket,
    const core::MultiGpuLiaModel *tensor_parallel)
    : engine_(engine), contextBucket_(context_bucket),
      tensorParallel_(tensor_parallel)
{
    LIA_ASSERT(context_bucket >= 1, "bad context bucket");
}

void
IterationCostCache::addTensorParallelComm(
    core::IterationEstimate &estimate, model::Stage stage,
    std::int64_t batch, std::int64_t tokens,
    std::int64_t context) const
{
    if (!tensorParallel_ || !estimate.feasible)
        return;
    // layerCommTime sizes the all-reduced hidden state from
    // batch x tokens() rows; a decode step carries its context so the
    // workload is well-formed even though only tokens() matters.
    model::Workload workload;
    workload.stage = stage;
    workload.batch = batch;
    workload.contextLen =
        stage == model::Stage::Prefill ? tokens : context;
    const double comm =
        tensorParallel_->iterationCommTime(workload, estimate.policy);
    estimate.time += comm;
    estimate.breakdown.comTime += comm;
}

std::int64_t
IterationCostCache::bucketContext(std::int64_t context) const
{
    LIA_ASSERT(context >= 1, "bad context");
    const std::int64_t up =
        ((context + contextBucket_ - 1) / contextBucket_) *
        contextBucket_;
    return std::min(up, engine_.model().maxSeqLen);
}

std::int64_t
IterationCostCache::bucketBatch(std::int64_t batch)
{
    LIA_ASSERT(batch >= 1, "bad batch");
    if (batch <= 4)
        return batch;
    // Geometric ladder 4, 6, 8, 12, 16, 24, ... (x1.5 alternating with
    // x1.33): fine enough that rounding up costs < 50% extra batch.
    std::int64_t step = 4;
    while (step < batch)
        step += std::max<std::int64_t>(step / 2, 1);
    return step;
}

const core::IterationEstimate &
IterationCostCache::estimate(model::Stage stage, std::int64_t batch,
                             std::int64_t context) const
{
    const Key key{static_cast<int>(stage), bucketBatch(batch),
                  bucketContext(context)};
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        const core::IterationScenario scenario{
            stage, std::get<1>(key), std::get<2>(key)};
        core::IterationEstimate est =
            engine_.estimateIteration(scenario);
        addTensorParallelComm(est, stage, std::get<1>(key),
                              std::get<2>(key), std::get<2>(key));
        it = cache_.emplace(key, std::move(est)).first;
    }
    return it->second;
}

double
IterationCostCache::time(model::Stage stage, std::int64_t batch,
                         std::int64_t context) const
{
    return estimate(stage, batch, context).time;
}

const core::IterationEstimate &
IterationCostCache::chunkEstimate(std::int64_t batch,
                                  std::int64_t history,
                                  std::int64_t tokens) const
{
    LIA_ASSERT(history >= 0, "bad chunk history");
    if (history <= 0)
        return estimate(model::Stage::Prefill, batch, tokens);

    // Quantise both ends of the chunk onto the context grid so nearby
    // (history, chunk) pairs share one telescoped evaluation; keep the
    // chunk end within the model maximum the same way bucketContext
    // does.
    const std::int64_t max_seq = engine_.model().maxSeqLen;
    const std::int64_t h = std::min(bucketContext(history), max_seq - 1);
    const std::int64_t end =
        std::min(bucketContext(history + tokens), max_seq);
    const std::int64_t t = std::max<std::int64_t>(end - h, 1);

    const Key key{bucketBatch(batch), h, t};
    auto it = chunkCache_.find(key);
    if (it == chunkCache_.end()) {
        core::IterationEstimate est =
            engine_.estimatePrefillChunk(std::get<0>(key), h, t);
        // The chunk's all-reduces carry only the tokens it processes.
        addTensorParallelComm(est, model::Stage::Prefill,
                              std::get<0>(key), t, h + t);
        it = chunkCache_.emplace(key, std::move(est)).first;
    }
    return it->second;
}

double
IterationCostCache::chunkTime(std::int64_t batch, std::int64_t history,
                              std::int64_t tokens) const
{
    return chunkEstimate(batch, history, tokens).time;
}

const core::IterationEstimate &
IterationCostCache::specEstimate(std::int64_t batch,
                                 std::int64_t context,
                                 std::int64_t draft_tokens) const
{
    LIA_ASSERT(draft_tokens >= 1, "bad draft token count");
    // The verify pass extends the context by draft_tokens positions:
    // clamp the quantised context so the verify end stays inside the
    // model maximum (the executable path's k clamp guarantees the
    // true operating point fits; only bucketing can push past it).
    const std::int64_t max_seq = engine_.model().maxSeqLen;
    const std::int64_t ctx = std::max<std::int64_t>(
        1, std::min(bucketContext(context), max_seq - draft_tokens));

    const Key key{bucketBatch(batch), ctx, draft_tokens};
    auto it = specCache_.find(key);
    if (it == specCache_.end()) {
        core::IterationScenario scenario;
        scenario.stage = model::Stage::Decode;
        scenario.batch = std::get<0>(key);
        scenario.context = ctx;
        scenario.specDraftTokens = draft_tokens;
        core::IterationEstimate est =
            engine_.estimateIteration(scenario);
        // The verify all-reduces carry the k+1 scored tokens.
        addTensorParallelComm(est, model::Stage::Prefill,
                              std::get<0>(key), draft_tokens + 1,
                              ctx + draft_tokens);
        it = specCache_.emplace(key, std::move(est)).first;
    }
    return it->second;
}

double
IterationCostCache::specTime(std::int64_t batch, std::int64_t context,
                             std::int64_t draft_tokens) const
{
    return specEstimate(batch, context, draft_tokens).time;
}

} // namespace serve
} // namespace lia
