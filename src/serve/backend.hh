/**
 * @file
 * Execution-backend interface of the serving engine.
 *
 * The serving engine prices every iteration analytically; a backend
 * additionally *executes* each committed iteration plan. The engine
 * invokes the backend at three points:
 *
 *  - onPlan(): once per scheduler-committed plan, after the request
 *    pools and the admission byte account reflect the plan but before
 *    simulated time advances — the backend performs the prefill
 *    chunks, decode steps, and preemption transitions the plan lists;
 *  - onFinish(): when a request completes and hands its KV back;
 *  - onDrain(): once the event queue empties, for leak checks.
 *
 * Backends must be passive with respect to scheduling: a run with a
 * backend attached must produce bit-identical scheduling decisions,
 * timings, and metrics to the analytical-only run (the differential
 * test harness enforces exactly this).
 */

#ifndef LIA_SERVE_BACKEND_HH
#define LIA_SERVE_BACKEND_HH

#include <vector>

#include "serve/admission.hh"
#include "serve/request.hh"
#include "serve/scheduler.hh"

namespace lia {
namespace serve {

/** Executes scheduler iteration plans alongside the pricing engine. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /**
     * Execute one committed iteration plan. @p requests is the
     * engine's backing store (pre-execution bookkeeping: prefilled /
     * generated counters are advanced by the engine only when the
     * iteration completes); @p admission exposes the engine-side byte
     * account so backends can assert lockstep accounting.
     */
    virtual void onPlan(const IterationPlan &plan,
                        const std::vector<Request> &requests,
                        const AdmissionController &admission) = 0;

    /**
     * Resolve one speculative decode step of @p request by actually
     * drafting and verifying @p draft_tokens tokens; returns the
     * accepted draft count in [0, draft_tokens], or -1 when the
     * backend does not execute speculation (the engine then falls
     * back to its acceptance oracle). Called while the engine
     * resolves a committed plan's speculation — before onPlan(), so
     * onPlan() sees the post-verify sequence state and can assert it
     * against IterationPlan::specAccepted.
     */
    virtual std::int64_t speculate(const Request &request,
                                   std::int64_t draft_tokens)
    {
        (void)request;
        (void)draft_tokens;
        return -1;
    }

    /** @p request finished; its reservation was just released. */
    virtual void onFinish(const Request &request) = 0;

    /** The run drained; all backend KV state must be released. */
    virtual void onDrain() = 0;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_BACKEND_HH
