#include "serve/runtime_backend.hh"

#include <cmath>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "base/rng.hh"
#include "obs/sink.hh"
#include "runtime/weights.hh"
#include "serve/prefix_cache.hh"

namespace lia {
namespace serve {

namespace {

/** Exact-in-double byte counts still deserve a rounding guard. */
bool
sameBytes(double a, double b)
{
    return std::abs(a - b) < 0.5;
}

runtime::TransformerWeights
synthWeights(const model::ModelConfig &model, std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    return runtime::TransformerWeights::random(model, rng);
}

/**
 * Every backend shares the process-wide kernel pool: the scheduler
 * emits thousands of batch-of-one prefillChunk/decodeOne calls per
 * run, and reusing one set of persistent workers (instead of any
 * per-call spawning) keeps that stream cheap. Non-owning — the shared
 * pool outlives every executor.
 */
std::shared_ptr<base::ThreadPool>
sharedKernelPool()
{
    return {&base::ThreadPool::shared(), [](base::ThreadPool *) {}};
}

runtime::ExecutorConfig
backendExecutorConfig(std::shared_ptr<base::ThreadPool> pool,
                      bool profile_kernels,
                      const model::ModelConfig &model)
{
    runtime::ExecutorConfig cfg;
    cfg.pool = std::move(pool);
    cfg.profileKernels = profile_kernels;
    // Quantized serving executes quantized: an int8-priced model
    // (weightBytesPerElement 1.0, e.g. "OPT-30B-int8") runs the int8
    // tile kernels, so the bytes the runtime actually moves match the
    // bytes IterationCostCache/estimateIteration charge. Int4 has no
    // integer kernel and stays on the fp32 path (pricing-only).
    if (model.weightBytesPerElement == 1.0)
        cfg.weightPrecision = model::WeightPrecision::Int8;
    return cfg;
}

} // namespace

std::string
RuntimeBackend::Counters::toJson() const
{
    using obs::jsonNumber;
    std::ostringstream os;
    os << "{\"prefill_chunks\":" << prefillChunks
       << ",\"pass_completions\":" << passCompletions
       << ",\"decode_steps\":" << decodeSteps
       << ",\"evictions\":" << evictions
       << ",\"swap_outs\":" << swapOuts
       << ",\"swap_ins\":" << swapIns
       << ",\"recomputes_verified\":" << recomputesVerified
       << ",\"swap_out_bytes\":" << jsonNumber(swapOutBytes)
       << ",\"swap_in_bytes\":" << jsonNumber(swapInBytes)
       << ",\"prefix_attaches\":" << prefixAttaches
       << ",\"prefix_hits_verified\":" << prefixHitsVerified
       << ",\"prefix_attach_tokens\":" << prefixAttachTokens
       << ",\"prefix_inserts\":" << prefixInserts
       << ",\"prefix_splits\":" << prefixSplits
       << ",\"prefix_evictions\":" << prefixEvictions
       << ",\"prefix_demotions\":" << prefixDemotions
       << ",\"spec_steps\":" << specSteps
       << ",\"spec_drafted\":" << specDrafted
       << ",\"spec_accepted\":" << specAccepted
       << ",\"spec_tokens\":" << specTokens
       << ",\"tokens_produced\":" << tokensProduced() << "}";
    return os.str();
}

RuntimeBackend::RuntimeBackend(const hw::SystemConfig &system,
                               const model::ModelConfig &model,
                               const Config &config,
                               bool profile_kernels)
    : model_(model), config_(config), kernelPool_(sharedKernelPool()),
      executor_(system, synthWeights(model, config.seed),
                backendExecutorConfig(kernelPool_, profile_kernels,
                                      model))
{
    model_.validate();
    config_.validate();
    // The draft proposer shares the kernel pool with the target
    // executor; its weights are an independent random draw (the draft
    // is a different model, not a slice of the target).
    if (config_.spec.enabled)
        draft_ = std::make_unique<runtime::DraftModel>(
            system,
            synthWeights(model::draftModelConfig(model_),
                         config.seed + 0xd2afULL),
            backendExecutorConfig(kernelPool_, profile_kernels,
                                  model::draftModelConfig(model_)));
}

double
RuntimeBackend::perTokenBytes() const
{
    return model_.kvBytesPerToken();
}

RuntimeBackend::Sequence &
RuntimeBackend::sequence(std::uint64_t id)
{
    auto it = live_.find(id);
    LIA_ASSERT(it != live_.end(), "plan names request ", id,
               " but the backend holds no sequence for it");
    return it->second;
}

std::vector<std::int64_t>
RuntimeBackend::prompt(const Request &request) const
{
    // Shared with the engine-side PrefixCache: both ends must agree
    // token for token or the radix tree would index KV the runtime
    // never computed.
    return synthesizePrompt(config_.seed, request, model_.vocabSize);
}

void
RuntimeBackend::applyPrefixOps(const IterationPlan &plan)
{
    const std::int64_t block = config_.prefix.blockTokens;
    for (const PrefixOp &op : plan.prefixOps) {
        switch (op.kind) {
          case PrefixOp::Kind::Insert: {
            auto staged = stagedPasses_.find(op.source);
            LIA_ASSERT(staged != stagedPasses_.end(),
                       "prefix insert sources request ", op.source,
                       " but no pass KV is staged for it");
            const runtime::KvCache &pass = *staged->second;
            LIA_ASSERT(op.startToken + op.tokens <= pass.length(),
                       "prefix insert overruns the staged pass");
            NodePayload payload;
            payload.tokens = op.tokens;
            payload.span = pass.snapshotRange(
                op.startToken, op.startToken + op.tokens);
            payload.blockDigests.reserve(
                static_cast<std::size_t>(op.tokens / block));
            for (std::int64_t k = 1; k <= op.tokens / block; ++k)
                payload.blockDigests.push_back(pass.fingerprint(
                    op.startToken + k * block, kernelPool_.get()));
            cacheDdrBytes_ += payload.span.bytes;
            nodes_.emplace(op.node, std::move(payload));
            ++counters_.prefixInserts;
            break;
          }
          case PrefixOp::Kind::Split: {
            NodePayload &tail = nodes_.at(op.tail);
            LIA_ASSERT(op.tokens > 0 && op.tokens < tail.tokens,
                       "prefix split at ", op.tokens, " of ",
                       tail.tokens, " tokens");
            NodePayload head;
            head.tokens = op.tokens;
            head.span = tail.span.splitHead(op.tokens);
            head.demoted = tail.demoted;
            const auto cut = tail.blockDigests.begin() +
                             static_cast<std::ptrdiff_t>(op.tokens /
                                                         block);
            head.blockDigests.assign(tail.blockDigests.begin(), cut);
            tail.blockDigests.erase(tail.blockDigests.begin(), cut);
            tail.tokens -= op.tokens;
            nodes_.emplace(op.node, std::move(head));
            ++counters_.prefixSplits;
            break;
          }
          case PrefixOp::Kind::Evict: {
            auto it = nodes_.find(op.node);
            LIA_ASSERT(it != nodes_.end(), "evicting unknown node");
            LIA_ASSERT(!it->second.demoted,
                       "Evict names a demoted node");
            cacheDdrBytes_ -= it->second.span.bytes;
            nodes_.erase(it);
            ++counters_.prefixEvictions;
            break;
          }
          case PrefixOp::Kind::Demote: {
            NodePayload &payload = nodes_.at(op.node);
            LIA_ASSERT(!payload.demoted, "double demotion");
            payload.demoted = true;
            cacheDdrBytes_ -= payload.span.bytes;
            cacheCxlBytes_ += payload.span.bytes;
            ++counters_.prefixDemotions;
            break;
          }
          case PrefixOp::Kind::DropCxl: {
            auto it = nodes_.find(op.node);
            LIA_ASSERT(it != nodes_.end() && it->second.demoted,
                       "DropCxl of a non-demoted node");
            cacheCxlBytes_ -= it->second.span.bytes;
            nodes_.erase(it);
            ++counters_.prefixEvictions;
            break;
          }
        }
    }
}

void
RuntimeBackend::attachHit(const PrefixHit &hit, const Request &request,
                          Sequence &seq)
{
    LIA_ASSERT(hit.tokens == request.prefixHitTokens,
               "plan hit carries ", hit.tokens,
               " tokens but the request records ",
               request.prefixHitTokens);
    for (std::size_t i = 0; i < hit.path.size(); ++i) {
        const NodePayload &payload = nodes_.at(hit.path[i]);
        const bool terminal = i + 1 == hit.path.size();
        if (terminal && hit.terminalTokens < payload.tokens) {
            LIA_ASSERT(seq.cache->preload(
                           payload.span.headCopy(hit.terminalTokens)),
                       "partial terminal attach failed for request ",
                       request.id);
        } else {
            LIA_ASSERT(seq.cache->preload(payload.span),
                       "prefix span attach failed for request ",
                       request.id);
        }
    }
    LIA_ASSERT(seq.cache->length() == hit.tokens,
               "attached ", seq.cache->length(), " KV tokens for a ",
               hit.tokens, "-token hit");

    // Every hit verifies: the attached prefix must fingerprint exactly
    // as the prompt KV the sourcing pass computed from position 0.
    const NodePayload &terminal = nodes_.at(hit.node);
    const std::int64_t block = config_.prefix.blockTokens;
    const std::uint64_t want = terminal.blockDigests.at(
        static_cast<std::size_t>(hit.terminalTokens / block) - 1);
    LIA_ASSERT(seq.cache->fingerprint(-1, kernelPool_.get()) == want,
               "prefix hit for request ", request.id,
               " attached KV that does not fingerprint as the cached "
               "prompt prefix");
    seq.passDone = hit.tokens;
    ddrBytes_ += perTokenBytes() * static_cast<double>(hit.tokens);
    ++counters_.prefixAttaches;
    ++counters_.prefixHitsVerified;
    counters_.prefixAttachTokens +=
        static_cast<std::uint64_t>(hit.tokens);
}

std::vector<std::int64_t>
RuntimeBackend::passStream(const Sequence &seq) const
{
    std::vector<std::int64_t> stream = seq.prompt;
    stream.insert(stream.end(), seq.outputs.begin(), seq.outputs.end());
    return stream;
}

void
RuntimeBackend::onPlan(const IterationPlan &plan,
                       const std::vector<Request> &requests,
                       const AdmissionController &admission)
{
    const double perToken = perTokenBytes();
    const bool optimistic = config_.policy == SchedulerPolicy::Preemptive;

    // Prefix-cache mirror first: the engine flushes tree inserts at
    // the top of every iteration (sourcing passes that completed last
    // plan — rotate the staging maps accordingly) and the scheduler's
    // lookups saw the post-mutation tree, so all ops apply before any
    // hit attaches below.
    stagedPasses_ = std::move(freshPasses_);
    freshPasses_.clear();
    applyPrefixOps(plan);
    std::map<std::size_t, const PrefixHit *> hits;
    for (const PrefixHit &hit : plan.prefixHits)
        hits.emplace(hit.index, &hit);

    // Preemption transitions first, mirroring the scheduler: victims
    // freed their DDR bytes before this plan's chunks and decode grew.
    for (std::size_t index : plan.swapOut) {
        const Request &request = requests[index];
        Sequence &seq = sequence(request.id);
        LIA_ASSERT(seq.parked.empty(), "request ", request.id,
                   " swapped out while already parked");
        seq.parkedDigest = seq.cache->fingerprint(-1, kernelPool_.get());
        seq.draftCache.reset();
        ddrBytes_ -= seq.cache->bf16Bytes();
        seq.parked = seq.cache->evict();
        swapBytes_ += seq.parked.bytes;
        LIA_ASSERT(sameBytes(seq.parked.bytes, request.kvSwappedBytes),
                   "swap-out parked ", seq.parked.bytes,
                   " bytes but the engine accounts ",
                   request.kvSwappedBytes, " for request ", request.id);
        LIA_ASSERT(request.kvReservedBytes == 0,
                   "swapped request still holds a DDR reservation");
        ++counters_.swapOuts;
        counters_.swapOutBytes += seq.parked.bytes;
    }

    for (std::size_t index : plan.evict) {
        const Request &request = requests[index];
        Sequence &seq = sequence(request.id);
        LIA_ASSERT(seq.parked.empty(), "evicting a parked request");
        // The recompute pass must rebuild exactly this cache (and then
        // one more position, which samples the continuation token).
        seq.evictedLength = seq.cache->length();
        seq.evictedDigest = seq.cache->fingerprint(-1, kernelPool_.get());
        seq.draftCache.reset();
        seq.recomputing = true;
        LIA_ASSERT(seq.evictedLength == request.prefillTarget - 1,
                   "evicted cache holds ", seq.evictedLength,
                   " tokens but the recompute pass targets ",
                   request.prefillTarget);
        double freed = seq.cache->bf16Bytes();
        runtime::KvSnapshot discarded = seq.cache->evict();
        LIA_ASSERT(sameBytes(discarded.bytes, freed), "evict mismatch");
        ddrBytes_ -= freed;
        LIA_ASSERT(request.kvReservedBytes == 0,
                   "evicted request still holds a DDR reservation");
        ++counters_.evictions;
    }

    for (std::size_t index : plan.swapIn) {
        const Request &request = requests[index];
        Sequence &seq = sequence(request.id);
        LIA_ASSERT(!seq.parked.empty(), "swap-in of request ",
                   request.id, " with nothing parked");
        const double bytes = seq.parked.bytes;
        LIA_ASSERT(seq.cache->restore(seq.parked),
                   "restoring request ", request.id,
                   " into its empty cache failed");
        LIA_ASSERT(seq.cache->fingerprint(-1, kernelPool_.get()) ==
                       seq.parkedDigest,
                   "request ", request.id,
                   "'s KV changed across swap-out/swap-in");
        swapBytes_ -= bytes;
        ddrBytes_ += seq.cache->bf16Bytes();
        LIA_ASSERT(sameBytes(bytes, request.kvReservedBytes),
                   "swap-in restored ", bytes,
                   " bytes but the engine reserved ",
                   request.kvReservedBytes, " for request ", request.id);
        ++counters_.swapIns;
        counters_.swapInBytes += bytes;
    }

    for (std::size_t index : plan.admit) {
        const Request &request = requests[index];
        LIA_ASSERT(live_.find(request.id) == live_.end(), "request ",
                   request.id, " admitted twice");
        LIA_ASSERT(request.lIn + request.lOut <= model_.maxSeqLen,
                   "request ", request.id,
                   " exceeds the model context window");
        Sequence seq;
        seq.prompt = prompt(request);
        // A prefix hit attaches its tokens below and the pass
        // prefills only the suffix; the pass still *covers* the whole
        // prompt, so target counts both parts.
        seq.passTarget = request.prefillTarget + request.prefixHitTokens;
        seq.passDone = 0;
        // The cache peaks at lIn + lOut - 1 tokens (the last decode
        // step's KV lands before its token samples); one slot of slack
        // keeps the bound obvious.
        seq.cache = std::make_unique<runtime::KvCache>(
            model_, 1, request.lIn + request.lOut);
        const auto hit = hits.find(index);
        if (hit != hits.end())
            attachHit(*hit->second, request, seq);
        live_.emplace(request.id, std::move(seq));
    }

    for (std::size_t index : plan.resume) {
        const Request &request = requests[index];
        Sequence &seq = sequence(request.id);
        LIA_ASSERT(seq.recomputing, "resume of a non-evicted request");
        LIA_ASSERT(seq.cache->length() == 0, "resumed request ",
                   request.id, " still holds KV");
        seq.passTarget = request.prefillTarget;
        seq.passDone = 0;
        LIA_ASSERT(seq.passTarget ==
                       static_cast<std::int64_t>(seq.prompt.size() +
                                                 seq.outputs.size()),
                   "recompute pass target ", seq.passTarget,
                   " != replayable stream ",
                   seq.prompt.size() + seq.outputs.size());
    }

    for (const PrefillChunk &chunk : plan.chunks) {
        const Request &request = requests[chunk.index];
        Sequence &seq = sequence(request.id);
        LIA_ASSERT(chunk.history == seq.passDone &&
                       chunk.history == seq.cache->length(),
                   "chunk history ", chunk.history,
                   " does not continue request ", request.id,
                   "'s pass (done ", seq.passDone, ", cache ",
                   seq.cache->length(), ")");
        LIA_ASSERT(seq.passDone + chunk.tokens <= seq.passTarget,
                   "chunk overruns the prefill pass");
        const std::vector<std::int64_t> stream = passStream(seq);
        const auto first = stream.begin() + chunk.history;
        const std::vector<std::int64_t> slice(first,
                                              first + chunk.tokens);
        const std::int64_t sampled =
            executor_.prefillChunk(*seq.cache, slice);
        seq.passDone += chunk.tokens;
        ddrBytes_ += perToken * static_cast<double>(chunk.tokens);
        ++counters_.prefillChunks;

        if (seq.passDone < seq.passTarget)
            continue;

        // Pass complete: the final position's sample is the pass's
        // emitted token — the first output token of a fresh prefill,
        // the continuation token of a recompute.
        if (seq.recomputing) {
            LIA_ASSERT(seq.cache->fingerprint(seq.evictedLength,
                                              kernelPool_.get()) ==
                           seq.evictedDigest,
                       "recompute of request ", request.id,
                       " did not rebuild the evicted KV bit-identically");
            seq.recomputing = false;
            ++counters_.recomputesVerified;
        }
        seq.outputs.push_back(sampled);
        ++counters_.passCompletions;
        if (config_.prefix.enabled) {
            // Stage a compact copy of the prompt KV: the engine will
            // flush this pass into the radix tree next iteration, and
            // the sequence itself may move on (decode growth, swap,
            // finish) before then.
            auto staged = std::make_unique<runtime::KvCache>(
                model_, 1, request.lIn);
            LIA_ASSERT(staged->preload(seq.cache->snapshotRange(
                           0, request.lIn)),
                       "staging the completed pass failed");
            freshPasses_[request.id] = std::move(staged);
        }
        if (optimistic) {
            LIA_ASSERT(sameBytes(seq.cache->bf16Bytes(),
                                 request.kvReservedBytes),
                       "pass completion: cache ", seq.cache->bf16Bytes(),
                       " bytes vs reservation ", request.kvReservedBytes);
        }
    }

    for (std::size_t i = 0; i < plan.decode.size(); ++i) {
        const std::size_t index = plan.decode[i];
        const Request &request = requests[index];
        Sequence &seq = sequence(request.id);
        const std::int64_t spec_k =
            plan.specDrafts.empty() ? 0 : plan.specDrafts[i];
        if (spec_k > 0) {
            // This entry's speculative step already executed in
            // speculate() (the engine resolves speculation before
            // onPlan); assert the post-verify state the plan records.
            LIA_ASSERT(plan.specAccepted.size() == plan.decode.size(),
                       "spec plan committed without resolution");
            const std::int64_t emitted = plan.specAccepted[i] + 1;
            LIA_ASSERT(static_cast<std::int64_t>(seq.outputs.size()) ==
                           request.generated + emitted,
                       "speculative step for request ", request.id,
                       " emitted ",
                       seq.outputs.size() - request.generated,
                       " tokens but the plan records ", emitted);
            LIA_ASSERT(seq.cache->length() ==
                           request.lIn +
                               static_cast<std::int64_t>(
                                   seq.outputs.size()) - 1,
                       "verify KV length diverged for request ",
                       request.id);
            if (optimistic) {
                // The scheduler grew the reservation by the
                // worst-case k+1 tokens and the engine settled it
                // back to the verified count before onPlan.
                LIA_ASSERT(sameBytes(seq.cache->bf16Bytes(),
                                     request.kvReservedBytes),
                           "verify: cache ", seq.cache->bf16Bytes(),
                           " bytes vs reservation ",
                           request.kvReservedBytes);
            } else {
                LIA_ASSERT(seq.cache->bf16Bytes() <=
                               request.kvReservedBytes + 0.5,
                           "verify grew past the full-horizon "
                           "reservation");
            }
            continue;
        }
        LIA_ASSERT(request.generated ==
                       static_cast<std::int64_t>(seq.outputs.size()),
                   "engine counts ", request.generated,
                   " generated tokens for request ", request.id,
                   " but the backend holds ", seq.outputs.size());
        const std::int64_t next =
            executor_.decodeOne(*seq.cache, seq.outputs.back());
        seq.outputs.push_back(next);
        ddrBytes_ += perToken;
        ++counters_.decodeSteps;
        LIA_ASSERT(seq.cache->length() ==
                       request.lIn +
                           static_cast<std::int64_t>(
                               seq.outputs.size()) - 1,
                   "decode KV length diverged for request ", request.id);
        if (optimistic) {
            // The scheduler grew the reservation by exactly this
            // step's token before committing the plan.
            LIA_ASSERT(sameBytes(seq.cache->bf16Bytes(),
                                 request.kvReservedBytes),
                       "decode: cache ", seq.cache->bf16Bytes(),
                       " bytes vs reservation ", request.kvReservedBytes);
        } else {
            LIA_ASSERT(seq.cache->bf16Bytes() <=
                           request.kvReservedBytes + 0.5,
                       "cache grew past the full-horizon reservation");
        }
    }

    // Whole-account lockstep: the runtime's materialised bytes never
    // exceed the engine's reservations (in-flight pass remainders and
    // full-horizon slack are reserved but not yet materialised), and
    // the parked bytes match the CXL swap account exactly.
    double resident = 0;
    for (const auto &entry : live_)
        resident += entry.second.cache->bf16Bytes();
    LIA_ASSERT(sameBytes(resident, ddrBytes_),
               "backend byte ledger drifted from its caches");
    LIA_ASSERT(ddrBytes_ <= admission.reservedBytes() + 0.5,
               "runtime KV (", ddrBytes_,
               " bytes) exceeds engine reservations (",
               admission.reservedBytes(), ")");
    LIA_ASSERT(sameBytes(swapBytes_, admission.swappedBytes()),
               "swap pool: backend parks ", swapBytes_,
               " bytes, engine accounts ", admission.swappedBytes());

    double node_ddr = 0, node_cxl = 0;
    for (const auto &entry : nodes_)
        (entry.second.demoted ? node_cxl : node_ddr) +=
            entry.second.span.bytes;
    LIA_ASSERT(sameBytes(node_ddr, cacheDdrBytes_) &&
                   sameBytes(node_cxl, cacheCxlBytes_),
               "prefix node ledger drifted from its spans");
    LIA_ASSERT(sameBytes(cacheDdrBytes_, admission.cacheDdrBytes()) &&
                   sameBytes(cacheCxlBytes_, admission.cacheCxlBytes()),
               "prefix cache: backend mirrors ", cacheDdrBytes_, "/",
               cacheCxlBytes_, " bytes (DDR/CXL), engine accounts ",
               admission.cacheDdrBytes(), "/",
               admission.cacheCxlBytes());
}

std::int64_t
RuntimeBackend::speculate(const Request &request,
                          std::int64_t draft_tokens)
{
    LIA_ASSERT(draft_tokens >= 1, "speculate wants k >= 1");
    LIA_ASSERT(draft_ != nullptr,
               "speculate on a backend built with spec disabled");
    Sequence &seq = sequence(request.id);
    LIA_ASSERT(seq.parked.empty() && !seq.recomputing,
               "speculating a preempted request");
    LIA_ASSERT(!seq.outputs.empty(),
               "speculation before the prefill pass emitted");
    if (!seq.draftCache)
        seq.draftCache = draft_->makeCache(request.lIn + request.lOut);

    const std::vector<std::int64_t> stream = passStream(seq);
    const auto n = static_cast<std::int64_t>(stream.size());
    const std::vector<std::int64_t> drafts =
        draft_->propose(*seq.draftCache, stream, draft_tokens);
    const runtime::SpeculativeVerify verify =
        executor_.verifyBatch(*seq.cache, seq.outputs.back(), drafts);
    runtime::DraftModel::truncateAfterVerify(
        *seq.draftCache, n, verify.accepted, draft_tokens);

    seq.outputs.insert(seq.outputs.end(), verify.emitted.begin(),
                       verify.emitted.end());
    ddrBytes_ +=
        perTokenBytes() * static_cast<double>(verify.accepted + 1);
    ++counters_.specSteps;
    counters_.specDrafted += static_cast<std::uint64_t>(draft_tokens);
    counters_.specAccepted +=
        static_cast<std::uint64_t>(verify.accepted);
    counters_.specTokens +=
        static_cast<std::uint64_t>(verify.accepted + 1);
    return verify.accepted;
}

void
RuntimeBackend::onFinish(const Request &request)
{
    auto it = live_.find(request.id);
    LIA_ASSERT(it != live_.end(), "finish of an unknown request");
    Sequence &seq = it->second;
    LIA_ASSERT(request.done() &&
                   static_cast<std::int64_t>(seq.outputs.size()) ==
                       request.lOut,
               "request ", request.id, " finished with ",
               seq.outputs.size(), " of ", request.lOut, " tokens");
    LIA_ASSERT(seq.parked.empty(), "finished while swapped out");
    LIA_ASSERT(seq.cache->length() == request.lIn + request.lOut - 1,
               "finished request ", request.id, " holds ",
               seq.cache->length(), " KV tokens, expected ",
               request.lIn + request.lOut - 1);
    LIA_ASSERT(request.kvReservedBytes == 0 &&
                   request.kvSwappedBytes == 0,
               "finished request still holds reservations");
    ddrBytes_ -= seq.cache->bf16Bytes();
    finished_.emplace(request.id, std::move(seq.outputs));
    live_.erase(it);
}

void
RuntimeBackend::onDrain()
{
    LIA_ASSERT(live_.empty(), live_.size(),
               " sequences leaked at drain");
    LIA_ASSERT(sameBytes(ddrBytes_, 0) && sameBytes(swapBytes_, 0),
               "KV bytes leaked at drain: ddr ", ddrBytes_, ", swap ",
               swapBytes_);
}

const std::vector<std::int64_t> &
RuntimeBackend::outputs(std::uint64_t id) const
{
    auto it = finished_.find(id);
    LIA_ASSERT(it != finished_.end(),
               "no finished outputs for request ", id);
    return it->second;
}

std::vector<std::int64_t>
RuntimeBackend::referenceOutputs(const Request &request)
{
    runtime::KvCache cache(model_, 1, request.lIn + request.lOut);
    std::vector<std::int64_t> generated;
    generated.push_back(executor_.prefillChunk(cache, prompt(request)));
    while (static_cast<std::int64_t>(generated.size()) < request.lOut)
        generated.push_back(
            executor_.decodeOne(cache, generated.back()));
    return generated;
}

} // namespace serve
} // namespace lia
