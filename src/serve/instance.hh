/**
 * @file
 * One serving engine's per-run state, bound to a caller-owned clock.
 *
 * EngineInstance is the continuous-batching engine of engine.cc split
 * away from the global plumbing: it owns the request pools, the
 * scheduler, the admission account, and the swap channel of exactly
 * one engine, but advances on an *external* sim::EventQueue and emits
 * into a caller-chosen tracks::Namespace. ServingEngine::run() wraps
 * one instance around a private queue (the single-engine behaviour is
 * bit-identical to the pre-split engine); cluster::ClusterRouter
 * binds N instances to one shared queue so a whole replica fleet
 * advances on a single DES clock.
 *
 * Requests enter through submit() at the current simulated time —
 * there is no pre-drawn arrival schedule here; whoever owns the clock
 * owns the arrival process.
 */

#ifndef LIA_SERVE_INSTANCE_HH
#define LIA_SERVE_INSTANCE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/admission.hh"
#include "serve/config.hh"
#include "serve/cost_cache.hh"
#include "serve/engine.hh"
#include "serve/metrics.hh"
#include "serve/request.hh"
#include "serve/scheduler.hh"
#include "serve/tracks.hh"
#include "sim/event_queue.hh"
#include "sim/transfer.hh"

namespace lia {
namespace serve {

class ExecutionBackend;

/** The core::EngineConfig the serving layer prices iterations with
 *  (execution-aware objective; §6 memory policy when @p config spills
 *  and the system has a CXL pool; the served model's draft companion
 *  wired in so speculative iterations price draft + verify). Shared
 *  by ServingEngine and the cluster's shard-group pricing so both
 *  price identically. */
core::EngineConfig pricingEngineConfig(const hw::SystemConfig &system,
                                       const model::ModelConfig &model,
                                       const Config &config);

/** One engine advancing on a caller-owned DES clock. */
class EngineInstance
{
  public:
    /**
     * @param system  hardware the engine serves on (for a W-way shard
     *                group, the §8 pooled platform)
     * @param model   served model
     * @param config  engine configuration (copied; Config::sink — if
     *                any — must outlive the instance)
     * @param costs   iteration pricing; must outlive the instance
     * @param events  shared simulation clock; must outlive the instance
     * @param ns      track namespace for trace emission
     */
    EngineInstance(const hw::SystemConfig &system,
                   const model::ModelConfig &model, Config config,
                   const IterationCostCache &costs,
                   sim::EventQueue &events,
                   tracks::Namespace ns = {});

    EngineInstance(const EngineInstance &) = delete;
    EngineInstance &operator=(const EngineInstance &) = delete;

    /** Optional plan executor; never influences scheduling. */
    void setBackend(ExecutionBackend *backend) { backend_ = backend; }

    /** Static batch cap from the capacity planner (0 disables). */
    void setPlannerCap(std::int64_t cap);

    /**
     * Submit one request arriving *now* (the queue's current time).
     * Returns the instance-local request id. The request is rejected
     * immediately if it can never fit the KV budget; otherwise it
     * queues and the engine kicks an iteration if idle. A request in
     * a prompt-sharing pool (@p pool_id >= 0) shares its first
     * @p shared_tokens prompt tokens with every other member of the
     * pool (see serve::synthesizePrompt).
     */
    std::size_t submit(std::int64_t l_in, std::int64_t l_out,
                       std::int64_t pool_id = -1,
                       std::int64_t shared_tokens = 0);

    // --- Live-state accessors (router signals) -----------------------

    /** Requests submitted so far. */
    std::size_t submitted() const { return requests_.size(); }

    /** Requests waiting for admission. */
    std::size_t waitingCount() const { return waiting_.size(); }

    /** Admitted, unfinished requests (running batch). */
    std::size_t activeCount() const { return active_.size(); }

    /** Submitted requests not yet in a terminal state. */
    std::size_t outstanding() const;

    /** Whether every submitted request reached a terminal state. */
    bool drained() const { return outstanding() == 0; }

    /**
     * KV pressure signal in [0, ~]: bytes reserved plus the full
     * KV demand of everything still waiting, over the budget. The
     * least-KV-loaded router minimises this — it sees load that has
     * arrived but not yet been admitted, which reservedBytes() alone
     * misses.
     */
    double kvLoad() const;

    /**
     * Modeled seconds until a fresh arrival's prefill could start:
     * the prefill backlog of everything already waiting plus one
     * decode iteration of the running batch, stretched by KV-budget
     * pressure (admission stalls when the account is nearly full).
     * Deterministic, cheap (memoised pricing), and monotone in load —
     * the TTFT-aware router minimises it.
     */
    double estimatedQueueDelay() const;

    const AdmissionController &admission() const { return admission_; }
    const Metrics &metrics() const { return metrics_; }
    const Config &config() const { return config_; }

    /**
     * Close out the run: metrics (makespan = the clock's current
     * time), final request records, and the drain-balance account.
     * Call once, after the shared queue drained; the instance must
     * not be used afterwards.
     */
    Result finalize();

  private:
    void arrival(std::size_t index);
    void spanTransition(const Request &request, const char *next,
                        double now);
    void tokenEmitted(Request &request, double now);
    void checkStateExclusivity() const;
    void startIteration();

    /**
     * Resolve the committed plan's speculative decode entries: ask
     * the backend to draft + verify (or fall back to the acceptance
     * oracle), fill IterationPlan::specAccepted, settle the
     * worst-case reservation back to the verified token count, and
     * account the per-request / run metrics. Runs before the pool
     * transitions and before onPlan(), so the backend asserts
     * post-verify state when it mirrors the rest of the plan.
     */
    void resolveSpeculation(IterationPlan &plan);
    void emitIteration(const IterationPlan &plan, double now,
                       double duration, std::size_t depth,
                       std::int64_t chunk_tokens,
                       std::int64_t chunk_history,
                       std::int64_t decode_context);
    void swapInArrived(std::size_t index);
    void completeIteration(const IterationPlan &plan);
    void finish(Request &request, double now);
    void applyPrefixPlan(const IterationPlan &plan);

    Config config_;
    const IterationCostCache &costs_;
    sim::EventQueue &events_;
    tracks::Namespace ns_;
    AdmissionController admission_;
    Scheduler scheduler_;
    sim::TransferChannel swapChannel_;

    /** Cross-request prefix cache; null unless config_.prefix.enabled. */
    std::unique_ptr<PrefixCache> prefixCache_;

    /** Requests whose prefill pass completed since the last iteration
     *  started; their prompt prefixes insert into the cache at the
     *  next startIteration(), before the scheduler looks up hits. */
    std::vector<std::size_t> pendingInserts_;

    std::vector<Request> requests_;
    std::vector<std::size_t> waiting_;    //!< FIFO admission queue
    std::vector<std::size_t> active_;     //!< admitted, unfinished
    std::vector<std::size_t> preempted_;  //!< evicted, awaiting recompute
    std::vector<std::size_t> swapped_;    //!< KV parked in the CXL pool
    bool inFlight_ = false;
    Metrics metrics_;

    ExecutionBackend *backend_ = nullptr;

    /** Config::sink, cached; null costs nothing. */
    obs::EventSink *sink_ = nullptr;

    /** Config::sloMonitor, cached; null costs nothing. */
    SloMonitor *monitor_ = nullptr;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_INSTANCE_HH
