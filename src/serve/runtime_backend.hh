/**
 * @file
 * Runtime-backed plan execution: every scheduler-emitted iteration
 * plan runs on the runtime:: functional stack.
 *
 * The backend keeps one single-sequence runtime::KvCache per admitted
 * request and drives runtime::CooperativeExecutor through exactly the
 * work the plan lists: chunked prefill passes (fresh and recompute),
 * per-request decode steps, evict-and-recompute, and swap-to-CXL
 * parking via KvCache::evict()/restore(). Prompts are synthesized
 * deterministically from the request id, so the same served workload
 * always decodes the same greedy token streams.
 *
 * The backend mirrors the engine's byte accounting token for token and
 * LIA_ASSERTs the model-vs-runtime invariants on every plan:
 *
 *  - a decoding request's materialised KV is exactly
 *    lIn + generated - 1 tokens, and under the preemptive policy its
 *    byte count equals the engine-side reservation bit for bit;
 *  - the parked swap bytes equal the admission controller's CXL swap
 *    account at all times, and a restored cache fingerprints
 *    identically to the cache that was swapped out;
 *  - a recompute prefill rebuilds the evicted cache bit-identically
 *    (prefix fingerprint check) before generation resumes;
 *  - at drain no request holds live or parked KV (leak check).
 *
 * Any violation panics, so the property fuzzer and the differential
 * harness fail loudly at the first diverging iteration.
 */

#ifndef LIA_SERVE_RUNTIME_BACKEND_HH
#define LIA_SERVE_RUNTIME_BACKEND_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "hw/system.hh"
#include "model/config.hh"
#include "runtime/draft.hh"
#include "runtime/executor.hh"
#include "runtime/kv_cache.hh"
#include "serve/backend.hh"
#include "serve/config.hh"

namespace lia {
namespace serve {

/** Executes iteration plans on the functional runtime. */
class RuntimeBackend : public ExecutionBackend
{
  public:
    /** Work actually executed, for harness cross-checks. */
    struct Counters
    {
        std::uint64_t prefillChunks = 0;   //!< chunk forwards run
        std::uint64_t passCompletions = 0; //!< prefill passes finished
        std::uint64_t decodeSteps = 0;     //!< decode forwards run
        std::uint64_t evictions = 0;       //!< caches discarded
        std::uint64_t swapOuts = 0;        //!< caches parked in CXL
        std::uint64_t swapIns = 0;         //!< caches restored
        std::uint64_t recomputesVerified = 0;  //!< fingerprint-checked
        double swapOutBytes = 0;
        double swapInBytes = 0;

        // --- Prefix-cache mirror ------------------------------------
        std::uint64_t prefixAttaches = 0;   //!< hits attached to caches
        std::uint64_t prefixHitsVerified = 0;  //!< digest-checked hits
        std::uint64_t prefixAttachTokens = 0;  //!< prefill skipped
        std::uint64_t prefixInserts = 0;    //!< node spans copied in
        std::uint64_t prefixSplits = 0;     //!< node spans split
        std::uint64_t prefixEvictions = 0;  //!< spans dropped (DDR+CXL)
        std::uint64_t prefixDemotions = 0;  //!< spans moved to CXL

        // --- Speculative decoding -----------------------------------
        std::uint64_t specSteps = 0;     //!< draft + verify rounds run
        std::uint64_t specDrafted = 0;   //!< draft tokens proposed
        std::uint64_t specAccepted = 0;  //!< drafts the verify kept
        std::uint64_t specTokens = 0;    //!< tokens verify steps emitted

        /** Tokens a backend must have produced for a finished run. */
        std::uint64_t tokensProduced() const
        {
            return passCompletions + decodeSteps + specTokens;
        }

        /**
         * The execution-side account as a deterministic JSON object,
         * so benches embed the backend mirror next to the analytic
         * serve::Metrics::toJson() instead of hand-picking fields.
         */
        std::string toJson() const;
    };

    /**
     * @param system  hardware the executor charges its work to
     * @param model   served model; also sizes weights and KV caches
     * @param config  the serving config the engine runs (policy and
     *                seed drive the accounting discipline and the
     *                deterministic prompt synthesis)
     * @param profile_kernels  collect wall-clock kernel timings
     *                (ExecutorConfig::profileKernels; results are
     *                unchanged either way)
     */
    RuntimeBackend(const hw::SystemConfig &system,
                   const model::ModelConfig &model,
                   const Config &config,
                   bool profile_kernels = false);

    void onPlan(const IterationPlan &plan,
                const std::vector<Request> &requests,
                const AdmissionController &admission) override;
    std::int64_t speculate(const Request &request,
                           std::int64_t draft_tokens) override;
    void onFinish(const Request &request) override;
    void onDrain() override;

    /** Deterministic synthetic prompt of @p request. */
    std::vector<std::int64_t> prompt(const Request &request) const;

    /** Greedy output tokens of a finished request. */
    const std::vector<std::int64_t> &outputs(std::uint64_t id) const;

    /**
     * Uninterrupted reference generation for @p request: one
     * monolithic prefill plus plain decode steps on a fresh cache.
     * Preemption, chunking, and swap must not change a request's
     * greedy stream, so this must equal outputs(request.id).
     */
    std::vector<std::int64_t> referenceOutputs(const Request &request);

    /** Live DDR-resident KV bytes across all sequences. */
    double liveKvBytes() const { return ddrBytes_; }

    /** DDR bytes held by mirrored prefix-cache node spans. */
    double cacheDdrBytes() const { return cacheDdrBytes_; }

    /** CXL bytes held by mirrored demoted node spans. */
    double cacheCxlBytes() const { return cacheCxlBytes_; }

    /** KV bytes parked in the swap pool. */
    double swappedKvBytes() const { return swapBytes_; }

    const Counters &counters() const { return counters_; }
    const runtime::CooperativeExecutor &executor() const
    {
        return executor_;
    }

    /** Kernel wall-clock profile; nullptr unless profiling is on. */
    const obs::KernelProfiler *kernelProfiler() const
    {
        return executor_.kernelProfiler();
    }

  private:
    /** Per-request runtime state. */
    struct Sequence
    {
        std::unique_ptr<runtime::KvCache> cache;
        std::vector<std::int64_t> prompt;
        std::vector<std::int64_t> outputs;

        std::int64_t passTarget = 0;  //!< tokens this pass prefills
        std::int64_t passDone = 0;    //!< tokens already materialised

        bool recomputing = false;         //!< pass rebuilds evicted KV
        std::int64_t evictedLength = 0;   //!< tokens the pass restores
        std::uint64_t evictedDigest = 0;  //!< their fingerprint

        runtime::KvSnapshot parked;       //!< swapped-out contents
        std::uint64_t parkedDigest = 0;

        /**
         * Draft-geometry KV trailing the emitted stream (DESIGN.md
         * §11). Built lazily on the first speculate() and discarded
         * whenever the target cache is (evict / swap-out) — the next
         * propose() replays the whole stream to rebuild it. Draft KV
         * models CPU-side memory, so it stays outside the DDR KV byte
         * ledger the admission account mirrors.
         */
        std::unique_ptr<runtime::KvCache> draftCache;
    };

    /**
     * Mirrored payload of one radix-tree node: the actual KV span the
     * engine-side PrefixCache only accounts bytes for, plus the
     * cumulative prompt digests at each block boundary (blockDigests[k]
     * fingerprints prompt tokens [0, startToken + (k+1)*blockTokens)),
     * so any block-aligned hit depth verifies in O(1).
     */
    struct NodePayload
    {
        std::int64_t tokens = 0;
        runtime::KvSnapshot span;
        std::vector<std::uint64_t> blockDigests;
        bool demoted = false;
    };

    Sequence &sequence(std::uint64_t id);
    double perTokenBytes() const;

    /** Mirror one plan's tree mutations into the node payloads. */
    void applyPrefixOps(const IterationPlan &plan);

    /** Attach @p hit's cached KV into @p seq's fresh cache. */
    void attachHit(const PrefixHit &hit, const Request &request,
                   Sequence &seq);

    /** The (prompt + generated) token stream a prefill pass replays. */
    std::vector<std::int64_t> passStream(const Sequence &seq) const;

    model::ModelConfig model_;
    Config config_;
    /** Kernel pool shared with executor_ and fingerprint checks. */
    std::shared_ptr<base::ThreadPool> kernelPool_;
    runtime::CooperativeExecutor executor_;

    /** Draft proposer; null unless config_.spec.enabled. */
    std::unique_ptr<runtime::DraftModel> draft_;

    std::map<std::uint64_t, Sequence> live_;
    std::map<std::uint64_t, std::vector<std::int64_t>> finished_;

    /** Prefix-cache node payloads, keyed by engine-side node id. */
    std::map<std::uint64_t, NodePayload> nodes_;

    /**
     * Prompt-prefix KV copies staged at pass completion, keyed by
     * request id. A pass completing during plan N stages into
     * fresh...; at the start of onPlan(N+1) the fresh map rotates to
     * staged..., where that plan's Insert ops (the engine flushes
     * tree inserts exactly one iteration after the pass) source their
     * spans and digests. Unconsumed entries age out at the next
     * rotation.
     */
    std::map<std::uint64_t, std::unique_ptr<runtime::KvCache>>
        stagedPasses_;
    std::map<std::uint64_t, std::unique_ptr<runtime::KvCache>>
        freshPasses_;

    double ddrBytes_ = 0;
    double swapBytes_ = 0;
    double cacheDdrBytes_ = 0;
    double cacheCxlBytes_ = 0;
    Counters counters_;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_RUNTIME_BACKEND_HH
