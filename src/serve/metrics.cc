#include "serve/metrics.hh"

namespace lia {
namespace serve {

double
Metrics::utilisation() const
{
    return makespan > 0 ? busyTime / makespan : 0.0;
}

double
Metrics::completedPerSecond() const
{
    return makespan > 0 ? static_cast<double>(completed) / makespan
                        : 0.0;
}

double
Metrics::tokensPerSecond() const
{
    return makespan > 0
               ? static_cast<double>(tokensGenerated) / makespan
               : 0.0;
}

bool
meetsSlo(const Request &request, const SloTargets &slo)
{
    if (request.state != RequestState::Finished)
        return false;
    if (slo.ttft > 0 && request.ttft() > slo.ttft)
        return false;
    if (slo.tbt > 0 && request.lOut > 1 && request.meanTbt() > slo.tbt)
        return false;
    if (slo.e2e > 0 && request.responseTime() > slo.e2e)
        return false;
    return true;
}

double
goodputPerSecond(const std::vector<Request> &requests,
                 const SloTargets &slo, double makespan)
{
    if (makespan <= 0)
        return 0.0;
    std::size_t good = 0;
    for (const Request &request : requests)
        good += meetsSlo(request, slo) ? 1 : 0;
    return static_cast<double>(good) / makespan;
}

double
sloAttainment(const std::vector<Request> &requests,
              const SloTargets &slo)
{
    std::size_t finished = 0, good = 0;
    for (const Request &request : requests) {
        if (request.state != RequestState::Finished)
            continue;
        ++finished;
        good += meetsSlo(request, slo) ? 1 : 0;
    }
    return finished > 0
               ? static_cast<double>(good) /
                     static_cast<double>(finished)
               : 0.0;
}

} // namespace serve
} // namespace lia
