#include "serve/metrics.hh"

#include <algorithm>
#include <sstream>

#include "obs/sink.hh"

namespace lia {
namespace serve {

namespace {

/** One SampleStats as a JSON distribution summary object. */
void
statsJson(std::ostream &os, const char *name, const SampleStats &s)
{
    using obs::jsonNumber;
    os << "\"" << name << "\":{\"count\":" << s.count();
    if (s.empty()) {
        os << ",\"mean\":0,\"p50\":0,\"p95\":0,\"p99\":0,"
              "\"p999\":0,\"min\":0,\"max\":0}";
        return;
    }
    os << ",\"mean\":" << jsonNumber(s.mean())
       << ",\"p50\":" << jsonNumber(s.p50())
       << ",\"p95\":" << jsonNumber(s.p95())
       << ",\"p99\":" << jsonNumber(s.p99())
       << ",\"p999\":" << jsonNumber(s.p999())
       << ",\"min\":" << jsonNumber(s.min())
       << ",\"max\":" << jsonNumber(s.max()) << "}";
}

} // namespace

void
Metrics::merge(const Metrics &other)
{
    ttft.merge(other.ttft);
    tbt.merge(other.tbt);
    tokenGap.merge(other.tokenGap);
    responseTime.merge(other.responseTime);
    queueWait.merge(other.queueWait);
    queueDepth.merge(other.queueDepth);
    batchOccupancy.merge(other.batchOccupancy);
    kvOccupancy.merge(other.kvOccupancy);

    ttftHist.merge(other.ttftHist);
    tokenGapHist.merge(other.tokenGapHist);
    responseHist.merge(other.responseHist);

    completed += other.completed;
    rejectedCapacity += other.rejectedCapacity;
    shedSlo += other.shedSlo;

    iterations += other.iterations;
    tokensGenerated += other.tokensGenerated;
    makespan = std::max(makespan, other.makespan);
    busyTime += other.busyTime;

    preemptions += other.preemptions;
    swapOuts += other.swapOuts;
    swapIns += other.swapIns;
    recomputes += other.recomputes;
    prefillChunks += other.prefillChunks;
    swapOutBytes += other.swapOutBytes;
    swapInBytes += other.swapInBytes;
    swapBusyTime += other.swapBusyTime;
    kvReservedPeakBytes += other.kvReservedPeakBytes;

    prefixLookups += other.prefixLookups;
    prefixHits += other.prefixHits;
    prefixHitTokens += other.prefixHitTokens;
    prefixInsertedTokens += other.prefixInsertedTokens;
    prefixEvictedTokens += other.prefixEvictedTokens;
    prefixDemotedTokens += other.prefixDemotedTokens;
    prefixCxlReadBytes += other.prefixCxlReadBytes;
    prefixCachePeakBytes += other.prefixCachePeakBytes;

    specSteps += other.specSteps;
    specDraftedTokens += other.specDraftedTokens;
    specAcceptedTokens += other.specAcceptedTokens;
}

double
Metrics::utilisation() const
{
    return makespan > 0 ? busyTime / makespan : 0.0;
}

double
Metrics::completedPerSecond() const
{
    return makespan > 0 ? static_cast<double>(completed) / makespan
                        : 0.0;
}

double
Metrics::tokensPerSecond() const
{
    return makespan > 0
               ? static_cast<double>(tokensGenerated) / makespan
               : 0.0;
}

std::string
Metrics::toJson() const
{
    using obs::jsonNumber;
    std::ostringstream os;
    os << "{";
    statsJson(os, "ttft_s", ttft);
    os << ",";
    statsJson(os, "tbt_s", tbt);
    os << ",";
    statsJson(os, "token_gap_s", tokenGap);
    os << ",";
    statsJson(os, "response_s", responseTime);
    os << ",";
    statsJson(os, "queue_wait_s", queueWait);
    os << ",";
    statsJson(os, "queue_depth", queueDepth);
    os << ",";
    statsJson(os, "batch_occupancy", batchOccupancy);
    os << ",";
    statsJson(os, "kv_occupancy", kvOccupancy);
    os << ",\"hist\":{\"ttft_s\":" << ttftHist.toJson()
       << ",\"token_gap_s\":" << tokenGapHist.toJson()
       << ",\"response_s\":" << responseHist.toJson() << "}";
    os << ",\"completed\":" << completed
       << ",\"rejected_capacity\":" << rejectedCapacity
       << ",\"shed_slo\":" << shedSlo
       << ",\"iterations\":" << iterations
       << ",\"tokens_generated\":" << tokensGenerated
       << ",\"makespan_s\":" << jsonNumber(makespan)
       << ",\"busy_s\":" << jsonNumber(busyTime)
       << ",\"utilisation\":" << jsonNumber(utilisation())
       << ",\"tokens_per_second\":" << jsonNumber(tokensPerSecond())
       << ",\"completed_per_second\":"
       << jsonNumber(completedPerSecond())
       << ",\"preemptions\":" << preemptions
       << ",\"swap_outs\":" << swapOuts
       << ",\"swap_ins\":" << swapIns
       << ",\"recomputes\":" << recomputes
       << ",\"prefill_chunks\":" << prefillChunks
       << ",\"swap_out_bytes\":" << jsonNumber(swapOutBytes)
       << ",\"swap_in_bytes\":" << jsonNumber(swapInBytes)
       << ",\"swap_busy_s\":" << jsonNumber(swapBusyTime)
       << ",\"kv_reserved_peak_bytes\":"
       << jsonNumber(kvReservedPeakBytes)
       << ",\"prefix_lookups\":" << prefixLookups
       << ",\"prefix_hits\":" << prefixHits
       << ",\"prefix_hit_rate\":" << jsonNumber(prefixHitRate())
       << ",\"prefix_hit_tokens\":" << prefixHitTokens
       << ",\"prefix_inserted_tokens\":" << prefixInsertedTokens
       << ",\"prefix_evicted_tokens\":" << prefixEvictedTokens
       << ",\"prefix_demoted_tokens\":" << prefixDemotedTokens
       << ",\"prefix_cxl_read_bytes\":"
       << jsonNumber(prefixCxlReadBytes)
       << ",\"prefix_cache_peak_bytes\":"
       << jsonNumber(prefixCachePeakBytes)
       << ",\"spec_steps\":" << specSteps
       << ",\"spec_drafted_tokens\":" << specDraftedTokens
       << ",\"spec_accepted_tokens\":" << specAcceptedTokens
       << ",\"spec_acceptance_rate\":"
       << jsonNumber(specAcceptanceRate()) << "}";
    return os.str();
}

TextTable
latencyTable(const std::string &first_col)
{
    return TextTable({first_col, "mean (s)", "p50 (s)", "p95 (s)",
                      "p99 (s)", "p99.9 (s)", "mean vs base"});
}

void
addLatencyRow(TextTable &table, const std::string &label,
              const SampleStats &stats, double baseline_mean)
{
    if (stats.empty()) {
        table.addRow({label, "-", "-", "-", "-", "-", "-"});
        return;
    }
    table.addRow({label, fmtDouble(stats.mean(), 2),
                  fmtDouble(stats.p50(), 2), fmtDouble(stats.p95(), 2),
                  fmtDouble(stats.p99(), 2),
                  fmtDouble(stats.p999(), 2),
                  baseline_mean > 0
                      ? fmtRatio(stats.mean() / baseline_mean)
                      : "-"});
}

bool
meetsSlo(const Request &request, const SloTargets &slo)
{
    if (request.state != RequestState::Finished)
        return false;
    if (slo.ttft > 0 && request.ttft() > slo.ttft)
        return false;
    if (slo.tbt > 0 && request.lOut > 1 && request.meanTbt() > slo.tbt)
        return false;
    if (slo.e2e > 0 && request.responseTime() > slo.e2e)
        return false;
    return true;
}

double
goodputPerSecond(const std::vector<Request> &requests,
                 const SloTargets &slo, double makespan)
{
    if (makespan <= 0)
        return 0.0;
    std::size_t good = 0;
    for (const Request &request : requests)
        good += meetsSlo(request, slo) ? 1 : 0;
    return static_cast<double>(good) / makespan;
}

double
sloAttainment(const std::vector<Request> &requests,
              const SloTargets &slo)
{
    std::size_t finished = 0, good = 0;
    for (const Request &request : requests) {
        if (request.state != RequestState::Finished)
            continue;
        ++finished;
        good += meetsSlo(request, slo) ? 1 : 0;
    }
    return finished > 0
               ? static_cast<double>(good) /
                     static_cast<double>(finished)
               : 0.0;
}

} // namespace serve
} // namespace lia
