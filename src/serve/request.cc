#include "serve/request.hh"

#include "base/logging.hh"

namespace lia {
namespace serve {

const char *
toString(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
        return "queued";
      case RequestState::Prefilling:
        return "prefilling";
      case RequestState::Decoding:
        return "decoding";
      case RequestState::Preempted:
        return "preempted";
      case RequestState::Swapped:
        return "swapped";
      case RequestState::Finished:
        return "finished";
      case RequestState::Rejected:
        return "rejected";
    }
    LIA_PANIC("unknown request state");
}

} // namespace serve
} // namespace lia
