/**
 * @file
 * Multi-window SLO burn-rate monitoring (DESIGN.md §13).
 *
 * An SloMonitor watches the per-token signals the engine already
 * produces — time-to-first-token on admission of the first token,
 * every inter-token gap, end-to-end response time on completion —
 * and answers the SRE question "how fast am I spending my error
 * budget?". For each signal with an enabled target it keeps (a) a
 * streaming obs::Histogram of the observed values and (b) a sliding
 * record of violations over several lookback windows on the
 * *simulated* clock (5 s and 60 s by default).
 *
 * burn rate = (violating fraction within the window) / error budget,
 * the standard multi-window multi-burn-rate construction: a burn rate
 * of 1 spends the budget exactly on schedule, 10 spends it ten times
 * too fast. The scalar `pressure()` — the worst burn rate across
 * signals and windows — is the machine-readable overload signal the
 * scheduler, autoscaler, and a future degradation ladder consume.
 *
 * The monitor is passive: it never feeds back into scheduling, so a
 * run with a monitor attached is bit-identical to one without
 * (enforced by the identity test, same policy as event sinks).
 */

#ifndef LIA_SERVE_SLO_MONITOR_HH
#define LIA_SERVE_SLO_MONITOR_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "serve/config.hh"

namespace lia {
namespace serve {

/** Knobs of the burn-rate monitor. */
struct SloMonitorConfig
{
    /** Targets; signals with a 0 target are not tracked. */
    SloTargets targets;

    /** Lookback windows, seconds of simulated time. */
    std::vector<double> windows = {5.0, 60.0};

    /**
     * Error budget: tolerated violating fraction (0.1 = 99.9%-ish
     * objective per window). Burn rate = violating fraction / budget.
     */
    double errorBudget = 0.1;
};

/** Tracks SLO violations over sliding windows of the simulated clock. */
class SloMonitor
{
  public:
    /** The monitored per-request signals. */
    enum class Signal
    {
        Ttft,     //!< time-to-first-token vs targets.ttft
        TokenGap, //!< inter-token interval vs targets.tbt
        E2e,      //!< response time vs targets.e2e
    };

    explicit SloMonitor(SloMonitorConfig config = {});

    const SloMonitorConfig &config() const { return config_; }

    // --- Feeding (engine hooks; all O(log buckets) amortised) --------

    void onTtft(double now, double seconds);
    void onTokenGap(double now, double seconds);
    void onComplete(double now, double response_seconds);

    // --- Queries ------------------------------------------------------

    /** Samples observed for @p signal (0 when untracked). */
    std::uint64_t samples(Signal signal) const;

    /** Violations observed for @p signal across the whole run. */
    std::uint64_t violations(Signal signal) const;

    /** Streaming distribution of @p signal's observed values. */
    const obs::Histogram &histogram(Signal signal) const;

    /**
     * Burn rate of @p signal over the trailing @p window seconds
     * ending at @p now: violating fraction within the window divided
     * by the error budget. 0 when the signal is untracked or the
     * window holds no samples.
     */
    double burnRate(Signal signal, double now, double window) const;

    /**
     * Overload pressure at @p now: the maximum burn rate over every
     * tracked signal and configured window. >= 1 means at least one
     * objective is spending its error budget faster than allowed.
     */
    double pressure(double now) const;

    /**
     * Deterministic JSON snapshot at @p now: per-signal sample and
     * violation counts, per-window burn rates, the histograms, and
     * the scalar pressure.
     */
    std::string toJson(double now) const;
    void write(std::ostream &os, double now) const;

    /**
     * Prometheus text exposition at @p now: one histogram per tracked
     * signal plus lia_slo_burn_rate{signal,window} and
     * lia_slo_pressure gauges.
     */
    void writeProm(std::ostream &os, double now) const;

  private:
    struct Tracked
    {
        bool enabled = false;
        double target = 0;
        const char *name = "";
        obs::Histogram hist;
        std::uint64_t samples = 0;
        std::uint64_t violations = 0;

        /** (timestamp, violated) pairs inside the widest window. */
        std::deque<std::pair<double, bool>> recent;
    };

    void observe(Tracked &tracked, double now, double seconds);
    void prune(Tracked &tracked, double now);

    const Tracked &tracked(Signal signal) const;

    SloMonitorConfig config_;
    double maxWindow_ = 0;
    Tracked ttft_;
    Tracked tokenGap_;
    Tracked e2e_;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_SLO_MONITOR_HH
