/**
 * @file
 * KV-footprint-aware admission control.
 *
 * A request may only join the running batch if its full-horizon KV
 * cache reservation (prompt + all demanded output tokens) fits the
 * host-memory budget left after parameters. With CXL spill enabled the
 * §6 memory policy moves parameters into the CXL pool, so the DDR
 * budget — and with it the admission capacity — grows exactly as the
 * paper's Table 3 batch-size increase.
 */

#ifndef LIA_SERVE_ADMISSION_HH
#define LIA_SERVE_ADMISSION_HH

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/config.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/** Tracks KV reservations against the host-memory budget. */
class AdmissionController
{
  public:
    AdmissionController(const hw::SystemConfig &system,
                        const model::ModelConfig &model,
                        const Config &config);

    /** Bytes available for KV reservations. */
    double kvBudgetBytes() const { return kvBudget_; }

    /** Bytes currently reserved by admitted requests. */
    double reservedBytes() const { return reserved_; }

    /** Whether the §6 policy spilled parameters to the CXL pool. */
    bool paramsInCxl() const { return paramsInCxl_; }

    /** Full-horizon KV reservation of @p request, bytes. */
    double requestKvBytes(const Request &request) const;

    /** Whether @p request ever fits (an empty engine included). */
    bool fitsAlone(const Request &request) const;

    /** Whether @p request fits on top of current reservations. */
    bool canAdmit(const Request &request) const;

    /** Reserve @p request's KV footprint (records it on the request). */
    void reserve(Request &request);

    /** Return @p request's reservation to the pool. */
    void release(Request &request);

  private:
    model::ModelConfig model_;
    double kvBudget_ = 0;
    double reserved_ = 0;
    bool paramsInCxl_ = false;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_ADMISSION_HH
