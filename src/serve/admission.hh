/**
 * @file
 * KV-footprint-aware admission control.
 *
 * Two admission disciplines share one byte account:
 *
 *  - Full-horizon (static / continuous / SLO-aware policies): a
 *    request may only join the running batch if its whole-lifetime KV
 *    reservation (prompt + all demanded output tokens) fits the
 *    host-memory budget left after parameters.
 *  - Optimistic (preemptive policy): a request joins once its
 *    *current* footprint — the prompt KV its prefill will materialise
 *    — fits under a free-space watermark; its reservation then grows
 *    one token per decode step, and the scheduler preempts when
 *    projected growth would breach the budget.
 *
 * With CXL spill enabled the §6 memory policy moves parameters into
 * the CXL pool, so the DDR budget — and with it the admission
 * capacity — grows exactly as the paper's Table 3 batch-size
 * increase. The CXL capacity left after spilled parameters doubles as
 * the swap pool preempted KV caches park in, and the pool's
 * interleaved bandwidth prices the swap transfers.
 */

#ifndef LIA_SERVE_ADMISSION_HH
#define LIA_SERVE_ADMISSION_HH

#include <cstdint>

#include "hw/system.hh"
#include "model/config.hh"
#include "serve/config.hh"
#include "serve/request.hh"

namespace lia {
namespace serve {

/** Tracks KV reservations against the host-memory budget. */
class AdmissionController
{
  public:
    AdmissionController(const hw::SystemConfig &system,
                        const model::ModelConfig &model,
                        const Config &config);

    /** Bytes available for KV reservations. */
    double kvBudgetBytes() const { return kvBudget_; }

    /** Bytes currently reserved by admitted requests. */
    double reservedBytes() const { return reserved_; }

    /** Bytes currently parked in the CXL swap pool. */
    double swappedBytes() const { return swapped_; }

    /** CXL bytes available for swapped-out KV caches. */
    double swapPoolBytes() const { return swapPool_; }

    /** Whether the §6 policy spilled parameters to the CXL pool. */
    bool paramsInCxl() const { return paramsInCxl_; }

    /** KV bytes one token of context occupies. */
    double kvBytesPerToken() const;

    /** Full-horizon KV reservation of @p request, bytes. */
    double requestKvBytes(const Request &request) const;

    /** KV bytes @p request's current prefill pass materialises. */
    double promptKvBytes(const Request &request) const;

    /** Whether @p request ever fits (an empty engine included). */
    bool fitsAlone(const Request &request) const;

    /** Whether @p request fits on top of current reservations. */
    bool canAdmit(const Request &request) const;

    /**
     * Whether @p bytes more fit while leaving @p watermark of the
     * budget free — the optimistic admission test.
     */
    bool fitsBytes(double bytes, double watermark = 0) const;

    /** Reserve @p request's full horizon (records it on the request). */
    void reserve(Request &request);

    /** Reserve only @p request's current prefill-pass footprint. */
    void reservePrompt(Request &request);

    /** Grow @p request's reservation by @p tokens of decode output. */
    void grow(Request &request, std::int64_t tokens);

    /**
     * Return @p tokens of reservation to the pool — the speculative
     * decode settle-up: the scheduler grows by the worst case
     * (k_eff + 1 tokens) before the verify outcome is known, and the
     * engine shrinks by the rejected remainder once it is. 0 is a
     * no-op (full acceptance).
     */
    void shrink(Request &request, std::int64_t tokens);

    /** Return @p request's reservation to the pool. */
    void release(Request &request);

    // --- CXL swap account -------------------------------------------

    /** Whether @p request's live KV fits in the swap pool. */
    bool canSwapOut(const Request &request) const;

    /** Move @p request's reservation DDR -> swap pool. */
    void swapOut(Request &request);

    /** Move @p request's parked bytes swap pool -> DDR (must fit). */
    void swapIn(Request &request);

    /** Seconds one direction of a swap of @p bytes occupies the pool. */
    double swapTransferSeconds(double bytes) const;

    double swapBandwidth() const { return swapBandwidth_; }
    double swapLatency() const { return swapLatency_; }

    // --- Prefix-cache accounts --------------------------------------
    //
    // Cached prefixes share the DDR budget with live KV (and demoted
    // prefixes share the CXL pool with swapped-out caches) but live in
    // separate ledgers: live-KV asserts stay intact, and bytes still
    // cached at drain are deliberate retention, not a leak.

    /** DDR bytes held by resident prefix-cache nodes. */
    double cacheDdrBytes() const { return cacheDdr_; }

    /** CXL bytes held by demoted prefix-cache nodes. */
    double cacheCxlBytes() const { return cacheCxl_; }

    /** Charge @p bytes of a new cached span against the DDR budget. */
    void cacheReserve(double bytes);

    /** Return @p bytes of an evicted DDR-resident span. */
    void cacheRelease(double bytes);

    /** Move @p bytes of a cached span DDR -> CXL pool. */
    void cacheDemote(double bytes);

    /** Drop @p bytes of a demoted span from the CXL pool. */
    void cacheDropCxl(double bytes);

    /** Whether @p bytes more of demoted spans fit the CXL pool. */
    bool cacheCxlFits(double bytes) const;

    /**
     * DDR bytes still free for new cached spans once live KV, the
     * cache itself, and @p watermark of the budget are held back.
     */
    double ddrHeadroom(double watermark = 0) const;

  private:
    model::ModelConfig model_;
    double kvBudget_ = 0;
    double reserved_ = 0;
    double swapped_ = 0;
    double cacheDdr_ = 0;
    double cacheCxl_ = 0;
    double swapPool_ = 0;
    double swapBandwidth_ = 0;
    double swapLatency_ = 0;
    bool paramsInCxl_ = false;
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_ADMISSION_HH
