/**
 * @file
 * Trace-track layout of the serving engine.
 *
 * One place defines where every serve-layer emission lands, so the
 * engine, the scheduler, and the tests agree on the taxonomy
 * (DESIGN.md §8): pid 0 groups the engine-side tracks — iterations,
 * scheduler decisions, swap-channel occupancy, and the counter
 * samples — and pid 1 groups one track per request, keyed by request
 * id. Request tracks carry the lifecycle state spans (queued /
 * prefill / decode / preempted / swapped / recompute) plus arrive,
 * shed, and finish instants.
 */

#ifndef LIA_SERVE_TRACKS_HH
#define LIA_SERVE_TRACKS_HH

#include <cstddef>
#include <cstdint>

#include "obs/sink.hh"

namespace lia {
namespace serve {
namespace tracks {

/** Engine iteration spans and the per-iteration counters. */
inline constexpr obs::Track kIterations{0, 0};

/** Scheduler decision instants (preemption pricing, shedding). */
inline constexpr obs::Track kScheduler{0, 1};

/** DDR<->CXL swap-channel occupancy spans. */
inline constexpr obs::Track kSwapChannel{0, 2};

/** The lifecycle track of request @p id. */
inline obs::Track
request(std::size_t id)
{
    return {1, static_cast<std::int32_t>(id)};
}

} // namespace tracks
} // namespace serve
} // namespace lia

#endif // LIA_SERVE_TRACKS_HH
