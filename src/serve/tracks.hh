/**
 * @file
 * Trace-track layout of the serving engine.
 *
 * One place defines where every serve-layer emission lands, so the
 * engine, the scheduler, and the tests agree on the taxonomy
 * (DESIGN.md §8): pid 0 groups the engine-side tracks — iterations,
 * scheduler decisions, swap-channel occupancy, and the counter
 * samples — and pid 1 groups one track per request, keyed by request
 * id. Request tracks carry the lifecycle state spans (queued /
 * prefill / decode / preempted / swapped / recompute) plus arrive,
 * shed, and finish instants.
 */

#ifndef LIA_SERVE_TRACKS_HH
#define LIA_SERVE_TRACKS_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/sink.hh"

namespace lia {
namespace serve {
namespace tracks {

/** Engine iteration spans and the per-iteration counters. */
inline constexpr obs::Track kIterations{0, 0};

/** Scheduler decision instants (preemption pricing, shedding). */
inline constexpr obs::Track kScheduler{0, 1};

/** DDR<->CXL swap-channel occupancy spans. */
inline constexpr obs::Track kSwapChannel{0, 2};

/** The lifecycle track of request @p id. */
inline obs::Track
request(std::size_t id)
{
    return {1, static_cast<std::int32_t>(id)};
}

/**
 * One engine's slice of the track taxonomy. A standalone engine uses
 * the default namespace — pid 0 for the engine lanes, pid 1 for the
 * request lanes, exactly the constants above — while every replica of
 * a cluster run gets its own pid pair via replica(), so N engines
 * sharing one clock and one sink emit into N disjoint "process"
 * groups of the same trace file.
 */
struct Namespace
{
    std::int32_t enginePid = 0;   //!< iterations/scheduler/swap lanes
    std::int32_t requestPid = 1;  //!< one lane per request id

    std::string engineProcess = "engine";
    std::string requestProcess = "requests";

    obs::Track iterations() const { return {enginePid, 0}; }
    obs::Track scheduler() const { return {enginePid, 1}; }
    obs::Track swapChannel() const { return {enginePid, 2}; }

    obs::Track request(std::size_t id) const
    {
        return {requestPid, static_cast<std::int32_t>(id)};
    }
};

/** The track namespace of cluster replica @p index (replica 0 shares
 *  the default namespace's pids, so a one-replica cluster trace is
 *  track-compatible with a standalone engine trace). */
inline Namespace
replica(std::size_t index)
{
    Namespace ns;
    ns.enginePid = static_cast<std::int32_t>(2 * index);
    ns.requestPid = static_cast<std::int32_t>(2 * index + 1);
    ns.engineProcess = "replica" + std::to_string(index);
    ns.requestProcess = "replica" + std::to_string(index) + "/requests";
    return ns;
}

} // namespace tracks
} // namespace serve
} // namespace lia

#endif // LIA_SERVE_TRACKS_HH
