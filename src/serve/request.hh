/**
 * @file
 * Request lifecycle model of the serving engine.
 *
 * A request moves arrive -> admit -> prefill -> per-token decode ->
 * complete (or is rejected/shed at admission). Under the preemptive
 * scheduler a running request can additionally be preempted when KV
 * pressure breaches the budget: its cache is either swapped to the
 * CXL pool (Swapped, restored by a swap-in transfer) or discarded
 * (Preempted, rebuilt later by a recompute prefill over prompt plus
 * already-generated tokens). Every transition is timestamped in
 * simulated seconds so the metrics layer can report TTFT,
 * time-between-tokens, and end-to-end latency per request.
 */

#ifndef LIA_SERVE_REQUEST_HH
#define LIA_SERVE_REQUEST_HH

#include <cstdint>

namespace lia {
namespace serve {

/** Lifecycle state of one served request. */
enum class RequestState
{
    Queued,      //!< arrived, waiting for admission
    Prefilling,  //!< admitted, prompt being processed this iteration
    Decoding,    //!< generating output tokens
    Preempted,   //!< KV evicted under pressure, awaiting recompute
    Swapped,     //!< KV swapped to the CXL pool, awaiting swap-in
    Finished,    //!< all lOut tokens produced
    Rejected,    //!< never admitted (capacity or SLO shedding)
};

const char *toString(RequestState state);

/** One request flowing through the serving engine. */
struct Request
{
    std::uint64_t id = 0;
    std::int64_t lIn = 0;     //!< prompt tokens
    std::int64_t lOut = 0;    //!< output tokens demanded
    double arrival = 0;       //!< simulated arrival time, seconds

    RequestState state = RequestState::Queued;
    std::int64_t generated = 0;  //!< output tokens produced so far

    double admitTime = -1;       //!< entered the running batch
    double firstTokenTime = -1;  //!< prefill completed (token 1)
    double finishTime = -1;      //!< last token produced
    double lastTokenTime = -1;   //!< most recent token (TBT gaps)

    /** KV bytes reserved against the DDR budget while admitted. */
    double kvReservedBytes = 0;

    /** KV bytes parked in the CXL swap pool while Swapped. */
    double kvSwappedBytes = 0;

    // --- Chunked-prefill / preemption bookkeeping --------------------

    /**
     * Prompt tokens this prefill pass must process: lIn on first
     * admission, lIn + generated after an evict-and-recompute (the
     * generated tokens are re-prefilled to rebuild their KV).
     */
    std::int64_t prefillTarget = 0;

    /** Prompt tokens of the current pass already processed. */
    std::int64_t prefilled = 0;

    /** Whether a swap-out transfer has drained (swap-in eligible). */
    bool swapReady = false;

    // --- Prefix-cache bookkeeping ------------------------------------

    /**
     * Prompt pool this request draws its shared prefix from (-1 = an
     * independent prompt). Pool membership determines the synthesized
     * token stream, so two requests of one pool share a bit-identical
     * prompt prefix.
     */
    std::int64_t poolId = -1;

    /** Shared-prefix tokens of the prompt (pool requests only). */
    std::int64_t sharedLen = 0;

    /**
     * Prompt tokens restored from the prefix cache on admission; the
     * prefill pass only processes the remaining suffix. Reset to zero
     * by evict-and-recompute (the rebuild pass ignores the cache so
     * its accounting matches the analytic recompute price).
     */
    std::int64_t prefixHitTokens = 0;

    /** Pinned terminal radix node while the hit's pass runs (0 = none). */
    std::uint64_t prefixNode = 0;

    std::int64_t preemptions = 0;  //!< times evicted or swapped out
    std::int64_t recomputes = 0;   //!< evictions repaid by re-prefill
    std::int64_t swapOuts = 0;     //!< preemptions served by CXL swap

    // --- Speculative decoding (DESIGN.md §11) ------------------------
    std::int64_t specSteps = 0;     //!< draft+verify iterations run
    std::int64_t specDrafted = 0;   //!< draft tokens proposed
    std::int64_t specAccepted = 0;  //!< draft tokens verified correct

    /** Current KV context length (prompt + generated tokens). */
    std::int64_t context() const { return lIn + generated; }

    /** Whether the current prefill pass is still incomplete. */
    bool inPrefill() const { return prefilled < prefillTarget; }

    /** Whether all demanded tokens have been produced. */
    bool done() const { return generated >= lOut; }

    // --- Per-request metrics (valid once Finished) -------------------

    /** Seconds queued before joining the batch. */
    double queueWait() const { return admitTime - arrival; }

    /** Time-to-first-token: arrival to end of prefill. */
    double ttft() const { return firstTokenTime - arrival; }

    /** End-to-end response time. */
    double responseTime() const { return finishTime - arrival; }

    /** Mean time between tokens after the first. */
    double meanTbt() const
    {
        if (lOut <= 1)
            return 0;
        return (finishTime - firstTokenTime) /
               static_cast<double>(lOut - 1);
    }
};

} // namespace serve
} // namespace lia

#endif // LIA_SERVE_REQUEST_HH
