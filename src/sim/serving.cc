#include "sim/serving.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace lia {
namespace sim {

PoissonProcess::PoissonProcess(double rate_per_second,
                               std::uint64_t seed)
    : rate_(rate_per_second), rng_(seed)
{
    LIA_ASSERT(rate_per_second > 0, "bad arrival rate");
}

double
PoissonProcess::next()
{
    const double u = std::max(rng_.uniform(), 1e-12);
    t_ += -std::log(u) / rate_;
    return t_;
}

ServingResult
simulateServing(const ServingConfig &config,
                const ServiceTimeFn &service_time)
{
    LIA_ASSERT(config.arrivalRatePerSecond > 0, "bad arrival rate");
    LIA_ASSERT(config.requests > 0, "no requests");
    LIA_ASSERT(service_time != nullptr, "no service-time model");

    PoissonProcess arrivals(config.arrivalRatePerSecond, config.seed);
    trace::AzureTraceGenerator gen(config.trace, config.maxContext,
                                   config.seed + 1);

    EventQueue queue;
    Resource server(queue, "engine");
    ServingResult result;

    for (std::size_t i = 0; i < config.requests; ++i) {
        const double arrival = arrivals.next();
        const trace::Request request = gen.next();
        const double service = service_time(request);
        LIA_ASSERT(service > 0, "service time must be positive");

        server.submit(arrival, service,
                      [&result, arrival, service](Tick done) {
                          result.serviceTime.add(service);
                          result.responseTime.add(done - arrival);
                          result.waitingTime.add(done - arrival -
                                                 service);
                      });
    }
    queue.run();

    result.makespan = queue.now();
    result.utilisation =
        result.makespan > 0 ? server.busyTime() / result.makespan
                            : 0.0;
    return result;
}

ServingResult
simulateBatchedServing(const ServingConfig &config,
                       const BatchingConfig &batching,
                       const BatchTimeFn &batch_time)
{
    LIA_ASSERT(config.arrivalRatePerSecond > 0, "bad arrival rate");
    LIA_ASSERT(config.requests > 0, "no requests");
    LIA_ASSERT(batching.window >= 0, "bad batching window");
    LIA_ASSERT(batching.maxBatch >= 1, "bad batch ceiling");
    LIA_ASSERT(batch_time != nullptr, "no batch-time model");

    PoissonProcess process(config.arrivalRatePerSecond, config.seed);
    trace::AzureTraceGenerator gen(config.trace, config.maxContext,
                                   config.seed + 1);

    // Draw the full arrival sequence up front.
    struct Arrival
    {
        double at;
        trace::Request request;
    };
    std::vector<Arrival> arrivals;
    arrivals.reserve(config.requests);
    for (std::size_t i = 0; i < config.requests; ++i) {
        const double t = process.next();
        arrivals.push_back(Arrival{t, gen.next()});
    }

    ServingResult result;
    double server_free = 0;
    double busy = 0;
    std::size_t next = 0;
    while (next < arrivals.size()) {
        // Collect one batch: everything arriving within the window of
        // the first queued request (or already queued while the
        // server was busy), capped at maxBatch.
        const double window_open =
            std::max(arrivals[next].at, server_free);
        const double window_close =
            std::max(arrivals[next].at + batching.window, server_free);
        std::size_t end = next;
        trace::Request widest = arrivals[next].request;
        while (end < arrivals.size() &&
               static_cast<std::int64_t>(end - next) <
                   batching.maxBatch &&
               arrivals[end].at <= window_close) {
            widest.lIn = std::max(widest.lIn, arrivals[end].request.lIn);
            widest.lOut =
                std::max(widest.lOut, arrivals[end].request.lOut);
            ++end;
        }

        const auto batch =
            static_cast<std::int64_t>(end - next);
        const double dispatch =
            std::max(window_open,
                     std::min(window_close, arrivals[end - 1].at));
        const double duration = batch_time(batch, widest);
        LIA_ASSERT(duration > 0, "batch time must be positive");
        const double done = dispatch + duration;

        for (std::size_t i = next; i < end; ++i) {
            result.serviceTime.add(duration);
            result.responseTime.add(done - arrivals[i].at);
            result.waitingTime.add(done - arrivals[i].at - duration);
        }
        busy += duration;
        server_free = done;
        next = end;
    }

    result.makespan = server_free;
    result.utilisation =
        result.makespan > 0 ? busy / result.makespan : 0.0;
    return result;
}

} // namespace sim
} // namespace lia
