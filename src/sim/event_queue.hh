/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-style event queue: events are (time, sequence) ordered
 * callbacks; the queue advances a simulated clock as it drains. All
 * timing in the simulator is in seconds (double), matching the rest of
 * the library.
 */

#ifndef LIA_SIM_EVENT_QUEUE_HH
#define LIA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lia {
namespace sim {

/** Simulated time in seconds. */
using Tick = double;

/** Min-heap driven discrete-event scheduler. */
class EventQueue
{
  public:
    /** Schedule @p callback at absolute time @p when (>= now). */
    void schedule(Tick when, std::function<void()> callback);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Whether any events remain. */
    bool empty() const { return heap_.empty(); }

    /** Execute the next event; returns false when the queue is empty. */
    bool step();

    /** Drain the queue completely. */
    void run();

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;  //!< FIFO tie-breaker for simultaneous events
        std::function<void()> callback;
    };

    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace lia

#endif // LIA_SIM_EVENT_QUEUE_HH
