#include "sim/validation.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "core/optimizer.hh"
#include "sim/pipeline.hh"

namespace lia {
namespace sim {

double
ValidationReport::meanAbsError() const
{
    LIA_ASSERT(!points.empty(), "empty validation report");
    double sum = 0;
    for (const auto &p : points)
        sum += std::fabs(p.relativeError());
    return sum / static_cast<double>(points.size());
}

double
ValidationReport::maxAbsError() const
{
    LIA_ASSERT(!points.empty(), "empty validation report");
    double max_err = 0;
    for (const auto &p : points)
        max_err = std::max(max_err, std::fabs(p.relativeError()));
    return max_err;
}

ValidationReport
validateOverlapModel(const hw::SystemConfig &system,
                     const model::ModelConfig &config,
                     const std::vector<std::int64_t> &batches,
                     const std::vector<std::int64_t> &contexts)
{
    core::CostModel cm(system, config, {});
    core::PolicyOptimizer opt(cm);
    const double layers = static_cast<double>(config.numLayers);

    ValidationReport report;
    for (auto stage : {model::Stage::Prefill, model::Stage::Decode}) {
        for (auto batch : batches) {
            for (auto context : contexts) {
                model::Workload w{stage, batch, context};
                const auto choice = opt.optimize(w);

                ValidationPoint point;
                point.workload = w;
                point.policy = choice.policy;
                point.analytical =
                    layers * choice.timing.overlappedTime();
                point.simulated =
                    simulateStage(cm, w, choice.policy, choice.policy,
                                  0)
                        .makespan;
                report.points.push_back(point);
            }
        }
    }
    return report;
}

} // namespace sim
} // namespace lia
