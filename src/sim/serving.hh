/**
 * @file
 * Online-serving queue simulation.
 *
 * The paper motivates the latency-driven regime with user-facing
 * applications (§1): requests arrive continuously and response time —
 * queueing included — is what the user experiences. This module runs
 * an M/G/1-style simulation on the DES kernel: Poisson arrivals,
 * FIFO service, per-request service times supplied by a latency model
 * (e.g. the LIA engine at B = 1), and reports waiting/latency
 * distributions and utilisation.
 */

#ifndef LIA_SIM_SERVING_HH
#define LIA_SIM_SERVING_HH

#include <functional>

#include "base/rng.hh"
#include "base/stats.hh"
#include "trace/azure.hh"

namespace lia {
namespace sim {

/**
 * Deterministic Poisson arrival process: exponential inter-arrival
 * gaps drawn from an owned Rng. Shared by the M/G/1 simulators here
 * and the continuous-batching engine in serve/, so equal seeds mean
 * equal arrival sequences across serving models.
 */
class PoissonProcess
{
  public:
    PoissonProcess(double rate_per_second, std::uint64_t seed);

    /** Absolute time of the next arrival (monotonically increasing). */
    double next();

  private:
    double rate_;
    double t_ = 0;
    Rng rng_;
};

/** Configuration of one serving simulation. */
struct ServingConfig
{
    double arrivalRatePerSecond = 0.05;  //!< Poisson arrival rate
    std::size_t requests = 200;          //!< requests to simulate
    trace::TraceKind trace = trace::TraceKind::Code;
    std::int64_t maxContext = 2048;
    std::uint64_t seed = 1;
};

/** Outcome of the simulation. */
struct ServingResult
{
    SampleStats serviceTime;   //!< pure inference seconds
    SampleStats waitingTime;   //!< seconds queued before service
    SampleStats responseTime;  //!< waiting + service
    double makespan = 0;       //!< simulated wall-clock span
    double utilisation = 0;    //!< server busy fraction

    /** Whether the offered load kept the queue stable (util < 1). */
    bool stable() const { return utilisation < 0.999; }
};

/** Maps one trace request to its inference latency in seconds. */
using ServiceTimeFn = std::function<double(const trace::Request &)>;

/**
 * Simulate FIFO single-server serving.
 *
 * @param config        arrival process and trace shape
 * @param service_time  per-request latency model
 */
ServingResult simulateServing(const ServingConfig &config,
                              const ServiceTimeFn &service_time);

/** Dynamic-batching policy for simulateBatchedServing. */
struct BatchingConfig
{
    /** Longest a request may wait for batch-mates, seconds. */
    double window = 5.0;

    /** Dispatch immediately once this many requests are queued. */
    std::int64_t maxBatch = 32;
};

/**
 * Maps a dispatched batch (size, representative request) to its
 * inference latency in seconds.
 */
using BatchTimeFn =
    std::function<double(std::int64_t, const trace::Request &)>;

/**
 * Simulate dynamic batching: arrivals accumulate until the window
 * expires or maxBatch requests are queued, then dispatch as one
 * engine batch. Captures the latency/throughput trade the paper's
 * online-vs-offline split hides: batching amortises parameter reads
 * (tokens/s up) at the price of queueing delay (response time up).
 */
ServingResult simulateBatchedServing(const ServingConfig &config,
                                     const BatchingConfig &batching,
                                     const BatchTimeFn &batch_time);

} // namespace sim
} // namespace lia

#endif // LIA_SIM_SERVING_HH
